#include "topk/shard_merge.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"

namespace vfps::topk {

namespace {

// Strict (value, id) order shared with ml::SmallestK's comparator, so a merge
// of per-range SmallestK results reproduces the single-heap order exactly.
inline bool Better(double av, uint64_t ai, double bv, uint64_t bi) {
  if (av != bv) return av < bv;
  return ai < bi;
}

Status ValidateSorted(const ShardTopk& t, const char* which) {
  if (t.values.size() != t.ids.size()) {
    return Status::InvalidArgument(
        StrFormat("shard-merge: %s list has %zu values but %zu ids", which,
                  t.values.size(), t.ids.size()));
  }
  for (size_t i = 1; i < t.size(); ++i) {
    if (Better(t.values[i], t.ids[i], t.values[i - 1], t.ids[i - 1])) {
      return Status::InvalidArgument(StrFormat(
          "shard-merge: %s list not sorted by (value, id) at entry %zu", which,
          i));
    }
  }
  return Status::OK();
}

}  // namespace

ShardTopk ShardTopkFromIndices(const std::vector<uint64_t>& top,
                               const double* values, uint64_t id_offset) {
  ShardTopk out;
  out.values.reserve(top.size());
  out.ids.reserve(top.size());
  for (uint64_t local : top) {
    out.values.push_back(values[local]);
    out.ids.push_back(id_offset + local);
  }
  return out;
}

Result<ShardTopk> MergeTwoTopk(const ShardTopk& a, const ShardTopk& b,
                               size_t k) {
  VFPS_RETURN_NOT_OK(ValidateSorted(a, "left"));
  VFPS_RETURN_NOT_OK(ValidateSorted(b, "right"));
  ShardTopk out;
  const size_t bound = std::min(k, a.size() + b.size());
  out.values.reserve(bound);
  out.ids.reserve(bound);
  // Shards normally hold disjoint ids; the set only matters for defensive
  // dedup (overlapping nominations, duplicated inputs) and stays O(k).
  std::unordered_set<uint64_t> taken;
  taken.reserve(bound);
  size_t i = 0, j = 0;
  while (out.size() < k && (i < a.size() || j < b.size())) {
    const bool take_a =
        j >= b.size() ||
        (i < a.size() && Better(a.values[i], a.ids[i], b.values[j], b.ids[j]));
    const double v = take_a ? a.values[i] : b.values[j];
    const uint64_t id = take_a ? a.ids[i] : b.ids[j];
    take_a ? ++i : ++j;
    if (!taken.insert(id).second) continue;  // worse duplicate of a taken id
    out.values.push_back(v);
    out.ids.push_back(id);
  }
  return out;
}

Result<ShardTopk> HierarchicalTopkMerge(std::vector<ShardTopk> shards,
                                        size_t k,
                                        ShardMergeStats* stats) {
  if (stats != nullptr) {
    for (const ShardTopk& s : shards) stats->entries_in += s.size();
  }
  if (shards.empty()) return ShardTopk{};
  // Tournament rounds: (0,1), (2,3), ... — an odd leftover advances as-is.
  // MergeTwoTopk's truncation is lossless (its output is the true top-k of
  // its inputs' union), so the result is independent of the tree shape.
  while (shards.size() > 1) {
    std::vector<ShardTopk> next;
    next.reserve((shards.size() + 1) / 2);
    for (size_t i = 0; i + 1 < shards.size(); i += 2) {
      VFPS_ASSIGN_OR_RETURN(auto merged,
                            MergeTwoTopk(shards[i], shards[i + 1], k));
      next.push_back(std::move(merged));
      if (stats != nullptr) ++stats->merges;
    }
    if (shards.size() % 2 == 1) next.push_back(std::move(shards.back()));
    shards = std::move(next);
  }
  // Single-shard input: still validate and clamp to k, so every path through
  // the oracle goes through the same contract.
  if (shards.front().size() > k) {
    shards.front().values.resize(k);
    shards.front().ids.resize(k);
  }
  VFPS_RETURN_NOT_OK(ValidateSorted(shards.front(), "result"));
  return std::move(shards.front());
}

}  // namespace vfps::topk

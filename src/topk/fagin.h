#ifndef VFPS_TOPK_FAGIN_H_
#define VFPS_TOPK_FAGIN_H_

#include "common/result.h"
#include "topk/ranked_list.h"

namespace vfps::obs {
class MetricsRegistry;
}  // namespace vfps::obs

namespace vfps::topk {

/// \brief Fagin's algorithm (FA) for monotone aggregate top-k over P ranked
/// lists, the optimization at the heart of VFPS-SM (paper §IV-B).
///
/// Phase 1: consume the lists round-robin in mini-batches of `batch` rows per
/// party until at least k items have been seen in *all* lists. Phase 2:
/// random-access the remaining scores of every item seen at least once.
/// Phase 3: aggregate and return the k smallest. Correct for any monotone
/// aggregate; here the aggregate is the sum of partial distances.
///
/// \param batch rows revealed per party per round (the protocol's mini-batch
///        size b; 1 reproduces textbook FA).
/// \param obs optional metrics sink: bumps `topk.fagin.*` counters (runs,
///        rounds, sorted_access_depth, sorted/random accesses) and records
///        the candidate-set size in the `topk.fagin.candidates` histogram.
Result<TopkResult> FaginTopk(const RankedListSet& lists, size_t k,
                             size_t batch = 1,
                             obs::MetricsRegistry* obs = nullptr);

}  // namespace vfps::topk

#endif  // VFPS_TOPK_FAGIN_H_

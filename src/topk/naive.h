#ifndef VFPS_TOPK_NAIVE_H_
#define VFPS_TOPK_NAIVE_H_

#include "common/result.h"
#include "topk/ranked_list.h"

namespace vfps::obs {
class MetricsRegistry;
}  // namespace vfps::obs

namespace vfps::topk {

/// \brief Exhaustive baseline: aggregate every item and take the k smallest.
/// This is what VFPS-SM-BASE effectively does (every instance's partial
/// distance is encrypted, transmitted, and aggregated).
/// `obs` (optional) receives `topk.naive.runs` / `topk.naive.scanned`.
Result<TopkResult> NaiveTopk(const RankedListSet& lists, size_t k,
                             obs::MetricsRegistry* obs = nullptr);

}  // namespace vfps::topk

#endif  // VFPS_TOPK_NAIVE_H_

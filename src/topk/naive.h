#ifndef VFPS_TOPK_NAIVE_H_
#define VFPS_TOPK_NAIVE_H_

#include "common/result.h"
#include "topk/ranked_list.h"

namespace vfps::topk {

/// \brief Exhaustive baseline: aggregate every item and take the k smallest.
/// This is what VFPS-SM-BASE effectively does (every instance's partial
/// distance is encrypted, transmitted, and aggregated).
Result<TopkResult> NaiveTopk(const RankedListSet& lists, size_t k);

}  // namespace vfps::topk

#endif  // VFPS_TOPK_NAIVE_H_

#include "topk/threshold.h"

#include <algorithm>
#include <queue>

#include "common/macros.h"
#include "obs/metrics.h"

namespace vfps::topk {

Result<TopkResult> ThresholdTopk(const RankedListSet& lists, size_t k,
                                 obs::MetricsRegistry* obs) {
  const size_t n = lists.num_items();
  const size_t p = lists.num_parties();
  VFPS_CHECK_ARG(k >= 1, "TA: k must be >= 1");
  k = std::min(k, n);

  TopkResult result;
  std::vector<bool> evaluated(n, false);
  // Max-heap of (aggregate, id): the root is the worst of the current top-k.
  std::priority_queue<std::pair<double, uint64_t>> best;

  for (size_t depth = 0; depth < n; ++depth) {
    double threshold = 0.0;
    for (size_t party = 0; party < p; ++party) {
      const uint64_t frontier_id = lists.IdAtRank(party, depth);
      ++result.sorted_accesses;
      threshold += lists.Score(party, frontier_id);
      if (!evaluated[frontier_id]) {
        evaluated[frontier_id] = true;
        result.candidate_ids.push_back(frontier_id);
        // Random-access the other parties' scores for this item.
        result.random_accesses += p - 1;
        ++result.candidates;
        const double agg = lists.AggregateScore(frontier_id);
        if (best.size() < k) {
          best.emplace(agg, frontier_id);
        } else if (agg < best.top().first) {
          best.pop();
          best.emplace(agg, frontier_id);
        }
      }
    }
    result.depth = depth + 1;
    // Stop when we hold k items and none of the unseen can beat the worst:
    // any unseen item has per-party score >= the frontier, hence aggregate
    // >= threshold.
    if (best.size() == k && best.top().first <= threshold) break;
  }

  result.ids.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    result.ids[i] = best.top().second;
    best.pop();
  }

  if (obs != nullptr) {
    obs->GetCounter("topk.ta.runs")->Add(1);
    obs->GetCounter("topk.ta.sorted_access_depth")->Add(result.depth);
    obs->GetCounter("topk.ta.sorted_accesses")->Add(result.sorted_accesses);
    obs->GetCounter("topk.ta.random_accesses")->Add(result.random_accesses);
    obs->GetHistogram("topk.ta.candidates")->Record(result.candidates);
  }
  return result;
}

}  // namespace vfps::topk

#include "topk/naive.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"

namespace vfps::topk {

Result<TopkResult> NaiveTopk(const RankedListSet& lists, size_t k,
                             obs::MetricsRegistry* obs) {
  const size_t n = lists.num_items();
  VFPS_CHECK_ARG(k >= 1, "naive top-k: k must be >= 1");
  k = std::min(k, n);

  TopkResult result;
  std::vector<std::pair<double, uint64_t>> aggregated(n);
  for (uint64_t id = 0; id < n; ++id) {
    aggregated[id] = {lists.AggregateScore(id), id};
  }
  result.candidates = n;
  result.candidate_ids.resize(n);
  for (uint64_t id = 0; id < n; ++id) result.candidate_ids[id] = id;
  result.depth = n;
  result.sorted_accesses = n * lists.num_parties();
  std::partial_sort(aggregated.begin(), aggregated.begin() + k, aggregated.end());
  result.ids.reserve(k);
  for (size_t i = 0; i < k; ++i) result.ids.push_back(aggregated[i].second);

  if (obs != nullptr) {
    obs->GetCounter("topk.naive.runs")->Add(1);
    obs->GetCounter("topk.naive.scanned")->Add(n);
  }
  return result;
}

}  // namespace vfps::topk

#ifndef VFPS_TOPK_THRESHOLD_H_
#define VFPS_TOPK_THRESHOLD_H_

#include "common/result.h"
#include "topk/ranked_list.h"

namespace vfps::obs {
class MetricsRegistry;
}  // namespace vfps::obs

namespace vfps::topk {

/// \brief Threshold algorithm (TA, Fagin-Lotem-Naor) for the same problem:
/// sorted access round-robin, immediate random access per new item, stop once
/// the k-th best aggregate is no worse than the threshold (sum of the scores
/// at the current sorted-access frontier). Usually stops at a smaller depth
/// than FA at the price of more random accesses; VFPS-SM supports it as an
/// alternative top-k oracle (paper §IV-B "also supports other algorithms").
/// `obs` (optional) receives the analogous `topk.ta.*` metrics.
Result<TopkResult> ThresholdTopk(const RankedListSet& lists, size_t k,
                                 obs::MetricsRegistry* obs = nullptr);

}  // namespace vfps::topk

#endif  // VFPS_TOPK_THRESHOLD_H_

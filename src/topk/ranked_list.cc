#include "topk/ranked_list.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace vfps::topk {

Result<RankedListSet> RankedListSet::Build(
    std::vector<std::vector<double>> scores_per_party) {
  VFPS_CHECK_ARG(!scores_per_party.empty(), "RankedListSet: need >= 1 party");
  const size_t n = scores_per_party[0].size();
  VFPS_CHECK_ARG(n > 0, "RankedListSet: empty score lists");
  for (const auto& scores : scores_per_party) {
    VFPS_CHECK_ARG(scores.size() == n, "RankedListSet: size mismatch across parties");
  }
  RankedListSet set;
  set.scores_ = std::move(scores_per_party);
  set.order_.resize(set.scores_.size());
  for (size_t p = 0; p < set.scores_.size(); ++p) {
    set.order_[p] = SortedOrder(set.scores_[p]);
  }
  return set;
}

std::vector<uint64_t> RankedListSet::SortedOrder(
    const std::vector<double>& scores) {
  std::vector<uint64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  // Ascending score; ties broken by id for determinism.
  std::sort(order.begin(), order.end(), [&scores](uint64_t a, uint64_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });
  return order;
}

Result<RankedListSet> RankedListSet::BuildPresorted(
    std::vector<std::vector<double>> scores_per_party,
    std::vector<std::vector<uint64_t>> orders_per_party) {
  VFPS_CHECK_ARG(!scores_per_party.empty(), "RankedListSet: need >= 1 party");
  VFPS_CHECK_ARG(scores_per_party.size() == orders_per_party.size(),
                 "RankedListSet: scores/orders party-count mismatch");
  const size_t n = scores_per_party[0].size();
  VFPS_CHECK_ARG(n > 0, "RankedListSet: empty score lists");
  for (size_t p = 0; p < scores_per_party.size(); ++p) {
    VFPS_CHECK_ARG(scores_per_party[p].size() == n,
                   "RankedListSet: size mismatch across parties");
    VFPS_CHECK_ARG(orders_per_party[p].size() == n,
                   "RankedListSet: order/scores size mismatch");
  }
  RankedListSet set;
  set.scores_ = std::move(scores_per_party);
  set.order_ = std::move(orders_per_party);
  return set;
}

double RankedListSet::AggregateScore(uint64_t id) const {
  double sum = 0.0;
  for (const auto& scores : scores_) sum += scores[id];
  return sum;
}

}  // namespace vfps::topk

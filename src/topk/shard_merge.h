#ifndef VFPS_TOPK_SHARD_MERGE_H_
#define VFPS_TOPK_SHARD_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace vfps::topk {

/// \brief One shard's local top-k: parallel (value, id) arrays sorted
/// ascending by (value, id). `ids` live in whatever global id space the
/// caller merges in (original rows, compressed candidate indices, pseudo
/// IDs) — the merge only requires that the space is shared across shards.
///
/// An empty ShardTopk (no entries) is valid and merges as the identity.
struct ShardTopk {
  std::vector<double> values;
  std::vector<uint64_t> ids;

  size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }
};

/// Build a ShardTopk from a SmallestK-style result: `top` holds shard-local
/// indices into `values`, already sorted ascending by (value, local index).
/// Global ids are `id_offset + local index`, so for contiguous shard layouts
/// the (value, id) order is preserved verbatim.
ShardTopk ShardTopkFromIndices(const std::vector<uint64_t>& top,
                               const double* values, uint64_t id_offset);

/// \brief Bounded merge of two shard-local top-k lists: the k best entries of
/// the union under ascending (value, id) order, deduplicating ids (the better
/// (value, id) occurrence of a duplicate id wins; exact duplicates collapse
/// to one entry). O(k) time and memory.
///
/// Lossless truncation: when each input holds the best min(k, shard size)
/// entries of its shard and shards do not share ids, the output is exactly
/// the best k of the combined shards — which makes the operation associative
/// and the hierarchical reduction below shape-independent.
Result<ShardTopk> MergeTwoTopk(const ShardTopk& a, const ShardTopk& b,
                               size_t k);

/// Pairwise-merge accounting for the hierarchical reduction.
struct ShardMergeStats {
  size_t merges = 0;      // pairwise MergeTwoTopk invocations
  size_t entries_in = 0;  // total input entries across all shards
};

/// \brief Hierarchical multi-way top-k merge: reduce the shard-local lists
/// pairwise up a binary tournament tree ((0,1), (2,3), ... per round) until
/// one list remains. Mirrors how shard nodes would combine results up an
/// aggregation tree: every level moves only O(k) entries, so the fan-in cost
/// is O(S·k) total instead of the O(N) a flat re-rank would touch.
///
/// Agreement contract (tested): when the shards partition a value array into
/// contiguous ranges and each ShardTopk is SmallestK over its range (ids
/// offset to the global space), the merged result is bit-identical to
/// single-heap SmallestK over the whole array — same ids, same order, ties
/// broken by lower id. Empty shard lists and k larger than any shard are
/// handled naturally; duplicate ids across shards are deduplicated.
///
/// An empty `shards` vector yields an empty result.
Result<ShardTopk> HierarchicalTopkMerge(std::vector<ShardTopk> shards,
                                        size_t k,
                                        ShardMergeStats* stats = nullptr);

}  // namespace vfps::topk

#endif  // VFPS_TOPK_SHARD_MERGE_H_

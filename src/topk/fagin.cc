#include "topk/fagin.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"

namespace vfps::topk {

Result<TopkResult> FaginTopk(const RankedListSet& lists, size_t k,
                             size_t batch, obs::MetricsRegistry* obs) {
  const size_t n = lists.num_items();
  const size_t p = lists.num_parties();
  VFPS_CHECK_ARG(k >= 1, "Fagin: k must be >= 1");
  VFPS_CHECK_ARG(batch >= 1, "Fagin: batch must be >= 1");
  k = std::min(k, n);

  TopkResult result;
  // seen_count[id] = number of lists the item has appeared in so far.
  std::vector<uint32_t> seen_count(n, 0);
  std::vector<uint64_t> seen_order;  // distinct items in first-seen order
  seen_order.reserve(2 * k * p);
  size_t fully_seen = 0;

  // Phase 1: round-robin sorted access in mini-batches.
  size_t depth = 0;
  size_t rounds = 0;
  while (fully_seen < k && depth < n) {
    ++rounds;
    const size_t limit = std::min(n, depth + batch);
    for (size_t party = 0; party < p; ++party) {
      for (size_t r = depth; r < limit; ++r) {
        const uint64_t id = lists.IdAtRank(party, r);
        ++result.sorted_accesses;
        if (seen_count[id] == 0) seen_order.push_back(id);
        if (++seen_count[id] == p) ++fully_seen;
      }
    }
    depth = limit;
  }
  result.depth = depth;

  // Phase 2 + 3: aggregate every seen item (random accesses fill in the
  // scores not yet revealed by sorted access).
  std::vector<std::pair<double, uint64_t>> aggregated;
  aggregated.reserve(seen_order.size());
  for (uint64_t id : seen_order) {
    result.random_accesses += p - seen_count[id];
    aggregated.emplace_back(lists.AggregateScore(id), id);
  }
  result.candidates = aggregated.size();
  result.candidate_ids = seen_order;

  const size_t take = std::min(k, aggregated.size());
  std::partial_sort(aggregated.begin(), aggregated.begin() + take,
                    aggregated.end());
  result.ids.reserve(take);
  for (size_t i = 0; i < take; ++i) result.ids.push_back(aggregated[i].second);

  if (obs != nullptr) {
    obs->GetCounter("topk.fagin.runs")->Add(1);
    obs->GetCounter("topk.fagin.rounds")->Add(rounds);
    obs->GetCounter("topk.fagin.sorted_access_depth")->Add(result.depth);
    obs->GetCounter("topk.fagin.sorted_accesses")->Add(result.sorted_accesses);
    obs->GetCounter("topk.fagin.random_accesses")->Add(result.random_accesses);
    obs->GetHistogram("topk.fagin.candidates")->Record(result.candidates);
  }
  return result;
}

}  // namespace vfps::topk

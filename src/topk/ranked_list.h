#ifndef VFPS_TOPK_RANKED_LIST_H_
#define VFPS_TOPK_RANKED_LIST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace vfps::topk {

/// \brief The multi-party top-k input: P parties each scoring the same N
/// items (item id = index into the score vector). Lists are materialized in
/// ascending score order because vertical KNN wants the k *smallest*
/// aggregate distances.
///
/// Provides the two access modes of the classic middleware model (Fagin et
/// al.): sorted access (next item in a party's rank order) and random access
/// (a party's score for a given item).
class RankedListSet {
 public:
  /// \param scores_per_party one score vector per party; all the same size.
  static Result<RankedListSet> Build(
      std::vector<std::vector<double>> scores_per_party);

  /// Build from score vectors whose sort orders are already known (e.g.
  /// cached sub-rankings surviving a membership change) — skips the
  /// O(n log n) per-party sort that dominates Build(). Each order must be
  /// the permutation SortedOrder(scores) would produce; only sizes are
  /// validated.
  static Result<RankedListSet> BuildPresorted(
      std::vector<std::vector<double>> scores_per_party,
      std::vector<std::vector<uint64_t>> orders_per_party);

  /// The ranking Build() materializes for one party: item ids sorted
  /// ascending by score, ties broken by id.
  static std::vector<uint64_t> SortedOrder(const std::vector<double>& scores);

  size_t num_parties() const { return scores_.size(); }
  size_t num_items() const { return scores_.empty() ? 0 : scores_[0].size(); }

  /// Item id at rank `r` (0 = smallest score) in party `p`'s list.
  uint64_t IdAtRank(size_t party, size_t rank) const {
    return order_[party][rank];
  }

  /// Party `p`'s score for item `id` (random access).
  double Score(size_t party, uint64_t id) const { return scores_[party][id]; }

  /// Aggregate (sum) score of an item across all parties.
  double AggregateScore(uint64_t id) const;

 private:
  RankedListSet() = default;
  std::vector<std::vector<double>> scores_;       // [party][id] -> score
  std::vector<std::vector<uint64_t>> order_;      // [party][rank] -> id
};

/// \brief Outcome of a top-k run plus the access counts that drive the
/// efficiency comparison (Fig. 9 counts candidates; the cost model converts
/// accesses into communication).
struct TopkResult {
  std::vector<uint64_t> ids;  // the k items with smallest aggregate score
  /// Every distinct item whose aggregate was (or must be) evaluated — in the
  /// VFPS-SM protocol this is exactly the set whose partial distances get
  /// encrypted and transmitted (Fig. 9's y-axis).
  std::vector<uint64_t> candidate_ids;
  size_t depth = 0;            // sorted-access rows consumed per party
  size_t sorted_accesses = 0;  // total sorted accesses across parties
  size_t random_accesses = 0;  // random-access score lookups
  size_t candidates = 0;       // == candidate_ids.size()
};

}  // namespace vfps::topk

#endif  // VFPS_TOPK_RANKED_LIST_H_

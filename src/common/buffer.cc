#include "common/buffer.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace vfps {

namespace {
// Table-driven CRC-32 (IEEE), generated once from the reflected polynomial.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
    return entries;
  }();
  return table;
}
}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Crc32Accumulator::Update(const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = state_;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  state_ = crc;
}

Result<uint8_t> BinaryReader::ReadU8() {
  VFPS_RETURN_NOT_OK(Require(1));
  return data_[pos_++];
}

Result<uint32_t> BinaryReader::ReadU32() {
  VFPS_RETURN_NOT_OK(Require(sizeof(uint32_t)));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  VFPS_RETURN_NOT_OK(Require(sizeof(uint64_t)));
  uint64_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  VFPS_RETURN_NOT_OK(Require(sizeof(int64_t)));
  int64_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  VFPS_RETURN_NOT_OK(Require(sizeof(double)));
  double v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  VFPS_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  VFPS_RETURN_NOT_OK(Require(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<std::vector<uint8_t>> BinaryReader::ReadBytes() {
  VFPS_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  VFPS_RETURN_NOT_OK(Require(n));
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVec() {
  VFPS_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  VFPS_RETURN_NOT_OK(Require(n * sizeof(double)));
  std::vector<double> out(n);
  // n == 0 leaves out.data() null; memcpy's arguments are declared nonnull.
  if (n != 0) std::memcpy(out.data(), data_ + pos_, n * sizeof(double));
  pos_ += n * sizeof(double);
  return out;
}

Result<std::vector<uint64_t>> BinaryReader::ReadU64Vec() {
  VFPS_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  VFPS_RETURN_NOT_OK(Require(n * sizeof(uint64_t)));
  std::vector<uint64_t> out(n);
  if (n != 0) std::memcpy(out.data(), data_ + pos_, n * sizeof(uint64_t));
  pos_ += n * sizeof(uint64_t);
  return out;
}

Result<std::vector<uint8_t>> BinaryReader::ReadCrcFramed() {
  VFPS_ASSIGN_OR_RETURN(uint32_t expected, ReadU32());
  VFPS_ASSIGN_OR_RETURN(auto payload, ReadBytes());
  const uint32_t actual = Crc32(payload);
  if (actual != expected) {
    return Status::Corrupt(
        StrFormat("CRC mismatch: frame carries 0x%08X, payload hashes to 0x%08X",
                  expected, actual));
  }
  return payload;
}

Result<std::vector<uint32_t>> BinaryReader::ReadU32Vec() {
  VFPS_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  VFPS_RETURN_NOT_OK(Require(n * sizeof(uint32_t)));
  std::vector<uint32_t> out(n);
  if (n != 0) std::memcpy(out.data(), data_ + pos_, n * sizeof(uint32_t));
  pos_ += n * sizeof(uint32_t);
  return out;
}

}  // namespace vfps

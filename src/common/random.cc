#include "common/random.h"

#include <cmath>
#include <unordered_map>

namespace vfps {

namespace {
// SplitMix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(&x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  // Partial Fisher-Yates over a *virtual* pool: position p holds the value p
  // unless an earlier swap displaced it, and only displaced positions are
  // stored. Same NextBounded draw sequence and same outputs as the dense
  // version, but O(k) memory instead of O(n) — the out-of-core engine samples
  // a handful of query rows from row spaces of 5M+, where a dense pool would
  // be a 40 MB transient that dwarfs the per-shard working set.
  std::unordered_map<size_t, size_t> displaced;
  const auto value_at = [&](size_t pos) {
    const auto it = displaced.find(pos);
    return it == displaced.end() ? pos : it->second;
  };
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    const size_t vi = value_at(i);
    const size_t vj = value_at(j);
    displaced[i] = vj;
    displaced[j] = vi;
    out.push_back(vj);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace vfps

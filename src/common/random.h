#ifndef VFPS_COMMON_RANDOM_H_
#define VFPS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vfps {

/// \brief Deterministic PRNG (xoshiro256++) used everywhere a seed is needed.
///
/// Every stochastic component of the library accepts an explicit seed so that
/// experiments are bit-for-bit reproducible across runs and platforms. The
/// standard library engines are avoided because their distributions are not
/// guaranteed to be identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) without modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Uniform int in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Split off an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  // Box-Muller spare value.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vfps

#endif  // VFPS_COMMON_RANDOM_H_

#include "common/thread_pool.h"

#include <algorithm>

namespace vfps {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t workers = num_threads();
  if (workers <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t lo = begin + w * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vfps

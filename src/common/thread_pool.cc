#include "common/thread_pool.h"

#include <algorithm>

namespace vfps {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (num_threads() <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic scheduling: every participant (workers + the calling thread)
  // claims the next unprocessed index from a shared cursor, which
  // load-balances uneven iteration costs (e.g. per-query Fagin depth).
  // The caller always participates, so even if every worker is stuck behind
  // other tasks the loop completes — this is what makes nested ParallelFor
  // deadlock-free.
  std::atomic<size_t> cursor{begin};
  const size_t helpers = std::min(num_threads(), n - 1);
  Latch latch(helpers);
  for (size_t w = 0; w < helpers; ++w) {
    Submit([&cursor, &latch, &fn, end] {
      for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < end;
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
      latch.CountDown();
    });
  }
  for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < end;
       i = cursor.fetch_add(1, std::memory_order_relaxed)) {
    fn(i);
  }
  // The caller's stack frame (cursor, latch, fn) stays alive until every
  // helper task has counted down, so the by-reference captures are safe.
  latch.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vfps

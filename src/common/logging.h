#ifndef VFPS_COMMON_LOGGING_H_
#define VFPS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vfps {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line writer; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vfps

#define VFPS_LOG(level)                                                     \
  ::vfps::internal::LogMessage(::vfps::LogLevel::k##level, __FILE__, __LINE__)

#endif  // VFPS_COMMON_LOGGING_H_

#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace vfps {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCryptoError:
      return "Crypto error";
    case StatusCode::kProtocolError:
      return "Protocol error";
    case StatusCode::kCapacityError:
      return "Capacity error";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCorrupt:
      return "Corrupt";
    case StatusCode::kPeerDead:
      return "Peer dead";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort(const char* context) const {
  if (ok()) return;
  if (context != nullptr) {
    std::fprintf(stderr, "[vfps] fatal (%s): %s\n", context, ToString().c_str());
  } else {
    std::fprintf(stderr, "[vfps] fatal: %s\n", ToString().c_str());
  }
  std::abort();
}

}  // namespace vfps

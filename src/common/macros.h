#ifndef VFPS_COMMON_MACROS_H_
#define VFPS_COMMON_MACROS_H_

#include "common/status.h"

/// Propagate a non-OK Status to the caller.
#define VFPS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::vfps::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define VFPS_CONCAT_IMPL(x, y) x##y
#define VFPS_CONCAT(x, y) VFPS_CONCAT_IMPL(x, y)

/// Unwrap a Result<T> into `lhs`, returning the error Status on failure.
/// Usage: VFPS_ASSIGN_OR_RETURN(auto value, ComputeValue());
#define VFPS_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto VFPS_CONCAT(_result_, __LINE__) = (rexpr);                 \
  if (!VFPS_CONCAT(_result_, __LINE__).ok()) {                    \
    return VFPS_CONCAT(_result_, __LINE__).status();              \
  }                                                               \
  lhs = VFPS_CONCAT(_result_, __LINE__).MoveValueUnsafe()

/// Return InvalidArgument unless `cond` holds.
#define VFPS_CHECK_ARG(cond, msg)                                 \
  do {                                                            \
    if (!(cond)) return ::vfps::Status::InvalidArgument(msg);     \
  } while (false)

/// Abort on a non-OK status; for examples/benchmarks/tests only.
#define VFPS_ABORT_NOT_OK(expr)                  \
  do {                                           \
    ::vfps::Status _st = (expr);                 \
    _st.Abort(#expr);                            \
  } while (false)

#endif  // VFPS_COMMON_MACROS_H_

#ifndef VFPS_COMMON_STATUS_H_
#define VFPS_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace vfps {

/// \brief Error category attached to a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kCryptoError = 8,
  kProtocolError = 9,
  kCapacityError = 10,
  kTimeout = 11,      // a retried exchange exhausted its attempts
  kCorrupt = 12,      // payload failed its integrity check (CRC mismatch)
  kPeerDead = 13,     // the counterpart of an exchange has crashed
  kUnavailable = 14,  // too few live participants to run the protocol
};

/// \brief Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Operation outcome carrying an error code and message, modeled on
/// arrow::Status / rocksdb::Status.
///
/// Library code never throws; fallible functions return Status (or
/// Result<T>, see result.h). The OK state is represented by a null internal
/// pointer, so returning Status::OK() is free of allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Corrupt(std::string msg) {
    return Status(StatusCode::kCorrupt, std::move(msg));
  }
  static Status PeerDead(std::string msg) {
    return Status(StatusCode::kPeerDead, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCryptoError() const { return code() == StatusCode::kCryptoError; }
  bool IsProtocolError() const { return code() == StatusCode::kProtocolError; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsCorrupt() const { return code() == StatusCode::kCorrupt; }
  bool IsPeerDead() const { return code() == StatusCode::kPeerDead; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// \brief "OK" or "<Code name>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process with the status message if not OK. Intended
  /// for examples and benchmarks, not library code.
  void Abort(const char* context = nullptr) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared (not unique) so Status is cheaply copyable; error states are
  // immutable after construction.
  std::shared_ptr<State> state_;
};

}  // namespace vfps

#endif  // VFPS_COMMON_STATUS_H_

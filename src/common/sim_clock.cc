#include "common/sim_clock.h"

#include <cstdio>

namespace vfps {

const char* CostCategoryName(CostCategory cat) {
  switch (cat) {
    case CostCategory::kCompute:
      return "compute";
    case CostCategory::kEncrypt:
      return "encrypt";
    case CostCategory::kDecrypt:
      return "decrypt";
    case CostCategory::kHeEval:
      return "he_eval";
    case CostCategory::kNetwork:
      return "network";
    case CostCategory::kTraining:
      return "training";
    case CostCategory::kNumCategories:
      break;
  }
  return "unknown";
}

std::string SimClock::Breakdown() const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < totals_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%s=%.3fs", i == 0 ? "" : " ",
                  CostCategoryName(static_cast<CostCategory>(i)), totals_[i]);
    out += buf;
  }
  return out;
}

}  // namespace vfps

#ifndef VFPS_COMMON_BUFFER_H_
#define VFPS_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vfps {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n`
/// bytes. Matches zlib's crc32(): Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const uint8_t* data, size_t n);
inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// \brief Streaming CRC-32 over a sequence of Update() calls, equivalent to
/// Crc32() over the concatenated bytes. Used to digest per-participant data
/// streams (e.g. a party's ranking contributions across all query units)
/// without materializing them contiguously.
class Crc32Accumulator {
 public:
  void Update(const uint8_t* data, size_t n);
  void Update(const std::vector<uint8_t>& bytes) {
    Update(bytes.data(), bytes.size());
  }
  void Update(std::span<const double> values) {
    Update(reinterpret_cast<const uint8_t*>(values.data()),
           values.size() * sizeof(double));
  }
  void Update(uint64_t v) {
    Update(reinterpret_cast<const uint8_t*>(&v), sizeof(v));
  }

  /// The CRC-32 of everything fed so far (empty input yields 0, like zlib).
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// \brief Growable byte buffer plus a little-endian binary writer.
///
/// All wire messages in vfps::net are serialized through this writer so that
/// the simulated network can meter exact byte counts.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    AppendRaw(s.data(), s.size());
  }

  void WriteBytes(const std::vector<uint8_t>& b) {
    WriteU32(static_cast<uint32_t>(b.size()));
    AppendRaw(b.data(), b.size());
  }

  void WriteDoubleVec(std::span<const double> v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(double));
  }
  // std::span gains an initializer_list constructor only in C++26; keep
  // brace-list call sites compiling under C++20.
  void WriteDoubleVec(std::initializer_list<double> v) {
    WriteDoubleVec(std::span<const double>(v.begin(), v.size()));
  }

  void WriteU64Vec(const std::vector<uint64_t>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(uint64_t));
  }

  void WriteU32Vec(const std::vector<uint32_t>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    AppendRaw(v.data(), v.size() * sizeof(uint32_t));
  }

  /// Write `payload` as an integrity-checked frame: [crc32 u32][len u32]
  /// [bytes]. The matching BinaryReader::ReadCrcFramed() detects in-flight
  /// corruption instead of silently consuming flipped bits.
  void WriteCrcFramed(const std::vector<uint8_t>& payload) {
    WriteU32(Crc32(payload));
    WriteBytes(payload);
  }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  void AppendRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  std::vector<uint8_t> bytes_;
};

/// \brief Bounds-checked reader over a byte span produced by BinaryWriter.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<uint8_t>> ReadBytes();
  Result<std::vector<double>> ReadDoubleVec();
  Result<std::vector<uint64_t>> ReadU64Vec();
  Result<std::vector<uint32_t>> ReadU32Vec();

  /// Read a frame written by BinaryWriter::WriteCrcFramed(). Returns Corrupt
  /// if the payload's CRC does not match the transmitted one, OutOfRange if
  /// the frame is truncated (e.g. a corrupted length field).
  Result<std::vector<uint8_t>> ReadCrcFramed();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Require(size_t n) {
    if (pos_ + n > size_) {
      return Status::OutOfRange("BinaryReader: truncated message");
    }
    return Status::OK();
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace vfps

#endif  // VFPS_COMMON_BUFFER_H_

#ifndef VFPS_COMMON_THREAD_POOL_H_
#define VFPS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vfps {

/// \brief Single-use countdown latch (a C++17-compatible std::latch).
///
/// Thread-safety: CountDown() and Wait() may be called concurrently from any
/// thread. The count must not be decremented below zero. A completed Wait()
/// synchronizes-with every CountDown() that contributed to it, so writes made
/// by the counting threads before CountDown() are visible to the waiter.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrement the count; wakes waiters when it reaches zero.
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0) --count_;
    if (count_ == 0) cv_.notify_all();
  }

  /// Block until the count reaches zero.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

/// \brief Fixed-size worker pool used to parallelize the hot loops of the
/// pipeline: per-query encrypted-KNN protocol runs, batched HE operations,
/// per-row similarity assembly, and per-coalition Shapley utilities.
///
/// Thread-safety contract:
///  - Submit(), Wait(), and ParallelFor() are safe to call concurrently from
///    any thread, including from inside a task running on a worker.
///  - ParallelFor() distributes iterations dynamically (workers and the
///    calling thread race on a shared atomic cursor), so uneven per-index
///    costs are load-balanced; the *calling thread always participates*,
///    which makes nested ParallelFor() calls deadlock-free even when every
///    worker is busy: the caller can drain its whole range by itself.
///  - ParallelFor() returns only after fn has completed for every index, and
///    that return synchronizes-with the end of every fn invocation (it is
///    safe to read results produced inside fn without further locking).
///  - Determinism is the *caller's* responsibility: fn(i) runs on an
///    unspecified thread in unspecified order. Callers that need bit-identical
///    results across thread counts must make fn(i) depend only on i (the
///    pattern used by FederatedKnnOracle's per-query tasks).
///  - fn must not throw; the error model is Status/Result captured per index.
///
/// On single-core hosts (or num_threads() == 1) ParallelFor degrades
/// gracefully to a serial loop on the calling thread.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; it runs on some worker eventually. Thread-safe.
  void Submit(std::function<void()> task);

  /// Block until every task submitted via Submit() has finished. Do not call
  /// from inside a task (it would wait for itself); ParallelFor does not have
  /// this restriction because it uses a private latch instead.
  void Wait();

  /// Run fn(i) for i in [begin, end) across the workers *and* the calling
  /// thread, and return when all iterations are done. See the class comment
  /// for the full contract.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace vfps

#endif  // VFPS_COMMON_THREAD_POOL_H_

#ifndef VFPS_COMMON_THREAD_POOL_H_
#define VFPS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vfps {

/// \brief Fixed-size worker pool used to parallelize embarrassingly parallel
/// loops (per-query distance computation, per-coalition Shapley utilities).
///
/// On single-core hosts ParallelFor degrades gracefully to a serial loop.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; it runs on some worker eventually.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  /// Run fn(i) for i in [begin, end), partitioned across workers, and wait.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace vfps

#endif  // VFPS_COMMON_THREAD_POOL_H_

#ifndef VFPS_COMMON_SIM_CLOCK_H_
#define VFPS_COMMON_SIM_CLOCK_H_

#include <array>
#include <cstddef>
#include <string>

namespace vfps {

/// \brief Cost categories tracked by the simulated clock.
///
/// The reproduction runs on a single host, so end-to-end "cluster seconds"
/// are accounted analytically: each expensive event (an encryption, a network
/// transfer, a training epoch) advances the simulated clock by a calibrated
/// amount. See net/cost_model.h for the calibration constants.
enum class CostCategory : int {
  kCompute = 0,    // plaintext distance computation, sorting, ...
  kEncrypt = 1,    // HE encryption
  kDecrypt = 2,    // HE decryption
  kHeEval = 3,     // homomorphic additions / aggregations
  kNetwork = 4,    // latency + bytes/bandwidth
  kTraining = 5,   // downstream model training
  kNumCategories = 6,
};

const char* CostCategoryName(CostCategory cat);

/// \brief Deterministic simulated clock with a per-category breakdown.
class SimClock {
 public:
  SimClock() { Reset(); }

  void Advance(CostCategory cat, double seconds) {
    totals_[static_cast<size_t>(cat)] += seconds;
  }

  double Total() const {
    double sum = 0.0;
    for (double t : totals_) sum += t;
    return sum;
  }

  double TotalFor(CostCategory cat) const {
    return totals_[static_cast<size_t>(cat)];
  }

  void Reset() { totals_.fill(0.0); }

  /// Merge another clock's accumulated time into this one.
  void Merge(const SimClock& other) {
    for (size_t i = 0; i < totals_.size(); ++i) totals_[i] += other.totals_[i];
  }

  /// Human-readable breakdown, e.g. "compute=1.2s encrypt=3.4s ...".
  std::string Breakdown() const;

 private:
  std::array<double, static_cast<size_t>(CostCategory::kNumCategories)> totals_;
};

}  // namespace vfps

#endif  // VFPS_COMMON_SIM_CLOCK_H_

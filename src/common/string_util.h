#ifndef VFPS_COMMON_STRING_UTIL_H_
#define VFPS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vfps {

/// Split `s` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view TrimString(std::string_view s);

/// Parse a double / int64 with full-string validation.
Result<double> ParseDouble(std::string_view s);
Result<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render seconds compactly, e.g. "372 s", "1.2 ms".
std::string FormatSeconds(double seconds);

/// Left-pad / right-pad a cell to `width` for monospace tables.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

}  // namespace vfps

#endif  // VFPS_COMMON_STRING_UTIL_H_

#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace vfps {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(TrimString(s));
  if (buf.empty()) return Status::InvalidArgument("ParseDouble: empty input");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("ParseDouble: out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("ParseDouble: trailing garbage in: " + buf);
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(TrimString(s));
  if (buf.empty()) return Status::InvalidArgument("ParseInt64: empty input");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("ParseInt64: out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("ParseInt64: trailing garbage in: " + buf);
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 600.0) return StrFormat("%.2f s", seconds);
  return StrFormat("%.0f s", seconds);
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace vfps

#ifndef VFPS_COMMON_RESULT_H_
#define VFPS_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/status.h"

namespace vfps {

/// \brief Value-or-error return type, modeled on arrow::Result.
///
/// A Result<T> holds either a T (when the producing operation succeeded) or a
/// non-OK Status. Use VFPS_ASSIGN_OR_RETURN (macros.h) to unwrap inside
/// Status-returning functions.
template <typename T>
class Result {
 public:
  /// Construct from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Construct from an error status. Aborts if `status` is OK, since an OK
  /// Result must carry a value.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      Status::Internal("Result constructed from OK status without a value")
          .Abort("Result");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  /// \brief Access the value. Aborts if holding an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Move the value out, leaving the Result in a moved-from state.
  T MoveValueUnsafe() { return std::move(std::get<T>(data_)); }

 private:
  void CheckOk() const {
    if (!ok()) std::get<Status>(data_).Abort("Result::ValueOrDie");
  }
  std::variant<T, Status> data_;
};

}  // namespace vfps

#endif  // VFPS_COMMON_RESULT_H_

#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

namespace vfps::ml {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  if (predictions.empty() || predictions.size() != labels.size()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    correct += (predictions[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

size_t ArgMax(const double* values, size_t count) {
  size_t best = 0;
  for (size_t i = 1; i < count; ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

void SoftmaxInPlace(double* values, size_t count) {
  if (count == 0) return;
  const double max = *std::max_element(values, values + count);
  double sum = 0.0;
  for (size_t i = 0; i < count; ++i) {
    values[i] = std::exp(values[i] - max);
    sum += values[i];
  }
  for (size_t i = 0; i < count; ++i) values[i] /= sum;
}

double CrossEntropy(const std::vector<double>& probs, size_t num_classes,
                    const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double p =
        std::max(probs[i * num_classes + static_cast<size_t>(labels[i])], 1e-12);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(labels.size());
}

}  // namespace vfps::ml

#include "ml/knn.h"

#include <algorithm>

#include "common/macros.h"

namespace vfps::ml {

int MajorityVote(const std::vector<int>& labels, int num_classes) {
  std::vector<size_t> counts(std::max(num_classes, 1), 0);
  for (int y : labels) {
    if (y >= 0 && y < num_classes) ++counts[y];
  }
  int best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return best;
}

Status KnnClassifier::Fit(const data::Dataset& train, const data::Dataset&) {
  VFPS_CHECK_ARG(train.num_samples() > 0, "KNN: empty training set");
  VFPS_CHECK_ARG(k_ >= 1, "KNN: k must be >= 1");
  train_ = train;
  return Status::OK();
}

std::vector<size_t> KnnClassifier::Neighbors(const double* row) const {
  const size_t n = train_.num_samples();
  const size_t f = train_.num_features();
  std::vector<std::pair<double, size_t>> dist(n);
  for (size_t i = 0; i < n; ++i) {
    const double* trow = train_.Row(i);
    double d = 0.0;
    for (size_t j = 0; j < f; ++j) {
      const double diff = row[j] - trow[j];
      d += diff * diff;
    }
    dist[i] = {d, i};
  }
  const size_t k = std::min(k_, n);
  std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  return out;
}

Result<std::vector<int>> KnnClassifier::Predict(const data::Dataset& test) const {
  if (train_.num_samples() == 0) return Status::Internal("KNN: Predict before Fit");
  if (test.num_features() != train_.num_features()) {
    return Status::InvalidArgument("KNN: feature width mismatch");
  }
  std::vector<int> preds(test.num_samples());
  std::vector<int> neighbor_labels;
  for (size_t i = 0; i < test.num_samples(); ++i) {
    const auto neighbors = Neighbors(test.Row(i));
    neighbor_labels.clear();
    for (size_t idx : neighbors) neighbor_labels.push_back(train_.Label(idx));
    preds[i] = MajorityVote(neighbor_labels, train_.num_classes());
  }
  return preds;
}

}  // namespace vfps::ml

#include "ml/knn.h"

#include <algorithm>

#include "common/macros.h"

namespace vfps::ml {

int MajorityVote(const std::vector<int>& labels, int num_classes) {
  std::vector<size_t> counts(std::max(num_classes, 1), 0);
  for (int y : labels) {
    if (y >= 0 && y < num_classes) ++counts[y];
  }
  int best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return best;
}

Status KnnClassifier::Fit(const data::Dataset& train, const data::Dataset&) {
  VFPS_CHECK_ARG(train.num_samples() > 0, "KNN: empty training set");
  VFPS_CHECK_ARG(k_ >= 1, "KNN: k must be >= 1");
  train_ = &train;
  block_ = FeatureBlock(train);
  return Status::OK();
}

std::vector<size_t> KnnClassifier::Neighbors(const double* row) const {
  const size_t n = train_->num_samples();
  const size_t f = train_->num_features();
  // Scratch distance vector reused across queries on the same thread
  // (Neighbors is called per query row; contents fully overwritten).
  thread_local std::vector<double> dist;
  dist.resize(n);
  BlockSquaredDistances(block_, row, SquaredNorm(row, f), 0, n, dist.data());
  const auto top = SmallestK(dist.data(), n, std::min(k_, n));
  return std::vector<size_t>(top.begin(), top.end());
}

Result<std::vector<int>> KnnClassifier::Predict(const data::Dataset& test) const {
  if (train_ == nullptr) return Status::Internal("KNN: Predict before Fit");
  if (test.num_features() != train_->num_features()) {
    return Status::InvalidArgument("KNN: feature width mismatch");
  }
  std::vector<int> preds(test.num_samples());
  std::vector<int> neighbor_labels;
  for (size_t i = 0; i < test.num_samples(); ++i) {
    const auto neighbors = Neighbors(test.Row(i));
    neighbor_labels.clear();
    for (size_t idx : neighbors) neighbor_labels.push_back(train_->Label(idx));
    preds[i] = MajorityVote(neighbor_labels, train_->num_classes());
  }
  return preds;
}

}  // namespace vfps::ml

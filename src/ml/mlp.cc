#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "ml/metrics.h"

namespace vfps::ml {

namespace {

Matrix GatherRows(const data::Dataset& dataset, const std::vector<size_t>& rows) {
  Matrix out(rows.size(), dataset.num_features());
  for (size_t i = 0; i < rows.size(); ++i) {
    const double* src = dataset.Row(rows[i]);
    std::copy(src, src + dataset.num_features(), out.RowPtr(i));
  }
  return out;
}

void ReluInPlace(Matrix* m) {
  for (double& v : m->data()) v = v > 0.0 ? v : 0.0;
}

// grad ⊙ 1[activation > 0], where `activation` is the post-ReLU value.
void ReluBackwardInPlace(Matrix* grad, const Matrix& activation) {
  for (size_t i = 0; i < grad->data().size(); ++i) {
    if (activation.data()[i] <= 0.0) grad->data()[i] = 0.0;
  }
}

void HeInit(Matrix* m, size_t fan_in, Rng* rng) {
  const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (double& v : m->data()) v = scale * rng->Normal();
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

}  // namespace

void MlpClassifier::Forward(const data::Dataset& dataset,
                            const std::vector<size_t>& rows, Matrix* h1,
                            Matrix* h2, Matrix* probs) const {
  const Matrix x = GatherRows(dataset, rows);
  MatMul(x, w1_, h1);
  AddRowVector(h1, b1_);
  ReluInPlace(h1);
  MatMul(*h1, w2_, h2);
  AddRowVector(h2, b2_);
  ReluInPlace(h2);
  MatMul(*h2, w3_, probs);
  AddRowVector(probs, b3_);
  for (size_t i = 0; i < probs->rows(); ++i) {
    SoftmaxInPlace(probs->RowPtr(i), probs->cols());
  }
}

double MlpClassifier::Loss(const data::Dataset& dataset) const {
  Matrix h1, h2, probs;
  Forward(dataset, AllRows(dataset.num_samples()), &h1, &h2, &probs);
  return CrossEntropy(probs.data(), static_cast<size_t>(num_classes_),
                      dataset.labels());
}

Status MlpClassifier::Fit(const data::Dataset& train, const data::Dataset& valid) {
  VFPS_CHECK_ARG(train.num_samples() > 0, "MLP: empty training set");
  VFPS_CHECK_ARG(train.num_classes() >= 2, "MLP: need >= 2 classes");
  num_features_ = train.num_features();
  num_classes_ = train.num_classes();
  const size_t f = num_features_;
  const size_t h = hidden_dim_ == 0 ? std::min<size_t>(f, 32) : hidden_dim_;
  hidden_dim_ = h;
  const size_t c = static_cast<size_t>(num_classes_);

  Rng rng(config_.seed);
  w1_ = Matrix(f, h);
  w2_ = Matrix(h, h);
  w3_ = Matrix(h, c);
  HeInit(&w1_, f, &rng);
  HeInit(&w2_, h, &rng);
  HeInit(&w3_, h, &rng);
  b1_.assign(h, 0.0);
  b2_.assign(h, 0.0);
  b3_.assign(c, 0.0);

  Adam opt_w1(config_.learning_rate), opt_w2(config_.learning_rate),
      opt_w3(config_.learning_rate), opt_b1(config_.learning_rate),
      opt_b2(config_.learning_rate), opt_b3(config_.learning_rate);
  EarlyStopper stopper(config_.patience);
  epochs_trained_ = 0;
  const bool has_valid = valid.num_samples() > 0;

  Matrix h1, h2, probs, d3, d2, d1, g_w1, g_w2, g_w3, tmp;
  for (size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const auto order = rng.Permutation(train.num_samples());
    const auto batches = MakeBatches(train.num_samples(), config_.batch_size, order);
    for (const auto& batch : batches) {
      Forward(train, batch, &h1, &h2, &probs);
      const double inv = 1.0 / static_cast<double>(batch.size());

      // dZ3 = (P - onehot) / B
      d3 = probs;
      for (size_t i = 0; i < batch.size(); ++i) {
        d3.At(i, static_cast<size_t>(train.Label(batch[i]))) -= 1.0;
      }
      for (double& v : d3.data()) v *= inv;

      MatTMul(h2, d3, &g_w3);
      std::vector<double> g_b3 = ColumnSums(d3);
      MatMulT(d3, w3_, &d2);
      ReluBackwardInPlace(&d2, h2);

      MatTMul(h1, d2, &g_w2);
      std::vector<double> g_b2 = ColumnSums(d2);
      MatMulT(d2, w2_, &d1);
      ReluBackwardInPlace(&d1, h1);

      const Matrix x = GatherRows(train, batch);
      MatTMul(x, d1, &g_w1);
      std::vector<double> g_b1 = ColumnSums(d1);

      if (config_.l2 > 0.0) {
        for (size_t i = 0; i < g_w1.data().size(); ++i)
          g_w1.data()[i] += config_.l2 * w1_.data()[i];
        for (size_t i = 0; i < g_w2.data().size(); ++i)
          g_w2.data()[i] += config_.l2 * w2_.data()[i];
        for (size_t i = 0; i < g_w3.data().size(); ++i)
          g_w3.data()[i] += config_.l2 * w3_.data()[i];
      }

      opt_w1.Step(&w1_.data(), g_w1.data());
      opt_w2.Step(&w2_.data(), g_w2.data());
      opt_w3.Step(&w3_.data(), g_w3.data());
      opt_b1.Step(&b1_, g_b1);
      opt_b2.Step(&b2_, g_b2);
      opt_b3.Step(&b3_, g_b3);
    }
    ++epochs_trained_;
    const double monitored = has_valid ? Loss(valid) : Loss(train);
    if (stopper.ShouldStop(monitored)) break;
  }
  return Status::OK();
}

Result<std::vector<int>> MlpClassifier::Predict(const data::Dataset& test) const {
  if (w1_.rows() == 0) return Status::Internal("MLP: Predict before Fit");
  if (test.num_features() != num_features_) {
    return Status::InvalidArgument("MLP: feature width mismatch");
  }
  Matrix h1, h2, probs;
  Forward(test, AllRows(test.num_samples()), &h1, &h2, &probs);
  std::vector<int> preds(test.num_samples());
  for (size_t i = 0; i < test.num_samples(); ++i) {
    preds[i] = static_cast<int>(ArgMax(probs.RowPtr(i), probs.cols()));
  }
  return preds;
}

}  // namespace vfps::ml

// AVX2 backends for the ml kernels (see kernels_simd.h for the bit-identity
// contract). This TU is built with -ffp-contract=off (ml/CMakeLists.txt) so
// the compiler cannot fuse the explicit multiply/add pairs below into FMAs
// even under -march=native; the scalar reference TU is pinned the same way.

#include "ml/kernels_simd.h"

#ifdef VFPS_SIMD_X86

#include <immintrin.h>

namespace vfps::ml::detail {

#define VFPS_ML_TARGET_AVX2 __attribute__((target("avx2")))

VFPS_ML_TARGET_AVX2 double SquaredNormAvx2(const double* v, size_t n) {
  // Vector lane l is exactly scalar accumulator a_l: same products, same
  // addition order per lane.
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d x = _mm256_loadu_pd(v + j);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x, x));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double out = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; j < n; ++j) out += v[j] * v[j];
  return out;
}

VFPS_ML_TARGET_AVX2 double DotProductAvx2(const double* a, const double* b,
                                          size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d x = _mm256_loadu_pd(a + j);
    const __m256d y = _mm256_loadu_pd(b + j);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x, y));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double out = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; j < n; ++j) out += a[j] * b[j];
  return out;
}

VFPS_ML_TARGET_AVX2 void BlockDotsAvx2(const double* q, const double* rows,
                                       size_t stride, size_t nrows, size_t n,
                                       double* out) {
  // Four accumulator chains, one per row: each chain is exactly the
  // single-row kernel above, so out[r] is bit-identical to
  // DotProductScalar(q, rows + r*stride). The interleave only adds
  // instruction-level parallelism (4 independent vaddpd chains instead of 1)
  // and shares each query load across 4 rows.
  size_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    const double* r0 = rows + r * stride;
    const double* r1 = r0 + stride;
    const double* r2 = r1 + stride;
    const double* r3 = r2 + stride;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d x = _mm256_loadu_pd(q + j);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(x, _mm256_loadu_pd(r0 + j)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(x, _mm256_loadu_pd(r1 + j)));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(x, _mm256_loadu_pd(r2 + j)));
      acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(x, _mm256_loadu_pd(r3 + j)));
    }
    const __m256d accs[4] = {acc0, acc1, acc2, acc3};
    const double* const ptrs[4] = {r0, r1, r2, r3};
    for (int g = 0; g < 4; ++g) {
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, accs[g]);
      double o = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
      for (size_t t = j; t < n; ++t) o += q[t] * ptrs[g][t];
      out[r + g] = o;
    }
  }
  for (; r < nrows; ++r) {
    out[r] = DotProductAvx2(q, rows + r * stride, n);
  }
}

#undef VFPS_ML_TARGET_AVX2

}  // namespace vfps::ml::detail

#endif  // VFPS_SIMD_X86

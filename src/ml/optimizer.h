#ifndef VFPS_ML_OPTIMIZER_H_
#define VFPS_ML_OPTIMIZER_H_

#include <cstddef>
#include <vector>

namespace vfps::ml {

/// \brief Adam optimizer over a flat parameter vector (Kingma & Ba, the
/// paper's optimizer for LR and MLP).
class Adam {
 public:
  explicit Adam(double learning_rate = 0.01, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

  /// params -= update(grads); both spans must have the same, stable size.
  void Step(std::vector<double>* params, const std::vector<double>& grads);

  void Reset() {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

  double learning_rate() const { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::vector<double> m_, v_;
  long t_ = 0;
};

/// \brief Plain SGD (kept as the baseline optimizer for ablations).
class Sgd {
 public:
  explicit Sgd(double learning_rate = 0.01) : lr_(learning_rate) {}
  void Step(std::vector<double>* params, const std::vector<double>& grads);

 private:
  double lr_;
};

}  // namespace vfps::ml

#endif  // VFPS_ML_OPTIMIZER_H_

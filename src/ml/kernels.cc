#include "ml/kernels.h"

#include <algorithm>

#include "ml/kernels_simd.h"
#include "simd/simd.h"

namespace vfps::ml {

namespace {
bool IsIdentity(const std::vector<size_t>& columns, size_t num_features) {
  if (columns.size() != num_features) return false;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] != i) return false;
  }
  return true;
}
}  // namespace

FeatureBlock::FeatureBlock(const data::Dataset& data,
                           const std::vector<size_t>& columns)
    : rows_(data.num_samples()), cols_(columns.size()), columns_(columns) {
  if (IsIdentity(columns, data.num_features())) {
    data_ = rows_ > 0 ? data.Row(0) : nullptr;
  } else {
    packed_.resize(rows_ * cols_);
    for (size_t i = 0; i < rows_; ++i) {
      const double* src = data.Row(i);
      double* dst = packed_.data() + i * cols_;
      for (size_t j = 0; j < cols_; ++j) dst[j] = src[columns_[j]];
    }
    data_ = packed_.data();
  }
  norms_.resize(rows_);
  for (size_t i = 0; i < rows_; ++i) norms_[i] = SquaredNorm(row(i), cols_);
}

FeatureBlock::FeatureBlock(const data::Dataset& data,
                           const std::vector<size_t>& columns,
                           size_t row_begin, size_t row_end)
    : rows_(row_end - row_begin), cols_(columns.size()), columns_(columns) {
  if (IsIdentity(columns, data.num_features())) {
    // Contiguous row range of a row-major matrix: still an alias.
    data_ = rows_ > 0 ? data.Row(row_begin) : nullptr;
  } else {
    packed_.resize(rows_ * cols_);
    for (size_t i = 0; i < rows_; ++i) {
      const double* src = data.Row(row_begin + i);
      double* dst = packed_.data() + i * cols_;
      for (size_t j = 0; j < cols_; ++j) dst[j] = src[columns_[j]];
    }
    data_ = packed_.data();
  }
  norms_.resize(rows_);
  for (size_t i = 0; i < rows_; ++i) norms_[i] = SquaredNorm(row(i), cols_);
}

FeatureBlock::FeatureBlock(const data::Dataset& data)
    : rows_(data.num_samples()), cols_(data.num_features()) {
  columns_.resize(cols_);
  for (size_t j = 0; j < cols_; ++j) columns_[j] = j;
  data_ = rows_ > 0 ? data.Row(0) : nullptr;
  norms_.resize(rows_);
  for (size_t i = 0; i < rows_; ++i) norms_[i] = SquaredNorm(row(i), cols_);
}

void FeatureBlock::GatherInto(const double* joint_row, double* out) const {
  for (size_t j = 0; j < cols_; ++j) out[j] = joint_row[columns_[j]];
}

double SquaredNormScalar(const double* v, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    a0 += v[j] * v[j];
    a1 += v[j + 1] * v[j + 1];
    a2 += v[j + 2] * v[j + 2];
    a3 += v[j + 3] * v[j + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; j < n; ++j) acc += v[j] * v[j];
  return acc;
}

double DotProductScalar(const double* a, const double* b, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    a0 += a[j] * b[j];
    a1 += a[j + 1] * b[j + 1];
    a2 += a[j + 2] * b[j + 2];
    a3 += a[j + 3] * b[j + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

double SquaredNorm(const double* v, size_t n) {
#ifdef VFPS_SIMD_X86
  // The 4-wide path serves AVX-512 too: an 8-wide accumulator would change
  // the association and break scalar-vs-SIMD bit-identity (kernels_simd.h).
  if (simd::ActiveIsa() != simd::Isa::kScalar) {
    return detail::SquaredNormAvx2(v, n);
  }
#endif
  return SquaredNormScalar(v, n);
}

double DotProduct(const double* a, const double* b, size_t n) {
#ifdef VFPS_SIMD_X86
  if (simd::ActiveIsa() != simd::Isa::kScalar) {
    return detail::DotProductAvx2(a, b, n);
  }
#endif
  return DotProductScalar(a, b, n);
}

namespace {

// Shared body for the dispatched and scalar-reference distance kernels; the
// per-row dot is the only part that differs.
template <typename DotFn>
void BlockSquaredDistancesImpl(const FeatureBlock& block, const double* query,
                               double q_norm, size_t begin, size_t end,
                               double* out, DotFn&& dot_fn) {
  const size_t f = block.cols();
  // Row tiles keep the written span and the norm cache line-resident; the
  // per-row dot uses the fixed-association kernel above, so every row's value
  // is independent of the tile boundaries and of [begin, end) splits.
  constexpr size_t kTile = 64;
  for (size_t t = begin; t < end; t += kTile) {
    const size_t stop = std::min(end, t + kTile);
    for (size_t i = t; i < stop; ++i) {
      const double dot = dot_fn(query, block.row(i), f);
      out[i - begin] = q_norm + block.row_norm(i) - 2.0 * dot;
    }
  }
}

}  // namespace

void BlockSquaredDistances(const FeatureBlock& block, const double* query,
                           double q_norm, size_t begin, size_t end,
                           double* out) {
#ifdef VFPS_SIMD_X86
  if (simd::ActiveIsa() != simd::Isa::kScalar) {
    // One batched-dot call covers the whole range (rows in groups of 4 with
    // independent accumulator chains and shared query loads); each row's dot
    // — and therefore each output distance — stays bit-identical to the
    // scalar path, so the batching is invisible to callers and to
    // [begin, end) splits. `out` doubles as the dots scratch.
    const size_t f = block.cols();
    detail::BlockDotsAvx2(query, block.row(begin), f, end - begin, f, out);
    for (size_t i = begin; i < end; ++i) {
      out[i - begin] = q_norm + block.row_norm(i) - 2.0 * out[i - begin];
    }
    return;
  }
#endif
  BlockSquaredDistancesImpl(block, query, q_norm, begin, end, out,
                            DotProductScalar);
}

void BlockSquaredDistancesScalar(const FeatureBlock& block,
                                 const double* query, double q_norm,
                                 size_t begin, size_t end, double* out) {
  BlockSquaredDistancesImpl(block, query, q_norm, begin, end, out,
                            DotProductScalar);
}

std::vector<uint64_t> SmallestK(const double* values, size_t n, size_t k) {
  k = std::min(k, static_cast<size_t>(n));
  std::vector<uint64_t> heap;
  heap.reserve(k);
  // "less" on (value, index); with std::*_heap this keeps the WORST of the
  // current k at the front, which is the only element a new candidate must
  // beat. Strict total order (indices are unique), so the result is exactly
  // what partial_sort over (value, index) pairs produces.
  const auto better = [values](uint64_t a, uint64_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  };
  if (k == 0) return heap;
  for (uint64_t i = 0; i < k; ++i) {
    heap.push_back(i);
    std::push_heap(heap.begin(), heap.end(), better);
  }
  // Hoist the rejection threshold out of the scan: a candidate i > k can only
  // displace the front, and since every heap index is < i, a value tie loses
  // to the front under (value, index) order — so the test collapses to a
  // single compare against a register-resident threshold.
  double worst_val = values[heap.front()];
  for (uint64_t i = k; i < n; ++i) {
    if (values[i] < worst_val) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = i;
      std::push_heap(heap.begin(), heap.end(), better);
      worst_val = values[heap.front()];
    }
  }
  std::sort_heap(heap.begin(), heap.end(), better);
  return heap;
}

}  // namespace vfps::ml

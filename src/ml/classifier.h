#ifndef VFPS_ML_CLASSIFIER_H_
#define VFPS_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "ml/train_config.h"

namespace vfps::ml {

/// \brief Downstream model kinds evaluated in the paper (Table IV/V).
enum class ModelKind { kKnn, kLogReg, kMlp };

const char* ModelKindName(ModelKind kind);
Result<ModelKind> ParseModelKind(const std::string& name);

/// \brief Common interface for the downstream classifiers.
///
/// Fit trains on `train` with early stopping against `valid` (ignored by the
/// non-parametric KNN). Predict returns one class id per test row.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual std::string name() const = 0;
  virtual Status Fit(const data::Dataset& train, const data::Dataset& valid) = 0;
  virtual Result<std::vector<int>> Predict(const data::Dataset& test) const = 0;

  /// Number of epochs the last Fit actually ran (0 for KNN); feeds the
  /// simulated training-time accounting.
  virtual size_t epochs_trained() const { return 0; }

  /// Convenience: Predict then compute accuracy against test labels.
  Result<double> Score(const data::Dataset& test) const;
};

/// \brief Model-specific knobs on top of the shared TrainConfig.
struct ClassifierOptions {
  TrainConfig train;
  size_t knn_k = 10;        // neighbors for the KNN classifier
  size_t mlp_hidden = 0;    // 0 = min(input_dim, 32)
};

/// Factory for the three downstream models.
Result<std::unique_ptr<Classifier>> CreateClassifier(ModelKind kind,
                                                     const ClassifierOptions& options);

}  // namespace vfps::ml

#endif  // VFPS_ML_CLASSIFIER_H_

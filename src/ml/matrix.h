#ifndef VFPS_ML_MATRIX_H_
#define VFPS_ML_MATRIX_H_

#include <cstddef>
#include <vector>

namespace vfps::ml {

/// \brief Minimal dense row-major matrix for the from-scratch LR/MLP models.
/// Only the operations the training loops need; no expression templates, no
/// BLAS — clarity over peak FLOPs at these model sizes.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b  (a: m x k, b: k x n, out: m x n; out is overwritten).
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b  (a: k x m, b: k x n, out: m x n).
void MatTMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T  (a: m x k, b: n x k, out: m x n).
void MatMulT(const Matrix& a, const Matrix& b, Matrix* out);

/// Add row vector `bias` (size = cols) to every row of m.
void AddRowVector(Matrix* m, const std::vector<double>& bias);

/// Column sums of m (size = cols).
std::vector<double> ColumnSums(const Matrix& m);

}  // namespace vfps::ml

#endif  // VFPS_ML_MATRIX_H_

#include "ml/classifier.h"

#include "common/macros.h"
#include "ml/knn.h"
#include "ml/logreg.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace vfps::ml {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kKnn:
      return "knn";
    case ModelKind::kLogReg:
      return "lr";
    case ModelKind::kMlp:
      return "mlp";
  }
  return "unknown";
}

Result<ModelKind> ParseModelKind(const std::string& name) {
  if (name == "knn") return ModelKind::kKnn;
  if (name == "lr" || name == "logreg") return ModelKind::kLogReg;
  if (name == "mlp") return ModelKind::kMlp;
  return Status::InvalidArgument("unknown model kind: " + name);
}

Result<double> Classifier::Score(const data::Dataset& test) const {
  VFPS_ASSIGN_OR_RETURN(auto preds, Predict(test));
  return Accuracy(preds, test.labels());
}

Result<std::unique_ptr<Classifier>> CreateClassifier(
    ModelKind kind, const ClassifierOptions& options) {
  switch (kind) {
    case ModelKind::kKnn:
      VFPS_CHECK_ARG(options.knn_k >= 1, "classifier: knn_k must be >= 1");
      return std::unique_ptr<Classifier>(new KnnClassifier(options.knn_k));
    case ModelKind::kLogReg:
      return std::unique_ptr<Classifier>(new LogisticRegression(options.train));
    case ModelKind::kMlp:
      return std::unique_ptr<Classifier>(
          new MlpClassifier(options.train, options.mlp_hidden));
  }
  return Status::InvalidArgument("classifier: unknown model kind");
}

}  // namespace vfps::ml

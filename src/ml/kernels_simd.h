#ifndef VFPS_ML_KERNELS_SIMD_H_
#define VFPS_ML_KERNELS_SIMD_H_

/// \file
/// \brief Internal vector backends for the ml distance/dot kernels.
///
/// The doubles contract is stricter than "close": these backends reproduce
/// the scalar 4-accumulator kernels BIT-IDENTICALLY. Lane l of the 4-wide
/// vector accumulator holds exactly the scalar accumulator a_l (indices
/// j ≡ l mod 4), multiplies and adds stay separate instructions (no FMA —
/// contraction would change rounding), and the horizontal combine replays the
/// scalar (l0+l1)+(l2+l3) order. For this reason there is no 8-wide AVX-512
/// double path: it would change the association, and the ~memory-bound
/// kernels gain little from the extra width. AVX-512 builds reuse the 4-wide
/// path. Compiled in every build (per-function target attributes); callers
/// must only invoke them when simd::ActiveIsa() >= kAvx2.

#include <cstddef>

#include "simd/simd.h"

#ifdef VFPS_SIMD_X86

namespace vfps::ml::detail {

/// 4-wide SquaredNorm, bit-identical to SquaredNormScalar.
double SquaredNormAvx2(const double* v, size_t n);

/// 4-wide DotProduct, bit-identical to DotProductScalar.
double DotProductAvx2(const double* a, const double* b, size_t n);

/// Dot products of a shared query against `nrows` contiguous rows
/// (`rows + r * stride`): out[r] == DotProductScalar(q, rows + r*stride, n)
/// bit-for-bit. A single bit-identical dot is latency-bound (one 4-wide
/// accumulator chain, and the compiler auto-vectorizes the scalar reference
/// into the same shape), so the block-distance speedup comes from here
/// instead: rows are processed four at a time with four independent
/// accumulator chains that hide the FP-add latency and share each query
/// load, without touching any row's summation order. One call covers the
/// whole block range so the per-group call cost is paid once.
void BlockDotsAvx2(const double* q, const double* rows, size_t stride,
                   size_t nrows, size_t n, double* out);

}  // namespace vfps::ml::detail

#endif  // VFPS_SIMD_X86

#endif  // VFPS_ML_KERNELS_SIMD_H_

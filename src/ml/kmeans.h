#ifndef VFPS_ML_KMEANS_H_
#define VFPS_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/kernels.h"

namespace vfps::ml {

/// \brief Result of clustering a FeatureBlock's rows (Lloyd's algorithm).
struct KMeansResult {
  size_t clusters = 0;
  size_t cols = 0;
  /// clusters x cols centroids, row-major.
  std::vector<double> centroids;
  /// Per-row nearest-centroid assignment (ties to the lower cluster id).
  std::vector<uint32_t> assignment;
  /// Rows of each cluster, ascending — the nomination lists the TreeCSS-style
  /// pre-filter broadcasts.
  std::vector<std::vector<uint32_t>> members;

  const double* centroid(size_t c) const { return centroids.data() + c * cols; }
};

/// \brief Deterministic seeded k-means over the block's rows: centroids start
/// from a seeded sample of distinct rows, then `max_iters` Lloyd iterations
/// (or until assignments stop changing). Distances go through the
/// SquaredNorm / BlockSquaredDistances kernels, so assignments are
/// bit-identical between the SIMD and forced-scalar builds — the clustering
/// pre-filter cannot break the selector's scalar-vs-SIMD identity check.
/// Empty clusters keep their previous centroid. `clusters` is clamped to the
/// row count.
Result<KMeansResult> KMeansCluster(const FeatureBlock& block, size_t clusters,
                                   uint64_t seed, size_t max_iters = 8);

}  // namespace vfps::ml

#endif  // VFPS_ML_KMEANS_H_

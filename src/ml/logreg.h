#ifndef VFPS_ML_LOGREG_H_
#define VFPS_ML_LOGREG_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/optimizer.h"

namespace vfps::ml {

/// \brief Multinomial logistic regression trained with Adam, mini-batches,
/// and validation early stopping (the paper's "LR" downstream task).
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(const TrainConfig& config) : config_(config) {}

  std::string name() const override { return "lr"; }
  Status Fit(const data::Dataset& train, const data::Dataset& valid) override;
  Result<std::vector<int>> Predict(const data::Dataset& test) const override;
  size_t epochs_trained() const override { return epochs_trained_; }

  /// Mean cross-entropy on a dataset with the current parameters.
  double Loss(const data::Dataset& dataset) const;

 private:
  // Row-major probabilities (N x C) for a dataset.
  std::vector<double> Probabilities(const data::Dataset& dataset) const;

  TrainConfig config_;
  size_t num_features_ = 0;
  int num_classes_ = 0;
  // params = [W (F*C) | b (C)]
  std::vector<double> params_;
  size_t epochs_trained_ = 0;
};

}  // namespace vfps::ml

#endif  // VFPS_ML_LOGREG_H_

#ifndef VFPS_ML_METRICS_H_
#define VFPS_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace vfps::ml {

/// Fraction of matching entries; 0 for empty input.
double Accuracy(const std::vector<int>& predictions, const std::vector<int>& labels);

/// Index of the maximum entry (first on ties).
size_t ArgMax(const double* values, size_t count);

/// In-place numerically stable softmax over `count` values.
void SoftmaxInPlace(double* values, size_t count);

/// Mean cross-entropy of row-major probability rows vs integer labels.
/// Probabilities are clamped away from 0 for stability.
double CrossEntropy(const std::vector<double>& probs, size_t num_classes,
                    const std::vector<int>& labels);

}  // namespace vfps::ml

#endif  // VFPS_ML_METRICS_H_

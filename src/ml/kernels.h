#ifndef VFPS_ML_KERNELS_H_
#define VFPS_ML_KERNELS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace vfps::ml {

/// \brief A column subset of a dataset laid out for the distance kernels:
/// rows contiguous (packed copy for a proper subset, zero-copy alias of the
/// dataset's row-major storage when the subset is all columns in order), with
/// per-row squared norms cached at construction.
///
/// Lifetime: a block NEVER owns the dataset. In the aliasing case it points
/// straight into the dataset's feature storage, and in both cases it is only
/// meaningful for that dataset's current contents — the source Dataset must
/// outlive the block.
class FeatureBlock {
 public:
  FeatureBlock() = default;

  /// Block over `columns` of `data` (packed unless `columns` is exactly
  /// 0..num_features-1, which aliases).
  FeatureBlock(const data::Dataset& data, const std::vector<size_t>& columns);

  /// Block over `columns` of the row shard [row_begin, row_end) — what one
  /// simulated storage node of a party holds. row(i) and row_norm(i) index
  /// shard-LOCAL rows (0-based); callers translate to global ids by adding
  /// row_begin. Row values and norms are bit-identical to the same rows of a
  /// full-range block (the kernels have no cross-row state), so per-shard
  /// distance work merges exactly against an unsharded run.
  FeatureBlock(const data::Dataset& data, const std::vector<size_t>& columns,
               size_t row_begin, size_t row_end);

  /// Block over all columns (always aliases the dataset storage).
  explicit FeatureBlock(const data::Dataset& data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool aliases_dataset() const { return packed_.empty() && data_ != nullptr; }

  const double* row(size_t i) const { return data_ + i * cols_; }

  /// Cached ||row_i||^2 over the block's columns.
  double row_norm(size_t i) const { return norms_[i]; }

  /// Extract this block's columns of a joint-feature-space row into
  /// out[0..cols()).
  void GatherInto(const double* joint_row, double* out) const;

 private:
  const double* data_ = nullptr;  // rows_ x cols_, contiguous
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> columns_;
  std::vector<double> packed_;  // backing store when not aliasing
  std::vector<double> norms_;
};

/// \brief Sum of v[i]^2 with a fixed 4-accumulator association: lane l sums
/// indices j ≡ l (mod 4), lanes combine as (l0+l1)+(l2+l3), then the tail
/// (n mod 4 elements) folds in sequentially. Deterministic, and exact
/// whenever the products are exactly representable (e.g. integer grids).
///
/// Dispatched to the widest backend simd::ActiveIsa() allows. Every backend
/// keeps the exact association above with separate multiply and add (no FMA),
/// so SIMD and scalar results are BIT-IDENTICAL for every input, including
/// denormals and ±DBL_MAX (see docs/KERNELS.md). `v` needs no alignment
/// (unaligned loads); n may be any value including 0 and < 4.
double SquaredNorm(const double* v, size_t n);
/// Always-built portable reference for SquaredNorm (differential-test
/// oracle); bit-identical to the dispatched version by construction.
double SquaredNormScalar(const double* v, size_t n);

/// \brief Dot product with the same fixed 4-accumulator association and
/// bit-identity contract as SquaredNorm. `a` and `b` need no alignment and
/// may have arbitrary (even mutually unaligned) row strides in the caller.
double DotProduct(const double* a, const double* b, size_t n);
/// Always-built portable reference for DotProduct.
double DotProductScalar(const double* a, const double* b, size_t n);

/// \brief Norm-decomposed squared Euclidean distances from a query slice to
/// block rows [begin, end): out[i - begin] = q_norm + ||row_i||^2 - 2 q.row_i
/// with the row norms served from the block's cache. `query` must hold the
/// block's columns (see FeatureBlock::GatherInto) and `q_norm` its squared
/// norm. One multiply-add per element versus the subtract/multiply/add of the
/// naive loop, on contiguous rows.
///
/// Numerics contract (see docs/KERNELS.md): the dispatched SIMD and scalar
/// paths are bit-identical to each other (the per-row dot is the
/// fixed-association DotProduct above). Against OTHER formulations — e.g. the
/// naive sum of squared differences — results agree exactly on integer grids
/// and to 1e-9 relative tolerance for well-scaled doubles; callers comparing
/// across pipelines must use a tolerance, not bitwise equality.
void BlockSquaredDistances(const FeatureBlock& block, const double* query,
                           double q_norm, size_t begin, size_t end,
                           double* out);
/// Always-built portable reference for BlockSquaredDistances.
void BlockSquaredDistancesScalar(const FeatureBlock& block,
                                 const double* query, double q_norm,
                                 size_t begin, size_t end, double* out);

/// \brief Indices of the k smallest values, ascending, ties broken by lower
/// index — exactly the order partial_sort over (value, index) pairs yields,
/// in O(n log k) with a bounded max-heap instead of O(n log n) movement.
///
/// Preconditions: `values` needs no alignment; NaNs are NOT supported (the
/// comparator assumes a total order); +inf entries (excluded rows) lose every
/// comparison and are returned only when fewer than k finite values exist.
/// k ≥ n is clamped to n (all indices, sorted). Scalar on every ISA — the
/// heap is branch-serial, so it is the same code under VFPS_FORCE_SCALAR and
/// never enters the differential contract.
std::vector<uint64_t> SmallestK(const double* values, size_t n, size_t k);

inline std::vector<uint64_t> SmallestK(const std::vector<double>& values,
                                       size_t k) {
  return SmallestK(values.data(), values.size(), k);
}

}  // namespace vfps::ml

#endif  // VFPS_ML_KERNELS_H_

#ifndef VFPS_ML_KERNELS_H_
#define VFPS_ML_KERNELS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace vfps::ml {

/// \brief A column subset of a dataset laid out for the distance kernels:
/// rows contiguous (packed copy for a proper subset, zero-copy alias of the
/// dataset's row-major storage when the subset is all columns in order), with
/// per-row squared norms cached at construction.
///
/// Lifetime: a block NEVER owns the dataset. In the aliasing case it points
/// straight into the dataset's feature storage, and in both cases it is only
/// meaningful for that dataset's current contents — the source Dataset must
/// outlive the block.
class FeatureBlock {
 public:
  FeatureBlock() = default;

  /// Block over `columns` of `data` (packed unless `columns` is exactly
  /// 0..num_features-1, which aliases).
  FeatureBlock(const data::Dataset& data, const std::vector<size_t>& columns);

  /// Block over all columns (always aliases the dataset storage).
  explicit FeatureBlock(const data::Dataset& data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool aliases_dataset() const { return packed_.empty() && data_ != nullptr; }

  const double* row(size_t i) const { return data_ + i * cols_; }

  /// Cached ||row_i||^2 over the block's columns.
  double row_norm(size_t i) const { return norms_[i]; }

  /// Extract this block's columns of a joint-feature-space row into
  /// out[0..cols()).
  void GatherInto(const double* joint_row, double* out) const;

 private:
  const double* data_ = nullptr;  // rows_ x cols_, contiguous
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> columns_;
  std::vector<double> packed_;  // backing store when not aliasing
  std::vector<double> norms_;
};

/// Sum of v[i]^2. Fixed 4-accumulator association (deterministic, and exact
/// whenever the products are exactly representable, e.g. integer grids).
double SquaredNorm(const double* v, size_t n);

/// Dot product with the same fixed 4-accumulator association.
double DotProduct(const double* a, const double* b, size_t n);

/// \brief Norm-decomposed squared Euclidean distances from a query slice to
/// block rows [begin, end): out[i - begin] = q_norm + ||row_i||^2 - 2 q.row_i
/// with the row norms served from the block's cache. `query` must hold the
/// block's columns (see FeatureBlock::GatherInto) and `q_norm` its squared
/// norm. One multiply-add per element versus the subtract/multiply/add of the
/// naive loop, on contiguous rows.
///
/// Numerics: identical to the naive sum-of-squared-differences for inputs
/// whose products are exactly representable (integer grids); within a few
/// ulps of ||q||^2 + ||x||^2 otherwise — callers comparing against other
/// float pipelines should compare with a tolerance, not bitwise.
void BlockSquaredDistances(const FeatureBlock& block, const double* query,
                           double q_norm, size_t begin, size_t end,
                           double* out);

/// \brief Indices of the k smallest values, ascending, ties broken by lower
/// index — exactly the order partial_sort over (value, index) pairs yields,
/// in O(n log k) with a bounded max-heap instead of O(n log n) movement.
/// +inf entries (excluded rows) lose every comparison.
std::vector<uint64_t> SmallestK(const double* values, size_t n, size_t k);

inline std::vector<uint64_t> SmallestK(const std::vector<double>& values,
                                       size_t k) {
  return SmallestK(values.data(), values.size(), k);
}

}  // namespace vfps::ml

#endif  // VFPS_ML_KERNELS_H_

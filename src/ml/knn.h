#ifndef VFPS_ML_KNN_H_
#define VFPS_ML_KNN_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/kernels.h"

namespace vfps::ml {

/// \brief Brute-force k-nearest-neighbors classifier (squared Euclidean
/// distance, majority vote, smallest class id on ties).
///
/// Serves two roles in the reproduction: a downstream task (Table IV "KNN"
/// rows) and the reference implementation against which the federated,
/// encrypted KNN oracle (vfl::FederatedKnn) is tested for exactness.
class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(size_t k) : k_(k) {}

  std::string name() const override { return "knn"; }

  /// Holds a non-owning view of `train` (plus cached row norms): the training
  /// dataset must outlive every Predict/Neighbors call. No feature data is
  /// copied.
  Status Fit(const data::Dataset& train, const data::Dataset& valid) override;
  Result<std::vector<int>> Predict(const data::Dataset& test) const override;

  size_t k() const { return k_; }

  /// Indices of the k nearest training rows to `row` (ascending distance,
  /// ties broken by index). Exposed for the federated-KNN equivalence tests.
  std::vector<size_t> Neighbors(const double* row) const;

 private:
  size_t k_;
  const data::Dataset* train_ = nullptr;  // non-owning; see Fit
  FeatureBlock block_;  // aliases train_'s storage, caches row norms
};

/// Majority vote over neighbor labels; smallest class id wins ties.
int MajorityVote(const std::vector<int>& labels, int num_classes);

}  // namespace vfps::ml

#endif  // VFPS_ML_KNN_H_

#include "ml/optimizer.h"

#include <cmath>

namespace vfps::ml {

void Adam::Step(std::vector<double>* params, const std::vector<double>& grads) {
  if (m_.size() != params->size()) {
    m_.assign(params->size(), 0.0);
    v_.assign(params->size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params->size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    (*params)[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

void Sgd::Step(std::vector<double>* params, const std::vector<double>& grads) {
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i] -= lr_ * grads[i];
  }
}

}  // namespace vfps::ml

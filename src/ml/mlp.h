#ifndef VFPS_ML_MLP_H_
#define VFPS_ML_MLP_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/matrix.h"
#include "ml/optimizer.h"

namespace vfps::ml {

/// \brief Three-layer MLP (input -> H -> H -> C, ReLU) trained with Adam,
/// matching the paper's split-learning architecture: a 1-layer bottom model
/// per participant plus a 2-layer top model at the server. Centralizing the
/// math is exact (the split model computes the same function); the federated
/// communication cost is accounted separately by vfl::SplitTrainer.
///
/// The paper sets the hidden width to the input width; we cap it at 32 by
/// default so the full 10-dataset grid trains in CI time. The cap is a knob
/// (ClassifierOptions::mlp_hidden).
class MlpClassifier final : public Classifier {
 public:
  MlpClassifier(const TrainConfig& config, size_t hidden_dim)
      : config_(config), hidden_dim_(hidden_dim) {}

  std::string name() const override { return "mlp"; }
  Status Fit(const data::Dataset& train, const data::Dataset& valid) override;
  Result<std::vector<int>> Predict(const data::Dataset& test) const override;
  size_t epochs_trained() const override { return epochs_trained_; }

  /// Mean cross-entropy on a dataset with the current parameters.
  double Loss(const data::Dataset& dataset) const;

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  // Forward pass over a batch of rows; returns softmax probabilities (B x C)
  // and optionally the hidden activations needed for backprop.
  void Forward(const data::Dataset& dataset, const std::vector<size_t>& rows,
               Matrix* h1, Matrix* h2, Matrix* probs) const;

  TrainConfig config_;
  size_t hidden_dim_;
  size_t num_features_ = 0;
  int num_classes_ = 0;
  size_t epochs_trained_ = 0;

  // Parameters as matrices; flattened into one vector only for Adam.
  Matrix w1_, w2_, w3_;
  std::vector<double> b1_, b2_, b3_;
};

}  // namespace vfps::ml

#endif  // VFPS_ML_MLP_H_

#include "ml/kmeans.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/random.h"

namespace vfps::ml {

Result<KMeansResult> KMeansCluster(const FeatureBlock& block, size_t clusters,
                                   uint64_t seed, size_t max_iters) {
  const size_t n = block.rows();
  const size_t f = block.cols();
  VFPS_CHECK_ARG(clusters >= 1, "kmeans: need >= 1 cluster");
  VFPS_CHECK_ARG(n >= 1, "kmeans: need >= 1 row");
  clusters = std::min(clusters, n);

  KMeansResult result;
  result.clusters = clusters;
  result.cols = f;
  result.centroids.resize(clusters * f);
  result.assignment.assign(n, 0);

  // Seeded init from distinct rows; sorted so cluster ids follow row order.
  Rng rng(seed);
  std::vector<size_t> init = rng.SampleWithoutReplacement(n, clusters);
  std::sort(init.begin(), init.end());
  for (size_t c = 0; c < clusters; ++c) {
    std::memcpy(result.centroids.data() + c * f, block.row(init[c]),
                f * sizeof(double));
  }

  std::vector<double> dist(n);
  std::vector<double> best(n);
  std::vector<uint32_t> next(n, 0);
  std::vector<size_t> counts(clusters);
  std::vector<double> sums(clusters * f);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    // Assignment step: one distance-kernel sweep per centroid, keeping the
    // per-row (distance, cluster) minimum — ties go to the lower cluster id.
    for (size_t c = 0; c < clusters; ++c) {
      const double* centroid = result.centroids.data() + c * f;
      const double c_norm = SquaredNorm(centroid, f);
      BlockSquaredDistances(block, centroid, c_norm, 0, n, dist.data());
      for (size_t i = 0; i < n; ++i) {
        if (c == 0 || dist[i] < best[i]) {
          best[i] = dist[i];
          next[i] = static_cast<uint32_t>(c);
        }
      }
    }
    const bool changed = iter == 0 || next != result.assignment;
    result.assignment = next;
    if (!changed) break;

    // Update step: mean of each cluster's rows; empty clusters keep their
    // previous centroid (deterministic, no re-seeding).
    std::fill(counts.begin(), counts.end(), size_t{0});
    std::fill(sums.begin(), sums.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = result.assignment[i];
      ++counts[c];
      const double* row = block.row(i);
      double* sum = sums.data() + c * f;
      for (size_t j = 0; j < f; ++j) sum[j] += row[j];
    }
    for (size_t c = 0; c < clusters; ++c) {
      if (counts[c] == 0) continue;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      double* centroid = result.centroids.data() + c * f;
      const double* sum = sums.data() + c * f;
      for (size_t j = 0; j < f; ++j) centroid[j] = sum[j] * inv;
    }
  }

  result.members.assign(clusters, {});
  for (size_t i = 0; i < n; ++i) {
    result.members[result.assignment[i]].push_back(static_cast<uint32_t>(i));
  }
  return result;
}

}  // namespace vfps::ml

#ifndef VFPS_ML_TRAIN_CONFIG_H_
#define VFPS_ML_TRAIN_CONFIG_H_

#include <cstdint>
#include <cstddef>
#include <limits>
#include <vector>

namespace vfps::ml {

/// \brief Shared training hyper-parameters, matching the paper's setup:
/// batch size 100, at most 200 epochs, stop when the validation loss has not
/// improved for 5 consecutive epochs, Adam optimizer.
struct TrainConfig {
  double learning_rate = 0.01;
  size_t batch_size = 100;
  size_t max_epochs = 200;
  size_t patience = 5;
  double l2 = 1e-4;
  uint64_t seed = 7;
};

/// \brief Validation-loss early stopping with a patience window.
class EarlyStopper {
 public:
  explicit EarlyStopper(size_t patience) : patience_(patience) {}

  /// Report this epoch's validation loss; returns true if training should stop.
  bool ShouldStop(double valid_loss) {
    if (valid_loss < best_ - 1e-9) {
      best_ = valid_loss;
      stale_ = 0;
      return false;
    }
    ++stale_;
    return stale_ >= patience_;
  }

  double best_loss() const { return best_; }
  size_t epochs_without_improvement() const { return stale_; }

 private:
  size_t patience_;
  size_t stale_ = 0;
  double best_ = std::numeric_limits<double>::infinity();
};

/// Contiguous mini-batch index ranges over a shuffled order.
std::vector<std::vector<size_t>> MakeBatches(size_t num_samples,
                                             size_t batch_size,
                                             const std::vector<size_t>& order);

}  // namespace vfps::ml

#endif  // VFPS_ML_TRAIN_CONFIG_H_

#include "ml/matrix.h"

namespace vfps::ml {

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  *out = Matrix(m, n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(p);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatTMul(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  *out = Matrix(m, n, 0.0);
  for (size_t p = 0; p < k; ++p) {
    const double* arow = a.RowPtr(p);
    const double* brow = b.RowPtr(p);
    for (size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out->RowPtr(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulT(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  *out = Matrix(m, n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b.RowPtr(j);
      double sum = 0.0;
      for (size_t p = 0; p < k; ++p) sum += arow[p] * brow[p];
      orow[j] = sum;
    }
  }
}

void AddRowVector(Matrix* m, const std::vector<double>& bias) {
  for (size_t i = 0; i < m->rows(); ++i) {
    double* row = m->RowPtr(i);
    for (size_t j = 0; j < m->cols(); ++j) row[j] += bias[j];
  }
}

std::vector<double> ColumnSums(const Matrix& m) {
  std::vector<double> sums(m.cols(), 0.0);
  for (size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (size_t j = 0; j < m.cols(); ++j) sums[j] += row[j];
  }
  return sums;
}

}  // namespace vfps::ml

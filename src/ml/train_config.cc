#include "ml/train_config.h"

#include <algorithm>

namespace vfps::ml {

std::vector<std::vector<size_t>> MakeBatches(size_t num_samples,
                                             size_t batch_size,
                                             const std::vector<size_t>& order) {
  std::vector<std::vector<size_t>> batches;
  if (batch_size == 0) batch_size = num_samples;
  for (size_t start = 0; start < num_samples; start += batch_size) {
    const size_t end = std::min(num_samples, start + batch_size);
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

}  // namespace vfps::ml

#include "ml/logreg.h"

#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "ml/metrics.h"

namespace vfps::ml {

std::vector<double> LogisticRegression::Probabilities(
    const data::Dataset& dataset) const {
  const size_t n = dataset.num_samples();
  const size_t f = num_features_;
  const size_t c = static_cast<size_t>(num_classes_);
  const double* w = params_.data();          // F x C
  const double* b = params_.data() + f * c;  // C
  std::vector<double> probs(n * c);
  for (size_t i = 0; i < n; ++i) {
    const double* row = dataset.Row(i);
    double* out = probs.data() + i * c;
    for (size_t j = 0; j < c; ++j) out[j] = b[j];
    for (size_t k = 0; k < f; ++k) {
      const double x = row[k];
      if (x == 0.0) continue;
      const double* wrow = w + k * c;
      for (size_t j = 0; j < c; ++j) out[j] += x * wrow[j];
    }
    SoftmaxInPlace(out, c);
  }
  return probs;
}

double LogisticRegression::Loss(const data::Dataset& dataset) const {
  return CrossEntropy(Probabilities(dataset), static_cast<size_t>(num_classes_),
                      dataset.labels());
}

Status LogisticRegression::Fit(const data::Dataset& train,
                               const data::Dataset& valid) {
  VFPS_CHECK_ARG(train.num_samples() > 0, "LR: empty training set");
  VFPS_CHECK_ARG(train.num_classes() >= 2, "LR: need >= 2 classes");
  num_features_ = train.num_features();
  num_classes_ = train.num_classes();
  const size_t f = num_features_;
  const size_t c = static_cast<size_t>(num_classes_);
  params_.assign(f * c + c, 0.0);

  Adam optimizer(config_.learning_rate);
  Rng rng(config_.seed);
  EarlyStopper stopper(config_.patience);
  std::vector<double> grads(params_.size());
  std::vector<double> logits(c);
  epochs_trained_ = 0;

  const bool has_valid = valid.num_samples() > 0;
  for (size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const auto order = rng.Permutation(train.num_samples());
    const auto batches = MakeBatches(train.num_samples(), config_.batch_size, order);
    for (const auto& batch : batches) {
      std::fill(grads.begin(), grads.end(), 0.0);
      double* gw = grads.data();
      double* gb = grads.data() + f * c;
      const double* w = params_.data();
      const double* b = params_.data() + f * c;
      for (size_t idx : batch) {
        const double* row = train.Row(idx);
        for (size_t j = 0; j < c; ++j) logits[j] = b[j];
        for (size_t k = 0; k < f; ++k) {
          const double x = row[k];
          if (x == 0.0) continue;
          const double* wrow = w + k * c;
          for (size_t j = 0; j < c; ++j) logits[j] += x * wrow[j];
        }
        SoftmaxInPlace(logits.data(), c);
        logits[static_cast<size_t>(train.Label(idx))] -= 1.0;  // p - onehot
        for (size_t k = 0; k < f; ++k) {
          const double x = row[k];
          if (x == 0.0) continue;
          double* grow = gw + k * c;
          for (size_t j = 0; j < c; ++j) grow[j] += x * logits[j];
        }
        for (size_t j = 0; j < c; ++j) gb[j] += logits[j];
      }
      const double inv = 1.0 / static_cast<double>(batch.size());
      for (size_t i = 0; i < f * c; ++i) {
        grads[i] = grads[i] * inv + config_.l2 * params_[i];
      }
      for (size_t i = f * c; i < grads.size(); ++i) grads[i] *= inv;
      optimizer.Step(&params_, grads);
    }
    ++epochs_trained_;
    const double monitored = has_valid ? Loss(valid) : Loss(train);
    if (stopper.ShouldStop(monitored)) break;
  }
  return Status::OK();
}

Result<std::vector<int>> LogisticRegression::Predict(
    const data::Dataset& test) const {
  if (params_.empty()) return Status::Internal("LR: Predict before Fit");
  if (test.num_features() != num_features_) {
    return Status::InvalidArgument("LR: feature width mismatch");
  }
  const size_t c = static_cast<size_t>(num_classes_);
  const auto probs = Probabilities(test);
  std::vector<int> preds(test.num_samples());
  for (size_t i = 0; i < test.num_samples(); ++i) {
    preds[i] = static_cast<int>(ArgMax(probs.data() + i * c, c));
  }
  return preds;
}

}  // namespace vfps::ml

#include "simd/simd.h"

#include <atomic>
#include <cstdlib>

namespace vfps::simd {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

Isa DetectCpuIsa() {
#ifdef VFPS_SIMD_X86
  // AVX-512 kernels use 64-bit low multiplies (_mm512_mullo_epi64), which is
  // DQ, on top of the F baseline for loads/compares/min_epu64.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return Isa::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

Isa ResolveIsa() {
  const char* force = std::getenv("VFPS_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return Isa::kScalar;
  }
  return DetectCpuIsa();
}

namespace {
// -1 = not yet resolved. Lazy init is idempotent (ResolveIsa is a pure
// function of env + CPUID at startup), so a racing first call is benign.
std::atomic<int> g_active_isa{-1};
}  // namespace

Isa ActiveIsa() {
  int v = g_active_isa.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(ResolveIsa());
    g_active_isa.store(v, std::memory_order_relaxed);
  }
  return static_cast<Isa>(v);
}

Isa SetActiveIsa(Isa isa) {
  const Isa cap = DetectCpuIsa();
  if (static_cast<int>(isa) > static_cast<int>(cap)) isa = cap;
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

}  // namespace vfps::simd

#ifndef VFPS_SIMD_SIMD_H_
#define VFPS_SIMD_SIMD_H_

/// \file
/// \brief Runtime SIMD dispatch for the hot kernels (NTT butterflies, RNS
/// pointwise ops, CKKS rescale, distance/dot kernels).
///
/// The kernels ship in up to three backends per operation: a scalar
/// reference (always built, the differential-test oracle), an AVX2 path, and
/// an AVX-512 path. Which one runs is decided once per process:
///
///   1. Compile guard: the vector paths exist only on x86-64 with a
///      GCC/Clang-compatible compiler (`VFPS_SIMD_X86`). They are built with
///      per-function target attributes, so a portable build still contains
///      them — selection happens at runtime, not at configure time.
///      `VFPS_NATIVE_ARCH` (-march=native) only changes how the surrounding
///      scalar code is tuned.
///   2. Runtime CPUID: DetectCpuIsa() picks the widest ISA the host
///      supports (AVX-512 requires F+DQ).
///   3. `VFPS_FORCE_SCALAR` environment override: any value other than
///      empty/"0" pins the dispatch to the scalar reference, so any run —
///      test, bench, CLI — can be replayed on the reference path.
///
/// Contract: for the integer kernels (NTT, RNS ops, rescale) every backend
/// is bit-identical to the scalar reference. For the double kernels the
/// documented contract is 1e-9 relative tolerance, and the implementation
/// preserves the scalar accumulation order so in practice results are
/// bit-identical there too (see docs/KERNELS.md). Switching ISA mid-run is
/// only meant for tests/benches via SetActiveIsa().

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
/// Defined when the AVX2/AVX-512 kernel backends are compiled in.
#define VFPS_SIMD_X86 1
#endif

namespace vfps::simd {

/// Instruction-set backends, ordered weakest to widest so callers may
/// compare (`isa >= Isa::kAvx2`).
enum class Isa : int {
  kScalar = 0,  ///< portable reference path (always available)
  kAvx2 = 1,    ///< 4 x 64-bit lanes (requires AVX2)
  kAvx512 = 2,  ///< 8 x 64-bit lanes (requires AVX-512 F + DQ)
};

/// Stable lowercase name ("scalar", "avx2", "avx512") for metrics labels,
/// bench row names, and logs.
const char* IsaName(Isa isa);

/// Widest ISA this build AND this CPU support, ignoring every override.
Isa DetectCpuIsa();

/// DetectCpuIsa() unless the `VFPS_FORCE_SCALAR` environment variable is set
/// to a non-empty value other than "0". Uncached — reads the environment on
/// every call (tests use this to verify the override; hot paths go through
/// ActiveIsa()).
Isa ResolveIsa();

/// The ISA the dispatched kernels use right now. First call caches
/// ResolveIsa(); later calls are one relaxed atomic load. SetActiveIsa()
/// replaces the cached value.
Isa ActiveIsa();

/// \brief Pin dispatch to `isa`, clamped to DetectCpuIsa() (asking for a
/// backend the host cannot run selects the widest one it can). Returns the
/// ISA actually installed. Intended for tests and benches that must drive a
/// specific path; production code should rely on the environment override.
/// Not synchronized with in-flight kernels — switch only between operations.
Isa SetActiveIsa(Isa isa);

}  // namespace vfps::simd

#endif  // VFPS_SIMD_SIMD_H_

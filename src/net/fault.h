#ifndef VFPS_NET_FAULT_H_
#define VFPS_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "net/network.h"

namespace vfps::net {

/// \brief A participant (or server) that dies for good: once `node` has
/// transmitted `after_sends` messages it emits nothing further, and peers
/// eventually observe PeerDead. Counted per fault stream, i.e. per
/// SimNetwork — under the parallel per-query fan-out each query task sees
/// the crash unfold independently against its task-local network.
struct CrashRule {
  NodeId node = 0;
  uint64_t after_sends = 1;
};

/// \brief A transient straggler: starting with its `after_sends`-th
/// transmission, `node` loses `drop_count` consecutive sends (they are
/// metered but never delivered), then recovers. Unlike a crash, a stall is
/// absorbable by the retry layer.
struct StallRule {
  NodeId node = 0;
  uint64_t after_sends = 1;
  uint64_t drop_count = 1;
};

/// \brief A graceful departure: identical to a crash at the transport level
/// (once `node` has transmitted `after_sends` messages it emits nothing
/// further), but reported separately via DepartedNodes() so the selection
/// layer can distinguish "left the consortium" from "died" when deciding
/// how to repair. Counted per fault stream, like CrashRule.
struct LeaveRule {
  NodeId node = 1;
  uint64_t after_sends = 1;
};

/// \brief A late arrival: `node` is absent from the consortium at stream
/// start (NodeAbsent() is true) and becomes eligible to join once the
/// stream-total send counter reaches `after_sends`. Join rules never touch
/// the transport — an absent node simply isn't scheduled by the selection
/// layer; JoinedNodes() reports the threshold crossing so the selector can
/// splice the newcomer in on its next pass.
struct JoinRule {
  NodeId node = 1;
  uint64_t after_sends = 1;
};

/// \brief A revival: once the stream-total send counter reaches
/// `after_sends`, `node` is no longer considered dead — both crash and
/// leave rules for it stop applying. The selection layer observes the
/// crossing via HealedNodes() and un-quarantines the node; MarkHealed()
/// lets it pre-apply that decision to later fault streams (whose counters
/// start from zero and would otherwise re-fire the crash).
struct HealRule {
  NodeId node = 1;
  uint64_t after_sends = 1;
};

/// \brief A network partition: while the stream-total send counter is in
/// [`after_sends`, `after_sends + drop_count`), every message to or from
/// `node` is metered but lost, in both directions. A short partition is
/// absorbed by the retry layer like a stall; a long one exhausts the retry
/// budget and surfaces as PeerDead with the partitioned node as suspect.
struct PartitionRule {
  NodeId node = 1;
  uint64_t after_sends = 1;
  uint64_t drop_count = 1;
};

/// \brief Seeded fault schedule consulted on every SimNetwork delivery.
///
/// Probabilities apply independently per message, drawn from the stream seed
/// passed to SimNetwork::EnableFaults — the same (spec, seed) pair always
/// reproduces the same fault sequence. The zero value (all probabilities 0,
/// no crash/stall rules) means "no faults" and is the library-wide default.
struct FaultSpec {
  double drop_prob = 0.0;       // message vanishes after being metered
  double duplicate_prob = 0.0;  // message is delivered twice
  double corrupt_prob = 0.0;    // one random payload bit is flipped
  double delay_prob = 0.0;      // message is late by delay_seconds
  double delay_seconds = 0.0;   // extra simulated latency when delay fires
  std::vector<CrashRule> crashes;
  std::vector<StallRule> stalls;
  std::vector<LeaveRule> leaves;
  std::vector<JoinRule> joins;
  std::vector<HealRule> heals;
  std::vector<PartitionRule> partitions;

  /// True if any rule can ever fire; false selects the pristine transport.
  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || corrupt_prob > 0.0 ||
           delay_prob > 0.0 || !crashes.empty() || !stalls.empty() ||
           !leaves.empty() || !joins.empty() || !heals.empty() ||
           !partitions.empty();
  }

  /// Participants that start outside the consortium (have a join= rule),
  /// ascending and deduplicated. The selection layer excludes these from the
  /// initial membership and admits them when JoinedNodes() reports them.
  std::vector<NodeId> InitialAbsentees() const;

  /// Rejects probabilities outside [0, 1] and rules naming invalid nodes.
  Status Validate() const;
};

/// \brief Parse the CLI `--fault-spec` mini-language: comma-separated
/// `key=value` terms.
///
///   drop=0.05            drop probability
///   dup=0.01             duplicate probability
///   corrupt=0.02         bit-corruption probability
///   delay=0.1:0.05       delay probability : extra seconds
///   crash=2@40           participant 2 dies after sending 40 messages
///   stall=3@10+5         participant 3 loses sends 10..14, then recovers
///   leave=2@40           participant 2 departs gracefully after 40 sends
///   join=3@25            participant 3 is absent, joins once the stream
///                        total reaches 25 sends
///   heal=2@60            participant 2 revives once the stream total
///                        reaches 60 sends (clears crash/leave state)
///   part=3@10+20         messages to/from participant 3 are lost while the
///                        stream total is in [10, 30)
///
/// Example: "drop=0.05,delay=0.2:0.01,crash=2@40". Empty input yields the
/// zero (fault-free) spec.
Result<FaultSpec> ParseFaultSpec(const std::string& text);

/// \brief The seeded decision engine behind a fault-injected SimNetwork.
///
/// One injector per network; the network asks it what to do with each send.
/// All randomness comes from the single constructor seed, and decisions are
/// drawn in a fixed order per send (drop, duplicate, corrupt, delay), so the
/// fault sequence is a pure function of (spec, seed, send sequence).
/// Thread-safety: none — owned and driven by one SimNetwork.
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, uint64_t seed)
      : spec_(spec), rng_(seed) {}

  /// The fate of one message from `from` to `to`.
  struct Delivery {
    bool sender_dead = false;  // emit nothing, meter nothing
    bool dropped = false;      // meter, do not enqueue
    bool duplicate = false;    // enqueue twice
    bool corrupt = false;      // flip payload bit (corrupt_bit % payload bits)
    uint64_t corrupt_bit = 0;
    double extra_delay = 0.0;  // simulated seconds to charge the clock
  };

  /// Consult the schedule for the next send on (from -> to). Advances the
  /// fault stream, the per-node send counters, and the stream-total counter
  /// (the stream-total advances on every call, even swallowed sends — it is
  /// the stream's clock, against which join/heal/partition thresholds fire).
  Delivery OnSend(NodeId from, NodeId to);

  /// True once `node` crossed a crash or leave threshold and has not healed.
  bool NodeDead(NodeId node) const;

  /// True while `node` has a join rule whose threshold the stream-total has
  /// not reached (and the node was not pre-admitted via MarkJoined).
  bool NodeAbsent(NodeId node) const;

  /// Every node currently considered dead (crashed or departed), ascending.
  std::vector<NodeId> DeadNodes() const;

  /// Dead nodes that left via a leave= rule (graceful departures),
  /// ascending. Always a subset of DeadNodes().
  std::vector<NodeId> DepartedNodes() const;

  /// Join-rule nodes whose threshold the stream-total reached (or that were
  /// pre-admitted via MarkJoined), ascending.
  std::vector<NodeId> JoinedNodes() const;

  /// Heal-rule nodes whose threshold the stream-total reached, ascending.
  std::vector<NodeId> HealedNodes() const;

  /// Pre-apply a heal decided on an earlier fault stream: `node` is never
  /// considered dead by this injector, regardless of its crash/leave rules.
  /// Without this, a healed node re-fires its crash rule on every later
  /// stream (whose counters restart from zero) and oscillates in and out of
  /// quarantine.
  void MarkHealed(NodeId node) { pre_healed_.insert(node); }

  /// Pre-apply a join admitted on an earlier fault stream: `node` is never
  /// considered absent by this injector.
  void MarkJoined(NodeId node) { pre_joined_.insert(node); }

  const FaultSpec& spec() const { return spec_; }

 private:
  bool NodeHealed(NodeId node) const;

  FaultSpec spec_;
  Rng rng_;
  std::map<NodeId, uint64_t> sends_by_node_;
  uint64_t total_sends_ = 0;
  std::set<NodeId> pre_healed_;
  std::set<NodeId> pre_joined_;
};

}  // namespace vfps::net

#endif  // VFPS_NET_FAULT_H_

#ifndef VFPS_NET_FAULT_H_
#define VFPS_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "net/network.h"

namespace vfps::net {

/// \brief A participant (or server) that dies for good: once `node` has
/// transmitted `after_sends` messages it emits nothing further, and peers
/// eventually observe PeerDead. Counted per fault stream, i.e. per
/// SimNetwork — under the parallel per-query fan-out each query task sees
/// the crash unfold independently against its task-local network.
struct CrashRule {
  NodeId node = 0;
  uint64_t after_sends = 1;
};

/// \brief A transient straggler: starting with its `after_sends`-th
/// transmission, `node` loses `drop_count` consecutive sends (they are
/// metered but never delivered), then recovers. Unlike a crash, a stall is
/// absorbable by the retry layer.
struct StallRule {
  NodeId node = 0;
  uint64_t after_sends = 1;
  uint64_t drop_count = 1;
};

/// \brief Seeded fault schedule consulted on every SimNetwork delivery.
///
/// Probabilities apply independently per message, drawn from the stream seed
/// passed to SimNetwork::EnableFaults — the same (spec, seed) pair always
/// reproduces the same fault sequence. The zero value (all probabilities 0,
/// no crash/stall rules) means "no faults" and is the library-wide default.
struct FaultSpec {
  double drop_prob = 0.0;       // message vanishes after being metered
  double duplicate_prob = 0.0;  // message is delivered twice
  double corrupt_prob = 0.0;    // one random payload bit is flipped
  double delay_prob = 0.0;      // message is late by delay_seconds
  double delay_seconds = 0.0;   // extra simulated latency when delay fires
  std::vector<CrashRule> crashes;
  std::vector<StallRule> stalls;

  /// True if any rule can ever fire; false selects the pristine transport.
  bool any() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || corrupt_prob > 0.0 ||
           delay_prob > 0.0 || !crashes.empty() || !stalls.empty();
  }

  /// Rejects probabilities outside [0, 1] and rules naming invalid nodes.
  Status Validate() const;
};

/// \brief Parse the CLI `--fault-spec` mini-language: comma-separated
/// `key=value` terms.
///
///   drop=0.05            drop probability
///   dup=0.01             duplicate probability
///   corrupt=0.02         bit-corruption probability
///   delay=0.1:0.05       delay probability : extra seconds
///   crash=2@40           participant 2 dies after sending 40 messages
///   stall=3@10+5         participant 3 loses sends 10..14, then recovers
///
/// Example: "drop=0.05,delay=0.2:0.01,crash=2@40". Empty input yields the
/// zero (fault-free) spec.
Result<FaultSpec> ParseFaultSpec(const std::string& text);

/// \brief The seeded decision engine behind a fault-injected SimNetwork.
///
/// One injector per network; the network asks it what to do with each send.
/// All randomness comes from the single constructor seed, and decisions are
/// drawn in a fixed order per send (drop, duplicate, corrupt, delay), so the
/// fault sequence is a pure function of (spec, seed, send sequence).
/// Thread-safety: none — owned and driven by one SimNetwork.
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, uint64_t seed)
      : spec_(spec), rng_(seed) {}

  /// The fate of one message from `from` to `to`.
  struct Delivery {
    bool sender_dead = false;  // emit nothing, meter nothing
    bool dropped = false;      // meter, do not enqueue
    bool duplicate = false;    // enqueue twice
    bool corrupt = false;      // flip payload bit (corrupt_bit % payload bits)
    uint64_t corrupt_bit = 0;
    double extra_delay = 0.0;  // simulated seconds to charge the clock
  };

  /// Consult the schedule for the next send on (from -> to). Advances the
  /// fault stream and the per-node send counters.
  Delivery OnSend(NodeId from, NodeId to);

  /// True once `node` crossed a CrashRule threshold (or was born past it).
  bool NodeDead(NodeId node) const;

  /// Every node currently considered crashed, ascending.
  std::vector<NodeId> DeadNodes() const;

  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  Rng rng_;
  std::map<NodeId, uint64_t> sends_by_node_;
};

}  // namespace vfps::net

#endif  // VFPS_NET_FAULT_H_

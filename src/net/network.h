#ifndef VFPS_NET_NETWORK_H_
#define VFPS_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vfps::net {

/// \brief Logical node identifier in the simulated cluster.
///
/// The paper's deployment has three roles besides the participants: a key
/// server (distributes the HE key pair), an aggregation server (homomorphic
/// sums), and the leader (participant 0, holds the labels). Participants are
/// numbered 0..P-1; the special roles use reserved negative ids.
using NodeId = int;

constexpr NodeId kAggregationServer = -1;
constexpr NodeId kKeyServer = -2;

/// Human-readable node name for logs ("participant 3", "agg-server", ...).
std::string NodeName(NodeId id);

/// \brief Per-direction traffic counters.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  void Merge(const TrafficStats& o) {
    messages += o.messages;
    bytes += o.bytes;
  }
};

/// \brief In-process message transport with exact byte metering.
///
/// This replaces the paper's gRPC links between AWS instances. Protocol code
/// is written as explicit Send/Recv pairs per directed link (FIFO order per
/// link), which both documents the communication pattern and lets the cost
/// model convert metered traffic into simulated wall-clock time. Payloads are
/// opaque byte strings produced by BinaryWriter, so what is metered is
/// exactly what a real deployment would serialize.
///
/// Thread-safety: NOT thread-safe — one SimNetwork must only be driven from
/// one thread at a time. Parallel protocol code gives each task its own
/// SimNetwork and merges metering with MergeStatsFrom() afterwards.
class SimNetwork {
 public:
  SimNetwork() = default;

  /// Enqueue a payload on the (from -> to) link.
  Status Send(NodeId from, NodeId to, std::vector<uint8_t> payload);

  /// Dequeue the oldest payload on the (from -> to) link; ProtocolError if
  /// the link is empty (a send/recv mismatch in the protocol).
  Result<std::vector<uint8_t>> Recv(NodeId from, NodeId to);

  /// Number of undelivered payloads across all links.
  size_t PendingCount() const;

  /// Totals over all links since construction or the last ResetStats().
  const TrafficStats& total() const { return total_; }

  /// Traffic that left `node` / arrived at `node`.
  TrafficStats SentBy(NodeId node) const;
  TrafficStats ReceivedBy(NodeId node) const;

  /// Per-link traffic (from -> to).
  TrafficStats LinkStats(NodeId from, NodeId to) const;

  void ResetStats();

  /// Fold another network's per-link and total traffic counters into this
  /// one (queued payloads are NOT transferred). Used by the parallel
  /// encrypted-KNN path: each query task runs its self-contained protocol
  /// against a task-local SimNetwork, and the main network absorbs the
  /// metering afterwards in deterministic query order.
  void MergeStatsFrom(const SimNetwork& other);

 private:
  using LinkKey = std::pair<NodeId, NodeId>;
  std::map<LinkKey, std::deque<std::vector<uint8_t>>> queues_;
  std::map<LinkKey, TrafficStats> stats_;
  TrafficStats total_;
};

}  // namespace vfps::net

#endif  // VFPS_NET_NETWORK_H_

#ifndef VFPS_NET_NETWORK_H_
#define VFPS_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "obs/trace.h"

namespace vfps::obs {
class Counter;
class MetricsRegistry;
}  // namespace vfps::obs

namespace vfps::net {

struct FaultSpec;
class FaultInjector;

/// \brief Logical node identifier in the simulated cluster.
///
/// The paper's deployment has three roles besides the participants: a key
/// server (distributes the HE key pair), an aggregation server (homomorphic
/// sums), and the leader (participant 0, holds the labels). Participants are
/// numbered 0..P-1; the special roles use reserved negative ids.
using NodeId = int;

constexpr NodeId kAggregationServer = -1;
constexpr NodeId kKeyServer = -2;

/// Human-readable node name for logs ("participant 3", "agg-server", ...).
std::string NodeName(NodeId id);

/// \brief Per-direction traffic counters.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  void Merge(const TrafficStats& o) {
    messages += o.messages;
    bytes += o.bytes;
  }
};

/// \brief Counters of injected faults that actually fired on one network
/// (folded across task-local networks by MergeStatsFrom, like TrafficStats).
struct FaultStats {
  uint64_t dropped = 0;     // messages metered but never delivered
  uint64_t duplicated = 0;  // extra deliveries enqueued
  uint64_t corrupted = 0;   // payloads with a flipped bit
  uint64_t delayed = 0;     // messages charged extra latency
  double delay_seconds = 0.0;
  uint64_t swallowed_dead = 0;  // sends from or to a crashed node

  void Merge(const FaultStats& o) {
    dropped += o.dropped;
    duplicated += o.duplicated;
    corrupted += o.corrupted;
    delayed += o.delayed;
    delay_seconds += o.delay_seconds;
    swallowed_dead += o.swallowed_dead;
  }
  bool any() const {
    return dropped + duplicated + corrupted + delayed + swallowed_dead > 0;
  }
};

/// \brief In-process message transport with exact byte metering.
///
/// This replaces the paper's gRPC links between AWS instances. Protocol code
/// is written as explicit Send/Recv pairs per directed link (FIFO order per
/// link), which both documents the communication pattern and lets the cost
/// model convert metered traffic into simulated wall-clock time. Payloads are
/// opaque byte strings produced by BinaryWriter, so what is metered is
/// exactly what a real deployment would serialize.
///
/// Fault injection: EnableFaults attaches a seeded FaultPlan (net/fault.h)
/// that is consulted on every Send — messages may then be dropped,
/// duplicated, bit-corrupted, delayed (the extra latency is charged to the
/// supplied SimClock), or swallowed because a node crashed or stalled. With
/// no plan attached (the default), the fast path is a single null-pointer
/// check and behavior is bit-identical to the pristine transport. Protocol
/// code that must survive injected faults goes through net::ReliableChannel
/// (channel.h) rather than raw Send/Recv.
///
/// Thread-safety: NOT thread-safe — one SimNetwork must only be driven from
/// one thread at a time. Parallel protocol code gives each task its own
/// SimNetwork and merges metering with MergeStatsFrom() afterwards; each
/// task-local network gets its own fault stream seed, pre-derived serially,
/// so fault schedules are reproducible at any thread count.
class SimNetwork {
 public:
  SimNetwork();
  ~SimNetwork();
  SimNetwork(SimNetwork&&) noexcept;
  SimNetwork& operator=(SimNetwork&&) noexcept;

  /// Enqueue a payload on the (from -> to) link.
  ///
  /// When a Tracer is attached (via set_metrics on a registry with tracing
  /// enabled) the sender's current obs::TraceContext is stamped on the
  /// envelope as side-band metadata — it rides alongside the payload, is NOT
  /// part of the metered bytes (so byte metering and the simulated cost
  /// model stay bit-identical to an untraced run), and is surfaced to the
  /// receiver via last_recv_context(). Injected fault fates additionally
  /// record zero-duration trace instants (net.fault.*) parented under the
  /// sender's open span.
  Status Send(NodeId from, NodeId to, std::vector<uint8_t> payload);

  /// Dequeue the oldest payload on the (from -> to) link; ProtocolError if
  /// the link is empty (a send/recv mismatch in the protocol, or every copy
  /// of the expected message was lost to injected faults). The message names
  /// both endpoints and reports the link's delivery counters.
  Result<std::vector<uint8_t>> Recv(NodeId from, NodeId to);

  /// Trace context stamped by the sender of the payload most recently
  /// returned by a successful Recv() (zero when the sender had no open span
  /// or tracing is disabled). A duplicate delivery carries the same context
  /// as the original, so the receive side can attach protocol events to the
  /// causal branch that actually produced the bytes.
  obs::TraceContext last_recv_context() const { return last_recv_context_; }

  /// Number of undelivered payloads across all links.
  size_t PendingCount() const;

  /// Totals over all links since construction or the last ResetStats().
  const TrafficStats& total() const { return total_; }

  /// Traffic that left `node` / arrived at `node`.
  TrafficStats SentBy(NodeId node) const;
  TrafficStats ReceivedBy(NodeId node) const;

  /// Per-link traffic (from -> to).
  TrafficStats LinkStats(NodeId from, NodeId to) const;

  void ResetStats();

  /// Fold another network's per-link, total, and fault counters into this
  /// one (queued payloads are NOT transferred). Used by the parallel
  /// encrypted-KNN path: each query task runs its self-contained protocol
  /// against a task-local SimNetwork, and the main network absorbs the
  /// metering afterwards in deterministic query order.
  void MergeStatsFrom(const SimNetwork& other);

  /// Attach a seeded fault plan. `clock` (borrowed, may not be null) receives
  /// the injected-latency charges; the same (spec, seed) always reproduces
  /// the same fault schedule. Replaces any previously attached plan.
  void EnableFaults(const FaultSpec& spec, uint64_t seed, SimClock* clock);

  /// True once EnableFaults was called (even with an all-zero spec).
  bool faults_enabled() const { return injector_ != nullptr; }

  /// The attached fault plan, or nullptr. The seed is exposed so protocol
  /// layers can derive per-task fault streams from it serially.
  const FaultSpec* fault_spec() const;
  uint64_t fault_seed() const { return fault_seed_; }

  /// True if `node` crossed a crash/leave threshold on this network's
  /// stream, or was marked suspect by the retry layer.
  bool NodeDead(NodeId node) const;

  /// All dead nodes on this network's stream (crashed, departed, or
  /// suspected after retry exhaustion), ascending.
  std::vector<NodeId> DeadNodes() const;

  /// Dead nodes that departed via a leave= rule, ascending.
  std::vector<NodeId> DepartedNodes() const;

  /// Join-rule nodes whose threshold this stream crossed, ascending.
  std::vector<NodeId> JoinedNodes() const;

  /// Heal-rule nodes whose threshold this stream crossed, ascending.
  std::vector<NodeId> HealedNodes() const;

  /// True while `node` has an unreached join= threshold on this stream.
  bool NodeAbsent(NodeId node) const;

  /// Declare `node` unreachable: ReliableChannel calls this when its retry
  /// budget is exhausted on a link, so the selection layer can quarantine
  /// the suspect endpoint even though no crash rule fired (e.g. a long
  /// partition). Suspects are reported by NodeDead()/DeadNodes().
  void SuspectDead(NodeId node);

  /// Forwarded to the attached injector (no-ops without one): pre-apply a
  /// heal/join decided on an earlier fault stream.
  void MarkHealed(NodeId node);
  void MarkJoined(NodeId node);

  /// Faults that fired on this network (plus everything merged into it).
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Attach (or detach, with nullptr) a metrics registry: every metered send
  /// bumps `net.messages`/`net.bytes_sent` and every fired fault bumps its
  /// `net.faults.*` counter, live. Handles are cached, so the disabled path
  /// is one null check in Meter(). Not thread-safe; set before use. Task-
  /// local networks attach the parent's registry (see FederatedKnnOracle) —
  /// MergeStatsFrom deliberately does NOT republish merged counters, since
  /// the task-local network already recorded them at event time.
  void set_metrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() const { return obs_registry_; }

 private:
  using LinkKey = std::pair<NodeId, NodeId>;

  /// A queued message: the metered payload plus unmetered trace metadata.
  struct Envelope {
    std::vector<uint8_t> payload;
    obs::TraceContext ctx;
  };

  void Meter(const LinkKey& key, size_t bytes);
  /// Labeled per-party counters for the link, lazily resolved. The "party"
  /// of a link is its participant endpoint (the server side of every link is
  /// shared infrastructure); leader-to-server links attribute to party 0.
  void MeterParty(const LinkKey& key, size_t bytes);
  void FaultInstant(const char* name, const LinkKey& key);

  std::map<LinkKey, std::deque<Envelope>> queues_;
  std::map<LinkKey, TrafficStats> stats_;
  TrafficStats total_;
  FaultStats fault_stats_;
  std::unique_ptr<FaultInjector> injector_;
  SimClock* fault_clock_ = nullptr;  // borrowed; set with the injector
  uint64_t fault_seed_ = 0;
  std::vector<NodeId> suspects_;  // sorted unique; see SuspectDead()

  obs::MetricsRegistry* obs_registry_ = nullptr;  // borrowed
  obs::Tracer* tracer_ = nullptr;                 // borrowed via the registry
  obs::TraceContext last_recv_context_;
  obs::Counter* c_messages_ = nullptr;
  obs::Counter* c_bytes_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_duplicated_ = nullptr;
  obs::Counter* c_corrupted_ = nullptr;
  obs::Counter* c_delayed_ = nullptr;
  obs::Counter* c_delay_ns_ = nullptr;
  obs::Counter* c_swallowed_dead_ = nullptr;
  /// party -> (net.party.messages{party=N}, net.party.bytes{party=N}).
  std::map<NodeId, std::pair<obs::Counter*, obs::Counter*>> party_counters_;
};

}  // namespace vfps::net

#endif  // VFPS_NET_NETWORK_H_

#ifndef VFPS_NET_CHANNEL_H_
#define VFPS_NET_CHANNEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "net/network.h"

namespace vfps::net {

/// \brief Retransmission policy of ReliableChannel.
///
/// With `jitter_factor > 0` each backoff wait is stretched by a seeded
/// uniform draw in [0, jitter_factor] — the standard decorrelation trick so
/// that lockstep peers retrying the same congested link don't resend in
/// synchronized waves. The default of 0 keeps the backoff schedule exact
/// (wait, wait*b, wait*b^2, ...), which existing clock assertions rely on.
struct RetryPolicy {
  size_t max_attempts = 6;        // delivery attempts per message
  double timeout_seconds = 0.05;  // simulated wait before the first resend
  double backoff_factor = 2.0;    // exponential backoff multiplier
  double jitter_factor = 0.0;     // extra wait fraction, uniform [0, this]
  uint64_t jitter_seed = 0;       // seed of the jitter stream
};

/// \brief Lockstep reliable exchange over a (possibly fault-injected)
/// SimNetwork — the simulated counterpart of gRPC's retrying channel.
///
/// When the underlying network has no fault plan attached, Send/Recv are
/// exact pass-throughs of SimNetwork::Send/Recv: no framing bytes, no clock
/// charges, bit-identical to the raw transport. That makes the zero-fault
/// configuration free and is why protocol code can use the channel
/// unconditionally.
///
/// With faults enabled every payload is framed as
///
///   [seq u32][crc32 u32][len u32][payload bytes]
///
/// and Recv runs the receiver side of a stop-and-wait ARQ:
///   - a CRC mismatch (injected bit corruption) or an unparseable frame is
///     discarded and the in-flight payload retransmitted (Corrupt is never
///     silently consumed);
///   - stale duplicates (seq below the link cursor) are discarded free of
///     charge;
///   - an empty link charges an exponentially backed-off timeout to the
///     simulated clock and triggers a retransmission;
///   - a crashed peer (either endpoint) yields PeerDead;
///   - once max_attempts is exhausted the exchange fails with PeerDead (the
///     attempt count is in the message) and the likely-unreachable endpoint
///     is reported to the network via SimNetwork::SuspectDead, so the
///     selection layer can quarantine it like a crash — this is how long
///     partitions surface.
///
/// Retransmissions re-enter the fault plan (a resend can be dropped or
/// corrupted again), so the number of rounds a schedule needs is itself
/// deterministic for a fixed seed.
///
/// Thread-safety: NOT thread-safe; one channel per task, wrapping that
/// task's SimNetwork and SimClock, like the objects it borrows.
class ReliableChannel {
 public:
  /// Both pointers are borrowed and must outlive the channel. If a metrics
  /// registry is attached to `net` (attach it *before* constructing the
  /// channel), retransmissions and discarded frames are published as
  /// `net.chan.retries` / `net.chan.discards`; with tracing enabled each
  /// retry/discard/exhaustion additionally records a zero-duration trace
  /// instant (net.chan.*) parented under the receiver's open span, so ARQ
  /// activity stays attached to the causal tree of the query it served.
  ReliableChannel(SimNetwork* net, SimClock* clock, RetryPolicy policy = {});

  /// Transmit `payload` on (from -> to). With faults enabled the frame is
  /// sequence-numbered, CRC-protected, and remembered for retransmission
  /// until the next Send on the same link.
  Status Send(NodeId from, NodeId to, std::vector<uint8_t> payload);

  /// Deliver the next in-order payload on (from -> to), retrying through
  /// injected faults. Errors: PeerDead (a link endpoint crashed, or the
  /// retry budget was exhausted and the suspect endpoint was reported dead),
  /// ProtocolError (nothing was ever sent — a protocol mismatch, matching
  /// raw SimNetwork semantics).
  Result<std::vector<uint8_t>> Recv(NodeId from, NodeId to);

  const RetryPolicy& policy() const { return policy_; }

 private:
  using LinkKey = std::pair<NodeId, NodeId>;
  struct Pending {
    uint32_t seq = 0;
    std::vector<uint8_t> payload;
  };

  static std::vector<uint8_t> Frame(uint32_t seq,
                                    const std::vector<uint8_t>& payload);

  SimNetwork* net_;
  SimClock* clock_;
  RetryPolicy policy_;
  Rng jitter_rng_;
  obs::Tracer* tracer_ = nullptr;  // borrowed via the network's registry
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_discards_ = nullptr;
  obs::Counter* c_exhausted_ = nullptr;
  std::map<LinkKey, uint32_t> next_send_seq_;
  std::map<LinkKey, uint32_t> next_recv_seq_;
  std::map<LinkKey, Pending> pending_;
};

}  // namespace vfps::net

#endif  // VFPS_NET_CHANNEL_H_

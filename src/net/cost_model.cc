#include "net/cost_model.h"

#include <cmath>

namespace vfps::net {

double CostModel::SortSeconds(uint64_t n) const {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  return dn * std::log2(dn) * compare_seconds;
}

}  // namespace vfps::net

#include "net/channel.h"

#include "common/buffer.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace vfps::net {

ReliableChannel::ReliableChannel(SimNetwork* net, SimClock* clock,
                                 RetryPolicy policy)
    : net_(net),
      clock_(clock),
      policy_(policy),
      // Jitter draws come from (policy seed, network fault seed): per-task
      // channels wrap task-local networks with pre-derived fault seeds, so
      // the jitter schedule is reproducible at any thread count.
      jitter_rng_(policy.jitter_seed ^
                  (net->fault_seed() * 0x9E3779B97F4A7C15ULL)) {
  if (obs::MetricsRegistry* registry = net_->metrics(); registry != nullptr) {
    tracer_ = registry->tracer();
    c_retries_ = registry->GetCounter("net.chan.retries");
    c_discards_ = registry->GetCounter("net.chan.discards");
    c_exhausted_ = registry->GetCounter("net.chan.exhausted");
  }
}

std::vector<uint8_t> ReliableChannel::Frame(
    uint32_t seq, const std::vector<uint8_t>& payload) {
  BinaryWriter w;
  w.WriteU32(seq);
  w.WriteCrcFramed(payload);
  return w.TakeBytes();
}

Status ReliableChannel::Send(NodeId from, NodeId to,
                             std::vector<uint8_t> payload) {
  if (!net_->faults_enabled()) {
    return net_->Send(from, to, std::move(payload));
  }
  const LinkKey key{from, to};
  const uint32_t seq = next_send_seq_[key]++;
  VFPS_RETURN_NOT_OK(net_->Send(from, to, Frame(seq, payload)));
  // Keep the payload until the link's next Send: the lockstep protocol has at
  // most one exchange outstanding per link, and the receiver may need resends.
  pending_[key] = Pending{seq, std::move(payload)};
  return Status::OK();
}

Result<std::vector<uint8_t>> ReliableChannel::Recv(NodeId from, NodeId to) {
  if (!net_->faults_enabled()) return net_->Recv(from, to);

  const LinkKey key{from, to};
  const uint32_t want = next_recv_seq_[key];
  double wait = policy_.timeout_seconds;
  const auto discard_instant = [&](const char* reason) {
    if (c_discards_ != nullptr) c_discards_->Add(1);
    if (tracer_ != nullptr) {
      tracer_->Instant("net.chan.discard", {{"from", NodeName(from)},
                                            {"to", NodeName(to)},
                                            {"reason", reason}});
    }
  };
  for (size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    // Drain whatever is on the link; a good frame may sit behind stale
    // duplicates or corrupted copies.
    while (true) {
      auto recv = net_->Recv(from, to);
      if (!recv.ok()) break;  // link empty -> fall through to timeout
      BinaryReader reader(*recv);
      auto seq = reader.ReadU32();
      if (!seq.ok()) {  // mangled beyond parsing; discard
        discard_instant("unparseable");
        continue;
      }
      if (*seq < want) {  // stale duplicate of a delivered seq
        discard_instant("stale_duplicate");
        continue;
      }
      auto payload = reader.ReadCrcFramed();
      if (!payload.ok() || *seq > want) {  // corrupt; discard
        discard_instant("corrupt");
        continue;
      }
      next_recv_seq_[key] = want + 1;
      return payload.MoveValueUnsafe();
    }
    if (net_->NodeDead(from) || net_->NodeDead(to)) {
      return Status::PeerDead(StrFormat(
          "ReliableChannel: %s is down, link %s -> %s unserviceable",
          NodeName(net_->NodeDead(from) ? from : to).c_str(),
          NodeName(from).c_str(), NodeName(to).c_str()));
    }
    auto pending = pending_.find(key);
    if (pending == pending_.end() || pending->second.seq != want) {
      // Nothing in flight to wait for: the protocol never sent seq `want`.
      return Status::ProtocolError(StrFormat(
          "ReliableChannel: no in-flight message with seq %u on link "
          "%s -> %s (protocol send/recv mismatch)",
          want, NodeName(from).c_str(), NodeName(to).c_str()));
    }
    // Simulated timeout, then ask the sender to retransmit. The resend goes
    // back through the fault plan, so it can be lost or corrupted again.
    double charged = wait;
    if (policy_.jitter_factor > 0.0) {
      charged *= 1.0 + policy_.jitter_factor * jitter_rng_.NextDouble();
    }
    clock_->Advance(CostCategory::kNetwork, charged);
    wait *= policy_.backoff_factor;
    if (c_retries_ != nullptr) c_retries_->Add(1);
    if (tracer_ != nullptr) {
      tracer_->Instant("net.chan.retry",
                       {{"from", NodeName(from)},
                        {"to", NodeName(to)},
                        {"seq", StrFormat("%u", want)},
                        {"attempt", StrFormat("%zu", attempt + 1)}});
    }
    VFPS_RETURN_NOT_OK(
        net_->Send(from, to, Frame(want, pending->second.payload)));
  }
  // The retry budget is gone and no crash rule fired: something is silently
  // eating this link (a long partition, or pathological loss). Report the
  // likely-unreachable endpoint as a suspect so the selection layer can
  // quarantine it — never the leader or a server, whose loss is structural.
  const NodeId suspect = from >= 1 ? from : to;
  if (suspect >= 1) net_->SuspectDead(suspect);
  if (c_exhausted_ != nullptr) c_exhausted_->Add(1);
  if (tracer_ != nullptr) {
    tracer_->Instant(
        "net.chan.exhausted",
        {{"from", NodeName(from)},
         {"to", NodeName(to)},
         {"suspect", suspect >= 1 ? NodeName(suspect) : "none"}});
  }
  return Status::PeerDead(StrFormat(
      "ReliableChannel: gave up on link %s -> %s after %zu attempts "
      "(seq %u never arrived intact); suspecting %s unreachable",
      NodeName(from).c_str(), NodeName(to).c_str(), policy_.max_attempts,
      want, suspect >= 1 ? NodeName(suspect).c_str() : "nobody"));
}

}  // namespace vfps::net

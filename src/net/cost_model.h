#ifndef VFPS_NET_COST_MODEL_H_
#define VFPS_NET_COST_MODEL_H_

#include <cstdint>

#include "common/sim_clock.h"
#include "he/backend.h"
#include "net/network.h"

namespace vfps::net {

/// \brief Converts counted work (HE ops, bytes, plaintext arithmetic) into
/// simulated cluster seconds.
///
/// The paper evaluates on five AWS g4dn.xlarge instances connected by a
/// datacenter network; this reproduction runs in one process, so end-to-end
/// times are accounted analytically from exact operation counts. The default
/// constants are calibrated to the magnitudes reported for TenSEAL CKKS and
/// gRPC on that hardware:
///   - CKKS encrypt ~2 ms and decrypt ~1 ms per ciphertext (4096 slots),
///     homomorphic add ~0.05 ms;
///   - ~20 M partial-distance computations per second per core;
///   - 0.5 ms one-way latency, ~1 Gb/s effective bandwidth.
/// Absolute values are not the point (the paper's own absolute numbers are
/// hardware-specific); what matters is that the *ratios* between HE work,
/// plain compute, and traffic match, which is what produces the paper's
/// relative speedups.
struct CostModel {
  // Network.
  double latency_seconds = 0.5e-3;            // per message, one way
  double bytes_per_second = 125.0e6;          // ~1 Gb/s

  // Homomorphic encryption (per ciphertext operation).
  double encrypt_seconds = 2.0e-3;
  double decrypt_seconds = 1.0e-3;
  double he_add_seconds = 0.05e-3;

  // Plaintext compute.
  double distance_seconds = 5.0e-8;           // one partial distance (per feature block)
  double compare_seconds = 4.0e-9;            // one comparison (sorting, merging)

  // Downstream training (per sample per feature per epoch, split-learning).
  double train_sample_feature_seconds = 2.5e-8;

  // Analytic ciphertext model (CKKS n = 4096, two 54-bit primes): used so
  // that simulated times are identical no matter which HeBackend actually
  // executed (the plain backend is often substituted for speed in accuracy
  // benches; the time numbers must not change because of that).
  size_t slots_per_ciphertext = 2048;
  size_t ciphertext_bytes = 131341;  // serialized size of one ciphertext

  /// Ciphertexts needed to carry `values` packed reals (0 for 0 values).
  uint64_t NumCiphertexts(uint64_t values) const {
    if (values == 0) return 0;
    return (values + slots_per_ciphertext - 1) / slots_per_ciphertext;
  }

  /// Wire bytes of `values` packed reals under encryption.
  uint64_t EncryptedWireBytes(uint64_t values) const {
    return NumCiphertexts(values) * ciphertext_bytes;
  }

  double EncryptSecondsFor(uint64_t values) const {
    return static_cast<double>(NumCiphertexts(values)) * encrypt_seconds;
  }
  double DecryptSecondsFor(uint64_t values) const {
    return static_cast<double>(NumCiphertexts(values)) * decrypt_seconds;
  }
  /// One homomorphic vector addition over `values` packed reals.
  double HeAddSecondsFor(uint64_t values) const {
    return static_cast<double>(NumCiphertexts(values)) * he_add_seconds;
  }

  /// Seconds to move `bytes` in `messages` messages over one link.
  double NetworkSeconds(uint64_t bytes, uint64_t messages) const {
    return static_cast<double>(messages) * latency_seconds +
           static_cast<double>(bytes) / bytes_per_second;
  }

  double NetworkSeconds(const TrafficStats& traffic) const {
    return NetworkSeconds(traffic.bytes, traffic.messages);
  }

  /// Seconds of HE work implied by backend op counters.
  double HeSeconds(const he::HeOpStats& stats) const {
    return static_cast<double>(stats.encrypt_ops) * encrypt_seconds +
           static_cast<double>(stats.decrypt_ops) * decrypt_seconds +
           static_cast<double>(stats.add_ops) * he_add_seconds;
  }

  /// Charge the HE counters onto a clock, split by category, then reset them.
  void ChargeHe(const he::HeOpStats& stats, SimClock* clock) const {
    clock->Advance(CostCategory::kEncrypt,
                   static_cast<double>(stats.encrypt_ops) * encrypt_seconds);
    clock->Advance(CostCategory::kDecrypt,
                   static_cast<double>(stats.decrypt_ops) * decrypt_seconds);
    clock->Advance(CostCategory::kHeEval,
                   static_cast<double>(stats.add_ops) * he_add_seconds);
  }

  /// Seconds to compute `count` partial distances over `features` features.
  double DistanceSeconds(uint64_t count, uint64_t features) const {
    return static_cast<double>(count) * static_cast<double>(features) *
           distance_seconds;
  }

  /// Seconds to sort `n` keys (n log2 n comparisons).
  double SortSeconds(uint64_t n) const;

  /// Seconds for one epoch of split training over `samples` x `features`.
  double TrainEpochSeconds(uint64_t samples, uint64_t features) const {
    return static_cast<double>(samples) * static_cast<double>(features) *
           train_sample_feature_seconds;
  }
};

}  // namespace vfps::net

#endif  // VFPS_NET_COST_MODEL_H_

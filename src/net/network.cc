#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "net/fault.h"
#include "obs/metrics.h"

namespace vfps::net {

std::string NodeName(NodeId id) {
  if (id == kAggregationServer) return "agg-server";
  if (id == kKeyServer) return "key-server";
  if (id == 0) return "leader";
  return StrFormat("participant-%d", id);
}

SimNetwork::SimNetwork() = default;
SimNetwork::~SimNetwork() = default;
SimNetwork::SimNetwork(SimNetwork&&) noexcept = default;
SimNetwork& SimNetwork::operator=(SimNetwork&&) noexcept = default;

void SimNetwork::set_metrics(obs::MetricsRegistry* registry) {
  obs_registry_ = registry;
  party_counters_.clear();
  if (registry == nullptr) {
    tracer_ = nullptr;
    c_messages_ = c_bytes_ = nullptr;
    c_dropped_ = c_duplicated_ = c_corrupted_ = nullptr;
    c_delayed_ = c_delay_ns_ = c_swallowed_dead_ = nullptr;
    return;
  }
  // Cached so Send can stamp envelopes without touching the registry.
  // EnableTracing() must therefore precede set_metrics (the CLI does this).
  tracer_ = registry->tracer();
  c_messages_ = registry->GetCounter("net.messages");
  c_bytes_ = registry->GetCounter("net.bytes_sent");
  c_dropped_ = registry->GetCounter("net.faults.dropped");
  c_duplicated_ = registry->GetCounter("net.faults.duplicated");
  c_corrupted_ = registry->GetCounter("net.faults.corrupted");
  c_delayed_ = registry->GetCounter("net.faults.delayed");
  c_delay_ns_ = registry->GetCounter("net.faults.delay_ns");
  c_swallowed_dead_ = registry->GetCounter("net.faults.swallowed_dead");
}

void SimNetwork::Meter(const LinkKey& key, size_t bytes) {
  auto& stats = stats_[key];
  stats.messages += 1;
  stats.bytes += bytes;
  total_.messages += 1;
  total_.bytes += bytes;
  if (c_messages_ != nullptr) {
    c_messages_->Add(1);
    c_bytes_->Add(bytes);
    MeterParty(key, bytes);
  }
}

void SimNetwork::MeterParty(const LinkKey& key, size_t bytes) {
  // Attribute each link to its participant endpoint; server<->server links
  // (none exist today) would attribute to the leader, party 0.
  const NodeId party =
      key.first >= 1 ? key.first : (key.second >= 1 ? key.second : 0);
  auto it = party_counters_.find(party);
  if (it == party_counters_.end()) {
    const obs::MetricLabels labels{{"party", StrFormat("%d", party)}};
    it = party_counters_
             .emplace(party,
                      std::make_pair(obs_registry_->GetLabeledCounter(
                                         "net.party.messages", labels),
                                     obs_registry_->GetLabeledCounter(
                                         "net.party.bytes", labels)))
             .first;
  }
  it->second.first->Add(1);
  it->second.second->Add(bytes);
}

void SimNetwork::FaultInstant(const char* name, const LinkKey& key) {
  if (tracer_ == nullptr) return;
  tracer_->Instant(name, {{"from", NodeName(key.first)},
                          {"to", NodeName(key.second)}});
}

Status SimNetwork::Send(NodeId from, NodeId to, std::vector<uint8_t> payload) {
  if (from == to) {
    return Status::InvalidArgument("SimNetwork: self-send is not a message");
  }
  const LinkKey key{from, to};
  // Side-band causal metadata: the sender's open span, if any. Never metered.
  const obs::TraceContext ctx =
      tracer_ != nullptr ? obs::Tracer::Current() : obs::TraceContext{};
  if (injector_ == nullptr) {
    Meter(key, payload.size());
    queues_[key].push_back(Envelope{std::move(payload), ctx});
    return Status::OK();
  }

  const FaultInjector::Delivery fate = injector_->OnSend(from, to);
  if (fate.sender_dead) {
    // A crashed node emits nothing: no bytes on the wire, nothing metered.
    fault_stats_.swallowed_dead += 1;
    if (c_swallowed_dead_ != nullptr) c_swallowed_dead_->Add(1);
    FaultInstant("net.fault.sender_dead", key);
    return Status::OK();
  }
  // The payload left the sender; it is metered even if it is then lost.
  Meter(key, payload.size());
  if (fate.extra_delay > 0.0) {
    fault_stats_.delayed += 1;
    fault_stats_.delay_seconds += fate.extra_delay;
    fault_clock_->Advance(CostCategory::kNetwork, fate.extra_delay);
    if (c_delayed_ != nullptr) {
      c_delayed_->Add(1);
      c_delay_ns_->Add(static_cast<uint64_t>(std::llround(fate.extra_delay * 1e9)));
    }
    FaultInstant("net.fault.delayed", key);
  }
  if (injector_->NodeDead(to) || injector_->NodeAbsent(to)) {
    // Connection refused: the sender pays for the transmission but the dead
    // (or not-yet-joined) receiver consumes nothing.
    fault_stats_.swallowed_dead += 1;
    if (c_swallowed_dead_ != nullptr) c_swallowed_dead_->Add(1);
    FaultInstant("net.fault.receiver_dead", key);
    return Status::OK();
  }
  if (fate.dropped) {
    fault_stats_.dropped += 1;
    if (c_dropped_ != nullptr) c_dropped_->Add(1);
    FaultInstant("net.fault.dropped", key);
    return Status::OK();
  }
  if (fate.corrupt && !payload.empty()) {
    const uint64_t bit = fate.corrupt_bit % (payload.size() * 8);
    payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    fault_stats_.corrupted += 1;
    if (c_corrupted_ != nullptr) c_corrupted_->Add(1);
    FaultInstant("net.fault.corrupted", key);
  }
  if (fate.duplicate) {
    fault_stats_.duplicated += 1;
    if (c_duplicated_ != nullptr) c_duplicated_->Add(1);
    FaultInstant("net.fault.duplicated", key);
    Meter(key, payload.size());  // the duplicate also crossed the wire
    queues_[key].push_back(Envelope{payload, ctx});
  }
  queues_[key].push_back(Envelope{std::move(payload), ctx});
  return Status::OK();
}

Result<std::vector<uint8_t>> SimNetwork::Recv(NodeId from, NodeId to) {
  const LinkKey key{from, to};
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) {
    auto st = stats_.find(key);
    const uint64_t ever_sent = st == stats_.end() ? 0 : st->second.messages;
    return Status::ProtocolError(StrFormat(
        "SimNetwork: no pending message on link %s -> %s "
        "(%llu messages ever sent on this link, %zu pending network-wide)",
        NodeName(from).c_str(), NodeName(to).c_str(),
        static_cast<unsigned long long>(ever_sent), PendingCount()));
  }
  Envelope env = std::move(it->second.front());
  it->second.pop_front();
  last_recv_context_ = env.ctx;
  return std::move(env.payload);
}

size_t SimNetwork::PendingCount() const {
  size_t n = 0;
  for (const auto& [key, queue] : queues_) n += queue.size();
  return n;
}

TrafficStats SimNetwork::SentBy(NodeId node) const {
  TrafficStats out;
  for (const auto& [key, stats] : stats_) {
    if (key.first == node) out.Merge(stats);
  }
  return out;
}

TrafficStats SimNetwork::ReceivedBy(NodeId node) const {
  TrafficStats out;
  for (const auto& [key, stats] : stats_) {
    if (key.second == node) out.Merge(stats);
  }
  return out;
}

TrafficStats SimNetwork::LinkStats(NodeId from, NodeId to) const {
  auto it = stats_.find({from, to});
  return it == stats_.end() ? TrafficStats{} : it->second;
}

void SimNetwork::MergeStatsFrom(const SimNetwork& other) {
  for (const auto& [key, stats] : other.stats_) stats_[key].Merge(stats);
  total_.Merge(other.total_);
  fault_stats_.Merge(other.fault_stats_);
}

void SimNetwork::ResetStats() {
  stats_.clear();
  total_ = TrafficStats{};
  fault_stats_ = FaultStats{};
}

void SimNetwork::EnableFaults(const FaultSpec& spec, uint64_t seed,
                              SimClock* clock) {
  injector_ = std::make_unique<FaultInjector>(spec, seed);
  fault_clock_ = clock;
  fault_seed_ = seed;
}

const FaultSpec* SimNetwork::fault_spec() const {
  return injector_ == nullptr ? nullptr : &injector_->spec();
}

bool SimNetwork::NodeDead(NodeId node) const {
  if (std::binary_search(suspects_.begin(), suspects_.end(), node)) return true;
  return injector_ != nullptr && injector_->NodeDead(node);
}

std::vector<NodeId> SimNetwork::DeadNodes() const {
  std::vector<NodeId> dead =
      injector_ == nullptr ? std::vector<NodeId>{} : injector_->DeadNodes();
  dead.insert(dead.end(), suspects_.begin(), suspects_.end());
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  return dead;
}

std::vector<NodeId> SimNetwork::DepartedNodes() const {
  return injector_ == nullptr ? std::vector<NodeId>{}
                              : injector_->DepartedNodes();
}

std::vector<NodeId> SimNetwork::JoinedNodes() const {
  return injector_ == nullptr ? std::vector<NodeId>{}
                              : injector_->JoinedNodes();
}

std::vector<NodeId> SimNetwork::HealedNodes() const {
  return injector_ == nullptr ? std::vector<NodeId>{}
                              : injector_->HealedNodes();
}

bool SimNetwork::NodeAbsent(NodeId node) const {
  return injector_ != nullptr && injector_->NodeAbsent(node);
}

void SimNetwork::SuspectDead(NodeId node) {
  auto it = std::lower_bound(suspects_.begin(), suspects_.end(), node);
  if (it == suspects_.end() || *it != node) suspects_.insert(it, node);
}

void SimNetwork::MarkHealed(NodeId node) {
  if (injector_ != nullptr) injector_->MarkHealed(node);
  // A healed suspect is no longer a suspect.
  auto it = std::lower_bound(suspects_.begin(), suspects_.end(), node);
  if (it != suspects_.end() && *it == node) suspects_.erase(it);
}

void SimNetwork::MarkJoined(NodeId node) {
  if (injector_ != nullptr) injector_->MarkJoined(node);
}

}  // namespace vfps::net

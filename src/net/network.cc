#include "net/network.h"

#include "common/string_util.h"

namespace vfps::net {

std::string NodeName(NodeId id) {
  if (id == kAggregationServer) return "agg-server";
  if (id == kKeyServer) return "key-server";
  if (id == 0) return "leader";
  return StrFormat("participant-%d", id);
}

Status SimNetwork::Send(NodeId from, NodeId to, std::vector<uint8_t> payload) {
  if (from == to) {
    return Status::InvalidArgument("SimNetwork: self-send is not a message");
  }
  const LinkKey key{from, to};
  auto& stats = stats_[key];
  stats.messages += 1;
  stats.bytes += payload.size();
  total_.messages += 1;
  total_.bytes += payload.size();
  queues_[key].push_back(std::move(payload));
  return Status::OK();
}

Result<std::vector<uint8_t>> SimNetwork::Recv(NodeId from, NodeId to) {
  const LinkKey key{from, to};
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) {
    return Status::ProtocolError(
        StrFormat("SimNetwork: no pending message on link %s -> %s",
                  NodeName(from).c_str(), NodeName(to).c_str()));
  }
  std::vector<uint8_t> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

size_t SimNetwork::PendingCount() const {
  size_t n = 0;
  for (const auto& [key, queue] : queues_) n += queue.size();
  return n;
}

TrafficStats SimNetwork::SentBy(NodeId node) const {
  TrafficStats out;
  for (const auto& [key, stats] : stats_) {
    if (key.first == node) out.Merge(stats);
  }
  return out;
}

TrafficStats SimNetwork::ReceivedBy(NodeId node) const {
  TrafficStats out;
  for (const auto& [key, stats] : stats_) {
    if (key.second == node) out.Merge(stats);
  }
  return out;
}

TrafficStats SimNetwork::LinkStats(NodeId from, NodeId to) const {
  auto it = stats_.find({from, to});
  return it == stats_.end() ? TrafficStats{} : it->second;
}

void SimNetwork::MergeStatsFrom(const SimNetwork& other) {
  for (const auto& [key, stats] : other.stats_) stats_[key].Merge(stats);
  total_.Merge(other.total_);
}

void SimNetwork::ResetStats() {
  stats_.clear();
  total_ = TrafficStats{};
}

}  // namespace vfps::net

#include "net/fault.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace vfps::net {

Status FaultSpec::Validate() const {
  for (double p : {drop_prob, duplicate_prob, corrupt_prob, delay_prob}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          StrFormat("fault-spec: probability %g outside [0, 1]", p));
    }
  }
  if (delay_seconds < 0.0) {
    return Status::InvalidArgument("fault-spec: negative delay seconds");
  }
  if (delay_prob > 0.0 && delay_seconds == 0.0) {
    return Status::InvalidArgument(
        "fault-spec: delay probability set but delay seconds is 0 "
        "(use delay=PROB:SECONDS)");
  }
  // Churn rules name participants only: the leader (node 0) and the servers
  // (negative ids) are structural — their departure is not repairable.
  for (const LeaveRule& rule : leaves) {
    if (rule.node < 1) {
      return Status::InvalidArgument(StrFormat(
          "fault-spec: leave= names node %lld; only participants (>= 1) "
          "can churn", static_cast<long long>(rule.node)));
    }
  }
  for (const JoinRule& rule : joins) {
    if (rule.node < 1) {
      return Status::InvalidArgument(StrFormat(
          "fault-spec: join= names node %lld; only participants (>= 1) "
          "can churn", static_cast<long long>(rule.node)));
    }
  }
  for (const HealRule& rule : heals) {
    if (rule.node < 1) {
      return Status::InvalidArgument(StrFormat(
          "fault-spec: heal= names node %lld; only participants (>= 1) "
          "can churn", static_cast<long long>(rule.node)));
    }
  }
  for (const PartitionRule& rule : partitions) {
    if (rule.node < 1) {
      return Status::InvalidArgument(StrFormat(
          "fault-spec: part= names node %lld; only participants (>= 1) "
          "can be partitioned", static_cast<long long>(rule.node)));
    }
    if (rule.drop_count < 1) {
      return Status::InvalidArgument("fault-spec: part COUNT must be >= 1");
    }
  }
  return Status::OK();
}

std::vector<NodeId> FaultSpec::InitialAbsentees() const {
  std::vector<NodeId> absent;
  for (const JoinRule& rule : joins) absent.push_back(rule.node);
  std::sort(absent.begin(), absent.end());
  absent.erase(std::unique(absent.begin(), absent.end()), absent.end());
  return absent;
}

namespace {
Result<double> ParseProb(std::string_view value, const char* key) {
  VFPS_ASSIGN_OR_RETURN(double p, ParseDouble(value));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(
        StrFormat("fault-spec: %s=%g outside [0, 1]", key, p));
  }
  return p;
}

// "NODE@AFTER" -> (node, after); shared by crash= and the stall= prefix.
Status ParseNodeAt(std::string_view value, NodeId* node, uint64_t* after) {
  const auto at = value.find('@');
  if (at == std::string_view::npos) {
    return Status::InvalidArgument(
        "fault-spec: expected NODE@AFTER_SENDS, e.g. crash=2@40");
  }
  VFPS_ASSIGN_OR_RETURN(int64_t id, ParseInt64(value.substr(0, at)));
  VFPS_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value.substr(at + 1)));
  if (n < 1) {
    return Status::InvalidArgument("fault-spec: AFTER_SENDS must be >= 1");
  }
  *node = static_cast<NodeId>(id);
  *after = static_cast<uint64_t>(n);
  return Status::OK();
}
}  // namespace

Result<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  if (TrimString(text).empty()) return spec;
  for (const std::string& term : SplitString(text, ',')) {
    const std::string_view trimmed = TrimString(term);
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("fault-spec: term '%.*s' is not key=value",
                    static_cast<int>(trimmed.size()), trimmed.data()));
    }
    const std::string_view key = trimmed.substr(0, eq);
    const std::string_view value = trimmed.substr(eq + 1);
    if (key == "drop") {
      VFPS_ASSIGN_OR_RETURN(spec.drop_prob, ParseProb(value, "drop"));
    } else if (key == "dup") {
      VFPS_ASSIGN_OR_RETURN(spec.duplicate_prob, ParseProb(value, "dup"));
    } else if (key == "corrupt") {
      VFPS_ASSIGN_OR_RETURN(spec.corrupt_prob, ParseProb(value, "corrupt"));
    } else if (key == "delay") {
      const auto colon = value.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument(
            "fault-spec: delay needs PROB:SECONDS, e.g. delay=0.1:0.05");
      }
      VFPS_ASSIGN_OR_RETURN(spec.delay_prob,
                            ParseProb(value.substr(0, colon), "delay"));
      VFPS_ASSIGN_OR_RETURN(spec.delay_seconds,
                            ParseDouble(value.substr(colon + 1)));
    } else if (key == "crash") {
      CrashRule rule;
      VFPS_RETURN_NOT_OK(ParseNodeAt(value, &rule.node, &rule.after_sends));
      spec.crashes.push_back(rule);
    } else if (key == "stall") {
      const auto plus = value.find('+');
      if (plus == std::string_view::npos) {
        return Status::InvalidArgument(
            "fault-spec: stall needs NODE@AFTER+COUNT, e.g. stall=3@10+5");
      }
      StallRule rule;
      VFPS_RETURN_NOT_OK(
          ParseNodeAt(value.substr(0, plus), &rule.node, &rule.after_sends));
      VFPS_ASSIGN_OR_RETURN(int64_t count, ParseInt64(value.substr(plus + 1)));
      if (count < 1) {
        return Status::InvalidArgument("fault-spec: stall COUNT must be >= 1");
      }
      rule.drop_count = static_cast<uint64_t>(count);
      spec.stalls.push_back(rule);
    } else if (key == "leave") {
      LeaveRule rule;
      VFPS_RETURN_NOT_OK(ParseNodeAt(value, &rule.node, &rule.after_sends));
      spec.leaves.push_back(rule);
    } else if (key == "join") {
      JoinRule rule;
      VFPS_RETURN_NOT_OK(ParseNodeAt(value, &rule.node, &rule.after_sends));
      spec.joins.push_back(rule);
    } else if (key == "heal") {
      HealRule rule;
      VFPS_RETURN_NOT_OK(ParseNodeAt(value, &rule.node, &rule.after_sends));
      spec.heals.push_back(rule);
    } else if (key == "part") {
      const auto plus = value.find('+');
      if (plus == std::string_view::npos) {
        return Status::InvalidArgument(
            "fault-spec: part needs NODE@AFTER+COUNT, e.g. part=3@10+20");
      }
      PartitionRule rule;
      VFPS_RETURN_NOT_OK(
          ParseNodeAt(value.substr(0, plus), &rule.node, &rule.after_sends));
      VFPS_ASSIGN_OR_RETURN(int64_t count, ParseInt64(value.substr(plus + 1)));
      if (count < 1) {
        return Status::InvalidArgument("fault-spec: part COUNT must be >= 1");
      }
      rule.drop_count = static_cast<uint64_t>(count);
      spec.partitions.push_back(rule);
    } else {
      return Status::InvalidArgument(
          StrFormat("fault-spec: unknown key '%.*s'",
                    static_cast<int>(key.size()), key.data()));
    }
  }
  VFPS_RETURN_NOT_OK(spec.Validate());
  return spec;
}

FaultInjector::Delivery FaultInjector::OnSend(NodeId from, NodeId to) {
  // The stream-total is the stream's clock: it ticks on every send attempt,
  // even swallowed ones, so join/heal/partition windows keep advancing while
  // a node is down. The Bernoulli stream below is untouched by this counter.
  ++total_sends_;
  Delivery d;
  if (NodeDead(from) || NodeAbsent(from)) {
    d.sender_dead = true;
    return d;  // dead nodes emit nothing; the Bernoulli stream does not advance
  }
  const uint64_t send_index = ++sends_by_node_[from];  // 1-based

  // A stalled sender's message is metered (it left the NIC) but lost.
  for (const StallRule& rule : spec_.stalls) {
    if (rule.node == from && send_index >= rule.after_sends &&
        send_index < rule.after_sends + rule.drop_count) {
      d.dropped = true;
    }
  }
  // A partitioned node's traffic is metered but lost in both directions
  // while the stream-total is inside the window (1-based, so the send that
  // moved the total to `after_sends` is the first one lost).
  for (const PartitionRule& rule : spec_.partitions) {
    if ((rule.node == from || rule.node == to) &&
        total_sends_ >= rule.after_sends &&
        total_sends_ < rule.after_sends + rule.drop_count) {
      d.dropped = true;
    }
  }
  // Bernoulli rules, drawn in fixed order so the fault stream is a pure
  // function of the send sequence.
  if (spec_.drop_prob > 0.0 && rng_.Bernoulli(spec_.drop_prob)) {
    d.dropped = true;
  }
  if (spec_.duplicate_prob > 0.0 && rng_.Bernoulli(spec_.duplicate_prob)) {
    d.duplicate = true;
  }
  if (spec_.corrupt_prob > 0.0 && rng_.Bernoulli(spec_.corrupt_prob)) {
    d.corrupt = true;
    d.corrupt_bit = rng_.Next();
  }
  if (spec_.delay_prob > 0.0 && rng_.Bernoulli(spec_.delay_prob)) {
    d.extra_delay = spec_.delay_seconds;
  }
  return d;
}

bool FaultInjector::NodeHealed(NodeId node) const {
  if (pre_healed_.count(node) != 0) return true;
  for (const HealRule& rule : spec_.heals) {
    if (rule.node == node && total_sends_ >= rule.after_sends) return true;
  }
  return false;
}

bool FaultInjector::NodeDead(NodeId node) const {
  auto it = sends_by_node_.find(node);
  const uint64_t sent = it == sends_by_node_.end() ? 0 : it->second;
  bool down = false;
  for (const CrashRule& rule : spec_.crashes) {
    if (rule.node == node && sent >= rule.after_sends) down = true;
  }
  for (const LeaveRule& rule : spec_.leaves) {
    if (rule.node == node && sent >= rule.after_sends) down = true;
  }
  return down && !NodeHealed(node);
}

bool FaultInjector::NodeAbsent(NodeId node) const {
  if (pre_joined_.count(node) != 0) return false;
  bool has_join = false;
  for (const JoinRule& rule : spec_.joins) {
    if (rule.node != node) continue;
    has_join = true;
    if (total_sends_ >= rule.after_sends) return false;  // joined
  }
  return has_join;
}

namespace {
void SortUnique(std::vector<NodeId>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}
}  // namespace

std::vector<NodeId> FaultInjector::DeadNodes() const {
  std::vector<NodeId> dead;
  for (const CrashRule& rule : spec_.crashes) {
    if (NodeDead(rule.node)) dead.push_back(rule.node);
  }
  for (const LeaveRule& rule : spec_.leaves) {
    if (NodeDead(rule.node)) dead.push_back(rule.node);
  }
  SortUnique(&dead);
  return dead;
}

std::vector<NodeId> FaultInjector::DepartedNodes() const {
  std::vector<NodeId> departed;
  for (const LeaveRule& rule : spec_.leaves) {
    if (NodeHealed(rule.node)) continue;
    auto it = sends_by_node_.find(rule.node);
    const uint64_t sent = it == sends_by_node_.end() ? 0 : it->second;
    if (sent >= rule.after_sends) departed.push_back(rule.node);
  }
  SortUnique(&departed);
  return departed;
}

std::vector<NodeId> FaultInjector::JoinedNodes() const {
  std::vector<NodeId> joined;
  for (const JoinRule& rule : spec_.joins) {
    if (!NodeAbsent(rule.node)) joined.push_back(rule.node);
  }
  SortUnique(&joined);
  return joined;
}

std::vector<NodeId> FaultInjector::HealedNodes() const {
  std::vector<NodeId> healed;
  for (const HealRule& rule : spec_.heals) {
    if (total_sends_ >= rule.after_sends) healed.push_back(rule.node);
  }
  SortUnique(&healed);
  return healed;
}

}  // namespace vfps::net

#include "vfl/sharded_knn.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "ml/kernels.h"
#include "ml/kmeans.h"

namespace vfps::vfl {

namespace {
constexpr size_t kPrefilterKmeansIters = 8;

// One query's slice of every party's columns, gathered once up front so the
// shard loop never touches the (virtual) full matrix again.
struct QuerySlices {
  std::vector<std::vector<double>> values;  // [party] -> gathered columns
  std::vector<double> norms;                // [party] -> squared norm
};
}  // namespace

Result<ShardedKnnOutput> RunShardedKnn(const data::SyntheticConfig& data_config,
                                       const data::VerticalPartition& partition,
                                       const ShardedKnnConfig& config) {
  VFPS_CHECK_ARG(config.shards >= 1, "sharded-knn: shards must be >= 1");
  VFPS_CHECK_ARG(config.k >= 1, "sharded-knn: k must be >= 1");
  VFPS_CHECK_ARG(config.num_queries >= 1, "sharded-knn: need >= 1 query");
  VFPS_CHECK_ARG(!partition.empty(), "sharded-knn: empty partition");

  VFPS_ASSIGN_OR_RETURN(auto stream,
                        data::SyntheticShardStream::Create(data_config));
  const size_t n = stream.num_rows();
  const size_t f = stream.num_features();
  const size_t p = partition.size();
  VFPS_CHECK_ARG(n > config.k + 1, "sharded-knn: dataset smaller than k");
  for (const auto& columns : partition) {
    for (size_t col : columns) {
      VFPS_CHECK_ARG(col < f, "sharded-knn: partition column out of range");
    }
  }
  VFPS_ASSIGN_OR_RETURN(auto plan, data::MakeRowShards(n, config.shards));

  // Sample the query rows and materialize ONLY those rows' features (one
  // single-row stream fetch each — the full matrix never exists).
  Rng rng(config.seed);
  const size_t num_queries = std::min(config.num_queries, n);
  const std::vector<size_t> query_rows =
      rng.SampleWithoutReplacement(n, num_queries);
  std::vector<QuerySlices> slices(num_queries);
  {
    std::vector<std::vector<size_t>> columns(partition.begin(),
                                             partition.end());
    for (size_t qi = 0; qi < num_queries; ++qi) {
      VFPS_ASSIGN_OR_RETURN(
          auto qdata, stream.Rows(query_rows[qi], query_rows[qi] + 1));
      const double* qrow = qdata.Row(0);
      slices[qi].values.resize(p);
      slices[qi].norms.resize(p);
      for (size_t party = 0; party < p; ++party) {
        auto& v = slices[qi].values[party];
        v.resize(columns[party].size());
        for (size_t j = 0; j < v.size(); ++j) v[j] = qrow[columns[party][j]];
        slices[qi].norms[party] = ml::SquaredNorm(v.data(), v.size());
      }
    }
  }

  ShardedKnnOutput out;
  out.query_rows.assign(query_rows.begin(), query_rows.end());

  // Per-query shard-local top-k lists, merged hierarchically at the end.
  // O(Q x S x k) entries — the only state that outlives a shard.
  std::vector<std::vector<topk::ShardTopk>> per_query_tops(num_queries);

  std::vector<double> agg;      // aggregate distances, reused across queries
  std::vector<double> partial;  // one party's distances, reused likewise
  for (const data::RowShard& shard : plan) {
    const size_t m = shard.rows();
    if (m == 0) continue;
    out.max_shard_rows = std::max(out.max_shard_rows, m);

    // Materialize this shard's rows and pack per-party blocks over them; the
    // previous shard's data is already freed (scoped per iteration).
    VFPS_ASSIGN_OR_RETURN(auto shard_data, stream.Rows(shard.begin, shard.end));
    std::vector<ml::FeatureBlock> blocks;
    blocks.reserve(p);
    for (size_t party = 0; party < p; ++party) {
      blocks.emplace_back(shard_data, partition[party]);
    }

    // Optional pre-filter: per-party clustering of THIS shard's rows. The
    // seed mixes in shard.begin so every (shard, party) model is independent
    // but reproducible.
    std::vector<ml::KMeansResult> models;
    if (config.prefilter_clusters > 0) {
      models.reserve(p);
      for (size_t party = 0; party < p; ++party) {
        VFPS_ASSIGN_OR_RETURN(
            auto km,
            ml::KMeansCluster(blocks[party], config.prefilter_clusters,
                              config.seed ^ (shard.begin * 0x9E3779B97F4A7C15ULL + party),
                              kPrefilterKmeansIters));
        models.push_back(std::move(km));
      }
    }

    agg.resize(m);
    partial.resize(m);
    std::vector<uint8_t> mask;
    const size_t target = std::max<size_t>(4 * config.k, 32);
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const QuerySlices& qs = slices[qi];
      const size_t query_row = query_rows[qi];
      const double inf = std::numeric_limits<double>::infinity();

      if (models.empty()) {
        // Exact scan: one SIMD range-kernel sweep per party over the whole
        // shard, summed in fixed party order (per-row values — and therefore
        // the final (value, id) ranking — are independent of the layout).
        std::fill(agg.begin(), agg.end(), 0.0);
        for (size_t party = 0; party < p; ++party) {
          ml::BlockSquaredDistances(blocks[party], qs.values[party].data(),
                                    qs.norms[party], 0, m, partial.data());
          for (size_t i = 0; i < m; ++i) agg[i] += partial[i];
        }
        out.candidates_scored += m;
        if (shard.contains(query_row)) agg[query_row - shard.begin] = inf;
        const auto top = ml::SmallestK(agg.data(), m, config.k);
        topk::ShardTopk st;
        st.values.reserve(top.size());
        st.ids.reserve(top.size());
        for (uint64_t li : top) {
          if (agg[li] == inf) continue;  // the query row itself
          st.values.push_back(agg[li]);
          st.ids.push_back(shard.begin + li);
        }
        per_query_tops[qi].push_back(std::move(st));
        continue;
      }

      // Pre-filtered scan: each party nominates the member rows of its
      // clusters nearest the query until the coverage target is met; only
      // the union pays per-row distance work.
      mask.assign(m, 0);
      for (size_t party = 0; party < p; ++party) {
        const ml::KMeansResult& km = models[party];
        std::vector<std::pair<double, uint32_t>> ranked;
        ranked.reserve(km.clusters);
        for (size_t c = 0; c < km.clusters; ++c) {
          const double* centroid = km.centroid(c);
          const double dot = ml::DotProduct(qs.values[party].data(), centroid,
                                            km.cols);
          const double c_norm = ml::SquaredNorm(centroid, km.cols);
          ranked.emplace_back(qs.norms[party] + c_norm - 2.0 * dot,
                              static_cast<uint32_t>(c));
        }
        std::sort(ranked.begin(), ranked.end());
        size_t covered = 0;
        for (const auto& [dist, c] : ranked) {
          (void)dist;
          for (uint32_t row : km.members[c]) mask[row] = 1;
          covered += km.members[c].size();
          if (covered >= target) break;
        }
      }
      if (shard.contains(query_row)) mask[query_row - shard.begin] = 0;

      std::vector<uint64_t> cand;
      for (size_t i = 0; i < m; ++i) {
        if (mask[i] != 0) cand.push_back(i);
      }
      out.candidates_scored += cand.size();
      std::vector<double> cand_agg(cand.size(), 0.0);
      for (size_t party = 0; party < p; ++party) {
        const ml::FeatureBlock& block = blocks[party];
        for (size_t ci = 0; ci < cand.size(); ++ci) {
          double d = 0.0;
          ml::BlockSquaredDistances(block, qs.values[party].data(),
                                    qs.norms[party], cand[ci], cand[ci] + 1,
                                    &d);
          cand_agg[ci] += d;
        }
      }
      const auto top = ml::SmallestK(cand_agg.data(), cand.size(), config.k);
      // Candidate positions are ascending local rows, so the (value, id)
      // order SmallestK yields survives the id mapping verbatim.
      topk::ShardTopk st;
      st.values.reserve(top.size());
      st.ids.reserve(top.size());
      for (uint64_t ci : top) {
        st.values.push_back(cand_agg[ci]);
        st.ids.push_back(shard.begin + cand[ci]);
      }
      per_query_tops[qi].push_back(std::move(st));
    }
  }

  out.neighbors.resize(num_queries);
  out.distances.resize(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    VFPS_ASSIGN_OR_RETURN(
        auto merged,
        topk::HierarchicalTopkMerge(std::move(per_query_tops[qi]), config.k,
                                    &out.merge_stats));
    out.neighbors[qi] = std::move(merged.ids);
    out.distances[qi] = std::move(merged.values);
  }
  return out;
}

}  // namespace vfps::vfl

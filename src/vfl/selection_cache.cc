#include "vfl/selection_cache.h"

#include <algorithm>
#include <utility>

namespace vfps::vfl {

void SelectionCache::Rekey(const Key& key) {
  if (bound_ && key == key_) return;
  key_ = key;
  bound_ = true;
  units_.assign(key.num_units, CachedUnit{});
}

void SelectionCache::Absorb(size_t u, CachedUnit&& produced) {
  if (u >= units_.size()) return;
  CachedUnit& unit = units_[u];
  for (auto& [party, state] : produced.parties) {
    PartyUnitState& dst = unit.parties[party];
    if (!state.values.empty()) {
      dst = std::move(state);
    } else {
      dst.streamed_depth = std::max(dst.streamed_depth, state.streamed_depth);
    }
  }
}

void SelectionCache::Clear() {
  bound_ = false;
  key_ = Key{};
  units_.clear();
}

size_t SelectionCache::CachedContributions() const {
  size_t n = 0;
  for (const CachedUnit& unit : units_) n += unit.parties.size();
  return n;
}

}  // namespace vfps::vfl

#include "vfl/split_lr.h"

#include <algorithm>
#include <cmath>

#include "common/buffer.h"
#include "common/macros.h"
#include "common/random.h"
#include "ml/metrics.h"
#include "ml/optimizer.h"

namespace vfps::vfl {

namespace {
constexpr net::NodeId kLeader = 0;

std::vector<uint8_t> EncodeDoubles(const std::vector<double>& v) {
  BinaryWriter writer;
  writer.WriteDoubleVec(v);
  return writer.TakeBytes();
}

Result<std::vector<double>> DecodeDoubles(const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  return reader.ReadDoubleVec();
}

std::vector<uint8_t> EncodeIds(const std::vector<size_t>& ids) {
  BinaryWriter writer;
  std::vector<uint64_t> wide(ids.begin(), ids.end());
  writer.WriteU64Vec(wide);
  return writer.TakeBytes();
}
}  // namespace

SplitLrProtocol::SplitLrProtocol(const data::DataSplit* split,
                                 const data::VerticalPartition* partition,
                                 std::vector<size_t> selected,
                                 he::HeBackend* backend,
                                 net::SimNetwork* network,
                                 const net::CostModel* cost_model,
                                 SimClock* clock)
    : split_(split),
      partition_(partition),
      selected_(std::move(selected)),
      backend_(backend),
      network_(network),
      cost_(cost_model),
      clock_(clock) {}

Result<std::vector<double>> SplitLrProtocol::ForwardBatch(
    const data::Dataset& source, const std::vector<size_t>& rows) {
  const size_t c = num_classes_;
  const size_t batch = rows.size();

  // The leader shares the batch row ids (shared sample indices, no features).
  for (size_t party : selected_) {
    if (party == 0) continue;
    VFPS_RETURN_NOT_OK(
        network_->Send(kLeader, static_cast<int>(party), EncodeIds(rows)));
    VFPS_RETURN_NOT_OK(network_->Recv(kLeader, static_cast<int>(party)).status());
  }

  // Each participant computes its partial logits, encrypts, sends to the
  // aggregation server.
  std::vector<he::EncryptedVector> encrypted(selected_.size());
  std::vector<const he::EncryptedVector*> ptrs(selected_.size());
  for (size_t idx = 0; idx < selected_.size(); ++idx) {
    const size_t party = selected_[idx];
    const auto& columns = (*partition_)[party];
    const double* w = weights_[idx].data();
    std::vector<double> partial(batch * c, 0.0);
    for (size_t b = 0; b < batch; ++b) {
      const double* row = source.Row(rows[b]);
      double* out = partial.data() + b * c;
      for (size_t f = 0; f < columns.size(); ++f) {
        const double x = row[columns[f]];
        if (x == 0.0) continue;
        const double* wrow = w + f * c;
        for (size_t j = 0; j < c; ++j) out[j] += x * wrow[j];
      }
      if (party == 0) {
        for (size_t j = 0; j < c; ++j) out[j] += bias_[j];
      }
    }
    VFPS_ASSIGN_OR_RETURN(encrypted[idx], backend_->Encrypt(partial));
    VFPS_RETURN_NOT_OK(network_->Send(static_cast<int>(party),
                                      net::kAggregationServer,
                                      encrypted[idx].blob));
  }

  // Aggregation server: homomorphic sum, forward to the leader.
  for (size_t idx = 0; idx < selected_.size(); ++idx) {
    VFPS_ASSIGN_OR_RETURN(
        auto blob,
        network_->Recv(static_cast<int>(selected_[idx]), net::kAggregationServer));
    encrypted[idx] = he::EncryptedVector{std::move(blob), batch * c};
    ptrs[idx] = &encrypted[idx];
  }
  VFPS_ASSIGN_OR_RETURN(auto summed, backend_->Sum(ptrs));
  VFPS_RETURN_NOT_OK(network_->Send(net::kAggregationServer, kLeader, summed.blob));

  // Leader: decrypt the aggregated logits.
  VFPS_ASSIGN_OR_RETURN(auto blob, network_->Recv(net::kAggregationServer, kLeader));
  return backend_->Decrypt(he::EncryptedVector{std::move(blob), batch * c});
}

Result<double> SplitLrProtocol::DatasetLoss(const data::Dataset& dataset) {
  const size_t c = num_classes_;
  std::vector<size_t> rows(dataset.num_samples());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  VFPS_ASSIGN_OR_RETURN(auto logits, ForwardBatch(dataset, rows));
  for (size_t i = 0; i < rows.size(); ++i) {
    ml::SoftmaxInPlace(logits.data() + i * c, c);
  }
  return ml::CrossEntropy(logits, c, dataset.labels());
}

Result<SplitLrProtocol::Outcome> SplitLrProtocol::Train(
    const ml::TrainConfig& config) {
  VFPS_CHECK_ARG(!selected_.empty(), "split-lr: empty selection");
  VFPS_CHECK_ARG(std::find(selected_.begin(), selected_.end(), size_t{0}) !=
                     selected_.end(),
                 "split-lr: the leader (participant 0) must take part");
  const data::Dataset& train = split_->train;
  VFPS_CHECK_ARG(train.num_samples() > 0, "split-lr: empty training set");
  num_classes_ = static_cast<size_t>(train.num_classes());
  const size_t c = num_classes_;

  const net::TrafficStats traffic_before = network_->total();
  const he::HeOpStats he_before = backend_->stats();

  // Initialize slices.
  weights_.assign(selected_.size(), {});
  std::vector<ml::Adam> optimizers(selected_.size(),
                                   ml::Adam(config.learning_rate));
  for (size_t idx = 0; idx < selected_.size(); ++idx) {
    weights_[idx].assign((*partition_)[selected_[idx]].size() * c, 0.0);
  }
  bias_.assign(c, 0.0);
  ml::Adam bias_optimizer(config.learning_rate);

  Rng rng(config.seed);
  ml::EarlyStopper stopper(config.patience);
  size_t epochs = 0;
  const bool has_valid = split_->valid.num_samples() > 0;

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    const auto order = rng.Permutation(train.num_samples());
    const auto batches =
        ml::MakeBatches(train.num_samples(), config.batch_size, order);
    for (const auto& batch : batches) {
      VFPS_ASSIGN_OR_RETURN(auto logits, ForwardBatch(train, batch));
      // Leader: residuals r = (softmax - onehot) / B against its labels.
      const double inv = 1.0 / static_cast<double>(batch.size());
      for (size_t b = 0; b < batch.size(); ++b) {
        double* row = logits.data() + b * c;
        ml::SoftmaxInPlace(row, c);
        row[static_cast<size_t>(train.Label(batch[b]))] -= 1.0;
        for (size_t j = 0; j < c; ++j) row[j] *= inv;
      }
      // Leader returns the residuals to every participant (see the
      // threat-model note in the header).
      for (size_t party : selected_) {
        if (party == 0) continue;
        VFPS_RETURN_NOT_OK(network_->Send(kLeader, static_cast<int>(party),
                                          EncodeDoubles(logits)));
      }
      // Each participant computes its local gradient and steps its Adam.
      for (size_t idx = 0; idx < selected_.size(); ++idx) {
        const size_t party = selected_[idx];
        std::vector<double> residuals = logits;
        if (party != 0) {
          VFPS_ASSIGN_OR_RETURN(
              auto payload, network_->Recv(kLeader, static_cast<int>(party)));
          VFPS_ASSIGN_OR_RETURN(residuals, DecodeDoubles(payload));
        }
        const auto& columns = (*partition_)[party];
        std::vector<double> grad(columns.size() * c, 0.0);
        for (size_t b = 0; b < batch.size(); ++b) {
          const double* row = train.Row(batch[b]);
          const double* r = residuals.data() + b * c;
          for (size_t f = 0; f < columns.size(); ++f) {
            const double x = row[columns[f]];
            if (x == 0.0) continue;
            double* grow = grad.data() + f * c;
            for (size_t j = 0; j < c; ++j) grow[j] += x * r[j];
          }
        }
        if (config.l2 > 0.0) {
          for (size_t i = 0; i < grad.size(); ++i) {
            grad[i] += config.l2 * weights_[idx][i];
          }
        }
        optimizers[idx].Step(&weights_[idx], grad);
        if (party == 0) {
          std::vector<double> grad_bias(c, 0.0);
          for (size_t b = 0; b < batch.size(); ++b) {
            const double* r = residuals.data() + b * c;
            for (size_t j = 0; j < c; ++j) grad_bias[j] += r[j];
          }
          bias_optimizer.Step(&bias_, grad_bias);
        }
      }
    }
    ++epochs;
    double monitored;
    if (has_valid) {
      VFPS_ASSIGN_OR_RETURN(monitored, DatasetLoss(split_->valid));
    } else {
      VFPS_ASSIGN_OR_RETURN(monitored, DatasetLoss(train));
    }
    if (stopper.ShouldStop(monitored)) break;
  }

  // Evaluate on the test split through the same protocol.
  Outcome outcome;
  outcome.epochs = epochs;
  {
    const data::Dataset& test = split_->test;
    std::vector<size_t> rows(test.num_samples());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    VFPS_ASSIGN_OR_RETURN(auto logits, ForwardBatch(test, rows));
    std::vector<int> preds(test.num_samples());
    for (size_t i = 0; i < preds.size(); ++i) {
      preds[i] = static_cast<int>(ml::ArgMax(logits.data() + i * c, c));
    }
    outcome.test_accuracy = ml::Accuracy(preds, test.labels());
  }

  // Charge the clock from what actually happened: measured traffic, measured
  // HE operations, plus plaintext compute at the training rate.
  const net::TrafficStats traffic_after = network_->total();
  outcome.traffic.messages = traffic_after.messages - traffic_before.messages;
  outcome.traffic.bytes = traffic_after.bytes - traffic_before.bytes;
  const he::HeOpStats he_after = backend_->stats();
  outcome.he_ops.encrypt_ops = he_after.encrypt_ops - he_before.encrypt_ops;
  outcome.he_ops.decrypt_ops = he_after.decrypt_ops - he_before.decrypt_ops;
  outcome.he_ops.add_ops = he_after.add_ops - he_before.add_ops;
  outcome.he_ops.values_encrypted =
      he_after.values_encrypted - he_before.values_encrypted;
  outcome.he_ops.values_decrypted =
      he_after.values_decrypted - he_before.values_decrypted;
  outcome.he_ops.values_added = he_after.values_added - he_before.values_added;

  const size_t features = data::SelectedFeatureCount(*partition_, selected_);
  const double compute =
      static_cast<double>(epochs) *
      cost_->TrainEpochSeconds(train.num_samples(), features);
  const double network_seconds = cost_->NetworkSeconds(outcome.traffic);
  const double he_seconds = cost_->HeSeconds(outcome.he_ops);
  outcome.sim_seconds = compute + network_seconds + he_seconds;
  if (clock_ != nullptr) {
    clock_->Advance(CostCategory::kTraining, outcome.sim_seconds);
  }
  return outcome;
}

}  // namespace vfps::vfl

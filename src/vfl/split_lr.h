#ifndef VFPS_VFL_SPLIT_LR_H_
#define VFPS_VFL_SPLIT_LR_H_

#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "he/backend.h"
#include "ml/train_config.h"
#include "net/cost_model.h"
#include "net/network.h"

namespace vfps::vfl {

/// \brief Federated split logistic regression with the actual message flow
/// (paper §V-A: "each participant maintains a single linear layer, and the
/// server aggregates the outputs of the participants by summing them",
/// HE-protecting the transmitted outputs).
///
/// Unlike vfl::RunDownstreamTraining — which trains the mathematically
/// equivalent centralized model and charges an analytic cost model — this
/// class executes the protocol for real: per mini-batch, every selected
/// participant encrypts its partial logits, the aggregation server
/// homomorphically sums them, the leader decrypts, forms the softmax
/// residuals against its labels, and returns them to the participants, who
/// update their own weight slices with local Adam optimizers. All payloads
/// cross the byte-metered SimNetwork; clock charges come from the *measured*
/// HE-op and traffic deltas plus the compute rate.
///
/// Threat-model note (documented deviation shared with vanilla split
/// learning): the returned residuals are plaintext, so participants learn
/// per-sample gradient information; BlindFL-style residual protection is out
/// of scope here, as it is in the paper.
class SplitLrProtocol {
 public:
  struct Outcome {
    double test_accuracy = 0.0;
    size_t epochs = 0;
    double sim_seconds = 0.0;       // charged onto the clock as kTraining
    net::TrafficStats traffic;      // metered bytes/messages of the run
    he::HeOpStats he_ops;           // HE operations actually executed
  };

  /// \param split standardized joint train/valid/test views.
  /// \param selected the trained sub-consortium (distinct participant ids;
  ///        must include participant 0, the leader, or training fails — the
  ///        leader always takes part because it owns the labels).
  SplitLrProtocol(const data::DataSplit* split,
                  const data::VerticalPartition* partition,
                  std::vector<size_t> selected, he::HeBackend* backend,
                  net::SimNetwork* network, const net::CostModel* cost_model,
                  SimClock* clock);

  /// Run the training loop (early stopping on the leader's validation loss)
  /// and evaluate on the test split.
  Result<Outcome> Train(const ml::TrainConfig& config);

 private:
  // One forward pass of `rows` of `source` through the split model: returns
  // the decrypted aggregated logits at the leader (row-major batch x C).
  Result<std::vector<double>> ForwardBatch(const data::Dataset& source,
                                           const std::vector<size_t>& rows);

  // Mean cross-entropy of a dataset under the current split model.
  Result<double> DatasetLoss(const data::Dataset& dataset);

  const data::DataSplit* split_;
  const data::VerticalPartition* partition_;
  std::vector<size_t> selected_;
  he::HeBackend* backend_;
  net::SimNetwork* network_;
  const net::CostModel* cost_;
  SimClock* clock_;

  size_t num_classes_ = 0;
  // Per selected participant: weight slice (F_p x C flattened); the leader
  // additionally owns the bias (C).
  std::vector<std::vector<double>> weights_;
  std::vector<double> bias_;
};

}  // namespace vfps::vfl

#endif  // VFPS_VFL_SPLIT_LR_H_

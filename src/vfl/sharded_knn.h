#ifndef VFPS_VFL_SHARDED_KNN_H_
#define VFPS_VFL_SHARDED_KNN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/partitioner.h"
#include "data/synthetic.h"
#include "topk/shard_merge.h"

namespace vfps::vfl {

/// \brief Configuration of one out-of-core sharded KNN run.
struct ShardedKnnConfig {
  size_t shards = 1;       // row shards streamed one at a time
  size_t k = 10;           // neighbors per query
  size_t num_queries = 16; // training rows sampled as query samples
  uint64_t seed = 42;      // query sampling (and pre-filter clustering) seed
  /// TreeCSS-style pruning: per shard, each party clusters its local columns
  /// into this many k-means groups and only the union of the clusters nearest
  /// each query pays per-row distance work. 0 (default) = exact scan.
  size_t prefilter_clusters = 0;
};

/// \brief What an out-of-core run returns, plus the memory/merge accounting
/// the flat-RSS benchmarks assert on.
struct ShardedKnnOutput {
  std::vector<uint64_t> query_rows;
  /// Per query: the k nearest training rows (original ids, nearest first)
  /// and their aggregate (sum-over-parties) squared distances.
  std::vector<std::vector<uint64_t>> neighbors;
  std::vector<std::vector<double>> distances;
  size_t max_shard_rows = 0;     // out-of-core high-water mark, in rows
  size_t candidates_scored = 0;  // rows that paid distance work (post-filter)
  topk::ShardMergeStats merge_stats;
};

/// \brief Out-of-core sharded federated KNN over the streaming synthetic
/// generator: materializes ONE shard's rows at a time (SyntheticShardStream),
/// packs per-party FeatureBlocks over just those rows, scores every query
/// against the shard with the SIMD distance kernels, keeps a shard-local
/// SmallestK, frees the shard, and finally combines the per-shard lists with
/// the hierarchical top-k merge. Resident feature memory is O(shard x F),
/// independent of N — the engine behind the N=5M+ scalability sweeps, where
/// a monolithic N x F matrix would not fit.
///
/// This is the data-plane complement of FederatedKnnOracle: the oracle
/// simulates the full encrypted protocol on an in-memory dataset; this engine
/// computes the same plaintext neighborhoods (sum of per-party partial
/// distances, query row excluded, ties to the lower row id) at out-of-core
/// scale. With prefilter_clusters == 0 the output is invariant to the shard
/// count — every row's aggregate distance is a pure function of (config,
/// row), per-row kernel values are independent of block boundaries, and the
/// merge is exact — so shards only trade memory for streaming passes. The
/// pre-filter clusters per shard, so its (approximate) candidate set does
/// depend on the layout.
Result<ShardedKnnOutput> RunShardedKnn(const data::SyntheticConfig& data_config,
                                       const data::VerticalPartition& partition,
                                       const ShardedKnnConfig& config);

}  // namespace vfps::vfl

#endif  // VFPS_VFL_SHARDED_KNN_H_

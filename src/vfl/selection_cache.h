#ifndef VFPS_VFL_SELECTION_CACHE_H_
#define VFPS_VFL_SELECTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "he/backend.h"

namespace vfps::vfl {

/// \brief One participant's cached contribution to one protocol unit (a
/// query, or a slot-batched group of queries).
///
/// Privacy framing: `values` (and `order`) are the party's OWN plaintext
/// partial distances — in a real deployment each party would hold its slice
/// of this cache locally, exactly like the live protocol state it mirrors.
/// `cipher` is the ciphertext the aggregation server already received; the
/// server caching what it was sent leaks nothing new. The leader still only
/// ever sees decrypted aggregates, so the cache does not change who learns
/// what — it only remembers it across membership changes.
struct PartyUnitState {
  /// BASE modes: the packed partial-distance vector this party encrypted
  /// (count values per query, group-concatenated). Top-k modes: the party's
  /// full n-sized score vector in pseudo-ID space (+inf at the query's own
  /// pseudo id).
  std::vector<double> values;
  /// Top-k modes: the party's sub-ranking (pseudo ids sorted ascending by
  /// score, ties by id) — caching it skips the O(n log n) re-sort on repair.
  std::vector<uint64_t> order;
  /// BASE modes: the ciphertext of `values` as held by the aggregation
  /// server. On repair the server re-sums cached ciphertexts instead of
  /// asking survivors to recompute, re-encrypt, and resend.
  he::EncryptedVector cipher;
  bool has_cipher = false;
  /// Top-k modes: how many ranking rows the server has already streamed from
  /// this party; a repair run only streams the delta beyond this depth.
  size_t streamed_depth = 0;
};

/// \brief Contributions cached for one protocol unit, keyed by participant.
struct CachedUnit {
  std::map<size_t, PartyUnitState> parties;
};

/// \brief Participant-keyed contribution cache that survives membership
/// changes — the state store behind incremental selection repair.
///
/// The cache is keyed by the protocol shape (seed, mode, k, query set,
/// grouping, dataset size): re-keying with a different shape drops every
/// entry, re-keying with the same shape keeps them. Within a matching
/// shape, unit u of any run computes identical per-party contributions
/// regardless of which other participants are active (partial distances
/// and sub-rankings are party-local), which is what makes reuse sound:
///
///   - on leave, survivors' cached values/ciphers are reused verbatim and
///     only the aggregation over the new membership is redone;
///   - on join, only the newcomer computes fresh contributions and the
///     cached remainder is spliced in around them.
///
/// Thread-safety: Rekey/Absorb are driven from one thread between runs;
/// during a run, query tasks only READ the cache (each task touches its own
/// unit) and write to task-local staging absorbed afterwards in unit order,
/// so the contents are independent of the thread count.
class SelectionCache {
 public:
  struct Key {
    uint64_t seed = 0;
    int mode = 0;
    size_t k = 0;
    size_t num_queries = 0;
    size_t fagin_batch = 0;
    size_t group = 1;
    size_t n_rows = 0;
    size_t num_units = 0;
    /// Shard layout of the run. Sharded runs never stage contributions (the
    /// per-shard rounds rebuild from scratch), but the fields still guard the
    /// shape: a cache carried across a --shards/--prefilter change is cleared
    /// instead of leaking single-node contributions into a sharded repair.
    size_t shards = 1;
    size_t prefilter_clusters = 0;

    bool operator==(const Key& o) const {
      return seed == o.seed && mode == o.mode && k == o.k &&
             num_queries == o.num_queries && fagin_batch == o.fagin_batch &&
             group == o.group && n_rows == o.n_rows &&
             num_units == o.num_units && shards == o.shards &&
             prefilter_clusters == o.prefilter_clusters;
    }
  };

  /// Bind the cache to a protocol shape. A different shape (or the first
  /// call) clears all entries and sizes the unit table; the same shape is a
  /// no-op that keeps every cached contribution.
  void Rekey(const Key& key);

  /// The cached state of unit `u`, or nullptr when unbound / out of range.
  const CachedUnit* unit(size_t u) const {
    return u < units_.size() ? &units_[u] : nullptr;
  }

  /// Fold one unit's freshly produced contributions in. Entries carrying
  /// values replace the cached party state; value-less entries only advance
  /// `streamed_depth` (a cached party whose ranking was streamed deeper).
  void Absorb(size_t u, CachedUnit&& produced);

  void Clear();
  bool bound() const { return bound_; }
  size_t num_units() const { return units_.size(); }

  /// Total party-unit entries currently cached (for metrics).
  size_t CachedContributions() const;

 private:
  Key key_;
  bool bound_ = false;
  std::vector<CachedUnit> units_;
};

}  // namespace vfps::vfl

#endif  // VFPS_VFL_SELECTION_CACHE_H_

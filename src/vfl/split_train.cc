#include "vfl/split_train.h"

#include <algorithm>

#include "common/macros.h"

namespace vfps::vfl {

double SplitEpochSimSeconds(const data::VerticalPartition& partition,
                            const std::vector<size_t>& selected,
                            ml::ModelKind model, size_t num_samples,
                            size_t batch_size, int num_classes,
                            const net::CostModel& cost) {
  if (batch_size == 0) batch_size = num_samples;
  const size_t batches = (num_samples + batch_size - 1) / batch_size;
  const size_t total_features = data::SelectedFeatureCount(partition, selected);

  // Plaintext forward/backward compute across the split model.
  double seconds = cost.TrainEpochSeconds(num_samples, total_features);

  // Per batch: participants encrypt bottom outputs in parallel (max over
  // parties), the server homomorphically aggregates and sends back encrypted
  // gradients of the same shape; the leader decrypts the loss head.
  double enc_parallel = 0.0;
  uint64_t fan_bytes = 0;
  for (size_t p : selected) {
    const size_t act_dim = model == ml::ModelKind::kLogReg
                               ? static_cast<size_t>(num_classes)
                               : partition[p].size();
    const uint64_t values = static_cast<uint64_t>(batch_size) * act_dim;
    enc_parallel = std::max(enc_parallel, cost.EncryptSecondsFor(values));
    fan_bytes += cost.EncryptedWireBytes(values);
  }
  const uint64_t head_values =
      static_cast<uint64_t>(batch_size) * static_cast<uint64_t>(num_classes);
  const double per_batch =
      enc_parallel +
      static_cast<double>(selected.size()) * cost.HeAddSecondsFor(head_values) +
      cost.DecryptSecondsFor(head_values) +
      // forward fan-in + backward fan-out of the same magnitude
      2.0 * cost.NetworkSeconds(fan_bytes, 1);
  seconds += static_cast<double>(batches) * per_batch;
  return seconds;
}

double KnnInferenceSimSeconds(const data::VerticalPartition& partition,
                              const std::vector<size_t>& selected,
                              size_t num_train, size_t num_queries,
                              const net::CostModel& cost) {
  double max_party = 0.0;
  for (size_t p : selected) {
    max_party = std::max(max_party,
                         cost.DistanceSeconds(num_train, partition[p].size()));
  }
  const double per_query =
      max_party + cost.EncryptSecondsFor(num_train) +
      static_cast<double>(selected.size() - 1) * cost.HeAddSecondsFor(num_train) +
      cost.DecryptSecondsFor(num_train) + cost.SortSeconds(num_train) +
      cost.NetworkSeconds(
          cost.EncryptedWireBytes(num_train) *
              (static_cast<uint64_t>(selected.size()) + 1),
          2);
  return static_cast<double>(num_queries) * per_query;
}

Result<TrainingOutcome> RunDownstreamTraining(
    const data::DataSplit& split, const data::VerticalPartition& partition,
    const std::vector<size_t>& selected, const DownstreamOptions& options,
    const net::CostModel& cost, SimClock* clock) {
  VFPS_CHECK_ARG(!selected.empty(), "split-train: empty selection");
  VFPS_ASSIGN_OR_RETURN(auto train,
                        data::ConcatViews(split.train, partition, selected));
  VFPS_ASSIGN_OR_RETURN(auto valid,
                        data::ConcatViews(split.valid, partition, selected));
  VFPS_ASSIGN_OR_RETURN(auto test,
                        data::ConcatViews(split.test, partition, selected));

  VFPS_ASSIGN_OR_RETURN(auto model,
                        ml::CreateClassifier(options.model, options.classifier));
  VFPS_RETURN_NOT_OK(model->Fit(train, valid));
  VFPS_ASSIGN_OR_RETURN(double accuracy, model->Score(test));

  TrainingOutcome outcome;
  outcome.test_accuracy = accuracy;
  outcome.epochs = model->epochs_trained();

  double sim = 0.0;
  if (options.model == ml::ModelKind::kKnn) {
    sim = KnnInferenceSimSeconds(partition, selected, train.num_samples(),
                                 test.num_samples(), cost);
  } else {
    const double per_epoch = SplitEpochSimSeconds(
        partition, selected, options.model, train.num_samples(),
        options.classifier.train.batch_size, train.num_classes(), cost);
    sim = static_cast<double>(std::max<size_t>(outcome.epochs, 1)) * per_epoch;
  }
  outcome.sim_seconds = sim;
  if (clock != nullptr) clock->Advance(CostCategory::kTraining, sim);
  return outcome;
}

}  // namespace vfps::vfl

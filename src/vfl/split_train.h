#ifndef VFPS_VFL_SPLIT_TRAIN_H_
#define VFPS_VFL_SPLIT_TRAIN_H_

#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "ml/classifier.h"
#include "net/cost_model.h"

namespace vfps::vfl {

/// \brief Downstream task configuration (paper §V-A "Hyper-parameter
/// Settings"): LR = one linear layer per participant, outputs summed at the
/// server; MLP = 1-layer bottom models + 2-layer top model; KNN = federated
/// distance aggregation at inference time. Exchanged activations/gradients
/// are HE-protected.
struct DownstreamOptions {
  ml::ModelKind model = ml::ModelKind::kLogReg;
  ml::ClassifierOptions classifier;
};

/// \brief Result of training + evaluating the downstream model on a selected
/// sub-consortium.
struct TrainingOutcome {
  double test_accuracy = 0.0;
  size_t epochs = 0;
  double sim_seconds = 0.0;  // simulated federated training time
};

/// \brief Train the downstream model over the participants in `selected` and
/// evaluate on the test split.
///
/// The model mathematics runs centralized on the concatenated feature view —
/// exact, because the split model computes the same function — while the
/// simulated clock is charged for the federated execution: per epoch, every
/// selected participant encrypts its per-batch bottom-model outputs, the
/// server aggregates them homomorphically and returns (encrypted) gradients,
/// and plaintext compute is charged at the cost model's training rate. For
/// the KNN "task" there is no training; the cost is federated inference over
/// the test set (the BASE aggregation per test query).
Result<TrainingOutcome> RunDownstreamTraining(
    const data::DataSplit& split, const data::VerticalPartition& partition,
    const std::vector<size_t>& selected, const DownstreamOptions& options,
    const net::CostModel& cost, SimClock* clock);

/// \brief Simulated seconds for one epoch of split training over the given
/// sub-consortium (exposed for tests and the time-breakdown bench).
double SplitEpochSimSeconds(const data::VerticalPartition& partition,
                            const std::vector<size_t>& selected,
                            ml::ModelKind model, size_t num_samples,
                            size_t batch_size, int num_classes,
                            const net::CostModel& cost);

/// \brief Simulated seconds for federated KNN inference of `num_queries`
/// test samples against `num_train` rows over the sub-consortium.
double KnnInferenceSimSeconds(const data::VerticalPartition& partition,
                              const std::vector<size_t>& selected,
                              size_t num_train, size_t num_queries,
                              const net::CostModel& cost);

}  // namespace vfps::vfl

#endif  // VFPS_VFL_SPLIT_TRAIN_H_

#include "vfl/pseudo_id.h"

#include "common/macros.h"
#include "common/random.h"

namespace vfps::vfl {

PseudoIdMap PseudoIdMap::Create(size_t count, uint64_t shared_seed) {
  PseudoIdMap map;
  Rng rng(shared_seed ^ 0x9D5E1D00ULL);
  auto perm = rng.Permutation(count);
  map.to_pseudo_.assign(perm.begin(), perm.end());
  map.to_original_.resize(count);
  for (size_t i = 0; i < count; ++i) map.to_original_[map.to_pseudo_[i]] = i;
  return map;
}

Result<std::vector<uint64_t>> PseudoIdMap::MapToPseudo(
    const std::vector<uint64_t>& originals) const {
  std::vector<uint64_t> out;
  out.reserve(originals.size());
  for (uint64_t id : originals) {
    VFPS_CHECK_ARG(id < to_pseudo_.size(), "pseudo-id: original id out of range");
    out.push_back(to_pseudo_[id]);
  }
  return out;
}

Result<std::vector<uint64_t>> PseudoIdMap::MapToOriginal(
    const std::vector<uint64_t>& pseudos) const {
  std::vector<uint64_t> out;
  out.reserve(pseudos.size());
  for (uint64_t id : pseudos) {
    VFPS_CHECK_ARG(id < to_original_.size(), "pseudo-id: pseudo id out of range");
    out.push_back(to_original_[id]);
  }
  return out;
}

}  // namespace vfps::vfl

#ifndef VFPS_VFL_PSEUDO_ID_H_
#define VFPS_VFL_PSEUDO_ID_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace vfps::vfl {

/// \brief Identity-protecting pseudo-ID mapping (paper §IV-B step 1 and the
/// identity-security argument of §IV-C).
///
/// All participants derive the same permutation from a shared seed, so the
/// aggregation server only ever sees pseudo IDs; participants can remap
/// candidates back to original row indices locally.
///
/// Immutable after Create(); safe to share read-only across threads. The
/// KNN oracle builds one map per Run and every query task reads it
/// concurrently.
class PseudoIdMap {
 public:
  /// Build the permutation for `count` instances from the consortium seed.
  /// Deterministic: the same (count, shared_seed) always yields the same
  /// permutation. O(count) time and memory.
  static PseudoIdMap Create(size_t count, uint64_t shared_seed);

  size_t count() const { return to_pseudo_.size(); }

  uint64_t ToPseudo(uint64_t original) const { return to_pseudo_[original]; }
  uint64_t ToOriginal(uint64_t pseudo) const { return to_original_[pseudo]; }

  /// Map a batch of original ids to pseudo ids (bounds-checked).
  Result<std::vector<uint64_t>> MapToPseudo(
      const std::vector<uint64_t>& originals) const;
  Result<std::vector<uint64_t>> MapToOriginal(
      const std::vector<uint64_t>& pseudos) const;

 private:
  std::vector<uint64_t> to_pseudo_;
  std::vector<uint64_t> to_original_;
};

}  // namespace vfps::vfl

#endif  // VFPS_VFL_PSEUDO_ID_H_

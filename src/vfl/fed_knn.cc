#include "vfl/fed_knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/buffer.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topk/fagin.h"
#include "topk/shard_merge.h"
#include "topk/threshold.h"

namespace vfps::vfl {

namespace {
// The leader is participant 0 by convention (it holds the labels).
constexpr net::NodeId kLeader = 0;

// Salt separating the per-query HE randomness streams from the query-sampling
// stream (both are derived from the consortium seed).
constexpr uint64_t kHeStreamSalt = 0xC0FFEE5EEDD1CE5ULL;

// Salt separating the per-query fault streams from the main network's fault
// stream (both are derived from the seed passed to EnableFaults).
constexpr uint64_t kFaultStreamSalt = 0xFA117AB1E5A17ULL;

// Indices of the k smallest values, ties broken by index (bounded-heap
// kernel; +inf entries for excluded rows lose every comparison).
using ml::SmallestK;

std::vector<uint8_t> EncodeIds(const std::vector<uint64_t>& ids) {
  BinaryWriter writer;
  writer.WriteU64Vec(ids);
  return writer.TakeBytes();
}

Result<std::vector<uint64_t>> DecodeIds(const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  return reader.ReadU64Vec();
}

std::vector<uint8_t> EncodeScalar(double v) {
  BinaryWriter writer;
  writer.WriteDouble(v);
  return writer.TakeBytes();
}

Result<double> DecodeScalar(const std::vector<uint8_t>& payload) {
  BinaryReader reader(payload);
  return reader.ReadDouble();
}

// Lloyd iterations of the pre-filter's per-party clustering; also the basis
// of the simulated-clock charge for building the models.
constexpr size_t kPrefilterKmeansIters = 8;
}  // namespace

const char* KnnOracleModeName(KnnOracleMode mode) {
  switch (mode) {
    case KnnOracleMode::kBase:
      return "base";
    case KnnOracleMode::kFagin:
      return "fagin";
    case KnnOracleMode::kThreshold:
      return "threshold";
  }
  return "unknown";
}

FederatedKnnOracle::FederatedKnnOracle(const data::Dataset* joint_train,
                                       const data::VerticalPartition* partition,
                                       he::HeBackend* backend,
                                       net::SimNetwork* network,
                                       const net::CostModel* cost_model,
                                       SimClock* clock, ThreadPool* pool,
                                       obs::MetricsRegistry* obs)
    : joint_(joint_train),
      partition_(partition),
      backend_(backend),
      network_(network),
      cost_(cost_model),
      clock_(clock),
      pool_(pool),
      obs_(obs) {
  // Pack each participant's columns once (contiguous rows + cached norms);
  // every distance below runs on these blocks instead of gathering columns
  // from the joint row-major matrix per query.
  party_blocks_.reserve(partition_->size());
  for (size_t party = 0; party < partition_->size(); ++party) {
    party_blocks_.emplace_back(*joint_, (*partition_)[party]);
  }
  if (obs_ != nullptr) {
    c_queries_ = obs_->GetCounter("knn.queries");
    h_candidates_ = obs_->GetHistogram("knn.candidates");
    // Every labeled dimension is bounded and known up front, so resolve all
    // series here — query tasks never touch the registry mutex.
    for (KnnOracleMode mode : {KnnOracleMode::kBase, KnnOracleMode::kFagin,
                               KnnOracleMode::kThreshold}) {
      c_queries_mode_[static_cast<int>(mode)] = obs_->GetLabeledCounter(
          "knn.queries.by_algo", {{"algo", KnnOracleModeName(mode)}});
    }
    c_cache_hit_ =
        obs_->GetLabeledCounter("knn.cache.lookups", {{"cache", "hit"}});
    c_cache_miss_ =
        obs_->GetLabeledCounter("knn.cache.lookups", {{"cache", "miss"}});
    const auto phase = [this](const char* name) {
      return obs_->GetLabeledCounter("knn.phase.sim_ns", {{"phase", name}});
    };
    c_phase_dist_ = phase("partial_distance");
    c_phase_encrypt_ = phase("encrypt");
    c_phase_agg_ = phase("aggregate");
    c_phase_rank_ = phase("decrypt_rank");
    c_phase_dt_ = phase("dt_exchange");
    c_phase_merge_ = phase("topk_merge");
    c_phase_stream_ = phase("stream_rankings");
    c_party_enc_values_.resize(partition_->size(), nullptr);
    for (size_t party = 0; party < partition_->size(); ++party) {
      c_party_enc_values_[party] = obs_->GetLabeledCounter(
          "knn.party.encrypted_values",
          {{"party", StrFormat("%zu", party)}});
    }
    h_unit_sim_ns_ = obs_->GetHistogram("knn.query.sim_ns");
    h_unit_wall_ns_ = obs_->GetHistogram("knn.query.wall_ns");
    c_shard_merges_ = obs_->GetCounter("knn.shard.merges");
    c_prefilter_candidates_ = obs_->GetCounter("knn.prefilter.candidates");
    c_prefilter_pruned_ = obs_->GetCounter("knn.prefilter.pruned_rows");
  }
}

FederatedKnnOracle::PhaseTimer::PhaseTimer(obs::Counter* counter,
                                           const SimClock* clock)
    : counter_(counter),
      clock_(clock),
      start_seconds_(counter != nullptr ? clock->Total() : 0.0) {}

void FederatedKnnOracle::PhaseTimer::End() {
  if (counter_ == nullptr) return;
  counter_->Add(static_cast<uint64_t>(
      std::llround((clock_->Total() - start_seconds_) * 1e9)));
  counter_ = nullptr;
}

std::vector<double> FederatedKnnOracle::PartialDistances(
    size_t participant, const data::Dataset& source, size_t query_row,
    size_t exclude_row) const {
  const ml::FeatureBlock& block = party_blocks_[participant];
  const size_t n = joint_->num_samples();
  const double* qrow = source.Row(query_row);
  // Gather the query's slice of this party's columns once; per-thread
  // scratch (fully overwritten each call).
  thread_local std::vector<double> qslice;
  qslice.resize(block.cols());
  block.GatherInto(qrow, qslice.data());
  const double q_norm = ml::SquaredNorm(qslice.data(), block.cols());
  const bool excluding = exclude_row < n;
  std::vector<double> out(excluding ? n - 1 : n);
  if (!excluding) {
    ml::BlockSquaredDistances(block, qslice.data(), q_norm, 0, n, out.data());
  } else {
    // Compressed output: the excluded row's slot is skipped by running the
    // kernel on the two surrounding ranges (per-row values are identical to a
    // full-range run; the kernel has no cross-row state).
    ml::BlockSquaredDistances(block, qslice.data(), q_norm, 0, exclude_row,
                              out.data());
    ml::BlockSquaredDistances(block, qslice.data(), q_norm, exclude_row + 1, n,
                              out.data() + exclude_row);
  }
  return out;
}

void FederatedKnnOracle::ChargeParallelCompute(
    SimClock* clock, const std::vector<double>& per_party_seconds) const {
  double worst = 0.0;
  for (double s : per_party_seconds) worst = std::max(worst, s);
  clock->Advance(CostCategory::kCompute, worst);
}

void FederatedKnnOracle::ChargeFanIn(SimClock* clock, uint64_t bytes_per_party,
                                     size_t parties) const {
  // Participants transmit in parallel; the server's ingress link is the
  // bottleneck, so one latency plus the total bytes.
  clock->Advance(CostCategory::kNetwork,
                 cost_->NetworkSeconds(bytes_per_party * parties, 1));
}

void FederatedKnnOracle::ChargeFanOut(SimClock* clock, uint64_t bytes_per_link,
                                      size_t links) const {
  clock->Advance(CostCategory::kNetwork,
                 cost_->NetworkSeconds(bytes_per_link * links, 1));
}

Result<std::vector<QueryNeighborhood>> FederatedKnnOracle::Run(
    const FedKnnConfig& config, FedKnnStats* stats) {
  const size_t n = joint_->num_samples();
  const size_t p = num_participants();
  VFPS_CHECK_ARG(p >= 2, "fed-knn: need >= 2 participants");
  VFPS_CHECK_ARG(config.k >= 1, "fed-knn: k must be >= 1");
  VFPS_CHECK_ARG(n > config.k + 1, "fed-knn: dataset smaller than k");
  VFPS_CHECK_ARG(config.num_queries >= 1, "fed-knn: need >= 1 query");
  VFPS_CHECK_ARG(config.fagin_batch >= 1, "fed-knn: fagin batch must be >= 1");
  VFPS_CHECK_ARG(config.shards >= 1, "fed-knn: shards must be >= 1");
  // Both sharding and the pre-filter route through the per-shard aggregation
  // rounds, which batch by shard — cross-query slot batching would fight
  // that layout, so the combinations are rejected up front.
  const bool sharded = config.shards > 1 || config.prefilter_clusters > 0;
  VFPS_CHECK_ARG(!sharded || config.query_group == 1,
                 "fed-knn: query_group batching is unsupported with --shards "
                 "or --prefilter");

  // Survivor view: everybody minus the quarantined and not-yet-joined
  // participants. With no exclusions the list is 0..P-1 and every code path
  // below is the pristine protocol.
  std::vector<size_t> active;
  active.reserve(p);
  for (size_t party = 0; party < p; ++party) {
    const bool quarantined =
        std::find(config.quarantined.begin(), config.quarantined.end(),
                  party) != config.quarantined.end();
    const bool absent = std::find(config.absent.begin(), config.absent.end(),
                                  party) != config.absent.end();
    if (!quarantined && !absent) active.push_back(party);
  }
  VFPS_CHECK_ARG(!active.empty() && active.front() == 0,
                 "fed-knn: the leader (participant 0) cannot be quarantined");
  if (!config.quarantined.empty() && active.size() < 3) {
    // A 2-party consortium (leader + one survivor) runs the protocol but the
    // similarity matrix it feeds degenerates — the selection carries no
    // signal. Surface a typed error instead of silently computing noise.
    return Status::Unavailable(StrFormat(
        "fed-knn: churn left only %zu active participant(s) of %zu after "
        "quarantining %zu; a meaningful selection needs >= 3 survivors",
        active.size(), p, config.quarantined.size()));
  }
  VFPS_CHECK_ARG(active.size() >= 2,
                 "fed-knn: fewer than 2 active participants");

  // One retry policy for every channel of this run (the main broadcast and
  // each query task's lockstep exchanges).
  net::RetryPolicy retry;
  if (config.net_retries > 0) retry.max_attempts = config.net_retries;
  retry.jitter_factor = config.net_jitter;
  retry.jitter_seed = config.seed;

  // Membership decisions from earlier runs are pushed down to every fault
  // stream: healed nodes must not re-fire their crash/leave rules (each
  // stream's counters restart from zero), and admitted joiners must not be
  // absent again.
  const auto apply_membership_marks = [&config](net::SimNetwork* net) {
    for (size_t node : config.healed) {
      net->MarkHealed(static_cast<net::NodeId>(node));
    }
    for (size_t node : config.joined) {
      net->MarkJoined(static_cast<net::NodeId>(node));
    }
  };
  apply_membership_marks(network_);

  const net::TrafficStats traffic_before = network_->total();
  const he::HeOpStats he_before = backend_->stats();
  obs::Tracer* const tracer = obs_ == nullptr ? nullptr : obs_->tracer();
  // Causal anchor for the fan-out below: each query task re-adopts the
  // caller's span context on its worker thread, so every per-unit trace tree
  // hangs off the selection span that requested it.
  const obs::TraceContext parent_ctx = obs::Tracer::Current();

  // The leader samples the query set and shares the row ids (plain indices of
  // shared training samples; no feature values cross the wire here). The
  // exchange rides the reliable channel so injected faults on the broadcast
  // are retried; a dead peer here fails the run before any query starts.
  Rng rng(config.seed);
  const size_t num_queries = std::min(config.num_queries, n);
  std::vector<size_t> queries = rng.SampleWithoutReplacement(n, num_queries);
  net::ReliableChannel main_chan(network_, clock_, retry);
  for (size_t party : active) {
    if (party == 0) continue;
    std::vector<uint64_t> ids(queries.begin(), queries.end());
    Status sent =
        main_chan.Send(kLeader, static_cast<int>(party), EncodeIds(ids));
    if (sent.ok()) {
      sent = main_chan.Recv(kLeader, static_cast<int>(party)).status();
    }
    if (!sent.ok()) {
      if (stats != nullptr) {
        stats->dead_nodes = network_->DeadNodes();
        stats->departed_nodes = network_->DepartedNodes();
        stats->joined_nodes = network_->JoinedNodes();
        stats->healed_nodes = network_->HealedNodes();
      }
      return sent;
    }
  }
  ChargeFanOut(clock_, num_queries * sizeof(uint64_t), active.size() - 1);

  // Consortium-shared pseudo-ID shuffle for the top-k modes, derived once per
  // Run from the shared seed and read concurrently by every query task.
  const PseudoIdMap pseudo = (config.mode == KnnOracleMode::kBase)
                                 ? PseudoIdMap()
                                 : PseudoIdMap::Create(n, config.seed);

  // Resolve BASE-mode cross-query slot batching (FedKnnConfig::query_group):
  // group G consecutive queries into one task that shares a single encrypted
  // aggregation round. G = 1 (the default, and always for Fagin/TA) keeps
  // the one-task-per-query schedule bit-identical to previous releases;
  // query_group = 0 auto-sizes the group so each party's packed vector fills
  // the backend's ciphertext slots.
  size_t group = 1;
  if (config.mode == KnnOracleMode::kBase && !queries.empty()) {
    group = config.query_group;
    if (group == 0) {
      const size_t count = n - 1;
      const size_t slots_per_ct = backend_->SlotsPerCiphertext();
      group = count == 0 ? 1 : std::max<size_t>(1, slots_per_ct / count);
    }
    group = std::min(std::max<size_t>(1, group), queries.size());
  }
  const size_t num_units = queries.empty() ? 0 : (queries.size() + group - 1) / group;

  // Sharded-path runtime: the row-shard plan, the per-party pre-filter
  // models, and the per-shard metric handles — all built serially here so
  // query tasks share it read-only (no registry mutex, no model races).
  ShardRuntime shard_rt;
  std::vector<ml::KMeansResult> prefilter_models;
  if (sharded) {
    VFPS_ASSIGN_OR_RETURN(shard_rt.plan, data::MakeRowShards(n, config.shards));
    if (config.prefilter_clusters > 0) {
      // Each active party clusters its own columns once per Run — local
      // plaintext work (no protocol traffic), charged as parallel compute.
      prefilter_models.resize(p);
      double worst_seconds = 0.0;
      for (size_t party : active) {
        VFPS_ASSIGN_OR_RETURN(
            prefilter_models[party],
            ml::KMeansCluster(party_blocks_[party], config.prefilter_clusters,
                              config.seed + party, kPrefilterKmeansIters));
        worst_seconds = std::max(
            worst_seconds,
            static_cast<double>(kPrefilterKmeansIters) *
                static_cast<double>(prefilter_models[party].clusters) *
                cost_->DistanceSeconds(n, (*partition_)[party].size()));
      }
      clock_->Advance(CostCategory::kCompute, worst_seconds);
      shard_rt.prefilter = &prefilter_models;
      // Nominating ~4k rows per party keeps recall high while still pruning
      // the overwhelming majority of a large shard plan.
      shard_rt.prefilter_target = std::max<size_t>(4 * config.k, 32);
    }
    if (obs_ != nullptr) {
      shard_rt.sim_ns.resize(shard_rt.plan.size());
      shard_rt.candidates.resize(shard_rt.plan.size());
      for (size_t s = 0; s < shard_rt.plan.size(); ++s) {
        const std::string label = StrFormat("%zu", s);
        shard_rt.sim_ns[s] =
            obs_->GetLabeledCounter("knn.shard.sim_ns", {{"shard", label}});
        shard_rt.candidates[s] =
            obs_->GetLabeledCounter("knn.shard.candidates", {{"shard", label}});
      }
    }
  }

  // Bind (or re-validate) the contribution cache against this run's protocol
  // shape. A key mismatch — different seed, mode, k, query count, batching or
  // dataset size — clears the cache, so stale contributions can never leak
  // into a differently-shaped run.
  if (cache_ != nullptr) {
    SelectionCache::Key key;
    key.seed = config.seed;
    key.mode = static_cast<int>(config.mode);
    key.k = config.k;
    key.num_queries = num_queries;
    key.fagin_batch = config.fagin_batch;
    key.group = group;
    key.n_rows = n;
    key.num_units = num_units;
    key.shards = config.shards;
    key.prefilter_clusters = config.prefilter_clusters;
    cache_->Rekey(key);
  }

  // Pre-derive one HE randomness stream per task unit (== per query when
  // group is 1), in unit order, so the ciphertexts each task produces are
  // independent of scheduling.
  Rng stream_rng(config.seed ^ kHeStreamSalt);
  std::vector<uint64_t> stream_seeds(num_units);
  for (uint64_t& s : stream_seeds) s = stream_rng.Next();

  // Same trick for fault streams: each task's network gets its own seed,
  // pre-derived serially from the plan seed, so the fault schedule is
  // reproducible at any thread count.
  std::vector<uint64_t> fault_seeds;
  if (network_->faults_enabled()) {
    Rng fault_rng(network_->fault_seed() ^ kFaultStreamSalt);
    fault_seeds.resize(num_units);
    for (uint64_t& s : fault_seeds) s = fault_rng.Next();
  }

  // Per-task state: every unit (one query, or a grouped span of queries)
  // runs its complete protocol against a task-local deployment (HE session,
  // byte-metered network, clock), merged back below in deterministic query
  // order.
  struct QuerySlot {
    Status status = Status::OK();
    std::vector<QueryNeighborhood> hoods;
    FedKnnStats stats;
    net::SimNetwork net;
    SimClock clock;
    std::unique_ptr<he::HeBackend> session;
    CachedUnit produced;      // contributions staged for the repair cache
    double wall_seconds = 0;  // real time this unit's task spent
  };
  std::vector<QuerySlot> slots(num_units);

  const auto run_unit_body = [&](size_t u) {
    QuerySlot& slot = slots[u];
    auto session = backend_->Fork(stream_seeds[u]);
    if (!session.ok()) {
      slot.status = session.status();
      return;
    }
    slot.session = session.MoveValueUnsafe();
    slot.net.set_metrics(obs_);
    if (!fault_seeds.empty()) {
      slot.net.EnableFaults(*network_->fault_spec(), fault_seeds[u],
                            &slot.clock);
    }
    apply_membership_marks(&slot.net);
    net::ReliableChannel chan(&slot.net, &slot.clock, retry);
    // The sharded paths rebuild per-shard state from scratch every run, so
    // they neither consult nor stage contribution-cache entries (the Rekey
    // above still rejects shard-layout mismatches for checkpointed runs).
    const QueryEnv env{slot.session.get(), &slot.net, &chan, &slot.clock,
                       &active, tracer,
                       (cache_ == nullptr || sharded) ? nullptr : cache_->unit(u),
                       (cache_ == nullptr || sharded) ? nullptr : &slot.produced,
                       sharded ? &shard_rt : nullptr};
    const size_t lo = u * group;
    const size_t hi = std::min(queries.size(), lo + group);
    if (config.mode == KnnOracleMode::kBase && hi - lo > 1) {
      auto hoods = RunBaseQueryGroup(env, queries, lo, hi, config.k, &slot.stats);
      if (hoods.ok()) {
        slot.hoods = hoods.MoveValueUnsafe();
      } else {
        slot.status = hoods.status();
      }
      return;
    }
    Result<QueryNeighborhood> hood =
        env.shard != nullptr
            ? (config.mode == KnnOracleMode::kBase
                   ? RunBaseQuerySharded(env, queries[lo], config.k,
                                         &slot.stats)
                   : RunTopkQuerySharded(env, pseudo, queries[lo], config.k,
                                         config.fagin_batch, config.mode,
                                         &slot.stats))
            : (config.mode == KnnOracleMode::kBase
                   ? RunBaseQuery(env, queries[lo], config.k, &slot.stats)
                   : RunTopkQuery(env, pseudo, queries[lo], config.k,
                                  config.fagin_batch, config.mode,
                                  &slot.stats));
    if (hood.ok()) {
      slot.hoods.push_back(hood.MoveValueUnsafe());
    } else {
      slot.status = hood.status();
    }
  };

  // One root span ("knn.query") per unit: the task adopts the caller's trace
  // context, so at any thread count the whole protocol tree of a unit —
  // phases, per-party work, retries, fault instants — is a single connected
  // subtree of the selection that requested it.
  const auto run_unit = [&](size_t u) {
    QuerySlot& slot = slots[u];
    Stopwatch unit_watch;
    {
      obs::TraceScope trace_scope(tracer, parent_ctx);
      obs::Span unit_span(tracer, "knn.query", &slot.clock);
      if (tracer != nullptr) {  // skip the StrFormat work when disabled
        unit_span.Annotate("unit", StrFormat("%zu", u));
        unit_span.Annotate("algo", KnnOracleModeName(config.mode));
        unit_span.Annotate("query_row", StrFormat("%zu", queries[u * group]));
      }
      run_unit_body(u);
    }
    slot.wall_seconds = unit_watch.ElapsedSeconds();
  };

  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->ParallelFor(0, num_units, run_unit);
  } else {
    for (size_t u = 0; u < num_units; ++u) run_unit(u);
  }

  // Every slot absorbs whatever contributions it staged into the repair
  // cache — on success AND on failure. All units execute regardless of which
  // one fails, and each unit is internally deterministic, so the salvaged
  // cache contents are independent of the thread count.
  const auto absorb_cache = [&] {
    if (cache_ == nullptr) return;
    for (size_t u = 0; u < slots.size(); ++u) {
      cache_->Absorb(u, std::move(slots[u].produced));
    }
  };

  // Churn bookkeeping is unioned over every fault stream (each task-local
  // network watches its copy of the schedule unfold independently).
  const auto poll_churn = [&](FedKnnStats* out) {
    if (out == nullptr) return;
    std::set<net::NodeId> departed, joined, healed;
    const auto take = [&](const net::SimNetwork& net) {
      for (net::NodeId d : net.DepartedNodes()) departed.insert(d);
      for (net::NodeId d : net.JoinedNodes()) joined.insert(d);
      for (net::NodeId d : net.HealedNodes()) healed.insert(d);
    };
    take(*network_);
    for (const QuerySlot& s : slots) take(s.net);
    out->departed_nodes.assign(departed.begin(), departed.end());
    out->joined_nodes.assign(joined.begin(), joined.end());
    out->healed_nodes.assign(healed.begin(), healed.end());
  };

  // Failed run: report the first error in query order without merging any
  // task-local protocol state, so a quarantine-and-rerun starts from a clean
  // slate — except for the contribution cache, which keeps the surviving
  // parties' work for incremental repair.
  for (const QuerySlot& slot : slots) {
    if (slot.status.ok()) continue;
    absorb_cache();
    if (stats != nullptr) {
      std::set<net::NodeId> dead;
      for (net::NodeId d : network_->DeadNodes()) dead.insert(d);
      for (const QuerySlot& s : slots) {
        for (net::NodeId d : s.net.DeadNodes()) dead.insert(d);
      }
      stats->dead_nodes.assign(dead.begin(), dead.end());
      poll_churn(stats);
    }
    return slot.status;
  }

  // Deterministic merge: fold every task-local deployment back into the
  // shared one in query order (clock charges are doubles, so the fold order
  // is part of the bit-identical guarantee).
  std::vector<QueryNeighborhood> result;
  result.reserve(queries.size());
  for (QuerySlot& slot : slots) {
    for (QueryNeighborhood& hood : slot.hoods) {
      result.push_back(std::move(hood));
    }
    if (h_unit_sim_ns_ != nullptr) {
      // Recorded serially in unit order. The sim-clock latency is a
      // deterministic function of the protocol, so the knn.query.sim_ns
      // histogram (and its percentiles) is thread-count-invariant; wall time
      // is real elapsed time and naturally varies.
      h_unit_sim_ns_->Record(static_cast<uint64_t>(
          std::llround(slot.clock.Total() * 1e9)));
      h_unit_wall_ns_->Record(static_cast<uint64_t>(
          std::llround(slot.wall_seconds * 1e9)));
    }
    clock_->Merge(slot.clock);
    network_->MergeStatsFrom(slot.net);
    backend_->AbsorbStats(slot.session->stats());
    if (stats != nullptr) {
      stats->candidates_encrypted += slot.stats.candidates_encrypted;
      stats->fagin_depth += slot.stats.fagin_depth;
      stats->reused_contributions += slot.stats.reused_contributions;
    }
  }
  absorb_cache();

  if (c_queries_ != nullptr) {
    c_queries_->Add(queries.size());
    c_queries_mode_[static_cast<int>(config.mode)]->Add(queries.size());
  }
  if (stats != nullptr) {
    poll_churn(stats);
    stats->queries += queries.size();
    net::TrafficStats after = network_->total();
    stats->traffic.messages += after.messages - traffic_before.messages;
    stats->traffic.bytes += after.bytes - traffic_before.bytes;
    he::HeOpStats he_after = backend_->stats();
    stats->he_ops.encrypt_ops += he_after.encrypt_ops - he_before.encrypt_ops;
    stats->he_ops.decrypt_ops += he_after.decrypt_ops - he_before.decrypt_ops;
    stats->he_ops.add_ops += he_after.add_ops - he_before.add_ops;
    stats->he_ops.values_encrypted +=
        he_after.values_encrypted - he_before.values_encrypted;
    stats->he_ops.values_decrypted +=
        he_after.values_decrypted - he_before.values_decrypted;
    stats->he_ops.values_added += he_after.values_added - he_before.values_added;
  }
  return result;
}

Result<QueryNeighborhood> FederatedKnnOracle::RunBaseQuery(
    const QueryEnv& env, uint64_t query_row, size_t k,
    FedKnnStats* stats) const {
  const size_t n = joint_->num_samples();
  const size_t p = num_participants();
  const std::vector<size_t>& active = *env.active;
  const size_t a = active.size();  // == p with no quarantine
  const size_t count = n - 1;      // the query row itself is excluded

  // Repair-cache lookup: a party's contribution is reusable only when its
  // staged values cover this unit's full candidate range and the server still
  // holds its ciphertext.
  const auto cached_for = [&](size_t party) -> const PartyUnitState* {
    if (env.cached == nullptr) return nullptr;
    const auto it = env.cached->parties.find(party);
    if (it == env.cached->parties.end()) return nullptr;
    const PartyUnitState& st = it->second;
    return (st.has_cipher && st.values.size() == count) ? &st : nullptr;
  };

  // Phase 1 (active participants, parallel): local partial distances +
  // encryption. Everything below indexes by position in `active`. Parties
  // with a cached contribution skip both compute and upload — on repair only
  // the membership delta pays.
  obs::Span span_dist(env.tracer, "knn.partial_distance", env.clock);
  span_dist.SetNode("parties");
  PhaseTimer phase_dist(c_phase_dist_, env.clock);
  std::vector<std::vector<double>> partials(a);
  std::vector<const PartyUnitState*> hits(a, nullptr);
  std::vector<double> compute_seconds;
  compute_seconds.reserve(a);
  size_t fresh = 0;
  for (size_t ai = 0; ai < a; ++ai) {
    if (const PartyUnitState* st = cached_for(active[ai])) {
      hits[ai] = st;
      partials[ai] = st->values;  // still needed for the d_T exchange
      if (stats != nullptr) ++stats->reused_contributions;
      if (c_cache_hit_ != nullptr) c_cache_hit_->Add(1);
      continue;
    }
    if (env.cached != nullptr && c_cache_miss_ != nullptr) {
      c_cache_miss_->Add(1);
    }
    obs::Span party_span(env.tracer, "knn.party.compute", env.clock);
    party_span.SetNode(net::NodeName(static_cast<int>(active[ai])));
    partials[ai] = PartialDistances(active[ai], *joint_, query_row, query_row);
    compute_seconds.push_back(
        cost_->DistanceSeconds(count, (*partition_)[active[ai]].size()));
    ++fresh;
  }
  if (fresh > 0) ChargeParallelCompute(env.clock, compute_seconds);
  phase_dist.End();
  span_dist.End();

  obs::Span span_enc(env.tracer, "he.encrypt", env.clock);
  span_enc.SetNode("parties");
  PhaseTimer phase_enc(c_phase_encrypt_, env.clock);
  std::vector<he::EncryptedVector> encrypted;
  if (fresh > 0) {
    std::vector<std::vector<double>> fresh_values;
    fresh_values.reserve(fresh);
    for (size_t ai = 0; ai < a; ++ai) {
      if (hits[ai] == nullptr) fresh_values.push_back(partials[ai]);
    }
    VFPS_ASSIGN_OR_RETURN(encrypted, env.backend->EncryptBatch(fresh_values));
    size_t fi = 0;
    for (size_t ai = 0; ai < a; ++ai) {
      if (hits[ai] != nullptr) continue;
      if (!c_party_enc_values_.empty()) {
        c_party_enc_values_[active[ai]]->Add(count);
      }
      VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                        net::kAggregationServer,
                                        encrypted[fi++].blob));
    }
    env.clock->Advance(CostCategory::kEncrypt, cost_->EncryptSecondsFor(count));
    ChargeFanIn(env.clock, cost_->EncryptedWireBytes(count), fresh);
  }
  phase_enc.End();
  span_enc.End();

  // Phase 2 (aggregation server): homomorphic sum over the cached ciphertexts
  // it already holds plus the fresh uploads, in ascending active order so a
  // repair sums bit-identically to a clean run; forward to the leader.
  obs::Span span_agg(env.tracer, "knn.aggregate", env.clock);
  span_agg.SetNode("agg-server");
  PhaseTimer phase_agg(c_phase_agg_, env.clock);
  std::vector<he::EncryptedVector> received(a);
  std::vector<const he::EncryptedVector*> ptrs(a);
  for (size_t ai = 0; ai < a; ++ai) {
    if (hits[ai] != nullptr) {
      ptrs[ai] = &hits[ai]->cipher;
      continue;
    }
    VFPS_ASSIGN_OR_RETURN(auto blob,
                          env.chan->Recv(static_cast<int>(active[ai]),
                                         net::kAggregationServer));
    received[ai] = he::EncryptedVector{std::move(blob), count};
    ptrs[ai] = &received[ai];
    if (env.fresh != nullptr) {
      PartyUnitState& st = env.fresh->parties[active[ai]];
      st.values = partials[ai];
      st.cipher = received[ai];
      st.has_cipher = true;
    }
  }
  VFPS_ASSIGN_OR_RETURN(auto summed, env.backend->Sum(ptrs));
  env.clock->Advance(CostCategory::kHeEval,
                     static_cast<double>(a - 1) * cost_->HeAddSecondsFor(count));
  VFPS_RETURN_NOT_OK(
      env.chan->Send(net::kAggregationServer, kLeader, summed.blob));
  ChargeFanOut(env.clock, cost_->EncryptedWireBytes(count), 1);
  phase_agg.End();
  span_agg.End();

  // Phase 3 (leader): decrypt, rank, pick the k nearest.
  obs::Span span_rank(env.tracer, "knn.decrypt_rank", env.clock);
  span_rank.SetNode("leader");
  PhaseTimer phase_rank(c_phase_rank_, env.clock);
  VFPS_ASSIGN_OR_RETURN(auto blob, env.chan->Recv(net::kAggregationServer, kLeader));
  VFPS_ASSIGN_OR_RETURN(
      auto distances,
      env.backend->Decrypt(he::EncryptedVector{std::move(blob), count}));
  env.clock->Advance(CostCategory::kDecrypt, cost_->DecryptSecondsFor(count));
  env.clock->Advance(CostCategory::kCompute, cost_->SortSeconds(count));
  const auto top = SmallestK(distances, k);
  phase_rank.End();
  span_rank.End();

  QueryNeighborhood hood;
  hood.query_row = query_row;
  hood.neighbors.reserve(top.size());
  for (uint64_t idx : top) {
    hood.neighbors.push_back(CompressedToRow(idx, query_row));
  }

  // Phase 4: leader broadcasts T; every active participant returns d_T^p.
  obs::Span span_dt(env.tracer, "knn.dt_exchange", env.clock);
  span_dt.SetNode("leader");
  PhaseTimer phase_dt(c_phase_dt_, env.clock);
  // Quarantined slots keep d_T^p = 0 (the caller drops them anyway).
  for (size_t party : active) {
    if (party == 0) continue;
    VFPS_RETURN_NOT_OK(
        env.chan->Send(kLeader, static_cast<int>(party), EncodeIds(top)));
  }
  ChargeFanOut(env.clock, top.size() * sizeof(uint64_t), a - 1);
  hood.per_party_dt.assign(p, 0.0);
  for (size_t ai = 0; ai < a; ++ai) {
    const size_t party = active[ai];
    std::vector<uint64_t> ids = top;
    if (party != 0) {
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(kLeader, static_cast<int>(party)));
      VFPS_ASSIGN_OR_RETURN(ids, DecodeIds(payload));
    }
    double dt = 0.0;
    for (uint64_t idx : ids) dt += partials[ai][idx];
    if (party == 0) {
      hood.per_party_dt[0] = dt;
    } else {
      VFPS_RETURN_NOT_OK(
          env.chan->Send(static_cast<int>(party), kLeader, EncodeScalar(dt)));
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(static_cast<int>(party), kLeader));
      VFPS_ASSIGN_OR_RETURN(hood.per_party_dt[party], DecodeScalar(payload));
    }
  }
  ChargeFanIn(env.clock, sizeof(double), a - 1);
  phase_dt.End();
  span_dt.End();

  if (h_candidates_ != nullptr) h_candidates_->Record(count);
  if (stats != nullptr) stats->candidates_encrypted += count;
  return hood;
}

Result<std::vector<QueryNeighborhood>> FederatedKnnOracle::RunBaseQueryGroup(
    const QueryEnv& env, const std::vector<size_t>& queries, size_t lo,
    size_t hi, size_t k, FedKnnStats* stats) const {
  const size_t n = joint_->num_samples();
  const size_t p = num_participants();
  const std::vector<size_t>& active = *env.active;
  const size_t a = active.size();
  const size_t count = n - 1;  // candidates per query (query row excluded)
  const size_t g = hi - lo;    // queries sharing this aggregation round
  const size_t total = g * count;

  // Phase 1 (active participants, parallel): each party computes the group's
  // partial-distance vectors and lays them out in ONE slot-aligned packed
  // vector — query q occupies [q*count, (q+1)*count). The layout is identical
  // across parties, so slot-wise ciphertext addition aggregates candidate
  // (q, i) against exactly candidate (q, i) everywhere; the final partial
  // chunk's unused slots are zero-masked by the encoder and never decoded.
  obs::Span span_dist(env.tracer, "knn.partial_distance", env.clock);
  span_dist.SetNode("parties");
  PhaseTimer phase_dist(c_phase_dist_, env.clock);
  const auto cached_for = [&](size_t party) -> const PartyUnitState* {
    if (env.cached == nullptr) return nullptr;
    const auto it = env.cached->parties.find(party);
    if (it == env.cached->parties.end()) return nullptr;
    const PartyUnitState& st = it->second;
    return (st.has_cipher && st.values.size() == total) ? &st : nullptr;
  };
  std::vector<std::vector<double>> packed(a);
  std::vector<const PartyUnitState*> hits(a, nullptr);
  std::vector<double> compute_seconds;
  compute_seconds.reserve(a);
  size_t fresh = 0;
  for (size_t ai = 0; ai < a; ++ai) {
    if (const PartyUnitState* st = cached_for(active[ai])) {
      hits[ai] = st;
      packed[ai] = st->values;  // still needed for the d_T exchange
      if (stats != nullptr) ++stats->reused_contributions;
      if (c_cache_hit_ != nullptr) c_cache_hit_->Add(1);
      continue;
    }
    if (env.cached != nullptr && c_cache_miss_ != nullptr) {
      c_cache_miss_->Add(1);
    }
    obs::Span party_span(env.tracer, "knn.party.compute", env.clock);
    party_span.SetNode(net::NodeName(static_cast<int>(active[ai])));
    packed[ai].reserve(total);
    double seconds = 0.0;
    for (size_t qi = 0; qi < g; ++qi) {
      const size_t query_row = queries[lo + qi];
      const auto partial =
          PartialDistances(active[ai], *joint_, query_row, query_row);
      packed[ai].insert(packed[ai].end(), partial.begin(), partial.end());
      seconds += cost_->DistanceSeconds(count, (*partition_)[active[ai]].size());
    }
    compute_seconds.push_back(seconds);
    ++fresh;
  }
  if (fresh > 0) ChargeParallelCompute(env.clock, compute_seconds);
  phase_dist.End();
  span_dist.End();

  // Phase 2: one packed encrypt per fresh party for the whole group; cached
  // parties' packed ciphertexts are already at the server.
  obs::Span span_enc(env.tracer, "he.encrypt", env.clock);
  span_enc.SetNode("parties");
  PhaseTimer phase_enc(c_phase_encrypt_, env.clock);
  std::vector<he::EncryptedVector> encrypted;
  if (fresh > 0) {
    std::vector<std::vector<double>> fresh_values;
    fresh_values.reserve(fresh);
    for (size_t ai = 0; ai < a; ++ai) {
      if (hits[ai] == nullptr) fresh_values.push_back(packed[ai]);
    }
    VFPS_ASSIGN_OR_RETURN(encrypted, env.backend->EncryptBatch(fresh_values));
    size_t fi = 0;
    for (size_t ai = 0; ai < a; ++ai) {
      if (hits[ai] != nullptr) continue;
      if (!c_party_enc_values_.empty()) {
        c_party_enc_values_[active[ai]]->Add(total);
      }
      VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                        net::kAggregationServer,
                                        encrypted[fi++].blob));
    }
    env.clock->Advance(CostCategory::kEncrypt, cost_->EncryptSecondsFor(total));
    ChargeFanIn(env.clock, cost_->EncryptedWireBytes(total), fresh);
  }
  phase_enc.End();
  span_enc.End();

  // Phase 3 (aggregation server): slot-wise sum over cached + fresh
  // ciphertexts in ascending active order, forward to the leader.
  obs::Span span_agg(env.tracer, "knn.aggregate", env.clock);
  span_agg.SetNode("agg-server");
  PhaseTimer phase_agg(c_phase_agg_, env.clock);
  std::vector<he::EncryptedVector> received(a);
  std::vector<const he::EncryptedVector*> ptrs(a);
  for (size_t ai = 0; ai < a; ++ai) {
    if (hits[ai] != nullptr) {
      ptrs[ai] = &hits[ai]->cipher;
      continue;
    }
    VFPS_ASSIGN_OR_RETURN(auto blob,
                          env.chan->Recv(static_cast<int>(active[ai]),
                                         net::kAggregationServer));
    received[ai] = he::EncryptedVector{std::move(blob), total};
    ptrs[ai] = &received[ai];
    if (env.fresh != nullptr) {
      PartyUnitState& st = env.fresh->parties[active[ai]];
      st.values = packed[ai];
      st.cipher = received[ai];
      st.has_cipher = true;
    }
  }
  VFPS_ASSIGN_OR_RETURN(auto summed, env.backend->Sum(ptrs));
  env.clock->Advance(CostCategory::kHeEval, static_cast<double>(a - 1) *
                                                cost_->HeAddSecondsFor(total));
  VFPS_RETURN_NOT_OK(
      env.chan->Send(net::kAggregationServer, kLeader, summed.blob));
  ChargeFanOut(env.clock, cost_->EncryptedWireBytes(total), 1);
  phase_agg.End();
  span_agg.End();

  // Phase 4 (leader): ONE decrypt for the group, then rank each query's
  // slice of the aggregate vector.
  obs::Span span_rank(env.tracer, "knn.decrypt_rank", env.clock);
  span_rank.SetNode("leader");
  PhaseTimer phase_rank(c_phase_rank_, env.clock);
  VFPS_ASSIGN_OR_RETURN(auto blob,
                        env.chan->Recv(net::kAggregationServer, kLeader));
  VFPS_ASSIGN_OR_RETURN(
      auto distances,
      env.backend->Decrypt(he::EncryptedVector{std::move(blob), total}));
  env.clock->Advance(CostCategory::kDecrypt, cost_->DecryptSecondsFor(total));
  std::vector<QueryNeighborhood> hoods(g);
  for (size_t qi = 0; qi < g; ++qi) {
    const size_t query_row = queries[lo + qi];
    env.clock->Advance(CostCategory::kCompute, cost_->SortSeconds(count));
    const auto top = SmallestK(distances.data() + qi * count, count, k);
    hoods[qi].query_row = query_row;
    hoods[qi].neighbors.reserve(top.size());
    for (uint64_t idx : top) {
      hoods[qi].neighbors.push_back(CompressedToRow(idx, query_row));
    }
  }
  phase_rank.End();
  span_rank.End();

  // Phase 5: per-query d_T exchange, exactly as in the ungrouped protocol
  // (plaintext scalars; nothing here benefits from batching).
  obs::Span span_dt(env.tracer, "knn.dt_exchange", env.clock);
  span_dt.SetNode("leader");
  PhaseTimer phase_dt(c_phase_dt_, env.clock);
  for (size_t qi = 0; qi < g; ++qi) {
    QueryNeighborhood& hood = hoods[qi];
    std::vector<uint64_t> top;
    top.reserve(hood.neighbors.size());
    const size_t query_row = queries[lo + qi];
    for (uint64_t row : hood.neighbors) {
      // Back to compressed candidate index for the partial-distance lookup.
      top.push_back(row < query_row ? row : row - 1);
    }
    for (size_t party : active) {
      if (party == 0) continue;
      VFPS_RETURN_NOT_OK(
          env.chan->Send(kLeader, static_cast<int>(party), EncodeIds(top)));
    }
    ChargeFanOut(env.clock, top.size() * sizeof(uint64_t), a - 1);
    hood.per_party_dt.assign(p, 0.0);
    for (size_t ai = 0; ai < a; ++ai) {
      const size_t party = active[ai];
      std::vector<uint64_t> ids = top;
      if (party != 0) {
        VFPS_ASSIGN_OR_RETURN(auto payload,
                              env.chan->Recv(kLeader, static_cast<int>(party)));
        VFPS_ASSIGN_OR_RETURN(ids, DecodeIds(payload));
      }
      double dt = 0.0;
      for (uint64_t idx : ids) dt += packed[ai][qi * count + idx];
      if (party == 0) {
        hood.per_party_dt[0] = dt;
      } else {
        VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(party), kLeader,
                                          EncodeScalar(dt)));
        VFPS_ASSIGN_OR_RETURN(auto payload,
                              env.chan->Recv(static_cast<int>(party), kLeader));
        VFPS_ASSIGN_OR_RETURN(hood.per_party_dt[party], DecodeScalar(payload));
      }
    }
    ChargeFanIn(env.clock, sizeof(double), a - 1);
  }
  phase_dt.End();
  span_dt.End();

  if (h_candidates_ != nullptr) {
    for (size_t qi = 0; qi < g; ++qi) h_candidates_->Record(count);
  }
  if (stats != nullptr) stats->candidates_encrypted += total;
  return hoods;
}

Result<QueryNeighborhood> FederatedKnnOracle::RunTopkQuery(
    const QueryEnv& env, const PseudoIdMap& pseudo, uint64_t query_row,
    size_t k, size_t batch, KnnOracleMode mode, FedKnnStats* stats) const {
  const size_t n = joint_->num_samples();
  const size_t p = num_participants();
  const std::vector<size_t>& active = *env.active;
  const size_t a = active.size();  // == p with no quarantine

  // Step 1: consortium-shared pseudo-ID shuffle (identity security). The map
  // is built once per Run and shared read-only across query tasks.
  const uint64_t query_pid = pseudo.ToPseudo(query_row);

  // Step 2 (active participants, parallel): partial distances in pseudo-ID
  // space, sorted ascending to form sub-rankings. Indexed by position in
  // `active`.
  obs::Span span_dist(env.tracer, "knn.partial_distance", env.clock);
  span_dist.SetNode("parties");
  PhaseTimer phase_dist(c_phase_dist_, env.clock);
  const auto cached_for = [&](size_t party) -> const PartyUnitState* {
    if (env.cached == nullptr) return nullptr;
    const auto it = env.cached->parties.find(party);
    if (it == env.cached->parties.end()) return nullptr;
    const PartyUnitState& st = it->second;
    return (st.values.size() == n && st.order.size() == n) ? &st : nullptr;
  };
  std::vector<std::vector<double>> scores(a);
  std::vector<std::vector<uint64_t>> orders(a);
  // Rows of a party's sub-ranking the server already received in a prior run
  // of this unit — streaming below skips them.
  std::vector<size_t> prior_depth(a, 0);
  std::vector<double> compute_seconds;
  compute_seconds.reserve(a);
  size_t fresh = 0;
  for (size_t ai = 0; ai < a; ++ai) {
    if (const PartyUnitState* st = cached_for(active[ai])) {
      scores[ai] = st->values;
      orders[ai] = st->order;
      prior_depth[ai] = st->streamed_depth;
      if (stats != nullptr) ++stats->reused_contributions;
      if (c_cache_hit_ != nullptr) c_cache_hit_->Add(1);
      continue;
    }
    if (env.cached != nullptr && c_cache_miss_ != nullptr) {
      c_cache_miss_->Add(1);
    }
    obs::Span party_span(env.tracer, "knn.party.compute", env.clock);
    party_span.SetNode(net::NodeName(static_cast<int>(active[ai])));
    scores[ai].resize(n);
    // Same kernel as the BASE path (PartialDistances without exclusion), so
    // the per-(party, row) values agree exactly across oracle modes; only
    // the pseudo-ID scatter differs.
    const auto partial =
        PartialDistances(active[ai], *joint_, query_row, n /*no exclusion*/);
    for (size_t i = 0; i < n; ++i) {
      scores[ai][pseudo.ToPseudo(i)] = partial[i];
    }
    scores[ai][query_pid] = std::numeric_limits<double>::infinity();
    orders[ai] = topk::RankedListSet::SortedOrder(scores[ai]);
    compute_seconds.push_back(
        cost_->DistanceSeconds(n, (*partition_)[active[ai]].size()) +
        cost_->SortSeconds(n));
    ++fresh;
    if (env.fresh != nullptr) {
      // Stage the sub-ranking immediately so a later-phase failure still
      // salvages this party's work (streamed_depth catches up below).
      PartyUnitState& st = env.fresh->parties[active[ai]];
      st.values = scores[ai];
      st.order = orders[ai];
    }
  }
  if (fresh > 0) ChargeParallelCompute(env.clock, compute_seconds);
  phase_dist.End();
  span_dist.End();

  obs::Span span_merge(env.tracer, "knn.topk_merge", env.clock);
  span_merge.SetNode("agg-server");
  PhaseTimer phase_merge(c_phase_merge_, env.clock);
  VFPS_ASSIGN_OR_RETURN(auto lists,
                        topk::RankedListSet::BuildPresorted(scores, orders));
  topk::TopkResult merge;
  if (mode == KnnOracleMode::kThreshold) {
    VFPS_ASSIGN_OR_RETURN(merge, topk::ThresholdTopk(lists, k, obs_));
  } else {
    VFPS_ASSIGN_OR_RETURN(merge, topk::FaginTopk(lists, k, batch, obs_));
  }
  const topk::TopkResult& fagin = merge;
  phase_merge.End();
  span_merge.End();

  // Steps 3-4: mini-batch streaming of the sub-rankings to the server. The
  // phase-1 depth of the merge algorithm determines how many rounds happen.
  obs::Span span_stream(env.tracer, "knn.stream_rankings", env.clock);
  span_stream.SetNode("parties");
  PhaseTimer phase_stream(c_phase_stream_, env.clock);
  const size_t depth = fagin.depth;
  for (size_t start = 0; start < depth; start += batch) {
    const size_t end = std::min(depth, start + batch);
    size_t senders = 0;
    for (size_t ai = 0; ai < a; ++ai) {
      // Parties whose cached sub-ranking already streamed past this round
      // stay silent; a party partially covered sends only the missing tail.
      if (prior_depth[ai] >= end) continue;
      const size_t from = std::max(start, prior_depth[ai]);
      std::vector<uint64_t> chunk;
      chunk.reserve(end - from);
      for (size_t r = from; r < end; ++r) chunk.push_back(lists.IdAtRank(ai, r));
      VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                        net::kAggregationServer,
                                        EncodeIds(chunk)));
      VFPS_RETURN_NOT_OK(env.chan->Recv(static_cast<int>(active[ai]),
                                        net::kAggregationServer)
                             .status());
      ++senders;
    }
    if (senders > 0) {
      ChargeFanIn(env.clock, (end - start) * sizeof(uint64_t), senders);
    }
  }
  if (env.fresh != nullptr) {
    for (size_t ai = 0; ai < a; ++ai) {
      if (prior_depth[ai] >= depth) continue;
      // Fresh parties already have a staged entry; for cached parties that
      // streamed deeper this creates a depth-only entry the cache merges.
      env.fresh->parties[active[ai]].streamed_depth = depth;
    }
  }
  env.clock->Advance(CostCategory::kCompute,
                     static_cast<double>(fagin.sorted_accesses) * cost_->compare_seconds);

  if (mode == KnnOracleMode::kThreshold) {
    // TA's stopping rule needs the aggregate score of each round's frontier:
    // every participant encrypts one frontier value, the server sums them,
    // and the leader decrypts the threshold — once per streamed round.
    const double rounds = std::ceil(static_cast<double>(depth) /
                                    static_cast<double>(batch));
    env.clock->Advance(CostCategory::kEncrypt, rounds * cost_->EncryptSecondsFor(1));
    env.clock->Advance(CostCategory::kHeEval,
                       rounds * static_cast<double>(a - 1) * cost_->HeAddSecondsFor(1));
    env.clock->Advance(CostCategory::kDecrypt, rounds * cost_->DecryptSecondsFor(1));
    env.clock->Advance(
        CostCategory::kNetwork,
        rounds * cost_->NetworkSeconds(
                     cost_->EncryptedWireBytes(1) * (static_cast<uint64_t>(a) + 1),
                     2));
  }

  phase_stream.End();
  span_stream.End();

  // Candidate set: everything seen during phase 1 (minus the query itself).
  std::vector<uint64_t> candidates = fagin.candidate_ids;
  candidates.erase(std::remove(candidates.begin(), candidates.end(), query_pid),
                   candidates.end());
  const size_t c = candidates.size();

  // Step 5: server broadcasts the candidate pseudo IDs; participants look up
  // exactly those candidates' partial distances and encrypt them as one
  // batch (the batched-HE fast path; identical ciphertexts at any thread
  // count, see HeBackend::EncryptBatch).
  obs::Span span_enc(env.tracer, "he.encrypt", env.clock);
  span_enc.SetNode("parties");
  PhaseTimer phase_enc(c_phase_encrypt_, env.clock);
  for (size_t party : active) {
    VFPS_RETURN_NOT_OK(env.chan->Send(net::kAggregationServer,
                                      static_cast<int>(party),
                                      EncodeIds(candidates)));
  }
  ChargeFanOut(env.clock, c * sizeof(uint64_t), a);

  std::vector<std::vector<double>> party_values(a);
  for (size_t ai = 0; ai < a; ++ai) {
    VFPS_ASSIGN_OR_RETURN(auto payload,
                          env.chan->Recv(net::kAggregationServer,
                                         static_cast<int>(active[ai])));
    VFPS_ASSIGN_OR_RETURN(auto ids, DecodeIds(payload));
    party_values[ai].reserve(ids.size());
    for (uint64_t pid : ids) party_values[ai].push_back(scores[ai][pid]);
  }
  VFPS_ASSIGN_OR_RETURN(auto encrypted, env.backend->EncryptBatch(party_values));
  std::vector<const he::EncryptedVector*> ptrs(a);
  for (size_t ai = 0; ai < a; ++ai) {
    if (!c_party_enc_values_.empty()) {
      c_party_enc_values_[active[ai]]->Add(c);
    }
    VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                      net::kAggregationServer,
                                      encrypted[ai].blob));
  }
  env.clock->Advance(CostCategory::kEncrypt, cost_->EncryptSecondsFor(c));
  ChargeFanIn(env.clock, cost_->EncryptedWireBytes(c), a);
  phase_enc.End();
  span_enc.End();

  // Step 6: homomorphic aggregation, forwarded to the leader.
  obs::Span span_agg(env.tracer, "knn.aggregate", env.clock);
  span_agg.SetNode("agg-server");
  PhaseTimer phase_agg(c_phase_agg_, env.clock);
  for (size_t ai = 0; ai < a; ++ai) {
    VFPS_ASSIGN_OR_RETURN(auto blob,
                          env.chan->Recv(static_cast<int>(active[ai]),
                                         net::kAggregationServer));
    encrypted[ai] = he::EncryptedVector{std::move(blob), c};
    ptrs[ai] = &encrypted[ai];
  }
  VFPS_ASSIGN_OR_RETURN(auto summed, env.backend->Sum(ptrs));
  env.clock->Advance(CostCategory::kHeEval,
                     static_cast<double>(a - 1) * cost_->HeAddSecondsFor(c));
  VFPS_RETURN_NOT_OK(env.chan->Send(net::kAggregationServer, kLeader, summed.blob));
  ChargeFanOut(env.clock, cost_->EncryptedWireBytes(c), 1);
  phase_agg.End();
  span_agg.End();

  // Step 7 (leader): decrypt candidate aggregates, take the k nearest.
  obs::Span span_rank(env.tracer, "knn.decrypt_rank", env.clock);
  span_rank.SetNode("leader");
  PhaseTimer phase_rank(c_phase_rank_, env.clock);
  VFPS_ASSIGN_OR_RETURN(auto blob, env.chan->Recv(net::kAggregationServer, kLeader));
  VFPS_ASSIGN_OR_RETURN(
      auto agg_distances,
      env.backend->Decrypt(he::EncryptedVector{std::move(blob), c}));
  env.clock->Advance(CostCategory::kDecrypt, cost_->DecryptSecondsFor(c));
  env.clock->Advance(CostCategory::kCompute, cost_->SortSeconds(c));
  const auto top_local = SmallestK(agg_distances, k);
  phase_rank.End();
  span_rank.End();
  std::vector<uint64_t> neighbor_pids;
  neighbor_pids.reserve(top_local.size());
  for (uint64_t idx : top_local) neighbor_pids.push_back(candidates[idx]);

  QueryNeighborhood hood;
  hood.query_row = query_row;
  VFPS_ASSIGN_OR_RETURN(hood.neighbors, pseudo.MapToOriginal(neighbor_pids));

  // Step 8: leader broadcasts the neighbor set; active participants return
  // d_T^p (quarantined slots keep 0).
  obs::Span span_dt(env.tracer, "knn.dt_exchange", env.clock);
  span_dt.SetNode("leader");
  PhaseTimer phase_dt(c_phase_dt_, env.clock);
  for (size_t party : active) {
    if (party == 0) continue;
    VFPS_RETURN_NOT_OK(env.chan->Send(kLeader, static_cast<int>(party),
                                      EncodeIds(neighbor_pids)));
  }
  ChargeFanOut(env.clock, neighbor_pids.size() * sizeof(uint64_t), a - 1);
  hood.per_party_dt.assign(p, 0.0);
  for (size_t ai = 0; ai < a; ++ai) {
    const size_t party = active[ai];
    std::vector<uint64_t> pids = neighbor_pids;
    if (party != 0) {
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(kLeader, static_cast<int>(party)));
      VFPS_ASSIGN_OR_RETURN(pids, DecodeIds(payload));
    }
    double dt = 0.0;
    for (uint64_t pid : pids) dt += scores[ai][pid];
    if (party == 0) {
      hood.per_party_dt[0] = dt;
    } else {
      VFPS_RETURN_NOT_OK(
          env.chan->Send(static_cast<int>(party), kLeader, EncodeScalar(dt)));
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(static_cast<int>(party), kLeader));
      VFPS_ASSIGN_OR_RETURN(hood.per_party_dt[party], DecodeScalar(payload));
    }
  }
  ChargeFanIn(env.clock, sizeof(double), a - 1);
  phase_dt.End();
  span_dt.End();

  if (h_candidates_ != nullptr) h_candidates_->Record(c);
  if (stats != nullptr) {
    stats->candidates_encrypted += c;
    stats->fagin_depth += depth;
  }
  return hood;
}

Result<std::vector<uint64_t>> FederatedKnnOracle::RunPrefilterExchange(
    const QueryEnv& env, const ShardRuntime& rt, uint64_t query_row) const {
  const size_t n = joint_->num_samples();
  const std::vector<size_t>& active = *env.active;
  const size_t a = active.size();
  const std::vector<ml::KMeansResult>& models = *rt.prefilter;

  obs::Span span(env.tracer, "knn.prefilter", env.clock);
  span.SetNode("parties");
  // Each party ranks its clusters by centroid distance to its slice of the
  // query and nominates the nearest clusters' member rows until the coverage
  // target is met. Plaintext and party-local; only row ids cross the wire.
  std::vector<std::vector<uint64_t>> nominated(a);
  std::vector<uint8_t> mask(n, 0);
  double worst_seconds = 0.0;
  const double* qrow = joint_->Row(query_row);
  for (size_t ai = 0; ai < a; ++ai) {
    const size_t party = active[ai];
    const ml::KMeansResult& km = models[party];
    const ml::FeatureBlock& block = party_blocks_[party];
    std::vector<double> qslice(block.cols());
    block.GatherInto(qrow, qslice.data());
    const double q_norm = ml::SquaredNorm(qslice.data(), block.cols());
    std::vector<std::pair<double, uint32_t>> ranked;
    ranked.reserve(km.clusters);
    for (size_t c = 0; c < km.clusters; ++c) {
      const double* centroid = km.centroid(c);
      const double dot = ml::DotProduct(qslice.data(), centroid, block.cols());
      const double c_norm = ml::SquaredNorm(centroid, block.cols());
      ranked.emplace_back(q_norm + c_norm - 2.0 * dot,
                          static_cast<uint32_t>(c));
    }
    std::sort(ranked.begin(), ranked.end());
    size_t covered = 0;
    for (const auto& [dist, c] : ranked) {
      (void)dist;
      for (uint32_t row : km.members[c]) {
        nominated[ai].push_back(row);
        if (row != query_row) mask[row] = 1;
      }
      covered += km.members[c].size();
      if (covered >= rt.prefilter_target) break;
    }
    worst_seconds = std::max(
        worst_seconds, cost_->DistanceSeconds(km.clusters, block.cols()));
  }
  env.clock->Advance(CostCategory::kCompute, worst_seconds);

  // Nomination exchange: parties upload their lists, the server broadcasts
  // the deduplicated union — same wire shape as the Fagin candidate exchange.
  uint64_t fan_in_worst = 0;
  for (size_t ai = 0; ai < a; ++ai) {
    VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                      net::kAggregationServer,
                                      EncodeIds(nominated[ai])));
    VFPS_RETURN_NOT_OK(env.chan->Recv(static_cast<int>(active[ai]),
                                      net::kAggregationServer)
                           .status());
    fan_in_worst =
        std::max(fan_in_worst, static_cast<uint64_t>(nominated[ai].size()) *
                                   sizeof(uint64_t));
  }
  ChargeFanIn(env.clock, fan_in_worst, a);

  std::vector<uint64_t> candidates;
  for (size_t row = 0; row < n; ++row) {
    if (mask[row] != 0) candidates.push_back(row);
  }
  for (size_t party : active) {
    VFPS_RETURN_NOT_OK(env.chan->Send(net::kAggregationServer,
                                      static_cast<int>(party),
                                      EncodeIds(candidates)));
    VFPS_RETURN_NOT_OK(
        env.chan->Recv(net::kAggregationServer, static_cast<int>(party))
            .status());
  }
  ChargeFanOut(env.clock, candidates.size() * sizeof(uint64_t), a);

  if (c_prefilter_candidates_ != nullptr) {
    c_prefilter_candidates_->Add(candidates.size());
    c_prefilter_pruned_->Add((n - 1) - candidates.size());
  }
  return candidates;
}

Result<QueryNeighborhood> FederatedKnnOracle::RunBaseQuerySharded(
    const QueryEnv& env, uint64_t query_row, size_t k,
    FedKnnStats* stats) const {
  const size_t p = num_participants();
  const std::vector<size_t>& active = *env.active;
  const size_t a = active.size();
  const ShardRuntime& rt = *env.shard;

  // Optional TreeCSS-style pre-filter: nomination happens once, BEFORE any
  // distance or HE work, and every shard below touches only its slice of the
  // candidate set. `filtered == false` means every row is a candidate.
  const bool filtered = rt.prefilter != nullptr;
  std::vector<uint64_t> candidates;  // ascending original rows, query excluded
  if (filtered) {
    VFPS_ASSIGN_OR_RETURN(candidates,
                          RunPrefilterExchange(env, rt, query_row));
  }

  // Per-party query slices, gathered once and reused by every shard.
  std::vector<std::vector<double>> qslices(a);
  std::vector<double> qnorms(a, 0.0);
  const double* qrow = joint_->Row(query_row);
  for (size_t ai = 0; ai < a; ++ai) {
    const ml::FeatureBlock& block = party_blocks_[active[ai]];
    qslices[ai].resize(block.cols());
    block.GatherInto(qrow, qslices[ai].data());
    qnorms[ai] = ml::SquaredNorm(qslices[ai].data(), block.cols());
  }

  // Shard loop: the complete BASE round (distances -> encrypt -> aggregate ->
  // decrypt -> shard-local SmallestK) runs per shard, so only O(shard)
  // protocol state is ever live. Ids are global COMPRESSED indices (the
  // unsharded ranking's id space), which keeps the merge's (value, id) order
  // identical to RunBaseQuery's SmallestK order.
  std::vector<topk::ShardTopk> shard_tops;
  shard_tops.reserve(rt.plan.size());
  size_t total_count = 0;
  for (size_t s = 0; s < rt.plan.size(); ++s) {
    const data::RowShard& shard = rt.plan[s];
    // This shard's candidate rows, ascending, query row excluded.
    std::vector<uint64_t> rows;
    if (filtered) {
      const auto first =
          std::lower_bound(candidates.begin(), candidates.end(),
                           static_cast<uint64_t>(shard.begin));
      const auto last = std::lower_bound(first, candidates.end(),
                                         static_cast<uint64_t>(shard.end));
      rows.assign(first, last);
    } else {
      rows.reserve(shard.rows());
      for (size_t row = shard.begin; row < shard.end; ++row) {
        if (row != query_row) rows.push_back(row);
      }
    }
    const size_t count = rows.size();
    if (count == 0) continue;
    total_count += count;

    obs::Span shard_span(env.tracer, "knn.shard", env.clock);
    shard_span.SetNode("parties");
    if (env.tracer != nullptr) {
      shard_span.Annotate("shard", StrFormat("%zu", s));
      shard_span.Annotate("rows", StrFormat("%zu", count));
    }
    PhaseTimer shard_timer(rt.sim_ns.empty() ? nullptr : rt.sim_ns[s],
                           env.clock);
    if (!rt.candidates.empty()) rt.candidates[s]->Add(count);

    // Phase 1 (parallel parties): partial distances over the shard's rows via
    // the range kernel — contiguous sub-ranges around the query row when
    // unfiltered, single-row calls on the sparse candidate set when filtered.
    // Either way each row's value is bit-identical to a full-range sweep.
    PhaseTimer phase_dist(c_phase_dist_, env.clock);
    std::vector<std::vector<double>> partials(a);
    std::vector<double> compute_seconds(a, 0.0);
    for (size_t ai = 0; ai < a; ++ai) {
      const ml::FeatureBlock& block = party_blocks_[active[ai]];
      const double* q = qslices[ai].data();
      partials[ai].resize(count);
      if (!filtered) {
        if (query_row < shard.begin || query_row >= shard.end) {
          ml::BlockSquaredDistances(block, q, qnorms[ai], shard.begin,
                                    shard.end, partials[ai].data());
        } else {
          ml::BlockSquaredDistances(block, q, qnorms[ai], shard.begin,
                                    query_row, partials[ai].data());
          ml::BlockSquaredDistances(block, q, qnorms[ai], query_row + 1,
                                    shard.end,
                                    partials[ai].data() +
                                        (query_row - shard.begin));
        }
      } else {
        for (size_t i = 0; i < count; ++i) {
          const size_t row = static_cast<size_t>(rows[i]);
          ml::BlockSquaredDistances(block, q, qnorms[ai], row, row + 1,
                                    &partials[ai][i]);
        }
      }
      compute_seconds[ai] = cost_->DistanceSeconds(count, block.cols());
    }
    ChargeParallelCompute(env.clock, compute_seconds);
    phase_dist.End();

    // Phases 2-4: per-shard encrypted aggregation round — the same wire
    // shape as the unsharded BASE round, sized by the shard.
    PhaseTimer phase_enc(c_phase_encrypt_, env.clock);
    VFPS_ASSIGN_OR_RETURN(auto encrypted, env.backend->EncryptBatch(partials));
    for (size_t ai = 0; ai < a; ++ai) {
      if (!c_party_enc_values_.empty()) {
        c_party_enc_values_[active[ai]]->Add(count);
      }
      VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                        net::kAggregationServer,
                                        encrypted[ai].blob));
    }
    env.clock->Advance(CostCategory::kEncrypt, cost_->EncryptSecondsFor(count));
    ChargeFanIn(env.clock, cost_->EncryptedWireBytes(count), a);
    phase_enc.End();

    PhaseTimer phase_agg(c_phase_agg_, env.clock);
    std::vector<const he::EncryptedVector*> ptrs(a);
    for (size_t ai = 0; ai < a; ++ai) {
      VFPS_ASSIGN_OR_RETURN(auto blob,
                            env.chan->Recv(static_cast<int>(active[ai]),
                                           net::kAggregationServer));
      encrypted[ai] = he::EncryptedVector{std::move(blob), count};
      ptrs[ai] = &encrypted[ai];
    }
    VFPS_ASSIGN_OR_RETURN(auto summed, env.backend->Sum(ptrs));
    env.clock->Advance(CostCategory::kHeEval,
                       static_cast<double>(a - 1) *
                           cost_->HeAddSecondsFor(count));
    VFPS_RETURN_NOT_OK(
        env.chan->Send(net::kAggregationServer, kLeader, summed.blob));
    ChargeFanOut(env.clock, cost_->EncryptedWireBytes(count), 1);
    phase_agg.End();

    PhaseTimer phase_rank(c_phase_rank_, env.clock);
    VFPS_ASSIGN_OR_RETURN(auto blob,
                          env.chan->Recv(net::kAggregationServer, kLeader));
    VFPS_ASSIGN_OR_RETURN(
        auto distances,
        env.backend->Decrypt(he::EncryptedVector{std::move(blob), count}));
    env.clock->Advance(CostCategory::kDecrypt, cost_->DecryptSecondsFor(count));
    env.clock->Advance(CostCategory::kCompute, cost_->SortSeconds(count));
    const auto top = SmallestK(distances.data(), count, k);
    phase_rank.End();

    // Shard-local top-k in the global compressed id space. `rows` is
    // ascending, so compressed ids are monotone in the local index and
    // SmallestK's (value, local index) order IS the merge's (value, id)
    // order — no re-sort needed.
    topk::ShardTopk st;
    st.values.reserve(top.size());
    st.ids.reserve(top.size());
    for (uint64_t li : top) {
      st.values.push_back(distances[li]);
      const uint64_t row = rows[li];
      st.ids.push_back(row < query_row ? row : row - 1);
    }
    shard_tops.push_back(std::move(st));
  }

  // Hierarchical merge at the leader: tournament rounds over the shard
  // top-ks. Lossless and associative, so the result equals the top-k of the
  // concatenated candidate set — i.e. exactly RunBaseQuery's ranking when
  // the pre-filter is off.
  obs::Span span_merge(env.tracer, "knn.topk_merge", env.clock);
  span_merge.SetNode("leader");
  PhaseTimer phase_merge(c_phase_merge_, env.clock);
  topk::ShardMergeStats merge_stats;
  VFPS_ASSIGN_OR_RETURN(auto merged,
                        topk::HierarchicalTopkMerge(std::move(shard_tops), k,
                                                    &merge_stats));
  env.clock->Advance(CostCategory::kCompute,
                     cost_->SortSeconds(merge_stats.entries_in));
  if (c_shard_merges_ != nullptr) c_shard_merges_->Add(merge_stats.merges);
  phase_merge.End();
  span_merge.End();

  QueryNeighborhood hood;
  hood.query_row = query_row;
  hood.neighbors.reserve(merged.size());
  for (uint64_t idx : merged.ids) {
    hood.neighbors.push_back(CompressedToRow(idx, query_row));
  }

  // d_T exchange. The shard-local partials are gone by design (O(shard)
  // residency), so each party recomputes its k neighbor rows with single-row
  // kernel calls — bit-identical to the values it aggregated above.
  obs::Span span_dt(env.tracer, "knn.dt_exchange", env.clock);
  span_dt.SetNode("leader");
  PhaseTimer phase_dt(c_phase_dt_, env.clock);
  for (size_t party : active) {
    if (party == 0) continue;
    VFPS_RETURN_NOT_OK(
        env.chan->Send(kLeader, static_cast<int>(party), EncodeIds(merged.ids)));
  }
  ChargeFanOut(env.clock, merged.size() * sizeof(uint64_t), a - 1);
  hood.per_party_dt.assign(p, 0.0);
  std::vector<double> dt_seconds(a, 0.0);
  for (size_t ai = 0; ai < a; ++ai) {
    const size_t party = active[ai];
    std::vector<uint64_t> ids = merged.ids;
    if (party != 0) {
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(kLeader, static_cast<int>(party)));
      VFPS_ASSIGN_OR_RETURN(ids, DecodeIds(payload));
    }
    const ml::FeatureBlock& block = party_blocks_[party];
    double dt = 0.0;
    for (uint64_t idx : ids) {
      const size_t row = static_cast<size_t>(CompressedToRow(idx, query_row));
      double d = 0.0;
      ml::BlockSquaredDistances(block, qslices[ai].data(), qnorms[ai], row,
                                row + 1, &d);
      dt += d;
    }
    dt_seconds[ai] = cost_->DistanceSeconds(ids.size(), block.cols());
    if (party == 0) {
      hood.per_party_dt[0] = dt;
    } else {
      VFPS_RETURN_NOT_OK(
          env.chan->Send(static_cast<int>(party), kLeader, EncodeScalar(dt)));
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(static_cast<int>(party), kLeader));
      VFPS_ASSIGN_OR_RETURN(hood.per_party_dt[party], DecodeScalar(payload));
    }
  }
  ChargeParallelCompute(env.clock, dt_seconds);
  ChargeFanIn(env.clock, sizeof(double), a - 1);
  phase_dt.End();
  span_dt.End();

  if (h_candidates_ != nullptr) h_candidates_->Record(total_count);
  if (stats != nullptr) stats->candidates_encrypted += total_count;
  return hood;
}

Result<QueryNeighborhood> FederatedKnnOracle::RunTopkQuerySharded(
    const QueryEnv& env, const PseudoIdMap& pseudo, uint64_t query_row,
    size_t k, size_t batch, KnnOracleMode mode, FedKnnStats* stats) const {
  const size_t p = num_participants();
  const std::vector<size_t>& active = *env.active;
  const size_t a = active.size();
  const ShardRuntime& rt = *env.shard;

  const bool filtered = rt.prefilter != nullptr;
  std::vector<uint64_t> candidates;  // ascending original rows, query excluded
  if (filtered) {
    VFPS_ASSIGN_OR_RETURN(candidates,
                          RunPrefilterExchange(env, rt, query_row));
  }

  std::vector<std::vector<double>> qslices(a);
  std::vector<double> qnorms(a, 0.0);
  const double* qrow = joint_->Row(query_row);
  for (size_t ai = 0; ai < a; ++ai) {
    const ml::FeatureBlock& block = party_blocks_[active[ai]];
    qslices[ai].resize(block.cols());
    block.GatherInto(qrow, qslices[ai].data());
    qnorms[ai] = ml::SquaredNorm(qslices[ai].data(), block.cols());
  }

  // Shard loop: each shard runs the COMPLETE Fagin/TA pipeline over its own
  // rows — sub-ranking sort, phase-1 merge, mini-batch streaming, candidate
  // encryption, shard-local SmallestK — so resident ranking state is
  // O(shard·P), never O(N·P). Items live in a shard-local index space; only
  // pseudo ids go on the wire and into the merge.
  std::vector<topk::ShardTopk> shard_tops;
  shard_tops.reserve(rt.plan.size());
  size_t total_candidates = 0;
  uint64_t total_depth = 0;
  for (size_t s = 0; s < rt.plan.size(); ++s) {
    const data::RowShard& shard = rt.plan[s];
    std::vector<uint64_t> rows;  // this shard's items (ascending, no query)
    if (filtered) {
      const auto first =
          std::lower_bound(candidates.begin(), candidates.end(),
                           static_cast<uint64_t>(shard.begin));
      const auto last = std::lower_bound(first, candidates.end(),
                                         static_cast<uint64_t>(shard.end));
      rows.assign(first, last);
    } else {
      rows.reserve(shard.rows());
      for (size_t row = shard.begin; row < shard.end; ++row) {
        if (row != query_row) rows.push_back(row);
      }
    }
    const size_t m = rows.size();
    if (m == 0) continue;

    obs::Span shard_span(env.tracer, "knn.shard", env.clock);
    shard_span.SetNode("parties");
    if (env.tracer != nullptr) {
      shard_span.Annotate("shard", StrFormat("%zu", s));
      shard_span.Annotate("rows", StrFormat("%zu", m));
    }
    PhaseTimer shard_timer(rt.sim_ns.empty() ? nullptr : rt.sim_ns[s],
                           env.clock);
    if (!rt.candidates.empty()) rt.candidates[s]->Add(m);

    // Phase 1 (parallel parties): shard-local scores + sub-ranking sort.
    // Unlike the unsharded path the query row is excluded from the item
    // space up front (instead of carrying an +inf sentinel), which changes
    // nothing downstream: +inf can never enter a top-k or candidate set.
    PhaseTimer phase_dist(c_phase_dist_, env.clock);
    std::vector<uint64_t> pids(m);
    for (size_t i = 0; i < m; ++i) {
      pids[i] = pseudo.ToPseudo(static_cast<size_t>(rows[i]));
    }
    std::vector<std::vector<double>> scores(a);
    std::vector<std::vector<uint64_t>> orders(a);
    std::vector<double> compute_seconds(a, 0.0);
    for (size_t ai = 0; ai < a; ++ai) {
      const ml::FeatureBlock& block = party_blocks_[active[ai]];
      const double* q = qslices[ai].data();
      scores[ai].resize(m);
      if (!filtered) {
        if (query_row < shard.begin || query_row >= shard.end) {
          ml::BlockSquaredDistances(block, q, qnorms[ai], shard.begin,
                                    shard.end, scores[ai].data());
        } else {
          ml::BlockSquaredDistances(block, q, qnorms[ai], shard.begin,
                                    query_row, scores[ai].data());
          ml::BlockSquaredDistances(block, q, qnorms[ai], query_row + 1,
                                    shard.end,
                                    scores[ai].data() +
                                        (query_row - shard.begin));
        }
      } else {
        for (size_t i = 0; i < m; ++i) {
          const size_t row = static_cast<size_t>(rows[i]);
          ml::BlockSquaredDistances(block, q, qnorms[ai], row, row + 1,
                                    &scores[ai][i]);
        }
      }
      orders[ai] = topk::RankedListSet::SortedOrder(scores[ai]);
      compute_seconds[ai] =
          cost_->DistanceSeconds(m, block.cols()) + cost_->SortSeconds(m);
    }
    ChargeParallelCompute(env.clock, compute_seconds);
    phase_dist.End();

    // Shard-local phase-1 merge (exact within the shard).
    PhaseTimer phase_merge(c_phase_merge_, env.clock);
    VFPS_ASSIGN_OR_RETURN(auto lists,
                          topk::RankedListSet::BuildPresorted(scores, orders));
    topk::TopkResult merge;
    if (mode == KnnOracleMode::kThreshold) {
      VFPS_ASSIGN_OR_RETURN(merge, topk::ThresholdTopk(lists, k, obs_));
    } else {
      VFPS_ASSIGN_OR_RETURN(merge, topk::FaginTopk(lists, k, batch, obs_));
    }
    phase_merge.End();

    // Mini-batch streaming of this shard's sub-rankings — the wire carries
    // pseudo ids, the resident ranking state stays O(shard).
    PhaseTimer phase_stream(c_phase_stream_, env.clock);
    const size_t depth = merge.depth;
    total_depth += depth;
    for (size_t start = 0; start < depth; start += batch) {
      const size_t end = std::min(depth, start + batch);
      for (size_t ai = 0; ai < a; ++ai) {
        std::vector<uint64_t> chunk;
        chunk.reserve(end - start);
        for (size_t r = start; r < end; ++r) {
          chunk.push_back(pids[lists.IdAtRank(ai, r)]);
        }
        VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                          net::kAggregationServer,
                                          EncodeIds(chunk)));
        VFPS_RETURN_NOT_OK(env.chan->Recv(static_cast<int>(active[ai]),
                                          net::kAggregationServer)
                               .status());
      }
      ChargeFanIn(env.clock, (end - start) * sizeof(uint64_t), a);
    }
    env.clock->Advance(CostCategory::kCompute,
                       static_cast<double>(merge.sorted_accesses) *
                           cost_->compare_seconds);
    if (mode == KnnOracleMode::kThreshold) {
      const double rounds = std::ceil(static_cast<double>(depth) /
                                      static_cast<double>(batch));
      env.clock->Advance(CostCategory::kEncrypt,
                         rounds * cost_->EncryptSecondsFor(1));
      env.clock->Advance(CostCategory::kHeEval,
                         rounds * static_cast<double>(a - 1) *
                             cost_->HeAddSecondsFor(1));
      env.clock->Advance(CostCategory::kDecrypt,
                         rounds * cost_->DecryptSecondsFor(1));
      env.clock->Advance(
          CostCategory::kNetwork,
          rounds * cost_->NetworkSeconds(cost_->EncryptedWireBytes(1) *
                                             (static_cast<uint64_t>(a) + 1),
                                         2));
    }
    phase_stream.End();

    // Candidate-set encryption round, sized by this shard's candidates.
    const std::vector<uint64_t>& cand = merge.candidate_ids;  // local items
    const size_t c = cand.size();
    total_candidates += c;
    std::vector<uint64_t> cand_pids(c);
    for (size_t i = 0; i < c; ++i) cand_pids[i] = pids[cand[i]];

    PhaseTimer phase_enc(c_phase_encrypt_, env.clock);
    for (size_t party : active) {
      VFPS_RETURN_NOT_OK(env.chan->Send(net::kAggregationServer,
                                        static_cast<int>(party),
                                        EncodeIds(cand_pids)));
      VFPS_RETURN_NOT_OK(
          env.chan->Recv(net::kAggregationServer, static_cast<int>(party))
              .status());
    }
    ChargeFanOut(env.clock, c * sizeof(uint64_t), a);
    std::vector<std::vector<double>> party_values(a);
    for (size_t ai = 0; ai < a; ++ai) {
      party_values[ai].reserve(c);
      for (uint64_t li : cand) party_values[ai].push_back(scores[ai][li]);
    }
    VFPS_ASSIGN_OR_RETURN(auto encrypted,
                          env.backend->EncryptBatch(party_values));
    std::vector<const he::EncryptedVector*> ptrs(a);
    for (size_t ai = 0; ai < a; ++ai) {
      if (!c_party_enc_values_.empty()) {
        c_party_enc_values_[active[ai]]->Add(c);
      }
      VFPS_RETURN_NOT_OK(env.chan->Send(static_cast<int>(active[ai]),
                                        net::kAggregationServer,
                                        encrypted[ai].blob));
    }
    env.clock->Advance(CostCategory::kEncrypt, cost_->EncryptSecondsFor(c));
    ChargeFanIn(env.clock, cost_->EncryptedWireBytes(c), a);
    phase_enc.End();

    PhaseTimer phase_agg(c_phase_agg_, env.clock);
    for (size_t ai = 0; ai < a; ++ai) {
      VFPS_ASSIGN_OR_RETURN(auto blob,
                            env.chan->Recv(static_cast<int>(active[ai]),
                                           net::kAggregationServer));
      encrypted[ai] = he::EncryptedVector{std::move(blob), c};
      ptrs[ai] = &encrypted[ai];
    }
    VFPS_ASSIGN_OR_RETURN(auto summed, env.backend->Sum(ptrs));
    env.clock->Advance(CostCategory::kHeEval,
                       static_cast<double>(a - 1) * cost_->HeAddSecondsFor(c));
    VFPS_RETURN_NOT_OK(
        env.chan->Send(net::kAggregationServer, kLeader, summed.blob));
    ChargeFanOut(env.clock, cost_->EncryptedWireBytes(c), 1);
    phase_agg.End();

    PhaseTimer phase_rank(c_phase_rank_, env.clock);
    VFPS_ASSIGN_OR_RETURN(auto blob,
                          env.chan->Recv(net::kAggregationServer, kLeader));
    VFPS_ASSIGN_OR_RETURN(
        auto agg_distances,
        env.backend->Decrypt(he::EncryptedVector{std::move(blob), c}));
    env.clock->Advance(CostCategory::kDecrypt, cost_->DecryptSecondsFor(c));
    env.clock->Advance(CostCategory::kCompute, cost_->SortSeconds(c));
    const auto top_local = SmallestK(agg_distances.data(), c, k);
    phase_rank.End();

    // Shard top-k keyed by pseudo id. SmallestK ties break by candidate
    // position, which is not monotone in pid, so canonicalize to the merge's
    // (value, id) order — a divergence only on exact aggregate ties, which
    // continuous features make vanishingly unlikely.
    std::vector<std::pair<double, uint64_t>> entries;
    entries.reserve(top_local.size());
    for (uint64_t idx : top_local) {
      entries.emplace_back(agg_distances[idx], cand_pids[idx]);
    }
    std::sort(entries.begin(), entries.end());
    topk::ShardTopk st;
    st.values.reserve(entries.size());
    st.ids.reserve(entries.size());
    for (const auto& [value, pid] : entries) {
      st.values.push_back(value);
      st.ids.push_back(pid);
    }
    shard_tops.push_back(std::move(st));
  }

  // Hierarchical merge over the shard top-ks (pseudo-id space).
  obs::Span span_merge(env.tracer, "knn.topk_merge", env.clock);
  span_merge.SetNode("leader");
  PhaseTimer phase_hmerge(c_phase_merge_, env.clock);
  topk::ShardMergeStats merge_stats;
  VFPS_ASSIGN_OR_RETURN(auto merged,
                        topk::HierarchicalTopkMerge(std::move(shard_tops), k,
                                                    &merge_stats));
  env.clock->Advance(CostCategory::kCompute,
                     cost_->SortSeconds(merge_stats.entries_in));
  if (c_shard_merges_ != nullptr) c_shard_merges_->Add(merge_stats.merges);
  phase_hmerge.End();
  span_merge.End();

  QueryNeighborhood hood;
  hood.query_row = query_row;
  VFPS_ASSIGN_OR_RETURN(hood.neighbors, pseudo.MapToOriginal(merged.ids));

  // d_T exchange, recomputing each neighbor's partial distance per party
  // (the shard-local score vectors are gone — O(shard) residency).
  obs::Span span_dt(env.tracer, "knn.dt_exchange", env.clock);
  span_dt.SetNode("leader");
  PhaseTimer phase_dt(c_phase_dt_, env.clock);
  for (size_t party : active) {
    if (party == 0) continue;
    VFPS_RETURN_NOT_OK(
        env.chan->Send(kLeader, static_cast<int>(party), EncodeIds(merged.ids)));
  }
  ChargeFanOut(env.clock, merged.size() * sizeof(uint64_t), a - 1);
  hood.per_party_dt.assign(p, 0.0);
  std::vector<double> dt_seconds(a, 0.0);
  for (size_t ai = 0; ai < a; ++ai) {
    const size_t party = active[ai];
    std::vector<uint64_t> pids = merged.ids;
    if (party != 0) {
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(kLeader, static_cast<int>(party)));
      VFPS_ASSIGN_OR_RETURN(pids, DecodeIds(payload));
    }
    const ml::FeatureBlock& block = party_blocks_[party];
    double dt = 0.0;
    for (uint64_t pid : pids) {
      const size_t row = static_cast<size_t>(pseudo.ToOriginal(pid));
      double d = 0.0;
      ml::BlockSquaredDistances(block, qslices[ai].data(), qnorms[ai], row,
                                row + 1, &d);
      dt += d;
    }
    dt_seconds[ai] = cost_->DistanceSeconds(pids.size(), block.cols());
    if (party == 0) {
      hood.per_party_dt[0] = dt;
    } else {
      VFPS_RETURN_NOT_OK(
          env.chan->Send(static_cast<int>(party), kLeader, EncodeScalar(dt)));
      VFPS_ASSIGN_OR_RETURN(auto payload,
                            env.chan->Recv(static_cast<int>(party), kLeader));
      VFPS_ASSIGN_OR_RETURN(hood.per_party_dt[party], DecodeScalar(payload));
    }
  }
  ChargeParallelCompute(env.clock, dt_seconds);
  ChargeFanIn(env.clock, sizeof(double), a - 1);
  phase_dt.End();
  span_dt.End();

  if (h_candidates_ != nullptr) h_candidates_->Record(total_candidates);
  if (stats != nullptr) {
    stats->candidates_encrypted += total_candidates;
    stats->fagin_depth += total_depth;
  }
  return hood;
}

Result<std::vector<int>> FederatedKnnOracle::ClassifyPredictions(
    const data::Dataset& queries, const std::vector<size_t>& participants,
    size_t k, bool charge_costs) {
  VFPS_CHECK_ARG(!participants.empty(), "fed-knn: empty sub-consortium");
  VFPS_CHECK_ARG(queries.num_features() == joint_->num_features(),
                 "fed-knn: query feature width mismatch");
  for (size_t party : participants) {
    VFPS_CHECK_ARG(party < num_participants(),
                   "fed-knn: participant out of range");
  }
  const size_t n = joint_->num_samples();
  const size_t s = participants.size();

  // Plaintext per-query scoring: rows are independent (disjoint output
  // slots, read-only inputs), so the pool can chew through them in any
  // order without affecting the predictions.
  std::vector<int> predictions(queries.num_samples());
  const auto classify_one = [&](size_t qi) {
    std::vector<double> aggregate(n, 0.0);
    for (size_t party : participants) {
      const auto partial = PartialDistances(party, queries, qi, n /*no exclusion*/);
      for (size_t i = 0; i < n; ++i) aggregate[i] += partial[i];
    }
    const auto top = SmallestK(aggregate, k);
    std::vector<int> neighbor_labels;
    neighbor_labels.reserve(top.size());
    for (uint64_t idx : top) {
      neighbor_labels.push_back(joint_->Label(static_cast<size_t>(idx)));
    }
    predictions[qi] = ml::MajorityVote(neighbor_labels, joint_->num_classes());
  };
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->ParallelFor(0, queries.num_samples(), classify_one);
  } else {
    for (size_t qi = 0; qi < queries.num_samples(); ++qi) classify_one(qi);
  }

  if (charge_costs) {
    // Per query, the deployment would run the BASE aggregation over the
    // sub-consortium: parallel distance computation + encrypt-all + sum +
    // decrypt + rank.
    double max_party_seconds = 0.0;
    for (size_t party : participants) {
      max_party_seconds =
          std::max(max_party_seconds,
                   cost_->DistanceSeconds(n, (*partition_)[party].size()));
    }
    const double nq = static_cast<double>(queries.num_samples());
    const double network_per_query = cost_->NetworkSeconds(
        cost_->EncryptedWireBytes(n) * s + cost_->EncryptedWireBytes(n),
        static_cast<uint64_t>(s) + 1);
    clock_->Advance(CostCategory::kCompute,
                    nq * (max_party_seconds + cost_->SortSeconds(n)));
    clock_->Advance(CostCategory::kEncrypt, nq * cost_->EncryptSecondsFor(n));
    clock_->Advance(CostCategory::kHeEval,
                    nq * static_cast<double>(s - 1) * cost_->HeAddSecondsFor(n));
    clock_->Advance(CostCategory::kDecrypt, nq * cost_->DecryptSecondsFor(n));
    clock_->Advance(CostCategory::kNetwork, nq * network_per_query);
  }
  return predictions;
}

Result<double> FederatedKnnOracle::ClassifyAccuracy(
    const data::Dataset& queries, const std::vector<size_t>& participants,
    size_t k, bool charge_costs) {
  VFPS_ASSIGN_OR_RETURN(
      auto predictions, ClassifyPredictions(queries, participants, k, charge_costs));
  if (predictions.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    correct += (predictions[i] == queries.Label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

}  // namespace vfps::vfl

#ifndef VFPS_VFL_FED_KNN_H_
#define VFPS_VFL_FED_KNN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "he/backend.h"
#include "ml/kernels.h"
#include "net/channel.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "vfl/pseudo_id.h"
#include "vfl/selection_cache.h"

namespace vfps::obs {
class Counter;
class Histogram;
class MetricsRegistry;
class Tracer;
}  // namespace vfps::obs

namespace vfps::ml {
struct KMeansResult;
}  // namespace vfps::ml

namespace vfps::vfl {

/// How the k-nearest-neighbor oracle finds neighbors across participants.
enum class KnnOracleMode {
  kBase,   // VFPS-SM-BASE: encrypt ALL instances' partial distances per query
  kFagin,  // VFPS-SM: Fagin's algorithm narrows the encrypted candidate set
  /// Threshold algorithm (TA) variant: the paper notes VFPS-SM "also
  /// supports other top-k query algorithms". TA usually scans a shallower
  /// depth than FA but performs random accesses during phase 1; in the
  /// protocol this trades streamed ranking rows for per-item score requests.
  /// The candidate set it encrypts is TA's evaluated set.
  kThreshold,
};

const char* KnnOracleModeName(KnnOracleMode mode);

/// \brief Configuration of one selection-phase KNN pass.
struct FedKnnConfig {
  KnnOracleMode mode = KnnOracleMode::kFagin;
  size_t k = 10;            // neighbors per query
  size_t num_queries = 64;  // |Q|: training rows sampled as query samples
  size_t fagin_batch = 64;  // mini-batch rows streamed per participant round
  uint64_t seed = 42;       // shared consortium seed (queries, pseudo IDs)
  /// BASE-mode cross-query slot batching: how many queries share one
  /// encrypted aggregation round. Each participant concatenates the grouped
  /// queries' partial-distance vectors (stride N-1, identical layout across
  /// parties, ragged tail zero-masked by the encoder) into ONE packed
  /// Encrypt; the server performs slot-wise sums on the group and the leader
  /// issues one Decrypt per group. With G queries of N-1 candidates over
  /// S slots this costs ceil(G*(N-1)/S) ciphertexts per party instead of
  /// G*ceil((N-1)/S) — up to floor(S/(N-1))x fewer HE ops when candidate
  /// vectors underfill the slots. 1 (default) keeps the one-query-per-round
  /// protocol bit-identical to previous releases; 0 picks the largest group
  /// that fits the backend's SlotsPerCiphertext(). Ignored by the Fagin/TA
  /// modes (their candidate sets are query-specific).
  size_t query_group = 1;
  /// Participants excluded from the protocol (crashed on a previous run and
  /// quarantined by the selector). The leader (0) can never be quarantined;
  /// at least two participants must remain active.
  std::vector<size_t> quarantined;
  /// Participants not yet part of the consortium (they have a pending join=
  /// rule); excluded exactly like quarantined, but reported as absent rather
  /// than dead. The selector admits them when a run observes their join
  /// threshold (FedKnnStats::joined_nodes) and moves them to `joined`.
  std::vector<size_t> absent;
  /// Join-rule participants already admitted on an earlier run: Run() calls
  /// MarkJoined on every fault stream so they are never absent again.
  std::vector<size_t> joined;
  /// Participants healed on an earlier run: Run() calls MarkHealed on every
  /// fault stream so their crash/leave rules (whose per-stream counters
  /// restart from zero) cannot re-fire and oscillate them back into
  /// quarantine.
  std::vector<size_t> healed;
  /// Reliable-channel retry budget; 0 keeps RetryPolicy's default. Exposed
  /// as --net-retries on the CLI.
  size_t net_retries = 0;
  /// Reliable-channel backoff jitter factor in [0, 1]; 0 (default) keeps the
  /// exact exponential schedule. Exposed as --net-jitter on the CLI.
  double net_jitter = 0.0;
  /// Row shards per party: every party's FeatureBlock is cut into this many
  /// contiguous row ranges (data::MakeRowShards), each held by a simulated
  /// storage node. The per-query protocol then runs shard by shard — range
  /// distance kernels, per-shard encrypted aggregation, shard-local SmallestK
  /// — and the leader combines shard results with the hierarchical top-k
  /// merge (topk::HierarchicalTopkMerge), so per-query resident protocol
  /// state is O(shard), not O(N). 1 (default) keeps the single-node protocol
  /// bit-identical to previous releases; sharded runs produce the same
  /// neighborhoods and d_T values as shards=1 (exact-HE paths bit-identical;
  /// traffic/clock naturally differ). Exposed as --shards on the CLI.
  size_t shards = 1;
  /// TreeCSS-style clustering pre-filter: 0 (default) = off. Otherwise each
  /// party clusters its local columns into this many k-means clusters once
  /// per Run, and per query nominates the rows of its clusters nearest the
  /// query (enough to cover >= 4k rows); the union of nominations is the
  /// only candidate set that pays distance + HE work. Approximate — a true
  /// neighbor every party's nomination missed is lost — which is the
  /// TreeCSS trade: prune before expensive per-sample work. Nominations
  /// reveal candidate row ids (BASE) / pseudo ids (top-k modes) to the
  /// server, like the Fagin candidate exchange. Exposed as
  /// --prefilter=treecss:<clusters> on the CLI.
  size_t prefilter_clusters = 0;
};

/// \brief What the leader learns about one query sample.
struct QueryNeighborhood {
  uint64_t query_row = 0;
  std::vector<uint64_t> neighbors;   // original train-row ids, nearest first
  std::vector<double> per_party_dt;  // d_T^p = sum of partial distances to T
};

/// \brief Protocol statistics accumulated over a Run.
struct FedKnnStats {
  size_t queries = 0;
  /// Rows whose partial distances each participant encrypted, summed over
  /// queries (BASE: (N-1) per query; FAGIN: the candidate-set size).
  uint64_t candidates_encrypted = 0;
  uint64_t fagin_depth = 0;  // summed phase-1 depth across queries
  net::TrafficStats traffic;  // metered wire traffic of the run
  he::HeOpStats he_ops;       // HE operations actually executed
  /// Nodes observed crashed when a Run fails with PeerDead — the union over
  /// the main network's and every query task's fault stream. Empty on
  /// success. Participant ids are >= 1 (the leader is 0); negative ids are
  /// the servers (net::kAggregationServer / net::kKeyServer).
  std::vector<net::NodeId> dead_nodes;
  /// Subset of dead_nodes that left via a leave= rule (graceful churn, not a
  /// crash). Filled on success and failure alike.
  std::vector<net::NodeId> departed_nodes;
  /// Join-rule nodes whose threshold some fault stream crossed during the
  /// run — candidates for the selector to splice in. Success and failure.
  std::vector<net::NodeId> joined_nodes;
  /// Heal-rule nodes whose threshold some fault stream crossed — candidates
  /// for the selector to un-quarantine. Success and failure.
  std::vector<net::NodeId> healed_nodes;
  /// Party-unit contributions served from the selection cache instead of
  /// being recomputed/re-encrypted (0 on a cold run).
  uint64_t reused_contributions = 0;

  double AvgCandidatesPerQuery() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(candidates_encrypted) /
                              static_cast<double>(queries);
  }
};

/// \brief The vertical federated KNN oracle (paper §IV).
///
/// One instance simulates the whole deployment — leader (participant 0, holds
/// labels and the HE secret key via the backend), aggregation server, and P
/// participants — but every inter-role data flow passes through SimNetwork
/// (byte-metered) and the HeBackend (op-counted), and the simulated clock is
/// charged phase by phase with participant-parallel phases costed as the max
/// over participants.
///
/// Threading model: when a ThreadPool is supplied, Run() executes each
/// query's complete protocol (Fagin/TA phase-1 merge, partial-distance
/// computation, encryption, aggregation, leader decrypt+rank) as an
/// independent task. Every task operates on task-local state — its own
/// SimNetwork, its own SimClock, and its own HeBackend session obtained via
/// HeBackend::Fork() with a per-query stream seed pre-derived from
/// FedKnnConfig::seed in query order. After all tasks complete, the results,
/// traffic meters, clock charges, and HE counters are folded back into the
/// shared deployment state *in query order*, so:
///
///   Determinism guarantee: a Run() with any thread count (including the
///   serial path, which executes the very same per-query tasks inline)
///   produces byte-identical neighborhoods, identical ciphertext streams,
///   identical stats, and an identical simulated clock. Parallelism changes
///   wall-clock time only.
///
/// Fault tolerance: when the main network has a fault plan attached
/// (SimNetwork::EnableFaults), every exchange goes through a per-task
/// net::ReliableChannel, and each query task's network receives its own
/// fault-stream seed pre-derived serially from the plan seed — so the fault
/// schedule, the retries it forces, and the extra simulated latency are all
/// reproducible at any thread count. Faults that retries absorb (drops,
/// duplicates, corruption, delay, stalls) leave the protocol *output*
/// identical to the fault-free run; a crashed node surfaces as a PeerDead
/// error with FedKnnStats::dead_nodes filled, and the caller may quarantine
/// the dead participants (FedKnnConfig::quarantined) and rerun over the
/// survivors.
///
/// Incremental repair: with a SelectionCache attached (set_cache), every
/// unit records each active party's contribution (partial-distance vectors,
/// sub-rankings, server-held ciphertexts) into the cache — on success AND on
/// failure (whatever completed before the fault is salvaged; contents are
/// thread-count-invariant because every unit runs to its own end and is
/// internally deterministic). A later Run() with a changed membership but
/// the same protocol shape reuses cached contributions: surviving parties
/// skip distance work, encryption, ciphertext uploads, and already-streamed
/// ranking rows; only newcomers compute from scratch, and only the
/// membership-dependent aggregation (sums, merges, candidate exchange) is
/// redone. On the exact (plain) HE path, a repaired run's outputs are
/// bit-identical to a clean run over the same membership; on CKKS the
/// cached ciphertexts carry their original encryption randomness, so
/// results match within the backend's noise tolerance. Simulated-clock
/// charges reflect the work actually done, so repair is visibly cheaper.
///
/// Thread-safety: one FederatedKnnOracle must only be driven from one thread
/// at a time (Run/ClassifyAccuracy/ClassifyPredictions are not reentrant);
/// the oracle parallelizes internally. The referenced Dataset, partition,
/// and cost model are read-only and may be shared across oracles.
class FederatedKnnOracle {
 public:
  /// \param joint_train training split in the joint feature space (already
  ///        standardized). Kept by pointer; must outlive the oracle.
  /// \param partition which feature columns each participant holds.
  /// \param backend shared HE backend (keys live here); forked per query.
  /// \param network main byte-metered transport; absorbs per-query metering.
  /// \param cost_model calibration constants (seconds per op/byte).
  /// \param clock simulated deployment clock; charged in query order.
  /// \param pool optional worker pool for per-query parallelism; nullptr (or
  ///        a 1-thread pool) selects the serial path. Not owned.
  /// \param obs optional metrics/tracing sink (`knn.*` counters, per-phase
  ///        spans). Task-local query networks attach it too, so `net.*`
  ///        counters cover the whole protocol; the striped counters keep
  ///        totals thread-count-invariant.
  FederatedKnnOracle(const data::Dataset* joint_train,
                     const data::VerticalPartition* partition,
                     he::HeBackend* backend, net::SimNetwork* network,
                     const net::CostModel* cost_model, SimClock* clock,
                     ThreadPool* pool = nullptr,
                     obs::MetricsRegistry* obs = nullptr);

  size_t num_participants() const { return partition_->size(); }

  /// Attach (or detach, with nullptr) a participant-keyed contribution
  /// cache: subsequent Run()s record per-party state into it and reuse
  /// matching entries, enabling cheap repair after membership changes (see
  /// the class comment). Borrowed; must outlive the oracle's Run() calls.
  void set_cache(SelectionCache* cache) { cache_ = cache; }

  /// \brief Run the selection-phase protocol: sample |Q| query rows, find
  /// each query's k nearest neighbors over the full consortium, and return
  /// the per-participant aggregated distances d_T^p the similarity measure
  /// needs. Stats (if non-null) receive traffic/HE/candidate counts.
  ///
  /// Queries run in parallel on the pool passed at construction (see the
  /// class comment for the determinism guarantee). Complexity per query:
  /// BASE is O(P·N·F/P) distance work + N encrypted values; FAGIN/TA is
  /// O(P·N·F/P + N log N) plus encryption of only the candidate set.
  Result<std::vector<QueryNeighborhood>> Run(const FedKnnConfig& config,
                                             FedKnnStats* stats);

  /// \brief Federated KNN classification accuracy of `queries` (a dataset in
  /// the joint feature space, labels held by the leader) using only the given
  /// sub-consortium. Used as the utility function of the SHAPLEY baseline and
  /// for the KNN downstream task. Distances are computed in plaintext but the
  /// clock is charged as if the BASE protocol ran (encrypt-all), because that
  /// is what a faithful deployment would execute per coalition.
  ///
  /// \param queries evaluation rows (joint feature space, leader's labels).
  /// \param participants sub-consortium indices, each < num_participants().
  /// \param k neighbors per query row.
  /// \param charge_costs when true, advance the simulated clock by the cost
  ///        of the equivalent encrypted protocol (simulated seconds).
  /// Query rows are scored in parallel on the pool; results are independent
  /// of the thread count (plaintext arithmetic, disjoint output slots).
  Result<double> ClassifyAccuracy(const data::Dataset& queries,
                                  const std::vector<size_t>& participants,
                                  size_t k, bool charge_costs);

  /// Same protocol, returning the per-query predicted labels instead of the
  /// aggregate accuracy (used by the VF-MINE baseline's MI estimator).
  Result<std::vector<int>> ClassifyPredictions(
      const data::Dataset& queries, const std::vector<size_t>& participants,
      size_t k, bool charge_costs);

 private:
  /// Run-scoped state of the sharded protocol path, built once per Run()
  /// (serially, before any query task spawns) and shared read-only by every
  /// task. Present only when config.shards > 1 or the pre-filter is on; the
  /// pristine single-node path never sees it.
  struct ShardRuntime {
    std::vector<data::RowShard> plan;  // contiguous row ranges covering N
    /// Per-party k-means models, indexed by participant id (only active
    /// parties filled). nullptr when the pre-filter is off. Owned by Run().
    const std::vector<ml::KMeansResult>* prefilter = nullptr;
    size_t prefilter_target = 0;  // rows each party's nomination must cover
    /// knn.shard.sim_ns{shard=S} / knn.shard.candidates{shard=S}, indexed by
    /// shard; empty when metrics are off. The labeled-counter registry caps
    /// series cardinality, so very wide shard plans fold into its overflow
    /// label rather than exploding the registry.
    std::vector<obs::Counter*> sim_ns;
    std::vector<obs::Counter*> candidates;
  };

  /// Task-local deployment view for one query: its own HE session, metered
  /// transport, reliable channel, and clock, so query tasks never contend
  /// (merged afterwards). `active` lists the non-quarantined participants in
  /// ascending order (always starting with the leader, 0).
  struct QueryEnv {
    he::HeBackend* backend;
    net::SimNetwork* net;
    net::ReliableChannel* chan;
    SimClock* clock;
    const std::vector<size_t>* active;
    obs::Tracer* tracer;  // nullptr unless tracing is enabled
    /// Prior contributions for this unit (read-only; nullptr = cold) and the
    /// task-local staging area fresh contributions are recorded into
    /// (nullptr = caching disabled). See SelectionCache.
    const CachedUnit* cached = nullptr;
    CachedUnit* fresh = nullptr;
    /// Sharded-path runtime; nullptr keeps the pristine single-node path.
    const ShardRuntime* shard = nullptr;
  };

  // Partial squared distances from participant `p`'s slice of `query_row`
  // (in `source`) to every train row except `exclude_row` (pass
  // num_samples() to keep all rows). Output indexed by compressed row index.
  std::vector<double> PartialDistances(size_t participant,
                                       const data::Dataset& source,
                                       size_t query_row,
                                       size_t exclude_row) const;

  // Compressed index <-> original row id around an excluded row.
  static uint64_t CompressedToRow(uint64_t idx, size_t excluded) {
    return idx < excluded ? idx : idx + 1;
  }

  Result<QueryNeighborhood> RunBaseQuery(const QueryEnv& env,
                                         uint64_t query_row, size_t k,
                                         FedKnnStats* stats) const;
  // Slot-batched BASE protocol over queries[lo, hi): one packed encrypt per
  // party, one slot-wise aggregation, one decrypt for the whole group (see
  // FedKnnConfig::query_group). Returns the hi-lo neighborhoods in query
  // order. Equivalent to running RunBaseQuery per query up to the HE
  // randomness schedule (plaintext-identical results; CKKS within tolerance).
  Result<std::vector<QueryNeighborhood>> RunBaseQueryGroup(
      const QueryEnv& env, const std::vector<size_t>& queries, size_t lo,
      size_t hi, size_t k, FedKnnStats* stats) const;
  // Shared implementation of the Fagin and Threshold oracle modes (they
  // differ in the phase-1 merge algorithm and TA's per-round threshold
  // exchange). `pseudo` is the consortium-shared shuffle, built once per Run.
  Result<QueryNeighborhood> RunTopkQuery(const QueryEnv& env,
                                         const PseudoIdMap& pseudo,
                                         uint64_t query_row, size_t k,
                                         size_t batch, KnnOracleMode mode,
                                         FedKnnStats* stats) const;
  // Sharded BASE protocol: per shard, range-kernel partials over the shard's
  // rows (candidates only, when a pre-filter nomination is present), a
  // per-shard encrypted aggregation round, shard-local SmallestK, then the
  // hierarchical top-k merge. d_T comes from single-row kernel recomputes of
  // the merged neighbors, so the values are bit-identical to RunBaseQuery's
  // (each row's distance is independent of the [begin, end) split).
  Result<QueryNeighborhood> RunBaseQuerySharded(const QueryEnv& env,
                                                uint64_t query_row, size_t k,
                                                FedKnnStats* stats) const;
  // Sharded Fagin/TA: each shard runs the complete phase-1 merge + candidate
  // encryption over its own rows (mini-batches stream per shard, so resident
  // ranking state is O(shard·P), not O(N·P)), then shard top-ks merge
  // hierarchically. Per-shard Fagin/TA is exact within its shard, so the
  // merged result equals the global one whenever aggregate distances are
  // tie-free (always, in practice, on continuous features).
  Result<QueryNeighborhood> RunTopkQuerySharded(const QueryEnv& env,
                                                const PseudoIdMap& pseudo,
                                                uint64_t query_row, size_t k,
                                                size_t batch,
                                                KnnOracleMode mode,
                                                FedKnnStats* stats) const;
  // TreeCSS-style candidate nomination: each active party ranks its clusters
  // by centroid distance to its query slice and nominates the nearest
  // clusters' rows until ShardRuntime::prefilter_target rows are covered; the
  // union (query row excluded, ascending original row ids) travels through
  // env.chan like the Fagin candidate exchange. A pure function of
  // (models, query_row), so thread-count-invariant.
  Result<std::vector<uint64_t>> RunPrefilterExchange(const QueryEnv& env,
                                                     const ShardRuntime& rt,
                                                     uint64_t query_row) const;

  // Clock helpers (charge the given task-local clock).
  void ChargeParallelCompute(SimClock* clock,
                             const std::vector<double>& per_party_seconds) const;
  void ChargeFanIn(SimClock* clock, uint64_t bytes_per_party,
                   size_t parties) const;
  void ChargeFanOut(SimClock* clock, uint64_t bytes_per_link,
                    size_t links) const;

  /// Charge one protocol phase's simulated time to its labeled counter
  /// (`knn.phase.sim_ns{phase=...}`). Durations are deterministic simulated
  /// seconds rounded to integer ns, so the labeled totals stay bit-identical
  /// at any thread count.
  class PhaseTimer {
   public:
    PhaseTimer(obs::Counter* counter, const SimClock* clock);
    ~PhaseTimer() { End(); }
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;
    void End();

   private:
    obs::Counter* counter_;
    const SimClock* clock_;
    double start_seconds_ = 0.0;
  };

  const data::Dataset* joint_;
  const data::VerticalPartition* partition_;
  /// Per-participant packed feature blocks over `joint_` (cached row norms;
  /// built once at construction). The only per-oracle copy of feature data —
  /// in total one extra copy of the training matrix, split across parties.
  std::vector<ml::FeatureBlock> party_blocks_;
  he::HeBackend* backend_;
  net::SimNetwork* network_;
  const net::CostModel* cost_;
  SimClock* clock_;
  ThreadPool* pool_;
  obs::MetricsRegistry* obs_;
  SelectionCache* cache_ = nullptr;          // borrowed; see set_cache()
  obs::Counter* c_queries_ = nullptr;        // knn.queries
  obs::Histogram* h_candidates_ = nullptr;   // knn.candidates per query
  /// Labeled dimensions (all bounded: 3 modes, 7 phases, P parties, 2 cache
  /// outcomes), resolved once at construction so hot paths never touch the
  /// registry mutex.
  obs::Counter* c_queries_mode_[3] = {nullptr, nullptr, nullptr};
  obs::Counter* c_cache_hit_ = nullptr;   // knn.cache.lookups{cache=hit}
  obs::Counter* c_cache_miss_ = nullptr;  // knn.cache.lookups{cache=miss}
  obs::Counter* c_phase_dist_ = nullptr;      // {phase=partial_distance}
  obs::Counter* c_phase_encrypt_ = nullptr;   // {phase=encrypt}
  obs::Counter* c_phase_agg_ = nullptr;       // {phase=aggregate}
  obs::Counter* c_phase_rank_ = nullptr;      // {phase=decrypt_rank}
  obs::Counter* c_phase_dt_ = nullptr;        // {phase=dt_exchange}
  obs::Counter* c_phase_merge_ = nullptr;     // {phase=topk_merge}
  obs::Counter* c_phase_stream_ = nullptr;    // {phase=stream_rankings}
  /// knn.party.encrypted_values{party=N}, indexed by participant.
  std::vector<obs::Counter*> c_party_enc_values_;
  obs::Counter* c_shard_merges_ = nullptr;  // knn.shard.merges
  obs::Counter* c_prefilter_candidates_ = nullptr;  // knn.prefilter.candidates
  obs::Counter* c_prefilter_pruned_ = nullptr;  // knn.prefilter.pruned_rows
  obs::Histogram* h_unit_sim_ns_ = nullptr;   // knn.query.sim_ns
  obs::Histogram* h_unit_wall_ns_ = nullptr;  // knn.query.wall_ns
};

}  // namespace vfps::vfl

#endif  // VFPS_VFL_FED_KNN_H_

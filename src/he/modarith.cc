#include "he/modarith.h"

#include "common/random.h"
#include "common/string_util.h"

namespace vfps::he {

uint64_t PowMod(uint64_t a, uint64_t e, uint64_t q) {
  uint64_t result = 1;
  a %= q;
  while (e > 0) {
    if (e & 1) result = MulMod(result, a, q);
    a = MulMod(a, a, q);
    e >>= 1;
  }
  return result;
}

uint64_t InvMod(uint64_t a, uint64_t q) { return PowMod(a % q, q - 2, q); }

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // Write n-1 = d * 2^r.
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This base set is a deterministic primality certificate for n < 3.3e24.
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL}) {
    uint64_t x = PowMod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Result<uint64_t> GeneratePrime(int bits, uint64_t congruence) {
  if (bits < 10 || bits > 62) {
    return Status::InvalidArgument(
        StrFormat("GeneratePrime: bits must be in [10, 62], got %d", bits));
  }
  if (congruence == 0) {
    return Status::InvalidArgument("GeneratePrime: congruence must be > 0");
  }
  // Largest candidate below 2^bits congruent to 1 mod `congruence`.
  uint64_t top = (1ULL << bits) - 1;
  uint64_t candidate = (top / congruence) * congruence + 1;
  while (candidate > (1ULL << (bits - 1))) {
    if (IsPrime(candidate)) return candidate;
    if (candidate <= congruence) break;
    candidate -= congruence;
  }
  return Status::NotFound(
      StrFormat("GeneratePrime: no %d-bit prime ≡ 1 mod %llu", bits,
                static_cast<unsigned long long>(congruence)));
}

Result<uint64_t> FindPrimitiveRoot(uint64_t two_n, uint64_t q) {
  if ((q - 1) % two_n != 0) {
    return Status::InvalidArgument("FindPrimitiveRoot: q-1 not divisible by 2n");
  }
  const uint64_t cofactor = (q - 1) / two_n;
  const uint64_t n = two_n / 2;
  Rng rng(q ^ 0xC0FFEE123456789ULL);
  // A random x yields psi = x^((q-1)/2n) of order dividing 2n; psi has order
  // exactly 2n iff psi^n == -1 mod q. Each trial succeeds with probability
  // phi(2n)/2n = 1/2, so a few iterations suffice.
  for (int attempt = 0; attempt < 256; ++attempt) {
    uint64_t x = 2 + rng.NextBounded(q - 3);
    uint64_t psi = PowMod(x, cofactor, q);
    if (psi == 0 || psi == 1) continue;
    if (PowMod(psi, n, q) == q - 1) return psi;
  }
  return Status::NotFound("FindPrimitiveRoot: exhausted attempts");
}

}  // namespace vfps::he

#include "common/macros.h"
#include "he/rns.h"

#include <cmath>

#include "common/string_util.h"
#include "he/modarith.h"
#include "he/poly_simd.h"

namespace vfps::he {

Result<std::shared_ptr<const RnsContext>> RnsContext::Create(
    size_t n, const std::vector<int>& prime_bits) {
  if (prime_bits.empty() || prime_bits.size() > 2) {
    return Status::InvalidArgument(
        "RnsContext: 1 or 2 primes supported (CRT uses 128-bit composition)");
  }
  auto ctx = std::shared_ptr<RnsContext>(new RnsContext());
  ctx->n_ = n;
  ctx->q_approx_ = 1.0L;
  uint64_t congruence = 2 * static_cast<uint64_t>(n);
  for (int bits : prime_bits) {
    uint64_t prime = 0;
    // Scan downward, skipping primes already chosen.
    VFPS_ASSIGN_OR_RETURN(prime, GeneratePrime(bits, congruence));
    while (true) {
      bool duplicate = false;
      for (uint64_t p : ctx->primes_) duplicate |= (p == prime);
      if (!duplicate) break;
      // Find the next prime below the duplicate.
      uint64_t candidate = prime - congruence;
      while (!IsPrime(candidate)) {
        if (candidate <= congruence) {
          return Status::NotFound("RnsContext: ran out of distinct primes");
        }
        candidate -= congruence;
      }
      prime = candidate;
    }
    ctx->primes_.push_back(prime);
    VFPS_ASSIGN_OR_RETURN(auto tables, NttTables::Create(n, prime));
    ctx->ntt_.push_back(std::move(tables));
    ctx->q_approx_ *= static_cast<long double>(prime);
  }
  if (ctx->primes_.size() == 2) {
    ctx->crt_q0_inv_q1_ =
        InvMod(ctx->primes_[0] % ctx->primes_[1], ctx->primes_[1]);
  }
  // Rescale drops the last prime; cache (q_last mod q_i)^{-1} for each
  // retained prime so the hot path never calls InvMod.
  if (ctx->primes_.size() >= 2) {
    const uint64_t q_last = ctx->primes_.back();
    for (size_t i = 0; i + 1 < ctx->primes_.size(); ++i) {
      const uint64_t q = ctx->primes_[i];
      const uint64_t inv = InvMod(q_last % q, q);
      ctx->rescale_inv_.push_back(inv);
      ctx->rescale_inv_shoup_.push_back(ShoupPrecompute(inv, q));
    }
  }
  return std::shared_ptr<const RnsContext>(ctx);
}

RnsPoly ZeroPoly(const RnsContext& ctx) {
  RnsPoly p;
  p.residues.assign(ctx.num_primes(), std::vector<uint64_t>(ctx.n(), 0));
  p.ntt_form = false;
  return p;
}

void ResizePoly(const RnsContext& ctx, RnsPoly* p) {
  p->residues.resize(ctx.num_primes());
  for (auto& r : p->residues) r.resize(ctx.n());
  p->ntt_form = false;
}

RnsPoly SampleUniform(const RnsContext& ctx, Rng* rng) {
  RnsPoly p = ZeroPoly(ctx);
  for (size_t i = 0; i < ctx.num_primes(); ++i) {
    const uint64_t q = ctx.prime(i);
    for (size_t j = 0; j < ctx.n(); ++j) p.residues[i][j] = rng->NextBounded(q);
  }
  // A uniform element is uniform in both bases; mark as NTT form since all
  // uses (the public random polynomial "a") operate there.
  p.ntt_form = true;
  return p;
}

namespace {
// Writes the same small signed value into every RNS component. |v| is tiny
// (ternary or a few sigmas of noise) and every prime exceeds 2^29, so the
// Barrett fallback division never triggers in practice.
void SetSmallSigned(const RnsContext& ctx, RnsPoly* p, size_t j, int64_t v) {
  for (size_t i = 0; i < ctx.num_primes(); ++i) {
    const uint64_t q = ctx.prime(i);
    uint64_t mag = static_cast<uint64_t>(v >= 0 ? v : -v);
    if (mag >= q) mag = BarrettReduce64(mag, ctx.modulus(i));
    p->residues[i][j] = (v >= 0 || mag == 0) ? mag : q - mag;
  }
}
}  // namespace

RnsPoly SampleTernary(const RnsContext& ctx, Rng* rng) {
  RnsPoly p = ZeroPoly(ctx);
  SampleTernaryInto(ctx, rng, &p);
  return p;
}

RnsPoly SampleGaussian(const RnsContext& ctx, Rng* rng, double sigma) {
  RnsPoly p = ZeroPoly(ctx);
  SampleGaussianInto(ctx, rng, &p, sigma);
  return p;
}

void SampleTernaryInto(const RnsContext& ctx, Rng* rng, RnsPoly* out) {
  ResizePoly(ctx, out);
  for (size_t j = 0; j < ctx.n(); ++j) {
    const int64_t v = static_cast<int64_t>(rng->NextBounded(3)) - 1;
    SetSmallSigned(ctx, out, j, v);
  }
}

void SampleGaussianInto(const RnsContext& ctx, Rng* rng, RnsPoly* out,
                        double sigma) {
  ResizePoly(ctx, out);
  for (size_t j = 0; j < ctx.n(); ++j) {
    const int64_t v = static_cast<int64_t>(std::llround(rng->Normal(0.0, sigma)));
    SetSmallSigned(ctx, out, j, v);
  }
}

void AddInPlace(const RnsContext& ctx, RnsPoly* a, const RnsPoly& b) {
  for (size_t i = 0; i < std::min(a->num_primes(), b.num_primes()); ++i) {
    detail::AddModVec(a->residues[i].data(), b.residues[i].data(), ctx.n(),
                      ctx.prime(i));
  }
}

void SubInPlace(const RnsContext& ctx, RnsPoly* a, const RnsPoly& b) {
  for (size_t i = 0; i < std::min(a->num_primes(), b.num_primes()); ++i) {
    detail::SubModVec(a->residues[i].data(), b.residues[i].data(), ctx.n(),
                      ctx.prime(i));
  }
}

void NegateInPlace(const RnsContext& ctx, RnsPoly* a) {
  for (size_t i = 0; i < a->num_primes(); ++i) {
    detail::NegateModVec(a->residues[i].data(), ctx.n(), ctx.prime(i));
  }
}

void MulPointwiseInPlace(const RnsContext& ctx, RnsPoly* a, const RnsPoly& b) {
  for (size_t i = 0; i < std::min(a->num_primes(), b.num_primes()); ++i) {
    detail::MulModBarrettVec(a->residues[i].data(), b.residues[i].data(),
                             ctx.n(), ctx.modulus(i));
  }
}

void MulScalarInPlace(const RnsContext& ctx, RnsPoly* a, uint64_t scalar) {
  for (size_t i = 0; i < a->num_primes(); ++i) {
    const uint64_t q = ctx.prime(i);
    const uint64_t s = BarrettReduce64(scalar, ctx.modulus(i));
    const uint64_t s_shoup = ShoupPrecompute(s, q);
    detail::MulModShoupVec(a->residues[i].data(), ctx.n(), s, s_shoup, q);
  }
}

void ToNtt(const RnsContext& ctx, RnsPoly* a) {
  if (a->ntt_form) return;
  for (size_t i = 0; i < a->num_primes(); ++i) {
    ctx.ntt(i).Forward(a->residues[i].data());
  }
  a->ntt_form = true;
}

void FromNtt(const RnsContext& ctx, RnsPoly* a) {
  if (!a->ntt_form) return;
  for (size_t i = 0; i < a->num_primes(); ++i) {
    ctx.ntt(i).Inverse(a->residues[i].data());
  }
  a->ntt_form = false;
}

void SetCoeffFromInt128(const RnsContext& ctx, RnsPoly* poly, size_t idx,
                        __int128 value) {
  const unsigned __int128 mag =
      value >= 0 ? static_cast<unsigned __int128>(value)
                 : static_cast<unsigned __int128>(-value);
  const uint64_t lo = static_cast<uint64_t>(mag);
  const uint64_t hi = static_cast<uint64_t>(mag >> 64);
  for (size_t i = 0; i < poly->num_primes(); ++i) {
    const uint64_t r = BarrettReduce128(lo, hi, ctx.modulus(i));
    poly->residues[i][idx] =
        (value >= 0 || r == 0) ? r : ctx.prime(i) - r;
  }
}

unsigned __int128 ComposeCoeffU128(const RnsContext& ctx, const RnsPoly& poly,
                                   size_t idx) {
  if (poly.num_primes() == 1) return poly.residues[0][idx];
  const uint64_t q1 = ctx.prime(0);
  const uint64_t q2 = ctx.prime(1);
  const uint64_t r1 = poly.residues[0][idx];
  const uint64_t r2 = poly.residues[1][idx];
  const uint64_t diff = SubMod(r2 % q2, r1 % q2, q2);
  const uint64_t t = MulMod(diff, ctx.crt_q0_inv_q1(), q2);
  return static_cast<unsigned __int128>(r1) +
         static_cast<unsigned __int128>(q1) * t;
}

double ComposeCoeffToDouble(const RnsContext& ctx, const RnsPoly& poly,
                            size_t idx) {
  if (poly.num_primes() == 1) {
    const uint64_t q = ctx.prime(0);
    const uint64_t r = poly.residues[0][idx];
    // Recenter to (-q/2, q/2].
    return r > q / 2 ? -static_cast<double>(q - r) : static_cast<double>(r);
  }
  // Two-prime CRT: x = r1 + q1 * ((r2 - r1) * q1^{-1} mod q2).
  const unsigned __int128 x = ComposeCoeffU128(ctx, poly, idx);
  const unsigned __int128 big_q = static_cast<unsigned __int128>(ctx.prime(0)) *
                                  static_cast<unsigned __int128>(ctx.prime(1));
  if (x > big_q / 2) {
    return -static_cast<double>(big_q - x);
  }
  return static_cast<double>(x);
}

}  // namespace vfps::he

#include "common/macros.h"
#include "he/bignum.h"

#include <algorithm>

#include "common/string_util.h"

namespace vfps::he {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<uint32_t>(v & 0xFFFFFFFFu));
  if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromLimbs(std::vector<uint32_t> limbs) {
  BigInt b;
  b.limbs_ = std::move(limbs);
  b.Normalize();
  return b;
}

BigInt BigInt::FromBytes(const std::vector<uint8_t>& bytes) {
  BigInt out;
  // Big-endian bytes -> little-endian limbs.
  const size_t n = bytes.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t byte_index = n - 1 - i;  // position from the LSB
    out.limbs_[i / 4] |= static_cast<uint32_t>(bytes[byte_index]) << (8 * (i % 4));
  }
  out.Normalize();
  return out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  if (IsZero()) return {};
  const size_t bits = BitLength();
  const size_t n = (bits + 7) / 8;
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t limb = limbs_[i / 4];
    out[n - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

std::string BigInt::ToHexString() const {
  if (IsZero()) return "0";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    char buf[9];
    if (i == limbs_.size() - 1) {
      std::snprintf(buf, sizeof(buf), "%x", limbs_[i]);
    } else {
      std::snprintf(buf, sizeof(buf), "%08x", limbs_[i]);
    }
    out += buf;
  }
  return out;
}

Result<BigInt> BigInt::FromHexString(const std::string& hex) {
  BigInt out;
  if (hex.empty()) return Status::InvalidArgument("BigInt: empty hex string");
  for (char c : hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return Status::InvalidArgument("BigInt: bad hex digit");
    }
    out = (out << 4) + BigInt(digit);
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  size_t bits = (limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::GetBit(size_t i) const {
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigInt::ToU64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::Compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  std::vector<uint32_t> out(std::max(limbs_.size(), o.limbs_.size()) + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out[i] = static_cast<uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
  }
  return FromLimbs(std::move(out));
}

BigInt BigInt::operator-(const BigInt& o) const {
  // Precondition: *this >= o. Callers in this library guarantee it.
  std::vector<uint32_t> out(limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow -
                   (i < o.limbs_.size() ? static_cast<int64_t>(o.limbs_[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<uint32_t>(diff);
  }
  return FromLimbs(std::move(out));
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (IsZero() || o.IsZero()) return BigInt();
  std::vector<uint32_t> out(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = limbs_[i];
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      uint64_t cur = out[i + j] + ai * o.limbs_[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    size_t k = i + o.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++k;
    }
  }
  return FromLimbs(std::move(out));
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigInt copy = *this;
    return copy;
  }
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  std::vector<uint32_t> out(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<uint32_t>(v & 0xFFFFFFFFu);
    out[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  return FromLimbs(std::move(out));
}

BigInt BigInt::operator>>(size_t bits) const {
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  std::vector<uint32_t> out(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out[i] = static_cast<uint32_t>(v);
  }
  return FromLimbs(std::move(out));
}

Result<std::pair<BigInt, BigInt>> BigInt::DivMod(const BigInt& a,
                                                 const BigInt& b) {
  if (b.IsZero()) return Status::InvalidArgument("BigInt: division by zero");
  if (a < b) return std::make_pair(BigInt(), a);
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const uint64_t d = b.limbs_[0];
    std::vector<uint32_t> q(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | a.limbs_[i];
      q[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    return std::make_pair(FromLimbs(std::move(q)), BigInt(rem));
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, ensuring the quotient-digit estimate is off by at most 2.
  size_t shift = 0;
  uint32_t top = b.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  const BigInt u = a << shift;
  const BigInt v = b << shift;
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;

  std::vector<uint32_t> un(u.limbs_);
  un.push_back(0);  // u has m+n+1 limbs during the loop
  const std::vector<uint32_t>& vn = v.limbs_;
  std::vector<uint32_t> q(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs.
    const uint64_t numerator =
        (static_cast<uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    uint64_t q_hat = numerator / vn[n - 1];
    uint64_t r_hat = numerator % vn[n - 1];
    while (q_hat >= kBase ||
           q_hat * vn[n - 2] > ((r_hat << 32) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract q_hat * v from u[j..j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t p = q_hat * vn[i] + carry;
      carry = p >> 32;
      const int64_t t =
          static_cast<int64_t>(un[i + j]) - static_cast<int64_t>(p & 0xFFFFFFFFu) - borrow;
      un[i + j] = static_cast<uint32_t>(t & 0xFFFFFFFF);
      borrow = t < 0 ? 1 : 0;
    }
    const int64_t t = static_cast<int64_t>(un[j + n]) -
                      static_cast<int64_t>(carry) - borrow;
    un[j + n] = static_cast<uint32_t>(t & 0xFFFFFFFF);

    if (t < 0) {
      // q_hat was one too large: add back.
      --q_hat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t s = static_cast<uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<uint32_t>(s & 0xFFFFFFFFu);
        carry2 = s >> 32;
      }
      un[j + n] = static_cast<uint32_t>(un[j + n] + carry2);
    }
    q[j] = static_cast<uint32_t>(q_hat);
  }

  BigInt quotient = FromLimbs(std::move(q));
  un.resize(n);
  BigInt remainder = FromLimbs(std::move(un)) >> shift;
  return std::make_pair(std::move(quotient), std::move(remainder));
}

Result<BigInt> BigInt::Mod(const BigInt& a, const BigInt& m) {
  VFPS_ASSIGN_OR_RETURN(auto qr, DivMod(a, m));
  return qr.second;
}

Result<BigInt> BigInt::AddMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return Mod(a + b, m);
}

Result<BigInt> BigInt::MulMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return Mod(a * b, m);
}

Result<BigInt> BigInt::PowMod(const BigInt& base, const BigInt& exp,
                              const BigInt& m) {
  if (m.IsZero()) return Status::InvalidArgument("BigInt: PowMod modulus zero");
  VFPS_ASSIGN_OR_RETURN(BigInt b, Mod(base, m));
  BigInt result(1);
  const size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) {
      VFPS_ASSIGN_OR_RETURN(result, MulMod(result, b, m));
    }
    VFPS_ASSIGN_OR_RETURN(b, MulMod(b, b, m));
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    auto qr = DivMod(a, b);
    a = std::move(b);
    b = std::move(qr.ValueOrDie().second);
  }
  return a;
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking only the Bezout coefficient of `a`, with signs
  // managed explicitly since BigInt is unsigned.
  VFPS_ASSIGN_OR_RETURN(BigInt r0, Mod(a, m));
  BigInt r1 = m;
  BigInt s0(1), s1(0);
  bool s0_neg = false, s1_neg = false;
  // Invariant: r0 = ±s0 * a (mod m), r1 = ±s1 * a (mod m).
  while (!r1.IsZero()) {
    VFPS_ASSIGN_OR_RETURN(auto qr, DivMod(r0, r1));
    const BigInt& q = qr.first;
    // (r0, r1) <- (r1, r0 - q*r1)
    BigInt r2 = r0 - q * r1;  // r0 >= q*r1 by construction
    r0 = std::move(r1);
    r1 = std::move(r2);
    // (s0, s1) <- (s1, s0 - q*s1) with sign tracking.
    BigInt qs1 = q * s1;
    BigInt s2;
    bool s2_neg;
    if (s0_neg == s1_neg) {
      if (s0 >= qs1) {
        s2 = s0 - qs1;
        s2_neg = s0_neg;
      } else {
        s2 = qs1 - s0;
        s2_neg = !s0_neg;
      }
    } else {
      s2 = s0 + qs1;
      s2_neg = s0_neg;
    }
    s0 = std::move(s1);
    s0_neg = s1_neg;
    s1 = std::move(s2);
    s1_neg = s2_neg;
  }
  if (r0 != BigInt(1)) {
    return Status::NotFound("BigInt: ModInverse does not exist (gcd != 1)");
  }
  VFPS_ASSIGN_OR_RETURN(BigInt inv, Mod(s0, m));
  if (s0_neg && !inv.IsZero()) inv = m - inv;
  return inv;
}

BigInt BigInt::RandomWithBits(size_t bits, Rng* rng) {
  if (bits == 0) return BigInt();
  std::vector<uint32_t> limbs((bits + 31) / 32, 0);
  for (auto& limb : limbs) limb = static_cast<uint32_t>(rng->Next());
  // Clear excess bits, then force the top bit so the bit length is exact.
  const size_t top_bits = bits % 32 == 0 ? 32 : bits % 32;
  if (top_bits < 32) limbs.back() &= (1u << top_bits) - 1;
  limbs.back() |= 1u << (top_bits - 1);
  return FromLimbs(std::move(limbs));
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng* rng) {
  if (bound.IsZero()) return BigInt();
  const size_t bits = bound.BitLength();
  for (;;) {
    std::vector<uint32_t> limbs((bits + 31) / 32, 0);
    for (auto& limb : limbs) limb = static_cast<uint32_t>(rng->Next());
    const size_t top_bits = bits % 32 == 0 ? 32 : bits % 32;
    if (top_bits < 32) limbs.back() &= (1u << top_bits) - 1;
    BigInt candidate = FromLimbs(std::move(limbs));
    if (candidate < bound) return candidate;
  }
}

bool BigInt::ProbablyPrime(const BigInt& n, int rounds, Rng* rng) {
  if (n < BigInt(2)) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL, 41ULL, 43ULL, 47ULL}) {
    const BigInt bp(p);
    if (n == bp) return true;
    if (Mod(n, bp).ValueOrDie().IsZero()) return false;
  }
  const BigInt one(1);
  const BigInt n_minus_1 = n - one;
  BigInt d = n_minus_1;
  size_t r = 0;
  while (!d.IsOdd()) {
    d = d >> 1;
    ++r;
  }
  for (int round = 0; round < rounds; ++round) {
    BigInt a = RandomBelow(n - BigInt(3), rng) + BigInt(2);  // in [2, n-2]
    BigInt x = PowMod(a, d, n).ValueOrDie();
    if (x == one || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      x = MulMod(x, x, n).ValueOrDie();
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Result<BigInt> BigInt::GeneratePrime(size_t bits, Rng* rng) {
  if (bits < 8) return Status::InvalidArgument("BigInt: prime bits too small");
  for (int attempt = 0; attempt < 100000; ++attempt) {
    BigInt candidate = RandomWithBits(bits, rng);
    if (!candidate.IsOdd()) candidate = candidate + BigInt(1);
    if (ProbablyPrime(candidate, 20, rng)) return candidate;
  }
  return Status::NotFound("BigInt: prime generation exhausted attempts");
}

}  // namespace vfps::he

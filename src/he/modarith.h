#ifndef VFPS_HE_MODARITH_H_
#define VFPS_HE_MODARITH_H_

#include <cstdint>

#include "common/result.h"

namespace vfps::he {

/// 64-bit modular arithmetic primitives used by the NTT and the CKKS scheme.
/// All moduli are < 2^62 so sums of two residues never overflow.

inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t q) {
  uint64_t s = a + b;
  return s >= q ? s - q : s;
}

inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t q) {
  return a >= b ? a - b : a + q - b;
}

inline uint64_t MulMod(uint64_t a, uint64_t b, uint64_t q) {
  return static_cast<uint64_t>((static_cast<__uint128_t>(a) * b) % q);
}

inline uint64_t NegateMod(uint64_t a, uint64_t q) { return a == 0 ? 0 : q - a; }

/// a^e mod q by binary exponentiation.
uint64_t PowMod(uint64_t a, uint64_t e, uint64_t q);

/// Multiplicative inverse mod prime q (via Fermat).
uint64_t InvMod(uint64_t a, uint64_t q);

/// Deterministic Miller-Rabin, valid for all 64-bit inputs.
bool IsPrime(uint64_t n);

/// \brief Find a prime p with the given bit length satisfying
/// p ≡ 1 (mod congruence), scanning downward from 2^bits.
///
/// Used to generate NTT-friendly moduli (congruence = 2 * ring degree).
Result<uint64_t> GeneratePrime(int bits, uint64_t congruence);

/// \brief Find ψ, a primitive 2n-th root of unity mod q (requires
/// q ≡ 1 mod 2n). ψ^n ≡ -1 (mod q), enabling the negacyclic NTT.
Result<uint64_t> FindPrimitiveRoot(uint64_t two_n, uint64_t q);

}  // namespace vfps::he

#endif  // VFPS_HE_MODARITH_H_

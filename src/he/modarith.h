#ifndef VFPS_HE_MODARITH_H_
#define VFPS_HE_MODARITH_H_

#include <cstdint>

#include "common/result.h"

namespace vfps::he {

/// 64-bit modular arithmetic primitives used by the NTT and the CKKS scheme.
/// All moduli are < 2^62; this gives two guarantees the fast paths rely on:
/// sums of two residues never overflow, and lazy values in [0, 4q) fit in a
/// uint64_t (4q < 2^64), which is what permits the Harvey-style deferred
/// reductions in the NTT butterflies.

inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t q) {
  uint64_t s = a + b;
  return s >= q ? s - q : s;
}

inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t q) {
  return a >= b ? a - b : a + q - b;
}

inline uint64_t MulMod(uint64_t a, uint64_t b, uint64_t q) {
  return static_cast<uint64_t>((static_cast<__uint128_t>(a) * b) % q);
}

inline uint64_t NegateMod(uint64_t a, uint64_t q) { return a == 0 ? 0 : q - a; }

/// High 64 bits of the 128-bit product a * b.
inline uint64_t MulHi64(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>((static_cast<__uint128_t>(a) * b) >> 64);
}

/// \brief A modulus with its Barrett constant floor(2^128 / q), stored as two
/// 64-bit words {lo, hi}. Lets hot loops reduce 128-bit products without a
/// hardware division. Requires 1 < q < 2^62.
struct Modulus {
  uint64_t value = 0;
  uint64_t const_ratio[2] = {0, 0};  // floor(2^128 / q): [0] = lo, [1] = hi

  Modulus() = default;
  explicit Modulus(uint64_t q) : value(q) {
    const __uint128_t two_64 = static_cast<__uint128_t>(1) << 64;
    const uint64_t hi = static_cast<uint64_t>(two_64 / q);
    const uint64_t rem = static_cast<uint64_t>(two_64 % q);
    const_ratio[1] = hi;
    const_ratio[0] = static_cast<uint64_t>((static_cast<__uint128_t>(rem) << 64) / q);
  }
};

/// \brief Barrett reduction of the 128-bit value (z_hi * 2^64 + z_lo) to
/// [0, q). Estimates floor(z / q) as the top word of z * floor(2^128/q);
/// the estimate is off by at most one, so a single conditional subtraction
/// completes the reduction.
inline uint64_t BarrettReduce128(uint64_t z_lo, uint64_t z_hi, const Modulus& m) {
  const uint64_t r_lo = m.const_ratio[0];
  const uint64_t r_hi = m.const_ratio[1];
  const uint64_t carry = MulHi64(z_lo, r_lo);
  const __uint128_t mid1 = static_cast<__uint128_t>(z_lo) * r_hi + carry;
  const __uint128_t mid2 =
      static_cast<__uint128_t>(z_hi) * r_lo + static_cast<uint64_t>(mid1);
  const uint64_t q_est = z_hi * r_hi + static_cast<uint64_t>(mid1 >> 64) +
                         static_cast<uint64_t>(mid2 >> 64);
  const uint64_t r = z_lo - q_est * m.value;
  return r >= m.value ? r - m.value : r;
}

/// Barrett reduction of a single 64-bit value to [0, q).
inline uint64_t BarrettReduce64(uint64_t a, const Modulus& m) {
  const uint64_t q_est = MulHi64(a, m.const_ratio[1]);
  const uint64_t r = a - q_est * m.value;
  return r >= m.value ? r - m.value : r;
}

/// Division-free modular multiplication via Barrett reduction.
inline uint64_t MulMod(uint64_t a, uint64_t b, const Modulus& m) {
  const __uint128_t z = static_cast<__uint128_t>(a) * b;
  return BarrettReduce128(static_cast<uint64_t>(z),
                          static_cast<uint64_t>(z >> 64), m);
}

/// \brief Shoup precomputation for multiplying by a fixed operand w < q:
/// returns floor(w * 2^64 / q).
inline uint64_t ShoupPrecompute(uint64_t w, uint64_t q) {
  return static_cast<uint64_t>((static_cast<__uint128_t>(w) << 64) / q);
}

/// \brief Lazy Shoup multiplication: a * w mod q up to one multiple of q,
/// i.e. the result lies in [0, 2q). Valid for ANY a < 2^64 (in particular
/// lazy inputs in [0, 4q)) with w < q and q < 2^63. Two multiplies, no
/// division — this is the NTT butterfly workhorse.
inline uint64_t MulModShoupLazy(uint64_t a, uint64_t w, uint64_t w_shoup,
                                uint64_t q) {
  const uint64_t hi = MulHi64(a, w_shoup);
  return a * w - hi * q;
}

/// Fully reduced Shoup multiplication: result in [0, q).
inline uint64_t MulModShoup(uint64_t a, uint64_t w, uint64_t w_shoup,
                            uint64_t q) {
  const uint64_t r = MulModShoupLazy(a, w, w_shoup, q);
  return r >= q ? r - q : r;
}

/// a^e mod q by binary exponentiation.
uint64_t PowMod(uint64_t a, uint64_t e, uint64_t q);

/// Multiplicative inverse mod prime q (via Fermat).
uint64_t InvMod(uint64_t a, uint64_t q);

/// Deterministic Miller-Rabin, valid for all 64-bit inputs.
bool IsPrime(uint64_t n);

/// \brief Find a prime p with the given bit length satisfying
/// p ≡ 1 (mod congruence), scanning downward from 2^bits.
///
/// Used to generate NTT-friendly moduli (congruence = 2 * ring degree).
Result<uint64_t> GeneratePrime(int bits, uint64_t congruence);

/// \brief Find ψ, a primitive 2n-th root of unity mod q (requires
/// q ≡ 1 mod 2n). ψ^n ≡ -1 (mod q), enabling the negacyclic NTT.
Result<uint64_t> FindPrimitiveRoot(uint64_t two_n, uint64_t q);

}  // namespace vfps::he

#endif  // VFPS_HE_MODARITH_H_

// AVX2 / AVX-512 backends for the Harvey lazy-reduction NTT butterflies.
//
// Each backend executes the exact same sequence of unsigned 64-bit
// operations as the scalar reference in ntt.cc — conditional subtraction to
// [0, 2q), lazy Shoup product in [0, 2q), sums in [0, 4q), full reduction in
// the final pass — just 4 or 8 residues per instruction, so the outputs are
// bit-identical by construction (the differential test enforces it).
//
// Stages whose butterfly span t is narrower than a vector cannot load a
// contiguous run of u's or v's, so they get dedicated shuffle passes: a
// window of two vectors is permuted into a u-vector and a v-vector, the
// ordinary wide butterfly runs, and the results are permuted back before
// the store. Per element that is the same arithmetic in the same order —
// only the lane gathering differs — so bit-identity is untouched, and the
// narrow stages (a fixed 2–3 of log2(n) passes that would otherwise run
// scalar) stop dominating the profile. The per-block twiddles of a narrow
// stage are contiguous in the tables, which is what makes the single
// twiddle load + expansion below work.

#include "he/ntt.h"
#include "he/simd_math.h"

namespace vfps::he {

#ifdef VFPS_SIMD_X86

namespace {

// Lane index tables for the narrow-span (t < vector width) shuffle passes.
// For span t, a 16-lane window holds 16/(2t) whole blocks; *U/*V gather the
// u and v halves of those blocks out of the two loaded vectors (operand
// indices 0-7 = first vector, 8-15 = second), *OutA/*OutB interleave the
// butterfly results back into window order, and *W expands the contiguous
// per-block twiddles to one per lane. For t=4 the gather pattern is its own
// inverse, so kTail4U/kTail4V double as the scatter tables.
alignas(64) constexpr uint64_t kTail4U[8] = {0, 1, 2, 3, 8, 9, 10, 11};
alignas(64) constexpr uint64_t kTail4V[8] = {4, 5, 6, 7, 12, 13, 14, 15};
alignas(64) constexpr uint64_t kTail4W[8] = {0, 0, 0, 0, 1, 1, 1, 1};
alignas(64) constexpr uint64_t kTail2U[8] = {0, 1, 4, 5, 8, 9, 12, 13};
alignas(64) constexpr uint64_t kTail2V[8] = {2, 3, 6, 7, 10, 11, 14, 15};
alignas(64) constexpr uint64_t kTail2OutA[8] = {0, 1, 8, 9, 2, 3, 10, 11};
alignas(64) constexpr uint64_t kTail2OutB[8] = {4, 5, 12, 13, 6, 7, 14, 15};
alignas(64) constexpr uint64_t kTail2W[8] = {0, 0, 1, 1, 2, 2, 3, 3};
alignas(64) constexpr uint64_t kTail1U[8] = {0, 2, 4, 6, 8, 10, 12, 14};
alignas(64) constexpr uint64_t kTail1V[8] = {1, 3, 5, 7, 9, 11, 13, 15};
alignas(64) constexpr uint64_t kTail1OutA[8] = {0, 8, 1, 9, 2, 10, 3, 11};
alignas(64) constexpr uint64_t kTail1OutB[8] = {4, 12, 5, 13, 6, 14, 7, 15};

inline void ScalarForwardButterfly(uint64_t* a, size_t j, size_t t, uint64_t w,
                                   uint64_t ws, uint64_t q, uint64_t two_q) {
  uint64_t u = a[j];
  if (u >= two_q) u -= two_q;
  const uint64_t v = MulModShoupLazy(a[j + t], w, ws, q);
  a[j] = u + v;
  a[j + t] = u + two_q - v;
}

inline void ScalarInverseButterfly(uint64_t* a, size_t j, size_t t, uint64_t w,
                                   uint64_t ws, uint64_t q, uint64_t two_q) {
  const uint64_t u = a[j];
  const uint64_t v = a[j + t];
  uint64_t s = u + v;
  if (s >= two_q) s -= two_q;
  a[j] = s;
  a[j + t] = MulModShoupLazy(u + two_q - v, w, ws, q);
}

// One whole narrow stage (t ∈ {1, 2, 4}) over a[0, n), n ≥ 16. w_base /
// ws_base point at the stage's first twiddle (roots + m resp. inv_roots + h);
// the t=4 and t=2 twiddle loads read up to 6 slots past the stage's own
// range, which stays inside the size-n tables (absolute index ≤ n/2 + 3).
VFPS_TARGET_AVX512 void ForwardTailStageAvx512(uint64_t* a, size_t n, size_t t,
                                               const uint64_t* w_base,
                                               const uint64_t* ws_base,
                                               __m512i vq, __m512i v2q) {
  const uint64_t* iu;
  const uint64_t* iv;
  const uint64_t* ia;
  const uint64_t* ib;
  const uint64_t* iw = nullptr;
  switch (t) {
    case 4:
      iu = ia = kTail4U;
      iv = ib = kTail4V;
      iw = kTail4W;
      break;
    case 2:
      iu = kTail2U;
      iv = kTail2V;
      ia = kTail2OutA;
      ib = kTail2OutB;
      iw = kTail2W;
      break;
    default:  // t == 1: twiddles are already one per lane.
      iu = kTail1U;
      iv = kTail1V;
      ia = kTail1OutA;
      ib = kTail1OutB;
      break;
  }
  const __m512i idx_u = _mm512_load_si512(iu);
  const __m512i idx_v = _mm512_load_si512(iv);
  const __m512i idx_a = _mm512_load_si512(ia);
  const __m512i idx_b = _mm512_load_si512(ib);
  const __m512i idx_w =
      iw != nullptr ? _mm512_load_si512(iw) : _mm512_setzero_si512();
  const size_t two_t = 2 * t;
  for (size_t k = 0; k < n; k += 16) {
    const __m512i x0 = _mm512_loadu_si512(a + k);
    const __m512i x1 = _mm512_loadu_si512(a + k + 8);
    __m512i u = _mm512_permutex2var_epi64(x0, idx_u, x1);
    const __m512i x = _mm512_permutex2var_epi64(x0, idx_v, x1);
    __m512i vw = _mm512_loadu_si512(w_base + k / two_t);
    __m512i vws = _mm512_loadu_si512(ws_base + k / two_t);
    if (iw != nullptr) {
      vw = _mm512_permutexvar_epi64(idx_w, vw);
      vws = _mm512_permutexvar_epi64(idx_w, vws);
    }
    u = detail::Avx512CSub(u, v2q);
    const __m512i v = detail::Avx512MulModShoupLazy(x, vw, vws, vq);
    const __m512i lo = _mm512_add_epi64(u, v);
    const __m512i hi = _mm512_add_epi64(u, _mm512_sub_epi64(v2q, v));
    _mm512_storeu_si512(a + k, _mm512_permutex2var_epi64(lo, idx_a, hi));
    _mm512_storeu_si512(a + k + 8, _mm512_permutex2var_epi64(lo, idx_b, hi));
  }
}

VFPS_TARGET_AVX512 void InverseTailStageAvx512(uint64_t* a, size_t n, size_t t,
                                               const uint64_t* w_base,
                                               const uint64_t* ws_base,
                                               __m512i vq, __m512i v2q) {
  const uint64_t* iu;
  const uint64_t* iv;
  const uint64_t* ia;
  const uint64_t* ib;
  const uint64_t* iw = nullptr;
  switch (t) {
    case 4:
      iu = ia = kTail4U;
      iv = ib = kTail4V;
      iw = kTail4W;
      break;
    case 2:
      iu = kTail2U;
      iv = kTail2V;
      ia = kTail2OutA;
      ib = kTail2OutB;
      iw = kTail2W;
      break;
    default:
      iu = kTail1U;
      iv = kTail1V;
      ia = kTail1OutA;
      ib = kTail1OutB;
      break;
  }
  const __m512i idx_u = _mm512_load_si512(iu);
  const __m512i idx_v = _mm512_load_si512(iv);
  const __m512i idx_a = _mm512_load_si512(ia);
  const __m512i idx_b = _mm512_load_si512(ib);
  const __m512i idx_w =
      iw != nullptr ? _mm512_load_si512(iw) : _mm512_setzero_si512();
  const size_t two_t = 2 * t;
  for (size_t k = 0; k < n; k += 16) {
    const __m512i x0 = _mm512_loadu_si512(a + k);
    const __m512i x1 = _mm512_loadu_si512(a + k + 8);
    const __m512i u = _mm512_permutex2var_epi64(x0, idx_u, x1);
    const __m512i v = _mm512_permutex2var_epi64(x0, idx_v, x1);
    __m512i vw = _mm512_loadu_si512(w_base + k / two_t);
    __m512i vws = _mm512_loadu_si512(ws_base + k / two_t);
    if (iw != nullptr) {
      vw = _mm512_permutexvar_epi64(idx_w, vw);
      vws = _mm512_permutexvar_epi64(idx_w, vws);
    }
    __m512i s = _mm512_add_epi64(u, v);
    s = detail::Avx512CSub(s, v2q);
    const __m512i d = _mm512_sub_epi64(_mm512_add_epi64(u, v2q), v);
    const __m512i dm = detail::Avx512MulModShoupLazy(d, vw, vws, vq);
    _mm512_storeu_si512(a + k, _mm512_permutex2var_epi64(s, idx_a, dm));
    _mm512_storeu_si512(a + k + 8, _mm512_permutex2var_epi64(s, idx_b, dm));
  }
}

// One whole narrow stage (t ∈ {1, 2}) over a[0, n), n ≥ 8, for AVX2. The
// 128-bit-lane shuffles are spelled per span; twiddle loads are exact
// (2 resp. 4 per 8-element window), no over-read.
VFPS_TARGET_AVX2 void ForwardTailStageAvx2(uint64_t* a, size_t n, size_t t,
                                           const uint64_t* w_base,
                                           const uint64_t* ws_base, __m256i vq,
                                           __m256i v2q) {
  for (size_t k = 0; k < n; k += 8) {
    const __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i x1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k + 4));
    __m256i u, x, vw, vws;
    if (t == 2) {
      // Blocks are [u0 u1 v0 v1]; gather low halves vs high halves.
      u = _mm256_permute2x128_si256(x0, x1, 0x20);
      x = _mm256_permute2x128_si256(x0, x1, 0x31);
      const __m128i wp = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(w_base + k / 4));
      const __m128i wsp = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ws_base + k / 4));
      vw = _mm256_permute4x64_epi64(_mm256_castsi128_si256(wp), 0x50);
      vws = _mm256_permute4x64_epi64(_mm256_castsi128_si256(wsp), 0x50);
    } else {  // t == 1: even lanes are u's, odd lanes are v's.
      u = _mm256_blend_epi32(_mm256_permute4x64_epi64(x0, 0x08),
                             _mm256_permute4x64_epi64(x1, 0x80), 0xF0);
      x = _mm256_blend_epi32(_mm256_permute4x64_epi64(x0, 0x0D),
                             _mm256_permute4x64_epi64(x1, 0xD0), 0xF0);
      vw = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(w_base + k / 2));
      vws = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ws_base + k / 2));
    }
    u = detail::Avx2CSub(u, v2q);
    const __m256i v = detail::Avx2MulModShoupLazy(x, vw, vws, vq);
    const __m256i lo = _mm256_add_epi64(u, v);
    const __m256i hi = _mm256_add_epi64(u, _mm256_sub_epi64(v2q, v));
    __m256i out_a, out_b;
    if (t == 2) {
      out_a = _mm256_permute2x128_si256(lo, hi, 0x20);
      out_b = _mm256_permute2x128_si256(lo, hi, 0x31);
    } else {
      const __m256i even = _mm256_unpacklo_epi64(lo, hi);
      const __m256i odd = _mm256_unpackhi_epi64(lo, hi);
      out_a = _mm256_permute2x128_si256(even, odd, 0x20);
      out_b = _mm256_permute2x128_si256(even, odd, 0x31);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k), out_a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k + 4), out_b);
  }
}

VFPS_TARGET_AVX2 void InverseTailStageAvx2(uint64_t* a, size_t n, size_t t,
                                           const uint64_t* w_base,
                                           const uint64_t* ws_base, __m256i vq,
                                           __m256i v2q) {
  for (size_t k = 0; k < n; k += 8) {
    const __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i x1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k + 4));
    __m256i u, v, vw, vws;
    if (t == 2) {
      u = _mm256_permute2x128_si256(x0, x1, 0x20);
      v = _mm256_permute2x128_si256(x0, x1, 0x31);
      const __m128i wp = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(w_base + k / 4));
      const __m128i wsp = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ws_base + k / 4));
      vw = _mm256_permute4x64_epi64(_mm256_castsi128_si256(wp), 0x50);
      vws = _mm256_permute4x64_epi64(_mm256_castsi128_si256(wsp), 0x50);
    } else {
      u = _mm256_blend_epi32(_mm256_permute4x64_epi64(x0, 0x08),
                             _mm256_permute4x64_epi64(x1, 0x80), 0xF0);
      v = _mm256_blend_epi32(_mm256_permute4x64_epi64(x0, 0x0D),
                             _mm256_permute4x64_epi64(x1, 0xD0), 0xF0);
      vw = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(w_base + k / 2));
      vws = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ws_base + k / 2));
    }
    __m256i s = _mm256_add_epi64(u, v);
    s = detail::Avx2CSub(s, v2q);
    const __m256i d = _mm256_sub_epi64(_mm256_add_epi64(u, v2q), v);
    const __m256i dm = detail::Avx2MulModShoupLazy(d, vw, vws, vq);
    __m256i out_a, out_b;
    if (t == 2) {
      out_a = _mm256_permute2x128_si256(s, dm, 0x20);
      out_b = _mm256_permute2x128_si256(s, dm, 0x31);
    } else {
      const __m256i even = _mm256_unpacklo_epi64(s, dm);
      const __m256i odd = _mm256_unpackhi_epi64(s, dm);
      out_a = _mm256_permute2x128_si256(even, odd, 0x20);
      out_b = _mm256_permute2x128_si256(even, odd, 0x31);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k), out_a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k + 4), out_b);
  }
}

VFPS_TARGET_AVX2 void ForwardAvx2Impl(uint64_t* a, size_t n, uint64_t q,
                                      const uint64_t* roots,
                                      const uint64_t* roots_shoup) {
  const uint64_t two_q = 2 * q;
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(q));
  const __m256i v2q = _mm256_set1_epi64x(static_cast<int64_t>(two_q));
  size_t t = n;
  for (size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    if (t < 4 && n >= 8) {
      ForwardTailStageAvx2(a, n, t, roots + m, roots_shoup + m, vq, v2q);
      continue;
    }
    for (size_t i = 0; i < m; ++i) {
      const size_t j1 = 2 * i * t;
      const uint64_t w = roots[m + i];
      const uint64_t ws = roots_shoup[m + i];
      if (t >= 4) {
        const __m256i vw = _mm256_set1_epi64x(static_cast<int64_t>(w));
        const __m256i vws = _mm256_set1_epi64x(static_cast<int64_t>(ws));
        for (size_t j = j1; j < j1 + t; j += 4) {
          __m256i u = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j));
          u = detail::Avx2CSub(u, v2q);
          const __m256i x =
              _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j + t));
          const __m256i v = detail::Avx2MulModShoupLazy(x, vw, vws, vq);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j),
                              _mm256_add_epi64(u, v));
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j + t),
                              _mm256_add_epi64(u, _mm256_sub_epi64(v2q, v)));
        }
      } else {
        for (size_t j = j1; j < j1 + t; ++j) {
          ScalarForwardButterfly(a, j, t, w, ws, q, two_q);
        }
      }
    }
  }
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    v = detail::Avx2CSub(v, v2q);
    v = detail::Avx2CSub(v, vq);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), v);
  }
  for (; i < n; ++i) {
    uint64_t v = a[i];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    a[i] = v;
  }
}

VFPS_TARGET_AVX2 void InverseAvx2Impl(uint64_t* a, size_t n, uint64_t q,
                                      const uint64_t* inv_roots,
                                      const uint64_t* inv_roots_shoup,
                                      uint64_t n_inv, uint64_t n_inv_shoup) {
  const uint64_t two_q = 2 * q;
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(q));
  const __m256i v2q = _mm256_set1_epi64x(static_cast<int64_t>(two_q));
  size_t t = 1;
  for (size_t m = n; m > 1; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    if (t < 4 && n >= 8) {
      InverseTailStageAvx2(a, n, t, inv_roots + h, inv_roots_shoup + h, vq,
                           v2q);
      t <<= 1;
      continue;
    }
    for (size_t i = 0; i < h; ++i) {
      const uint64_t w = inv_roots[h + i];
      const uint64_t ws = inv_roots_shoup[h + i];
      if (t >= 4) {
        const __m256i vw = _mm256_set1_epi64x(static_cast<int64_t>(w));
        const __m256i vws = _mm256_set1_epi64x(static_cast<int64_t>(ws));
        for (size_t j = j1; j < j1 + t; j += 4) {
          const __m256i u =
              _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j));
          const __m256i v =
              _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j + t));
          __m256i s = _mm256_add_epi64(u, v);
          s = detail::Avx2CSub(s, v2q);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), s);
          const __m256i d =
              _mm256_sub_epi64(_mm256_add_epi64(u, v2q), v);
          _mm256_storeu_si256(
              reinterpret_cast<__m256i*>(a + j + t),
              detail::Avx2MulModShoupLazy(d, vw, vws, vq));
        }
      } else {
        for (size_t j = j1; j < j1 + t; ++j) {
          ScalarInverseButterfly(a, j, t, w, ws, q, two_q);
        }
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  const __m256i vn = _mm256_set1_epi64x(static_cast<int64_t>(n_inv));
  const __m256i vns = _mm256_set1_epi64x(static_cast<int64_t>(n_inv_shoup));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i lazy = detail::Avx2MulModShoupLazy(x, vn, vns, vq);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        detail::Avx2CSub(lazy, vq));
  }
  for (; i < n; ++i) {
    a[i] = MulModShoup(a[i], n_inv, n_inv_shoup, q);
  }
}

VFPS_TARGET_AVX512 void ForwardAvx512Impl(uint64_t* a, size_t n, uint64_t q,
                                          const uint64_t* roots,
                                          const uint64_t* roots_shoup) {
  const uint64_t two_q = 2 * q;
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(q));
  const __m512i v2q = _mm512_set1_epi64(static_cast<int64_t>(two_q));
  size_t t = n;
  for (size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    if (t < 8 && n >= 16) {
      ForwardTailStageAvx512(a, n, t, roots + m, roots_shoup + m, vq, v2q);
      continue;
    }
    for (size_t i = 0; i < m; ++i) {
      const size_t j1 = 2 * i * t;
      const uint64_t w = roots[m + i];
      const uint64_t ws = roots_shoup[m + i];
      if (t >= 8) {
        const __m512i vw = _mm512_set1_epi64(static_cast<int64_t>(w));
        const __m512i vws = _mm512_set1_epi64(static_cast<int64_t>(ws));
        for (size_t j = j1; j < j1 + t; j += 8) {
          __m512i u = _mm512_loadu_si512(a + j);
          u = detail::Avx512CSub(u, v2q);
          const __m512i x = _mm512_loadu_si512(a + j + t);
          const __m512i v = detail::Avx512MulModShoupLazy(x, vw, vws, vq);
          _mm512_storeu_si512(a + j, _mm512_add_epi64(u, v));
          _mm512_storeu_si512(a + j + t,
                              _mm512_add_epi64(u, _mm512_sub_epi64(v2q, v)));
        }
      } else {
        for (size_t j = j1; j < j1 + t; ++j) {
          ScalarForwardButterfly(a, j, t, w, ws, q, two_q);
        }
      }
    }
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i v = _mm512_loadu_si512(a + i);
    v = detail::Avx512CSub(v, v2q);
    v = detail::Avx512CSub(v, vq);
    _mm512_storeu_si512(a + i, v);
  }
  for (; i < n; ++i) {
    uint64_t v = a[i];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    a[i] = v;
  }
}

VFPS_TARGET_AVX512 void InverseAvx512Impl(uint64_t* a, size_t n, uint64_t q,
                                          const uint64_t* inv_roots,
                                          const uint64_t* inv_roots_shoup,
                                          uint64_t n_inv,
                                          uint64_t n_inv_shoup) {
  const uint64_t two_q = 2 * q;
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(q));
  const __m512i v2q = _mm512_set1_epi64(static_cast<int64_t>(two_q));
  size_t t = 1;
  for (size_t m = n; m > 1; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    if (t < 8 && n >= 16) {
      InverseTailStageAvx512(a, n, t, inv_roots + h, inv_roots_shoup + h, vq,
                             v2q);
      t <<= 1;
      continue;
    }
    for (size_t i = 0; i < h; ++i) {
      const uint64_t w = inv_roots[h + i];
      const uint64_t ws = inv_roots_shoup[h + i];
      if (t >= 8) {
        const __m512i vw = _mm512_set1_epi64(static_cast<int64_t>(w));
        const __m512i vws = _mm512_set1_epi64(static_cast<int64_t>(ws));
        for (size_t j = j1; j < j1 + t; j += 8) {
          const __m512i u = _mm512_loadu_si512(a + j);
          const __m512i v = _mm512_loadu_si512(a + j + t);
          __m512i s = _mm512_add_epi64(u, v);
          s = detail::Avx512CSub(s, v2q);
          _mm512_storeu_si512(a + j, s);
          const __m512i d = _mm512_sub_epi64(_mm512_add_epi64(u, v2q), v);
          _mm512_storeu_si512(a + j + t,
                              detail::Avx512MulModShoupLazy(d, vw, vws, vq));
        }
      } else {
        for (size_t j = j1; j < j1 + t; ++j) {
          ScalarInverseButterfly(a, j, t, w, ws, q, two_q);
        }
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  const __m512i vn = _mm512_set1_epi64(static_cast<int64_t>(n_inv));
  const __m512i vns = _mm512_set1_epi64(static_cast<int64_t>(n_inv_shoup));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i lazy = detail::Avx512MulModShoupLazy(x, vn, vns, vq);
    _mm512_storeu_si512(a + i, detail::Avx512CSub(lazy, vq));
  }
  for (; i < n; ++i) {
    a[i] = MulModShoup(a[i], n_inv, n_inv_shoup, q);
  }
}

}  // namespace

void NttTables::ForwardAvx2(uint64_t* a) const {
  ForwardAvx2Impl(a, n_, q_, root_powers_.data(), root_powers_shoup_.data());
}

void NttTables::InverseAvx2(uint64_t* a) const {
  InverseAvx2Impl(a, n_, q_, inv_root_powers_.data(),
                  inv_root_powers_shoup_.data(), n_inv_, n_inv_shoup_);
}

void NttTables::ForwardAvx512(uint64_t* a) const {
  ForwardAvx512Impl(a, n_, q_, root_powers_.data(), root_powers_shoup_.data());
}

void NttTables::InverseAvx512(uint64_t* a) const {
  InverseAvx512Impl(a, n_, q_, inv_root_powers_.data(),
                    inv_root_powers_shoup_.data(), n_inv_, n_inv_shoup_);
}

#else  // !VFPS_SIMD_X86

// Non-x86 builds: the dispatcher never selects these, but the symbols must
// exist. Delegate to the scalar reference.
void NttTables::ForwardAvx2(uint64_t* a) const { ForwardScalar(a); }
void NttTables::InverseAvx2(uint64_t* a) const { InverseScalar(a); }
void NttTables::ForwardAvx512(uint64_t* a) const { ForwardScalar(a); }
void NttTables::InverseAvx512(uint64_t* a) const { InverseScalar(a); }

#endif  // VFPS_SIMD_X86

}  // namespace vfps::he

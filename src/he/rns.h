#ifndef VFPS_HE_RNS_H_
#define VFPS_HE_RNS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "he/ntt.h"

namespace vfps::he {

/// \brief Residue number system context: the ciphertext modulus
/// Q = q_0 * q_1 * ... with NTT tables per prime.
///
/// At most two primes are supported so that CRT composition fits in 128-bit
/// integers; with 54-bit primes this gives Q up to ~2^108, ample for the
/// additive homomorphic workload of the selection protocol.
class RnsContext {
 public:
  /// \param n ring degree (power of two).
  /// \param prime_bits bit width of each RNS prime (1 or 2 entries, <= 59).
  static Result<std::shared_ptr<const RnsContext>> Create(
      size_t n, const std::vector<int>& prime_bits);

  size_t n() const { return n_; }
  size_t num_primes() const { return primes_.size(); }
  const std::vector<uint64_t>& primes() const { return primes_; }
  uint64_t prime(size_t i) const { return primes_[i]; }
  const NttTables& ntt(size_t i) const { return ntt_[i]; }

  /// Barrett-ready modulus for prime i (division-free pointwise arithmetic).
  const Modulus& modulus(size_t i) const { return ntt_[i].modulus(); }

  /// \brief Rescale precompute: (q_last mod q_i)^{-1} mod q_i for each
  /// retained prime i < num_primes() - 1, with its Shoup companion. Cached at
  /// Create so CkksContext::Rescale does no per-call inversions.
  uint64_t rescale_q_last_inv(size_t i) const { return rescale_inv_[i]; }
  uint64_t rescale_q_last_inv_shoup(size_t i) const {
    return rescale_inv_shoup_[i];
  }

  /// Q as a long double (used only for headroom checks, never for arithmetic).
  long double modulus_approx() const { return q_approx_; }

  /// q_0^{-1} mod q_1, cached for CRT composition (two-prime contexts only).
  uint64_t crt_q0_inv_q1() const { return crt_q0_inv_q1_; }

 private:
  RnsContext() = default;
  size_t n_ = 0;
  std::vector<uint64_t> primes_;
  std::vector<NttTables> ntt_;
  long double q_approx_ = 0.0L;
  uint64_t crt_q0_inv_q1_ = 0;
  std::vector<uint64_t> rescale_inv_;
  std::vector<uint64_t> rescale_inv_shoup_;
};

/// \brief Ring element in RNS representation: one residue vector of length n
/// per prime. `ntt_form` tracks whether the residues are in evaluation form.
struct RnsPoly {
  std::vector<std::vector<uint64_t>> residues;
  bool ntt_form = false;

  size_t num_primes() const { return residues.size(); }
  size_t n() const { return residues.empty() ? 0 : residues[0].size(); }
};

/// Fresh zero polynomial (coefficient form).
RnsPoly ZeroPoly(const RnsContext& ctx);

/// \brief Resize `p` to the context's shape without zero-filling live data.
/// Used by the *Into sampling variants to reuse scratch buffers: callers must
/// treat the previous contents as garbage (every component is overwritten by
/// the samplers below).
void ResizePoly(const RnsContext& ctx, RnsPoly* p);

/// Uniform element of R_Q (directly usable in either form; sampled per prime).
RnsPoly SampleUniform(const RnsContext& ctx, Rng* rng);

/// Ternary secret {-1, 0, 1}; returned in coefficient form.
RnsPoly SampleTernary(const RnsContext& ctx, Rng* rng);

/// Centered discrete gaussian error (sigma ~ 3.2); coefficient form.
RnsPoly SampleGaussian(const RnsContext& ctx, Rng* rng, double sigma = 3.2);

/// \brief Allocation-free variants writing into an existing polynomial
/// (resized to the context's shape; all components overwritten). Each
/// consumes the Rng identically to its allocating counterpart, so swapping
/// one for the other never perturbs a deterministic randomness stream.
void SampleTernaryInto(const RnsContext& ctx, Rng* rng, RnsPoly* out);
void SampleGaussianInto(const RnsContext& ctx, Rng* rng, RnsPoly* out,
                        double sigma = 3.2);

/// a += b (must be in the same form).
void AddInPlace(const RnsContext& ctx, RnsPoly* a, const RnsPoly& b);
/// a -= b.
void SubInPlace(const RnsContext& ctx, RnsPoly* a, const RnsPoly& b);
/// a = -a.
void NegateInPlace(const RnsContext& ctx, RnsPoly* a);
/// a *= b pointwise (both must be in NTT form).
void MulPointwiseInPlace(const RnsContext& ctx, RnsPoly* a, const RnsPoly& b);
/// a *= scalar (integer scalar, any form).
void MulScalarInPlace(const RnsContext& ctx, RnsPoly* a, uint64_t scalar);

/// Transform to evaluation (NTT) form; no-op if already there.
void ToNtt(const RnsContext& ctx, RnsPoly* a);
/// Transform to coefficient form; no-op if already there.
void FromNtt(const RnsContext& ctx, RnsPoly* a);

/// \brief Map a signed integer coefficient (|v| < Q/2) to RNS residues.
void SetCoeffFromInt128(const RnsContext& ctx, RnsPoly* poly, size_t idx,
                        __int128 value);

/// \brief CRT-compose the residues of coefficient `idx` into the
/// non-negative representative in [0, Q) (Q = product of the poly's primes).
unsigned __int128 ComposeCoeffU128(const RnsContext& ctx, const RnsPoly& poly,
                                   size_t idx);

/// \brief CRT-compose the residues of coefficient `idx` and recenter to a
/// signed value in (-Q/2, Q/2], returned as a double (lossy for huge values,
/// which is fine: CKKS decode divides by the scale immediately).
double ComposeCoeffToDouble(const RnsContext& ctx, const RnsPoly& poly,
                            size_t idx);

}  // namespace vfps::he

#endif  // VFPS_HE_RNS_H_

#include "he/ckks_encoder.h"

#include <cmath>

#include "common/string_util.h"

namespace vfps::he {

namespace {
constexpr double kPi = 3.14159265358979323846;
// Encoded coefficients must stay well below the smallest RNS prime (>= 2^53
// by construction) times headroom; 2^62 also guards the int64 rounding path.
constexpr double kCoeffBound = 4.611686018427387904e18;  // 2^62
}  // namespace

Result<CkksEncoder> CkksEncoder::Create(std::shared_ptr<const RnsContext> ctx) {
  CkksEncoder enc(std::move(ctx));
  const size_t n = enc.ctx_->n();
  if (n < 4 || (n & (n - 1)) != 0) {
    return Status::InvalidArgument("CkksEncoder: ring degree must be a power of two >= 4");
  }
  enc.twist_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const double angle = kPi * static_cast<double>(k) / static_cast<double>(n);
    enc.twist_[k] = {std::cos(angle), std::sin(angle)};
  }
  enc.fft_roots_.resize(n / 2);
  for (size_t k = 0; k < n / 2; ++k) {
    const double angle = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n);
    enc.fft_roots_[k] = {std::cos(angle), std::sin(angle)};
  }
  // The NTT tables already hold the bit-reversal permutation for this n;
  // share it instead of recomputing (every RNS prime uses the same ring
  // degree, so table 0 suffices).
  enc.bit_rev_ = enc.ctx_->ntt(0).bit_rev();
  return enc;
}

void CkksEncoder::Fft(std::vector<std::complex<double>>* a, int sign) const {
  const size_t n = a->size();
  auto& v = *a;
  for (size_t i = 0; i < n; ++i) {
    const size_t j = bit_rev_[i];
    if (i < j) std::swap(v[i], v[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const size_t step = n / len;
    for (size_t i = 0; i < n; i += len) {
      for (size_t k = 0; k < len / 2; ++k) {
        std::complex<double> w = fft_roots_[k * step];
        if (sign > 0) w = std::conj(w);
        const std::complex<double> u = v[i + k];
        const std::complex<double> t = w * v[i + k + len / 2];
        v[i + k] = u + t;
        v[i + k + len / 2] = u - t;
      }
    }
  }
}

Result<RnsPoly> CkksEncoder::Encode(std::span<const double> values,
                                    double scale) const {
  const size_t n = ctx_->n();
  if (values.size() > slot_count()) {
    return Status::CapacityError(
        StrFormat("CkksEncoder: %zu values exceed %zu slots", values.size(),
                  slot_count()));
  }
  if (scale <= 0.0) {
    return Status::InvalidArgument("CkksEncoder: scale must be positive");
  }
  // Per-thread scratch (the encrypt hot path encodes one chunk per
  // ciphertext; reusing the FFT buffer removes an n-complex allocation per
  // chunk). assign() overwrites every element, so state never leaks between
  // calls — the zero fill IS the tail mask for partially-filled chunks.
  thread_local std::vector<std::complex<double>> work;
  work.assign(n, {0.0, 0.0});
  for (size_t j = 0; j < values.size(); ++j) work[j] = {values[j], 0.0};
  Fft(&work, -1);
  RnsPoly poly = ZeroPoly(*ctx_);
  const double inv = 2.0 / static_cast<double>(n);
  for (size_t k = 0; k < n; ++k) {
    // c_k = (2/n) * Re(w^{-k} * A_k) * scale
    const std::complex<double> tw = std::conj(twist_[k]);
    const double coeff = inv * (tw * work[k]).real() * scale;
    if (!(std::abs(coeff) < kCoeffBound)) {
      return Status::OutOfRange(
          StrFormat("CkksEncoder: coefficient %.3e overflows encode bound; "
                    "reduce the scale or the value magnitudes",
                    coeff));
    }
    SetCoeffFromInt128(*ctx_, &poly, k, static_cast<__int128>(std::llround(coeff)));
  }
  ToNtt(*ctx_, &poly);
  return poly;
}

Result<std::vector<double>> CkksEncoder::Decode(const RnsPoly& poly,
                                                double scale,
                                                size_t count) const {
  const size_t n = ctx_->n();
  if (count > slot_count()) {
    return Status::CapacityError("CkksEncoder: decode count exceeds slots");
  }
  if (scale <= 0.0) {
    return Status::InvalidArgument("CkksEncoder: scale must be positive");
  }
  // Per-thread scratch; fully overwritten from `poly` before use.
  thread_local RnsPoly coeff_form;
  coeff_form.residues.resize(poly.num_primes());
  for (size_t i = 0; i < poly.num_primes(); ++i) {
    coeff_form.residues[i].assign(poly.residues[i].begin(),
                                  poly.residues[i].end());
  }
  coeff_form.ntt_form = poly.ntt_form;
  FromNtt(*ctx_, &coeff_form);
  // Same reuse trick as Encode: every element is written below before the
  // FFT reads it.
  thread_local std::vector<std::complex<double>> work;
  work.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const double c = ComposeCoeffToDouble(*ctx_, coeff_form, k);
    work[k] = twist_[k] * c;
  }
  Fft(&work, +1);
  std::vector<double> out(count);
  for (size_t j = 0; j < count; ++j) out[j] = work[j].real() / scale;
  return out;
}

}  // namespace vfps::he

#ifndef VFPS_HE_SIMD_MATH_H_
#define VFPS_HE_SIMD_MATH_H_

/// \file
/// \brief Internal AVX2/AVX-512 building blocks for the modular-arithmetic
/// kernels: 64x64-bit low/high multiplies synthesized from 32-bit lane
/// products, unsigned 64-bit compares, and conditional subtraction.
///
/// Everything here is exact unsigned integer arithmetic, so any kernel
/// composed from these helpers in the same operation order as its scalar
/// counterpart is bit-identical to it. The helpers carry per-function target
/// attributes (`VFPS_TARGET_AVX2` / `VFPS_TARGET_AVX512`) so they compile on
/// any x86-64 toolchain regardless of -march; callers must gate on
/// vfps::simd::ActiveIsa() before entering a vector path.

#include "simd/simd.h"

#ifdef VFPS_SIMD_X86

#include <immintrin.h>

#include <cstdint>

/// Marks a function compiled for AVX2 regardless of the translation unit's
/// -march flags. The compiler refuses to inline across mismatched targets,
/// which is exactly the containment runtime dispatch needs.
#define VFPS_TARGET_AVX2 __attribute__((target("avx2")))
/// AVX-512 (F + DQ) counterpart of VFPS_TARGET_AVX2.
#define VFPS_TARGET_AVX512 __attribute__((target("avx512f,avx512dq")))

namespace vfps::he::detail {

// ---------------------------------------------------------------------------
// AVX2: 4 x uint64 lanes
// ---------------------------------------------------------------------------

/// Low 64 bits of the lane-wise product a * b (AVX2 has no 64-bit multiply,
/// so it is assembled from three 32x32->64 partial products).
VFPS_TARGET_AVX2 inline __m256i Avx2MulLo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of the lane-wise unsigned product a * b, via the textbook
/// four-partial-product schoolbook with explicit carry words:
///   u = a_hi*b_lo + hi32(a_lo*b_lo)
///   v = a_lo*b_hi + lo32(u)
///   hi = a_hi*b_hi + hi32(u) + hi32(v)
VFPS_TARGET_AVX2 inline __m256i Avx2MulHi64(__m256i a, __m256i b) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i u =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_srli_epi64(lo_lo, 32));
  const __m256i v = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                     _mm256_and_si256(u, mask32));
  return _mm256_add_epi64(
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b_hi), _mm256_srli_epi64(u, 32)),
      _mm256_srli_epi64(v, 32));
}

/// Lane mask (all-ones / all-zeros per 64-bit lane) for unsigned a < b.
/// AVX2 only has a signed 64-bit compare, so both sides are biased by 2^63.
VFPS_TARGET_AVX2 inline __m256i Avx2CmpLtU64(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<int64_t>(1ULL << 63));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                            _mm256_xor_si256(a, bias));
}

/// Lane-wise conditional subtraction: a >= b ? a - b : a.
VFPS_TARGET_AVX2 inline __m256i Avx2CSub(__m256i a, __m256i b) {
  const __m256i sub = _mm256_sub_epi64(a, b);
  return _mm256_blendv_epi8(sub, a, Avx2CmpLtU64(a, b));
}

/// Lane-wise MulModShoupLazy: a * w - hi64(a * w_shoup) * q, the [0, 2q)
/// lazy Shoup product (valid for any a, with w < q < 2^62). Exactly the
/// scalar MulModShoupLazy per lane.
VFPS_TARGET_AVX2 inline __m256i Avx2MulModShoupLazy(__m256i a, __m256i w,
                                                    __m256i w_shoup,
                                                    __m256i q) {
  const __m256i hi = Avx2MulHi64(a, w_shoup);
  return _mm256_sub_epi64(Avx2MulLo64(a, w), Avx2MulLo64(hi, q));
}

/// Lane-wise BarrettReduce64: reduce a < 2^64 to [0, q) with the modulus'
/// high ratio word. Mirrors the scalar BarrettReduce64 exactly.
VFPS_TARGET_AVX2 inline __m256i Avx2BarrettReduce64(__m256i a, __m256i ratio_hi,
                                                    __m256i q) {
  const __m256i q_est = Avx2MulHi64(a, ratio_hi);
  const __m256i r = _mm256_sub_epi64(a, Avx2MulLo64(q_est, q));
  return Avx2CSub(r, q);
}

// ---------------------------------------------------------------------------
// AVX-512 (F + DQ): 8 x uint64 lanes
// ---------------------------------------------------------------------------

/// Low 64 bits of the lane-wise product (native under AVX-512DQ).
VFPS_TARGET_AVX512 inline __m512i Avx512MulLo64(__m512i a, __m512i b) {
  return _mm512_mullo_epi64(a, b);
}

/// High 64 bits of the lane-wise unsigned product (same schoolbook carry
/// chain as Avx2MulHi64; AVX-512 still has no 64-bit multiply-high).
VFPS_TARGET_AVX512 inline __m512i Avx512MulHi64(__m512i a, __m512i b) {
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFLL);
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i lo_lo = _mm512_mul_epu32(a, b);
  const __m512i u =
      _mm512_add_epi64(_mm512_mul_epu32(a_hi, b), _mm512_srli_epi64(lo_lo, 32));
  const __m512i v = _mm512_add_epi64(_mm512_mul_epu32(a, b_hi),
                                     _mm512_and_si512(u, mask32));
  return _mm512_add_epi64(
      _mm512_add_epi64(_mm512_mul_epu32(a_hi, b_hi), _mm512_srli_epi64(u, 32)),
      _mm512_srli_epi64(v, 32));
}

/// Lane-wise conditional subtraction a >= b ? a - b : a. min_epu64 makes
/// this branch- and mask-free: the subtraction wraps above a exactly when
/// a < b.
VFPS_TARGET_AVX512 inline __m512i Avx512CSub(__m512i a, __m512i b) {
  return _mm512_min_epu64(a, _mm512_sub_epi64(a, b));
}

/// Lane-wise MulModShoupLazy (see Avx2MulModShoupLazy).
VFPS_TARGET_AVX512 inline __m512i Avx512MulModShoupLazy(__m512i a, __m512i w,
                                                        __m512i w_shoup,
                                                        __m512i q) {
  const __m512i hi = Avx512MulHi64(a, w_shoup);
  return _mm512_sub_epi64(Avx512MulLo64(a, w), Avx512MulLo64(hi, q));
}

/// Lane-wise BarrettReduce64 (see Avx2BarrettReduce64).
VFPS_TARGET_AVX512 inline __m512i Avx512BarrettReduce64(__m512i a,
                                                        __m512i ratio_hi,
                                                        __m512i q) {
  const __m512i q_est = Avx512MulHi64(a, ratio_hi);
  const __m512i r = _mm512_sub_epi64(a, Avx512MulLo64(q_est, q));
  return Avx512CSub(r, q);
}

}  // namespace vfps::he::detail

#endif  // VFPS_SIMD_X86

#endif  // VFPS_HE_SIMD_MATH_H_

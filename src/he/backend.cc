#include "he/backend.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/buffer.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace vfps::he {

namespace {

// Run fn(i) for i in [0, n): on the pool when one is attached and useful,
// serially otherwise. Helpers below guarantee result/stats determinism by
// keeping all randomness derivation and stats merging on the calling thread.
void RunIndexed(ThreadPool* pool, size_t n,
                const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
    pool->ParallelFor(0, n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

// Per-item scratch for the parallel batch paths.
struct BatchSlot {
  Status status = Status::OK();
  HeOpStats stats;
};

// Check every slot's status (in order) and fold its counters into `stats`.
Status MergeSlots(std::vector<BatchSlot>* slots, HeOpStats* stats) {
  for (auto& slot : *slots) {
    if (!slot.status.ok()) return slot.status;
    stats->Merge(slot.stats);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CKKS backend: values are chunked into chunk-slot-sized slices, one
// ciphertext per slice (chunk_slots = slot_count() in packed mode, 1 in the
// scalar ablation mode).
// ---------------------------------------------------------------------------

// Key material shared (immutably) by every Fork() session. A CKKS key pair
// is three ring elements (~n * primes * 24 bytes); sharing makes Fork O(1)
// instead of copying ~100 KB per query task.
struct CkksKeyMaterial {
  CkksSecretKey sk;
  CkksPublicKey pk;
};

class CkksBackend final : public HeBackend {
 public:
  CkksBackend(std::shared_ptr<const CkksContext> ctx, uint64_t seed,
              size_t chunk_slots)
      : ctx_(std::move(ctx)), rng_(seed), chunk_slots_(chunk_slots) {
    auto keys = std::make_shared<CkksKeyMaterial>();
    keys->sk = ctx_->GenerateSecretKey(&rng_);
    keys->pk = ctx_->GeneratePublicKey(keys->sk, &rng_);
    keys_ = std::move(keys);
  }

  // Fork constructor: share the context and keys, own randomness stream.
  CkksBackend(std::shared_ptr<const CkksContext> ctx,
              std::shared_ptr<const CkksKeyMaterial> keys, size_t chunk_slots,
              uint64_t stream_seed)
      : ctx_(std::move(ctx)), rng_(stream_seed), keys_(std::move(keys)),
        chunk_slots_(chunk_slots) {}

  std::string name() const override { return "ckks"; }

  Result<EncryptedVector> DoEncrypt(std::span<const double> values) override {
    return EncryptImpl(values, &rng_, &stats_);
  }

  Result<EncryptedVector> DoSum(
      const std::vector<const EncryptedVector*>& vectors) override {
    return SumImpl(vectors, &stats_);
  }

  Result<std::vector<double>> DoDecrypt(const EncryptedVector& v) override {
    return DecryptImpl(v, &stats_);
  }

  Result<std::vector<EncryptedVector>> DoEncryptBatch(
      const std::vector<std::vector<double>>& batch) override {
    const size_t n = batch.size();
    // Randomness is consumed serially, in batch order, before fanning out:
    // the ciphertexts are identical at any thread count.
    std::vector<uint64_t> seeds(n);
    for (size_t i = 0; i < n; ++i) seeds[i] = rng_.Next();
    std::vector<EncryptedVector> out(n);
    std::vector<BatchSlot> slots(n);
    RunIndexed(pool_, n, [&](size_t i) {
      Rng rng(seeds[i]);
      auto enc = EncryptImpl(batch[i], &rng, &slots[i].stats);
      if (enc.ok()) {
        out[i] = enc.MoveValueUnsafe();
      } else {
        slots[i].status = enc.status();
      }
    });
    VFPS_RETURN_NOT_OK(MergeSlots(&slots, &stats_));
    return out;
  }

  Result<std::vector<EncryptedVector>> DoAddBatch(
      const std::vector<std::vector<const EncryptedVector*>>& groups) override {
    const size_t n = groups.size();
    std::vector<EncryptedVector> out(n);
    std::vector<BatchSlot> slots(n);
    RunIndexed(pool_, n, [&](size_t g) {
      auto sum = SumImpl(groups[g], &slots[g].stats);
      if (sum.ok()) {
        out[g] = sum.MoveValueUnsafe();
      } else {
        slots[g].status = sum.status();
      }
    });
    VFPS_RETURN_NOT_OK(MergeSlots(&slots, &stats_));
    return out;
  }

  Result<std::vector<std::vector<double>>> DoDecryptBatch(
      const std::vector<EncryptedVector>& batch) override {
    const size_t n = batch.size();
    std::vector<std::vector<double>> out(n);
    std::vector<BatchSlot> slots(n);
    RunIndexed(pool_, n, [&](size_t i) {
      auto dec = DecryptImpl(batch[i], &slots[i].stats);
      if (dec.ok()) {
        out[i] = dec.MoveValueUnsafe();
      } else {
        slots[i].status = dec.status();
      }
    });
    VFPS_RETURN_NOT_OK(MergeSlots(&slots, &stats_));
    return out;
  }

  Result<std::unique_ptr<HeBackend>> DoFork(uint64_t stream_seed) const override {
    return std::unique_ptr<HeBackend>(
        new CkksBackend(ctx_, keys_, chunk_slots_, stream_seed));
  }

  size_t CiphertextBytes(size_t count) const override {
    const size_t chunks =
        count == 0 ? 0 : (count + chunk_slots_ - 1) / chunk_slots_;
    return sizeof(uint32_t) + chunks * ctx_->CiphertextByteSize();
  }

  size_t SlotsPerCiphertext() const override { return chunk_slots_; }

 private:
  Result<EncryptedVector> EncryptImpl(std::span<const double> values,
                                      Rng* rng, HeOpStats* stats) const {
    BinaryWriter writer;
    const size_t slots = chunk_slots_;
    const size_t num_chunks =
        values.empty() ? 0 : (values.size() + slots - 1) / slots;
    writer.WriteU32(static_cast<uint32_t>(num_chunks));
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t lo = c * slots;
      const size_t len = std::min(values.size() - lo, slots);
      // Sub-span, no copy; the encoder zero-masks the final ragged tail.
      VFPS_ASSIGN_OR_RETURN(
          auto ct, ctx_->EncryptVector(keys_->pk, values.subspan(lo, len), rng));
      ctx_->SerializeCiphertext(ct, &writer);
      ++stats->encrypt_ops;
    }
    stats->values_encrypted += values.size();
    EncryptedVector out;
    out.blob = writer.TakeBytes();
    out.count = values.size();
    return out;
  }

  Result<EncryptedVector> SumImpl(
      const std::vector<const EncryptedVector*>& vectors,
      HeOpStats* stats) const {
    VFPS_CHECK_ARG(!vectors.empty(), "CKKS Sum: no inputs");
    const size_t count = vectors[0]->count;
    std::vector<CkksCiphertext> acc;
    VFPS_RETURN_NOT_OK(ParseChunks(*vectors[0], &acc));
    for (size_t i = 1; i < vectors.size(); ++i) {
      if (vectors[i]->count != count) {
        return Status::InvalidArgument("CKKS Sum: count mismatch");
      }
      std::vector<CkksCiphertext> cts;
      VFPS_RETURN_NOT_OK(ParseChunks(*vectors[i], &cts));
      for (size_t c = 0; c < acc.size(); ++c) {
        VFPS_RETURN_NOT_OK(ctx_->AddInPlaceCt(&acc[c], cts[c]));
        ++stats->add_ops;
      }
      stats->values_added += count;
    }
    BinaryWriter writer;
    writer.WriteU32(static_cast<uint32_t>(acc.size()));
    for (const auto& ct : acc) ctx_->SerializeCiphertext(ct, &writer);
    EncryptedVector out;
    out.blob = writer.TakeBytes();
    out.count = count;
    return out;
  }

  Result<std::vector<double>> DecryptImpl(const EncryptedVector& v,
                                          HeOpStats* stats) const {
    std::vector<CkksCiphertext> cts;
    VFPS_RETURN_NOT_OK(ParseChunks(v, &cts));
    std::vector<double> out;
    out.reserve(v.count);
    const size_t slots = chunk_slots_;
    for (size_t c = 0; c < cts.size(); ++c) {
      const size_t want = std::min(slots, v.count - out.size());
      VFPS_ASSIGN_OR_RETURN(auto values,
                            ctx_->DecryptVector(keys_->sk, cts[c], want));
      out.insert(out.end(), values.begin(), values.end());
      ++stats->decrypt_ops;
    }
    stats->values_decrypted += out.size();
    return out;
  }

  Status ParseChunks(const EncryptedVector& v,
                     std::vector<CkksCiphertext>* out) const {
    BinaryReader reader(v.blob);
    VFPS_ASSIGN_OR_RETURN(uint32_t num_chunks, reader.ReadU32());
    out->clear();
    out->reserve(num_chunks);
    for (uint32_t c = 0; c < num_chunks; ++c) {
      VFPS_ASSIGN_OR_RETURN(auto ct, ctx_->DeserializeCiphertext(&reader));
      out->push_back(std::move(ct));
    }
    return Status::OK();
  }

  std::shared_ptr<const CkksContext> ctx_;
  Rng rng_;
  std::shared_ptr<const CkksKeyMaterial> keys_;
  // Values packed per ciphertext: slot_count() (packed) or 1 (scalar mode).
  size_t chunk_slots_;
};

// ---------------------------------------------------------------------------
// Paillier backend: one ciphertext per value, fixed-point encoding.
// ---------------------------------------------------------------------------
class PaillierBackend final : public HeBackend {
 public:
  PaillierBackend(PaillierKeyPair keys, int fractional_bits, uint64_t seed)
      : keys_(std::move(keys)), frac_scale_(std::ldexp(1.0, fractional_bits)),
        rng_(seed) {
    ct_bytes_ = (keys_.pub.n_squared.BitLength() + 7) / 8;
  }

  std::string name() const override { return "paillier"; }

  Result<EncryptedVector> DoEncrypt(std::span<const double> values) override {
    return EncryptImpl(values, &rng_, &stats_);
  }

  Result<EncryptedVector> DoSum(
      const std::vector<const EncryptedVector*>& vectors) override {
    return SumImpl(vectors, &stats_);
  }

  Result<std::vector<double>> DoDecrypt(const EncryptedVector& v) override {
    return DecryptImpl(v, &stats_);
  }

  Result<std::vector<EncryptedVector>> DoEncryptBatch(
      const std::vector<std::vector<double>>& batch) override {
    const size_t n = batch.size();
    std::vector<uint64_t> seeds(n);
    for (size_t i = 0; i < n; ++i) seeds[i] = rng_.Next();
    std::vector<EncryptedVector> out(n);
    std::vector<BatchSlot> slots(n);
    RunIndexed(pool_, n, [&](size_t i) {
      Rng rng(seeds[i]);
      auto enc = EncryptImpl(batch[i], &rng, &slots[i].stats);
      if (enc.ok()) {
        out[i] = enc.MoveValueUnsafe();
      } else {
        slots[i].status = enc.status();
      }
    });
    VFPS_RETURN_NOT_OK(MergeSlots(&slots, &stats_));
    return out;
  }

  Result<std::vector<EncryptedVector>> DoAddBatch(
      const std::vector<std::vector<const EncryptedVector*>>& groups) override {
    const size_t n = groups.size();
    std::vector<EncryptedVector> out(n);
    std::vector<BatchSlot> slots(n);
    RunIndexed(pool_, n, [&](size_t g) {
      auto sum = SumImpl(groups[g], &slots[g].stats);
      if (sum.ok()) {
        out[g] = sum.MoveValueUnsafe();
      } else {
        slots[g].status = sum.status();
      }
    });
    VFPS_RETURN_NOT_OK(MergeSlots(&slots, &stats_));
    return out;
  }

  Result<std::vector<std::vector<double>>> DoDecryptBatch(
      const std::vector<EncryptedVector>& batch) override {
    const size_t n = batch.size();
    std::vector<std::vector<double>> out(n);
    std::vector<BatchSlot> slots(n);
    RunIndexed(pool_, n, [&](size_t i) {
      auto dec = DecryptImpl(batch[i], &slots[i].stats);
      if (dec.ok()) {
        out[i] = dec.MoveValueUnsafe();
      } else {
        slots[i].status = dec.status();
      }
    });
    VFPS_RETURN_NOT_OK(MergeSlots(&slots, &stats_));
    return out;
  }

  Result<std::unique_ptr<HeBackend>> DoFork(uint64_t stream_seed) const override {
    auto fork = std::unique_ptr<PaillierBackend>(
        new PaillierBackend(keys_, frac_scale_, ct_bytes_, stream_seed));
    return std::unique_ptr<HeBackend>(std::move(fork));
  }

  size_t CiphertextBytes(size_t count) const override {
    return sizeof(uint32_t) + count * (sizeof(uint32_t) + ct_bytes_);
  }

  // Paillier has no slot structure: the batch API is served by the loop
  // adapter below, one ciphertext per value.
  size_t SlotsPerCiphertext() const override { return 1; }

 private:
  // Fork constructor: share keys and encoding, own randomness stream.
  PaillierBackend(PaillierKeyPair keys, double frac_scale, size_t ct_bytes,
                  uint64_t stream_seed)
      : keys_(std::move(keys)), frac_scale_(frac_scale), rng_(stream_seed),
        ct_bytes_(ct_bytes) {}

  Result<EncryptedVector> EncryptImpl(std::span<const double> values,
                                      Rng* rng, HeOpStats* stats) const {
    BinaryWriter writer;
    writer.WriteU32(static_cast<uint32_t>(values.size()));
    for (double v : values) {
      const double scaled = v * frac_scale_;
      if (!(std::abs(scaled) < 9.0e18)) {
        return Status::OutOfRange("Paillier: value overflows fixed-point range");
      }
      const int64_t fixed = static_cast<int64_t>(std::llround(scaled));
      const BigInt m = Paillier::EncodeSigned(keys_.pub, fixed);
      VFPS_ASSIGN_OR_RETURN(auto ct, Paillier::Encrypt(keys_.pub, m, rng));
      writer.WriteBytes(PadCiphertext(ct.value));
      ++stats->encrypt_ops;
    }
    stats->values_encrypted += values.size();
    EncryptedVector out;
    out.blob = writer.TakeBytes();
    out.count = values.size();
    return out;
  }

  Result<EncryptedVector> SumImpl(
      const std::vector<const EncryptedVector*>& vectors,
      HeOpStats* stats) const {
    VFPS_CHECK_ARG(!vectors.empty(), "Paillier Sum: no inputs");
    const size_t count = vectors[0]->count;
    std::vector<PaillierCiphertext> acc;
    VFPS_RETURN_NOT_OK(Parse(*vectors[0], &acc));
    for (size_t i = 1; i < vectors.size(); ++i) {
      if (vectors[i]->count != count) {
        return Status::InvalidArgument("Paillier Sum: count mismatch");
      }
      std::vector<PaillierCiphertext> cts;
      VFPS_RETURN_NOT_OK(Parse(*vectors[i], &cts));
      for (size_t j = 0; j < acc.size(); ++j) {
        VFPS_ASSIGN_OR_RETURN(acc[j], Paillier::Add(keys_.pub, acc[j], cts[j]));
        ++stats->add_ops;
      }
      stats->values_added += count;
    }
    BinaryWriter writer;
    writer.WriteU32(static_cast<uint32_t>(acc.size()));
    for (const auto& ct : acc) writer.WriteBytes(PadCiphertext(ct.value));
    EncryptedVector out;
    out.blob = writer.TakeBytes();
    out.count = count;
    return out;
  }

  Result<std::vector<double>> DecryptImpl(const EncryptedVector& v,
                                          HeOpStats* stats) const {
    std::vector<PaillierCiphertext> cts;
    VFPS_RETURN_NOT_OK(Parse(v, &cts));
    std::vector<double> out;
    out.reserve(cts.size());
    for (const auto& ct : cts) {
      VFPS_ASSIGN_OR_RETURN(BigInt m, Paillier::Decrypt(keys_.pub, keys_.priv, ct));
      out.push_back(static_cast<double>(Paillier::DecodeSigned(keys_.pub, m)) /
                    frac_scale_);
      ++stats->decrypt_ops;
    }
    stats->values_decrypted += out.size();
    return out;
  }

  // Fixed-width big-endian encoding so every ciphertext has the same wire
  // size (leaking the magnitude through the length would be a side channel).
  std::vector<uint8_t> PadCiphertext(const BigInt& value) const {
    std::vector<uint8_t> raw = value.ToBytes();
    std::vector<uint8_t> out(ct_bytes_, 0);
    std::copy(raw.begin(), raw.end(), out.end() - raw.size());
    return out;
  }

  Status Parse(const EncryptedVector& v, std::vector<PaillierCiphertext>* out) const {
    BinaryReader reader(v.blob);
    VFPS_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      VFPS_ASSIGN_OR_RETURN(auto bytes, reader.ReadBytes());
      out->push_back(PaillierCiphertext{BigInt::FromBytes(bytes)});
    }
    return Status::OK();
  }

  PaillierKeyPair keys_;
  double frac_scale_;
  Rng rng_;
  size_t ct_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Plain backend: no cryptography; used for debugging and ablations.
// ---------------------------------------------------------------------------
class PlainBackend final : public HeBackend {
 public:
  std::string name() const override { return "plain"; }

  Result<EncryptedVector> DoEncrypt(std::span<const double> values) override {
    BinaryWriter writer;
    writer.WriteDoubleVec(values);
    stats_.encrypt_ops += values.empty() ? 0 : 1;
    stats_.values_encrypted += values.size();
    EncryptedVector out;
    out.blob = writer.TakeBytes();
    out.count = values.size();
    return out;
  }

  Result<EncryptedVector> DoSum(
      const std::vector<const EncryptedVector*>& vectors) override {
    VFPS_CHECK_ARG(!vectors.empty(), "Plain Sum: no inputs");
    std::vector<double> acc;
    {
      BinaryReader reader(vectors[0]->blob);
      VFPS_ASSIGN_OR_RETURN(acc, reader.ReadDoubleVec());
    }
    for (size_t i = 1; i < vectors.size(); ++i) {
      BinaryReader reader(vectors[i]->blob);
      VFPS_ASSIGN_OR_RETURN(auto vals, reader.ReadDoubleVec());
      if (vals.size() != acc.size()) {
        return Status::InvalidArgument("Plain Sum: count mismatch");
      }
      for (size_t j = 0; j < acc.size(); ++j) acc[j] += vals[j];
      ++stats_.add_ops;
      stats_.values_added += acc.size();
    }
    BinaryWriter writer;
    writer.WriteDoubleVec(acc);
    EncryptedVector out;
    out.blob = writer.TakeBytes();
    out.count = acc.size();
    return out;
  }

  Result<std::vector<double>> DoDecrypt(const EncryptedVector& v) override {
    BinaryReader reader(v.blob);
    ++stats_.decrypt_ops;
    stats_.values_decrypted += v.count;
    return reader.ReadDoubleVec();
  }

  Result<std::unique_ptr<HeBackend>> DoFork(uint64_t /*stream_seed*/) const override {
    // No randomness, no keys: a fresh instance is a valid session (the
    // "ciphertexts" are plain serialized doubles, interchangeable across
    // instances).
    return std::unique_ptr<HeBackend>(std::make_unique<PlainBackend>());
  }

  size_t CiphertextBytes(size_t count) const override {
    return sizeof(uint32_t) + count * sizeof(double);
  }

  // A plain "ciphertext" is one serialized vector of any length.
  size_t SlotsPerCiphertext() const override {
    return std::numeric_limits<size_t>::max();
  }
};

}  // namespace

// Default (serial) batch hooks: the cheap backends (plain) and any future
// backend get correct behaviour for free; CKKS/Paillier override with
// internally-parallel versions. They call the Do* hooks — not the public
// wrappers — so metrics are published exactly once, by the batch wrapper.
Result<std::vector<EncryptedVector>> HeBackend::DoEncryptBatch(
    const std::vector<std::vector<double>>& batch) {
  std::vector<EncryptedVector> out;
  out.reserve(batch.size());
  for (const auto& values : batch) {
    VFPS_ASSIGN_OR_RETURN(auto enc, DoEncrypt(values));
    out.push_back(std::move(enc));
  }
  return out;
}

Result<std::vector<EncryptedVector>> HeBackend::DoAddBatch(
    const std::vector<std::vector<const EncryptedVector*>>& groups) {
  std::vector<EncryptedVector> out;
  out.reserve(groups.size());
  for (const auto& group : groups) {
    VFPS_ASSIGN_OR_RETURN(auto sum, DoSum(group));
    out.push_back(std::move(sum));
  }
  return out;
}

Result<std::vector<std::vector<double>>> HeBackend::DoDecryptBatch(
    const std::vector<EncryptedVector>& batch) {
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  for (const auto& v : batch) {
    VFPS_ASSIGN_OR_RETURN(auto dec, DoDecrypt(v));
    out.push_back(std::move(dec));
  }
  return out;
}

// ---------------------------------------------------------------------------
// NVI wrappers: delegate to the Do* hooks, then publish the stats_ delta
// (and output ciphertext bytes) to the attached registry, if any.
// ---------------------------------------------------------------------------

void HeBackend::set_metrics(obs::MetricsRegistry* registry) {
  obs_registry_ = registry;
  if (registry == nullptr) {
    c_encrypt_count_ = c_encrypt_values_ = c_encrypt_bytes_ = nullptr;
    c_decrypt_count_ = c_decrypt_values_ = nullptr;
    c_add_count_ = c_add_values_ = nullptr;
    return;
  }
  // The `.count` counters meter ciphertexts, the `.values` counters meter
  // plaintext slots; their ratio is the realized packing density. With
  // metric labels set (see set_metric_labels) the series carry the label
  // suffix, e.g. `he.encrypt.count{backend=ckks}`.
  const auto get = [&](const char* name) {
    return metric_labels_.empty()
               ? registry->GetCounter(name)
               : registry->GetLabeledCounter(name, metric_labels_);
  };
  c_encrypt_count_ = get("he.encrypt.count");
  c_encrypt_values_ = get("he.encrypt.values");
  c_encrypt_bytes_ = get("he.encrypt.bytes");
  c_decrypt_count_ = get("he.decrypt.count");
  c_decrypt_values_ = get("he.decrypt.values");
  c_add_count_ = get("he.add.count");
  c_add_values_ = get("he.add.values");
}

void HeBackend::PublishDelta(const HeOpStats& before, uint64_t bytes_out) {
  if (uint64_t d = stats_.encrypt_ops - before.encrypt_ops; d != 0) {
    c_encrypt_count_->Add(d);
  }
  if (uint64_t d = stats_.values_encrypted - before.values_encrypted; d != 0) {
    c_encrypt_values_->Add(d);
  }
  if (bytes_out != 0) c_encrypt_bytes_->Add(bytes_out);
  if (uint64_t d = stats_.decrypt_ops - before.decrypt_ops; d != 0) {
    c_decrypt_count_->Add(d);
  }
  if (uint64_t d = stats_.values_decrypted - before.values_decrypted; d != 0) {
    c_decrypt_values_->Add(d);
  }
  if (uint64_t d = stats_.add_ops - before.add_ops; d != 0) {
    c_add_count_->Add(d);
  }
  if (uint64_t d = stats_.values_added - before.values_added; d != 0) {
    c_add_values_->Add(d);
  }
}

Result<EncryptedVector> HeBackend::Encrypt(std::span<const double> values) {
  const HeOpStats before = stats_;
  auto result = DoEncrypt(values);
  if (obs_registry_ != nullptr && result.ok()) {
    PublishDelta(before, result->ByteSize());
  }
  return result;
}

Result<EncryptedVector> HeBackend::Sum(
    const std::vector<const EncryptedVector*>& vectors) {
  const HeOpStats before = stats_;
  auto result = DoSum(vectors);
  if (obs_registry_ != nullptr && result.ok()) PublishDelta(before, 0);
  return result;
}

Result<std::vector<double>> HeBackend::Decrypt(const EncryptedVector& v) {
  const HeOpStats before = stats_;
  auto result = DoDecrypt(v);
  if (obs_registry_ != nullptr && result.ok()) PublishDelta(before, 0);
  return result;
}

Result<std::vector<EncryptedVector>> HeBackend::EncryptBatch(
    const std::vector<std::vector<double>>& batch) {
  const HeOpStats before = stats_;
  auto result = DoEncryptBatch(batch);
  if (obs_registry_ != nullptr && result.ok()) {
    uint64_t bytes = 0;
    for (const auto& v : *result) bytes += v.ByteSize();
    PublishDelta(before, bytes);
  }
  return result;
}

Result<std::vector<EncryptedVector>> HeBackend::AddBatch(
    const std::vector<std::vector<const EncryptedVector*>>& groups) {
  const HeOpStats before = stats_;
  auto result = DoAddBatch(groups);
  if (obs_registry_ != nullptr && result.ok()) PublishDelta(before, 0);
  return result;
}

Result<std::vector<std::vector<double>>> HeBackend::DecryptBatch(
    const std::vector<EncryptedVector>& batch) {
  const HeOpStats before = stats_;
  auto result = DoDecryptBatch(batch);
  if (obs_registry_ != nullptr && result.ok()) PublishDelta(before, 0);
  return result;
}

Result<std::unique_ptr<HeBackend>> HeBackend::Fork(uint64_t stream_seed) const {
  VFPS_ASSIGN_OR_RETURN(auto fork, DoFork(stream_seed));
  fork->set_metric_labels(metric_labels_);
  if (obs_registry_ != nullptr) fork->set_metrics(obs_registry_);
  return fork;
}

Result<std::unique_ptr<HeBackend>> CreateCkksBackend(const CkksParams& params,
                                                     uint64_t seed,
                                                     CkksPacking packing) {
  VFPS_ASSIGN_OR_RETURN(auto ctx, CkksContext::Create(params));
  const size_t chunk_slots =
      packing == CkksPacking::kScalar ? 1 : ctx->slot_count();
  return std::unique_ptr<HeBackend>(
      new CkksBackend(std::move(ctx), seed, chunk_slots));
}

Result<std::unique_ptr<HeBackend>> CreateCkksBackend(const CkksParams& params,
                                                     uint64_t seed) {
  return CreateCkksBackend(params, seed, CkksPacking::kPacked);
}

Result<std::unique_ptr<HeBackend>> CreateCkksBackend(uint64_t seed) {
  return CreateCkksBackend(CkksParams{}, seed);
}

Result<std::unique_ptr<HeBackend>> CreatePaillierBackend(size_t modulus_bits,
                                                         int fractional_bits,
                                                         uint64_t seed) {
  Rng rng(seed);
  VFPS_ASSIGN_OR_RETURN(auto keys, Paillier::GenerateKeys(modulus_bits, &rng));
  return std::unique_ptr<HeBackend>(
      new PaillierBackend(std::move(keys), fractional_bits, seed ^ 0x5EEDF00DULL));
}

std::unique_ptr<HeBackend> CreatePlainBackend() {
  return std::make_unique<PlainBackend>();
}

}  // namespace vfps::he

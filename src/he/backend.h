#ifndef VFPS_HE_BACKEND_H_
#define VFPS_HE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "he/ckks.h"
#include "he/paillier.h"

namespace vfps::he {

/// \brief An encrypted vector of real values, as it travels on the wire.
///
/// `blob` is the serialized ciphertext payload (its size is what the
/// simulated network meters); `count` is the number of plaintext values.
struct EncryptedVector {
  std::vector<uint8_t> blob;
  size_t count = 0;

  size_t ByteSize() const { return blob.size(); }
};

/// \brief Operation counters used by the cost model to convert HE work into
/// simulated seconds.
struct HeOpStats {
  uint64_t encrypt_ops = 0;     // ciphertexts produced
  uint64_t decrypt_ops = 0;     // ciphertexts opened
  uint64_t add_ops = 0;         // homomorphic additions
  uint64_t values_encrypted = 0;  // plaintext scalars encrypted

  void Reset() { *this = HeOpStats{}; }
  void Merge(const HeOpStats& o) {
    encrypt_ops += o.encrypt_ops;
    decrypt_ops += o.decrypt_ops;
    add_ops += o.add_ops;
    values_encrypted += o.values_encrypted;
  }
};

/// \brief Uniform additively-homomorphic backend used by the VFL protocols.
///
/// One backend instance is created by the (simulated) key server and shared
/// by every party; the protocol layer enforces the trust model: only the
/// leader invokes Decrypt, and the aggregation server only invokes Sum.
/// Implementations are single-threaded (protocol simulation is sequential).
class HeBackend {
 public:
  virtual ~HeBackend() = default;

  virtual std::string name() const = 0;

  /// Encrypt a vector of real values (public-key operation).
  virtual Result<EncryptedVector> Encrypt(const std::vector<double>& values) = 0;

  /// Homomorphic elementwise sum; all inputs must have equal count.
  virtual Result<EncryptedVector> Sum(
      const std::vector<const EncryptedVector*>& vectors) = 0;

  /// Decrypt (secret-key operation; leader only).
  virtual Result<std::vector<double>> Decrypt(const EncryptedVector& v) = 0;

  /// Wire size of an encrypted vector holding `count` values.
  virtual size_t CiphertextBytes(size_t count) const = 0;

  const HeOpStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  HeOpStats stats_;
};

/// CKKS-based backend (what the paper uses via TenSEAL).
Result<std::unique_ptr<HeBackend>> CreateCkksBackend(const CkksParams& params,
                                                     uint64_t seed);
Result<std::unique_ptr<HeBackend>> CreateCkksBackend(uint64_t seed);

/// Paillier-based backend; values are fixed-point encoded with
/// `fractional_bits` bits after the binary point.
Result<std::unique_ptr<HeBackend>> CreatePaillierBackend(size_t modulus_bits,
                                                         int fractional_bits,
                                                         uint64_t seed);

/// Pass-through backend (no cryptography) for debugging and cost ablations.
std::unique_ptr<HeBackend> CreatePlainBackend();

}  // namespace vfps::he

#endif  // VFPS_HE_BACKEND_H_

#ifndef VFPS_HE_BACKEND_H_
#define VFPS_HE_BACKEND_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "he/ckks.h"
#include "he/paillier.h"

namespace vfps::obs {
class Counter;
class MetricsRegistry;
}  // namespace vfps::obs

namespace vfps::he {

/// \brief An encrypted vector of real values, as it travels on the wire.
///
/// `blob` is the serialized ciphertext payload (its size is what the
/// simulated network meters); `count` is the number of plaintext values.
struct EncryptedVector {
  std::vector<uint8_t> blob;
  size_t count = 0;

  size_t ByteSize() const { return blob.size(); }
};

/// \brief Operation counters used by the cost model to convert HE work into
/// simulated seconds.
///
/// Ciphertext operations (`*_ops`) and plaintext slots (`values_*`) are
/// counted separately: for a packing backend (CKKS) one encrypt_op carries up
/// to SlotsPerCiphertext() values, so `values_encrypted / encrypt_ops` is the
/// realized packing density — the number the slot-batching optimization
/// moves. For a scalar backend (Paillier) the two columns track 1:1.
struct HeOpStats {
  uint64_t encrypt_ops = 0;       // ciphertexts produced
  uint64_t decrypt_ops = 0;       // ciphertexts opened
  uint64_t add_ops = 0;           // ciphertext-level homomorphic additions
  uint64_t values_encrypted = 0;  // plaintext scalars encrypted (slots)
  uint64_t values_decrypted = 0;  // plaintext scalars recovered (slots)
  uint64_t values_added = 0;      // slot-wise additions performed

  void Reset() { *this = HeOpStats{}; }
  void Merge(const HeOpStats& o) {
    encrypt_ops += o.encrypt_ops;
    decrypt_ops += o.decrypt_ops;
    add_ops += o.add_ops;
    values_encrypted += o.values_encrypted;
    values_decrypted += o.values_decrypted;
    values_added += o.values_added;
  }
};

/// \brief Uniform additively-homomorphic backend used by the VFL protocols.
///
/// One backend instance is created by the (simulated) key server and shared
/// by every party; the protocol layer enforces the trust model: only the
/// leader invokes Decrypt, and the aggregation server only invokes Sum.
///
/// The public operations are non-virtual (NVI): they delegate to the
/// protected Do* hooks and, when a MetricsRegistry is attached with
/// set_metrics(), publish the op/byte deltas as `he.*` counters. With no
/// registry attached (the default) the bookkeeping is a single null-pointer
/// branch per call.
///
/// Thread-safety contract:
///  - A single HeBackend instance is NOT safe for concurrent calls: Encrypt
///    consumes the internal randomness stream and every operation mutates the
///    stats() counters. Callers that parallelize *across* protocol rounds
///    must give each thread its own session via Fork() and fold the sessions'
///    counters back with AbsorbStats() (see FederatedKnnOracle::Run).
///  - The *Batch operations parallelize internally (over items) when a
///    ThreadPool is attached with set_thread_pool(); their results and stats
///    are bit-identical with and without a pool, at any thread count, because
///    per-item randomness is derived serially before fanning out.
///  - Fork() sessions share the (immutable) key material, so ciphertexts
///    produced by one session decrypt under any other; forks do NOT inherit
///    the thread pool (they are meant to be thread-confined). Forks DO
///    inherit the metrics registry: its counters are striped and safe for
///    concurrent sessions, and the shard-merge is order-independent, so
///    totals stay thread-count-invariant.
class HeBackend {
 public:
  virtual ~HeBackend() = default;

  virtual std::string name() const = 0;

  /// \brief Encrypt a vector of real values (public-key operation).
  ///
  /// This is the batched entry point of the API: the backend packs as many
  /// values as it can into each ciphertext (CKKS: SlotsPerCiphertext() slots
  /// per ciphertext, chunked when `values.size()` exceeds it, with the ragged
  /// tail of the last chunk zero-masked; Paillier/plain degenerate to one
  /// value per ciphertext / one blob). Accepts any contiguous double range —
  /// callers batching many logical vectors can encrypt one concatenated span
  /// without copying.
  Result<EncryptedVector> Encrypt(std::span<const double> values);

  /// Brace-list convenience for tests and examples: Encrypt({1.0, 2.0}).
  Result<EncryptedVector> Encrypt(std::initializer_list<double> values) {
    return Encrypt(std::span<const double>(values.begin(), values.size()));
  }

  /// \brief Homomorphic slot-wise sum; all inputs must have equal count.
  ///
  /// Cost is per *ciphertext chunk*, not per value: summing P packed vectors
  /// of `count` values performs (P-1) * ceil(count / SlotsPerCiphertext())
  /// ciphertext additions (see HeOpStats::add_ops vs values_added).
  Result<EncryptedVector> Sum(
      const std::vector<const EncryptedVector*>& vectors);

  /// \brief Decrypt a packed vector (secret-key operation; leader only).
  /// One ciphertext opening per chunk; returns exactly `v.count` values (the
  /// zero-masked tail slots of the final chunk are discarded).
  Result<std::vector<double>> Decrypt(const EncryptedVector& v);

  /// \brief Encrypt many vectors at once — out[i] = Enc(batch[i]).
  ///
  /// Parallelized over the batch when a thread pool is attached. Per-item
  /// encryption randomness is pre-derived from the backend's stream in batch
  /// order, so the ciphertexts (and therefore CKKS decryption noise) do not
  /// depend on the thread count. Note the randomness *schedule* differs from
  /// looping Encrypt(): EncryptBatch({v}) != Encrypt(v) ciphertext-wise, but
  /// both decrypt to the same values. Complexity: one Encrypt per item,
  /// wall-clock ~ max item cost when parallel.
  Result<std::vector<EncryptedVector>> EncryptBatch(
      const std::vector<std::vector<double>>& batch);

  /// \brief Homomorphically sum each group — out[g] = Sum(groups[g]).
  /// Parallelized over groups when a thread pool is attached.
  Result<std::vector<EncryptedVector>> AddBatch(
      const std::vector<std::vector<const EncryptedVector*>>& groups);

  /// \brief Decrypt many vectors at once — out[i] = Dec(batch[i]).
  /// Parallelized over the batch when a thread pool is attached.
  Result<std::vector<std::vector<double>>> DecryptBatch(
      const std::vector<EncryptedVector>& batch);

  /// \brief Create an independent session sharing this backend's keys.
  ///
  /// The fork has its own randomness stream (seeded from `stream_seed`) and
  /// its own zeroed stats() counters, so it can run on another thread without
  /// synchronization. Deterministic: the same (keys, stream_seed) pair always
  /// produces the same ciphertext stream. The fork inherits this backend's
  /// metrics registry (see class comment).
  Result<std::unique_ptr<HeBackend>> Fork(uint64_t stream_seed) const;

  /// Wire size of an encrypted vector holding `count` values.
  virtual size_t CiphertextBytes(size_t count) const = 0;

  /// \brief Plaintext values one ciphertext of this backend carries.
  ///
  /// CKKS: the encoder's slot count (n/2), or 1 in scalar packing mode;
  /// Paillier: 1 (inherently scalar — the loop adapter packs nothing);
  /// plain: SIZE_MAX (a "ciphertext" is the whole serialized vector).
  /// Protocol layers use this to size slot-aligned batches (e.g. how many
  /// queries' distance vectors fit one ciphertext group).
  virtual size_t SlotsPerCiphertext() const = 0;

  /// Attach (or detach, with nullptr) the pool the *Batch operations use.
  /// Not thread-safe; set it before sharing the backend. Not inherited by
  /// Fork() sessions.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Attach (or detach, with nullptr) a metrics registry. Counter handles
  /// are cached here, so the per-operation cost is a null check plus relaxed
  /// atomic adds. Not thread-safe; set it before sharing the backend.
  /// Inherited by Fork() sessions.
  void set_metrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() const { return obs_registry_; }

  /// Label set applied to the `he.*` counter series resolved by the *next*
  /// set_metrics() call (e.g. {{"backend", "ckks"}} yields
  /// `he.encrypt.count{backend=ckks}`). Empty (the default) keeps the
  /// classic unlabeled names, which the HE unit/fuzz tests pin down. Set it
  /// before set_metrics; inherited by Fork() sessions, so forked recording
  /// stays attributed to the same backend dimension.
  void set_metric_labels(
      std::vector<std::pair<std::string, std::string>> labels) {
    metric_labels_ = std::move(labels);
  }

  const HeOpStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Fold a forked session's counters into this backend's stats(). Does NOT
  /// touch the metrics registry: forks record there live (at op time), so
  /// re-publishing absorbed counters would double-count.
  void AbsorbStats(const HeOpStats& session_stats) {
    stats_.Merge(session_stats);
  }

 protected:
  /// Implementation hooks; the public wrappers above add metrics recording.
  /// Each hook updates stats_ itself (the wrapper publishes the delta).
  virtual Result<EncryptedVector> DoEncrypt(
      std::span<const double> values) = 0;
  virtual Result<EncryptedVector> DoSum(
      const std::vector<const EncryptedVector*>& vectors) = 0;
  virtual Result<std::vector<double>> DoDecrypt(const EncryptedVector& v) = 0;
  /// Default batch hooks loop the scalar hooks (NOT the public wrappers, so
  /// metrics are recorded exactly once, in the public batch wrapper).
  virtual Result<std::vector<EncryptedVector>> DoEncryptBatch(
      const std::vector<std::vector<double>>& batch);
  virtual Result<std::vector<EncryptedVector>> DoAddBatch(
      const std::vector<std::vector<const EncryptedVector*>>& groups);
  virtual Result<std::vector<std::vector<double>>> DoDecryptBatch(
      const std::vector<EncryptedVector>& batch);
  virtual Result<std::unique_ptr<HeBackend>> DoFork(
      uint64_t stream_seed) const = 0;

  HeOpStats stats_;
  ThreadPool* pool_ = nullptr;

 private:
  /// Publish stats_ minus `before` (plus `bytes_out` ciphertext bytes) to the
  /// cached counter handles. Caller checks obs_registry_ first.
  void PublishDelta(const HeOpStats& before, uint64_t bytes_out);

  obs::MetricsRegistry* obs_registry_ = nullptr;
  std::vector<std::pair<std::string, std::string>> metric_labels_;
  obs::Counter* c_encrypt_count_ = nullptr;
  obs::Counter* c_encrypt_values_ = nullptr;
  obs::Counter* c_encrypt_bytes_ = nullptr;
  obs::Counter* c_decrypt_count_ = nullptr;
  obs::Counter* c_decrypt_values_ = nullptr;
  obs::Counter* c_add_count_ = nullptr;
  obs::Counter* c_add_values_ = nullptr;
};

/// \brief How the CKKS backend maps values to ciphertext slots.
///
/// kPacked is the production mode: SlotsPerCiphertext() = n/2 values per
/// ciphertext. kScalar forces one value per ciphertext — the layout the
/// scalar-era protocol (and every non-packing scheme) pays — and exists for
/// ablations and the batched-vs-scalar differential tests; both modes
/// decrypt to the same values within CKKS tolerance.
enum class CkksPacking { kPacked, kScalar };

/// CKKS-based backend (what the paper uses via TenSEAL).
Result<std::unique_ptr<HeBackend>> CreateCkksBackend(const CkksParams& params,
                                                     uint64_t seed,
                                                     CkksPacking packing);
Result<std::unique_ptr<HeBackend>> CreateCkksBackend(const CkksParams& params,
                                                     uint64_t seed);
Result<std::unique_ptr<HeBackend>> CreateCkksBackend(uint64_t seed);

/// Paillier-based backend; values are fixed-point encoded with
/// `fractional_bits` bits after the binary point.
Result<std::unique_ptr<HeBackend>> CreatePaillierBackend(size_t modulus_bits,
                                                         int fractional_bits,
                                                         uint64_t seed);

/// Pass-through backend (no cryptography) for debugging and cost ablations.
std::unique_ptr<HeBackend> CreatePlainBackend();

}  // namespace vfps::he

#endif  // VFPS_HE_BACKEND_H_

#include "he/paillier.h"

#include "common/macros.h"

namespace vfps::he {

Result<PaillierKeyPair> Paillier::GenerateKeys(size_t modulus_bits, Rng* rng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier: modulus must be >= 64 bits");
  }
  const size_t half = modulus_bits / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    VFPS_ASSIGN_OR_RETURN(BigInt p, BigInt::GeneratePrime(half, rng));
    VFPS_ASSIGN_OR_RETURN(BigInt q, BigInt::GeneratePrime(modulus_bits - half, rng));
    if (p == q) continue;
    const BigInt n = p * q;
    const BigInt one(1);
    const BigInt p1 = p - one;
    const BigInt q1 = q - one;
    // lambda = lcm(p-1, q-1) = (p-1)(q-1) / gcd(p-1, q-1)
    const BigInt g = BigInt::Gcd(p1, q1);
    VFPS_ASSIGN_OR_RETURN(auto qr, BigInt::DivMod(p1 * q1, g));
    const BigInt lambda = qr.first;
    auto mu_result = BigInt::ModInverse(lambda, n);
    if (!mu_result.ok()) continue;  // pathological; re-draw primes
    PaillierKeyPair keys;
    keys.pub.n = n;
    keys.pub.n_squared = n * n;
    keys.priv.lambda = lambda;
    keys.priv.mu = mu_result.MoveValueUnsafe();
    return keys;
  }
  return Status::Internal("Paillier: key generation failed repeatedly");
}

Result<PaillierCiphertext> Paillier::Encrypt(const PaillierPublicKey& pk,
                                             const BigInt& m, Rng* rng) {
  if (m >= pk.n) {
    return Status::InvalidArgument("Paillier: plaintext out of range");
  }
  // r uniform in [1, n) with gcd(r, n) = 1 (overwhelmingly likely).
  BigInt r;
  do {
    r = BigInt::RandomBelow(pk.n, rng);
  } while (r.IsZero() || BigInt::Gcd(r, pk.n) != BigInt(1));
  // g = n+1 shortcut: g^m = 1 + m*n (mod n^2).
  VFPS_ASSIGN_OR_RETURN(BigInt gm, BigInt::Mod(BigInt(1) + m * pk.n, pk.n_squared));
  VFPS_ASSIGN_OR_RETURN(BigInt rn, BigInt::PowMod(r, pk.n, pk.n_squared));
  VFPS_ASSIGN_OR_RETURN(BigInt c, BigInt::MulMod(gm, rn, pk.n_squared));
  return PaillierCiphertext{std::move(c)};
}

Result<BigInt> Paillier::Decrypt(const PaillierPublicKey& pk,
                                 const PaillierPrivateKey& sk,
                                 const PaillierCiphertext& c) {
  VFPS_ASSIGN_OR_RETURN(BigInt u,
                        BigInt::PowMod(c.value, sk.lambda, pk.n_squared));
  if (u.IsZero()) return Status::CryptoError("Paillier: invalid ciphertext");
  // L(u) = (u - 1) / n
  VFPS_ASSIGN_OR_RETURN(auto qr, BigInt::DivMod(u - BigInt(1), pk.n));
  VFPS_ASSIGN_OR_RETURN(BigInt m, BigInt::MulMod(qr.first, sk.mu, pk.n));
  return m;
}

Result<PaillierCiphertext> Paillier::Add(const PaillierPublicKey& pk,
                                         const PaillierCiphertext& a,
                                         const PaillierCiphertext& b) {
  VFPS_ASSIGN_OR_RETURN(BigInt c, BigInt::MulMod(a.value, b.value, pk.n_squared));
  return PaillierCiphertext{std::move(c)};
}

Result<PaillierCiphertext> Paillier::MulScalar(const PaillierPublicKey& pk,
                                               const PaillierCiphertext& a,
                                               const BigInt& k) {
  VFPS_ASSIGN_OR_RETURN(BigInt c, BigInt::PowMod(a.value, k, pk.n_squared));
  return PaillierCiphertext{std::move(c)};
}

BigInt Paillier::EncodeSigned(const PaillierPublicKey& pk, int64_t v) {
  if (v >= 0) return BigInt(static_cast<uint64_t>(v));
  return pk.n - BigInt(static_cast<uint64_t>(-v));
}

int64_t Paillier::DecodeSigned(const PaillierPublicKey& pk, const BigInt& m) {
  const BigInt half = pk.n >> 1;
  if (m > half) {
    const BigInt neg = pk.n - m;
    return -static_cast<int64_t>(neg.ToU64());
  }
  return static_cast<int64_t>(m.ToU64());
}

}  // namespace vfps::he

#ifndef VFPS_HE_POLY_SIMD_H_
#define VFPS_HE_POLY_SIMD_H_

/// \file
/// \brief Dispatched residue-vector kernels behind the RnsPoly operations
/// and the CKKS rescale inner loop.
///
/// Every operation comes in two spellings: `XxxVec` runs the widest backend
/// simd::ActiveIsa() allows (scalar, AVX2, or AVX-512), and `XxxScalar` is
/// the always-built portable reference. All backends are exact unsigned
/// integer arithmetic in the same operation order, so Vec and Scalar are
/// bit-identical for every input — the property tests/test_simd_differential
/// fuzzes. Preconditions follow the scalar originals in modarith.h: moduli
/// q < 2^62, fully reduced inputs in [0, q) unless a lazy range is called
/// out explicitly.

#include <cstddef>
#include <cstdint>

#include "he/modarith.h"

namespace vfps::he::detail {

/// a[i] = (a[i] + b[i]) mod q, inputs in [0, q).
void AddModVec(uint64_t* a, const uint64_t* b, size_t n, uint64_t q);
/// Scalar reference for AddModVec.
void AddModScalar(uint64_t* a, const uint64_t* b, size_t n, uint64_t q);

/// a[i] = (a[i] - b[i]) mod q, inputs in [0, q).
void SubModVec(uint64_t* a, const uint64_t* b, size_t n, uint64_t q);
/// Scalar reference for SubModVec.
void SubModScalar(uint64_t* a, const uint64_t* b, size_t n, uint64_t q);

/// a[i] = (q - a[i]) mod q (zero stays zero), inputs in [0, q).
void NegateModVec(uint64_t* a, size_t n, uint64_t q);
/// Scalar reference for NegateModVec.
void NegateModScalar(uint64_t* a, size_t n, uint64_t q);

/// a[i] = a[i] * b[i] mod q via the full 128-bit Barrett reduction. Valid
/// for any 64-bit inputs (the pointwise product path feeds reduced residues).
void MulModBarrettVec(uint64_t* a, const uint64_t* b, size_t n,
                      const Modulus& m);
/// Scalar reference for MulModBarrettVec.
void MulModBarrettScalar(uint64_t* a, const uint64_t* b, size_t n,
                         const Modulus& m);

/// a[i] = a[i] * w mod q with the precomputed Shoup quotient for w < q;
/// valid for any a[i] < 2^64 (lazy inputs included), outputs in [0, q).
void MulModShoupVec(uint64_t* a, size_t n, uint64_t w, uint64_t w_shoup,
                    uint64_t q);
/// Scalar reference for MulModShoupVec.
void MulModShoupScalar(uint64_t* a, size_t n, uint64_t w, uint64_t w_shoup,
                       uint64_t q);

/// \brief One retained-prime round of the CKKS rescale: for each coefficient
/// c, center the dropped residue last[c] (of the dropped prime q_last),
/// reduce it into q, subtract it from src[c], and multiply by
/// (q_last mod q)^{-1}:
///
///   r_mod_q = last[c] > q_last/2 ? -Barrett(q_last - last[c]) mod q
///                                :  Barrett(last[c]) mod q
///   dst[c]  = (src[c] - r_mod_q) * q_last_inv mod q
///
/// src holds residues of the retained prime q (in [0, q)); dst may not alias
/// src or last. q_last_inv/q_last_inv_shoup come precomputed from
/// RnsContext (`rescale_q_last_inv`).
void RescaleRoundVec(uint64_t* dst, const uint64_t* src, const uint64_t* last,
                     size_t n, uint64_t q_last, const Modulus& m,
                     uint64_t q_last_inv, uint64_t q_last_inv_shoup);
/// Scalar reference for RescaleRoundVec.
void RescaleRoundScalar(uint64_t* dst, const uint64_t* src,
                        const uint64_t* last, size_t n, uint64_t q_last,
                        const Modulus& m, uint64_t q_last_inv,
                        uint64_t q_last_inv_shoup);

}  // namespace vfps::he::detail

#endif  // VFPS_HE_POLY_SIMD_H_

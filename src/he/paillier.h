#ifndef VFPS_HE_PAILLIER_H_
#define VFPS_HE_PAILLIER_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "he/bignum.h"

namespace vfps::he {

/// Paillier public key (n, n^2); the generator is fixed to g = n + 1.
struct PaillierPublicKey {
  BigInt n;
  BigInt n_squared;
};

/// Paillier private key: lambda = lcm(p-1, q-1) and mu = lambda^{-1} mod n.
struct PaillierPrivateKey {
  BigInt lambda;
  BigInt mu;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// A Paillier ciphertext is an element of Z_{n^2}^*.
struct PaillierCiphertext {
  BigInt value;
};

/// \brief Textbook Paillier cryptosystem (additively homomorphic).
///
/// Used as the classic VFL alternative to CKKS (Hardy et al. style); the
/// selection protocol only needs Enc / Dec / homomorphic Add, all of which
/// are exact over Z_n. Real values are handled by fixed-point encoding at the
/// backend layer (see backend.h).
class Paillier {
 public:
  /// \param modulus_bits bit length of n = p*q (e.g. 1024; tests use less).
  static Result<PaillierKeyPair> GenerateKeys(size_t modulus_bits, Rng* rng);

  /// Encrypt m in [0, n).  c = (1 + m*n) * r^n mod n^2.
  static Result<PaillierCiphertext> Encrypt(const PaillierPublicKey& pk,
                                            const BigInt& m, Rng* rng);

  /// Decrypt: m = L(c^lambda mod n^2) * mu mod n, with L(u) = (u-1)/n.
  static Result<BigInt> Decrypt(const PaillierPublicKey& pk,
                                const PaillierPrivateKey& sk,
                                const PaillierCiphertext& c);

  /// Homomorphic addition: Enc(a) (*) Enc(b) = Enc(a + b mod n).
  static Result<PaillierCiphertext> Add(const PaillierPublicKey& pk,
                                        const PaillierCiphertext& a,
                                        const PaillierCiphertext& b);

  /// Homomorphic plaintext multiply: Enc(a)^k = Enc(a * k mod n).
  static Result<PaillierCiphertext> MulScalar(const PaillierPublicKey& pk,
                                              const PaillierCiphertext& a,
                                              const BigInt& k);

  /// Map a signed 64-bit integer into Z_n (negatives wrap to n - |v|).
  static BigInt EncodeSigned(const PaillierPublicKey& pk, int64_t v);

  /// Inverse of EncodeSigned; values above n/2 are interpreted as negative.
  static int64_t DecodeSigned(const PaillierPublicKey& pk, const BigInt& m);
};

}  // namespace vfps::he

#endif  // VFPS_HE_PAILLIER_H_

#ifndef VFPS_HE_BIGNUM_H_
#define VFPS_HE_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace vfps::he {

/// \brief Arbitrary-precision unsigned integer.
///
/// Little-endian 32-bit limbs, always normalized (no leading zero limbs; zero
/// is the empty limb vector). Implements exactly what the Paillier
/// cryptosystem needs: schoolbook multiplication, Knuth Algorithm D division,
/// binary modular exponentiation, extended-Euclid inverses, and Miller-Rabin
/// prime generation. Not constant-time; this is a research reproduction, not
/// a hardened crypto library.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(uint64_t v);

  static BigInt Zero() { return BigInt(); }
  static BigInt One() { return BigInt(1); }

  /// Big-endian byte import/export (canonical wire format).
  static BigInt FromBytes(const std::vector<uint8_t>& bytes);
  std::vector<uint8_t> ToBytes() const;

  /// Lowercase hex (for debugging / tests), "0" for zero.
  std::string ToHexString() const;
  static Result<BigInt> FromHexString(const std::string& hex);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool GetBit(size_t i) const;

  /// Value of the low 64 bits.
  uint64_t ToU64() const;

  // Comparisons.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  /// Requires *this >= o (unsigned subtraction).
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  /// Quotient and remainder; fails on division by zero.
  static Result<std::pair<BigInt, BigInt>> DivMod(const BigInt& a,
                                                  const BigInt& b);
  static Result<BigInt> Mod(const BigInt& a, const BigInt& m);

  /// (a + b) mod m, (a * b) mod m.
  static Result<BigInt> AddMod(const BigInt& a, const BigInt& b, const BigInt& m);
  static Result<BigInt> MulMod(const BigInt& a, const BigInt& b, const BigInt& m);

  /// base^exp mod m by square-and-multiply.
  static Result<BigInt> PowMod(const BigInt& base, const BigInt& exp,
                               const BigInt& m);

  static BigInt Gcd(BigInt a, BigInt b);

  /// a^{-1} mod m; NotFound if gcd(a, m) != 1.
  static Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

  /// Uniform random integer with exactly `bits` bits (top bit set).
  static BigInt RandomWithBits(size_t bits, Rng* rng);
  /// Uniform random integer in [0, bound).
  static BigInt RandomBelow(const BigInt& bound, Rng* rng);

  /// Miller-Rabin with `rounds` random bases.
  static bool ProbablyPrime(const BigInt& n, int rounds, Rng* rng);
  /// Random prime with exactly `bits` bits.
  static Result<BigInt> GeneratePrime(size_t bits, Rng* rng);

 private:
  void Normalize();
  static BigInt FromLimbs(std::vector<uint32_t> limbs);

  std::vector<uint32_t> limbs_;
};

}  // namespace vfps::he

#endif  // VFPS_HE_BIGNUM_H_

#include "common/macros.h"
#include "he/ntt.h"

#include "common/string_util.h"
#include "he/modarith.h"

namespace vfps::he {

namespace {
int Log2Exact(size_t n) {
  int log = 0;
  while ((size_t{1} << log) < n) ++log;
  return (size_t{1} << log) == n ? log : -1;
}

size_t ReverseBits(size_t x, int bits) {
  size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}
}  // namespace

Result<NttTables> NttTables::Create(size_t n, uint64_t q) {
  NttTables t;
  const int log_n = Log2Exact(n);
  if (log_n < 0) {
    return Status::InvalidArgument("NttTables: n must be a power of two");
  }
  if ((q - 1) % (2 * n) != 0) {
    return Status::InvalidArgument(
        StrFormat("NttTables: q = %llu is not NTT-friendly for n = %zu",
                  static_cast<unsigned long long>(q), n));
  }
  t.n_ = n;
  t.log_n_ = log_n;
  t.q_ = q;
  VFPS_ASSIGN_OR_RETURN(t.psi_, FindPrimitiveRoot(2 * n, q));
  t.n_inv_ = InvMod(static_cast<uint64_t>(n), q);

  const uint64_t psi_inv = InvMod(t.psi_, q);
  t.root_powers_.resize(n);
  t.inv_root_powers_.resize(n);
  uint64_t power = 1;
  std::vector<uint64_t> powers(n), inv_powers(n);
  for (size_t i = 0; i < n; ++i) {
    powers[i] = power;
    power = MulMod(power, t.psi_, q);
  }
  power = 1;
  for (size_t i = 0; i < n; ++i) {
    inv_powers[i] = power;
    power = MulMod(power, psi_inv, q);
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t rev = ReverseBits(i, log_n);
    t.root_powers_[i] = powers[rev];
    t.inv_root_powers_[i] = inv_powers[rev];
  }
  return t;
}

void NttTables::Forward(uint64_t* a) const {
  // Cooley-Tukey butterflies with the psi powers folded in, so the result is
  // the negacyclic (X^n + 1) transform rather than the cyclic one.
  const uint64_t q = q_;
  size_t t = n_;
  for (size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (size_t i = 0; i < m; ++i) {
      const size_t j1 = 2 * i * t;
      const size_t j2 = j1 + t;
      const uint64_t w = root_powers_[m + i];
      for (size_t j = j1; j < j2; ++j) {
        const uint64_t u = a[j];
        const uint64_t v = MulMod(a[j + t], w, q);
        a[j] = AddMod(u, v, q);
        a[j + t] = SubMod(u, v, q);
      }
    }
  }
}

void NttTables::Inverse(uint64_t* a) const {
  // Gentleman-Sande butterflies; the final pass multiplies by n^{-1}.
  const uint64_t q = q_;
  size_t t = 1;
  for (size_t m = n_; m > 1; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    for (size_t i = 0; i < h; ++i) {
      const size_t j2 = j1 + t;
      const uint64_t w = inv_root_powers_[h + i];
      for (size_t j = j1; j < j2; ++j) {
        const uint64_t u = a[j];
        const uint64_t v = a[j + t];
        a[j] = AddMod(u, v, q);
        a[j + t] = MulMod(SubMod(u, v, q), w, q);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (size_t i = 0; i < n_; ++i) a[i] = MulMod(a[i], n_inv_, q);
}

}  // namespace vfps::he

#include "common/macros.h"
#include "he/ntt.h"

#include "common/string_util.h"
#include "he/modarith.h"
#include "simd/simd.h"

namespace vfps::he {

namespace {
int Log2Exact(size_t n) {
  int log = 0;
  while ((size_t{1} << log) < n) ++log;
  return (size_t{1} << log) == n ? log : -1;
}
}  // namespace

Result<NttTables> NttTables::Create(size_t n, uint64_t q) {
  NttTables t;
  const int log_n = Log2Exact(n);
  if (log_n < 0) {
    return Status::InvalidArgument("NttTables: n must be a power of two");
  }
  if ((q - 1) % (2 * n) != 0) {
    return Status::InvalidArgument(
        StrFormat("NttTables: q = %llu is not NTT-friendly for n = %zu",
                  static_cast<unsigned long long>(q), n));
  }
  if (q >= (uint64_t{1} << 62)) {
    // The lazy butterflies keep values in [0, 4q); 4q must fit in 64 bits.
    return Status::InvalidArgument(
        StrFormat("NttTables: q = %llu must be < 2^62",
                  static_cast<unsigned long long>(q)));
  }
  t.n_ = n;
  t.log_n_ = log_n;
  t.q_ = q;
  t.modulus_ = Modulus(q);
  VFPS_ASSIGN_OR_RETURN(t.psi_, FindPrimitiveRoot(2 * n, q));
  t.n_inv_ = InvMod(static_cast<uint64_t>(n), q);
  t.n_inv_shoup_ = ShoupPrecompute(t.n_inv_, q);

  // Bit-reversal permutation, built incrementally: rev(i) follows from
  // rev(i >> 1) by shifting right and injecting i's low bit at the top.
  t.bit_rev_.resize(n);
  t.bit_rev_[0] = 0;
  for (size_t i = 1; i < n; ++i) {
    t.bit_rev_[i] =
        (t.bit_rev_[i >> 1] >> 1) | ((i & 1) << (log_n - 1));
  }

  const uint64_t psi_inv = InvMod(t.psi_, q);
  t.root_powers_.resize(n);
  t.root_powers_shoup_.resize(n);
  t.inv_root_powers_.resize(n);
  t.inv_root_powers_shoup_.resize(n);
  uint64_t power = 1;
  std::vector<uint64_t> powers(n), inv_powers(n);
  for (size_t i = 0; i < n; ++i) {
    powers[i] = power;
    power = MulMod(power, t.psi_, q);
  }
  power = 1;
  for (size_t i = 0; i < n; ++i) {
    inv_powers[i] = power;
    power = MulMod(power, psi_inv, q);
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t rev = t.bit_rev_[i];
    t.root_powers_[i] = powers[rev];
    t.root_powers_shoup_[i] = ShoupPrecompute(powers[rev], q);
    t.inv_root_powers_[i] = inv_powers[rev];
    t.inv_root_powers_shoup_[i] = ShoupPrecompute(inv_powers[rev], q);
  }
  return t;
}

void NttTables::Forward(uint64_t* a) const {
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      ForwardAvx512(a);
      return;
    case simd::Isa::kAvx2:
      ForwardAvx2(a);
      return;
    case simd::Isa::kScalar:
      break;
  }
  ForwardScalar(a);
}

void NttTables::Inverse(uint64_t* a) const {
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      InverseAvx512(a);
      return;
    case simd::Isa::kAvx2:
      InverseAvx2(a);
      return;
    case simd::Isa::kScalar:
      break;
  }
  InverseScalar(a);
}

void NttTables::ForwardScalar(uint64_t* a) const {
  // Cooley-Tukey butterflies with the psi powers folded in, so the result is
  // the negacyclic (X^n + 1) transform rather than the cyclic one.
  //
  // Harvey-style lazy reduction: between stages values live in [0, 4q)
  // rather than [0, q). Each butterfly conditionally reduces u to [0, 2q),
  // computes v = a[j+t] * w mod q lazily in [0, 2q) via the Shoup constant
  // (valid for any a[j+t] < 2^64, so the [0, 4q) input needs no reduction),
  // and writes u + v and u + 2q - v, both < 4q. q < 2^62 guarantees no
  // overflow. The final pass fully reduces, so outputs are bit-identical to
  // the exact per-butterfly implementation.
  const uint64_t q = q_;
  const uint64_t two_q = 2 * q;
  size_t t = n_;
  for (size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (size_t i = 0; i < m; ++i) {
      const size_t j1 = 2 * i * t;
      const size_t j2 = j1 + t;
      const uint64_t w = root_powers_[m + i];
      const uint64_t ws = root_powers_shoup_[m + i];
      for (size_t j = j1; j < j2; ++j) {
        uint64_t u = a[j];
        if (u >= two_q) u -= two_q;
        const uint64_t v = MulModShoupLazy(a[j + t], w, ws, q);
        a[j] = u + v;
        a[j + t] = u + two_q - v;
      }
    }
  }
  for (size_t i = 0; i < n_; ++i) {
    uint64_t v = a[i];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    a[i] = v;
  }
}

void NttTables::InverseScalar(uint64_t* a) const {
  // Gentleman-Sande butterflies, lazy in [0, 2q): the sum u + v < 4q is
  // conditionally reduced back below 2q, and the difference path feeds
  // u + 2q - v (< 4q < 2^64) straight into the lazy Shoup multiply. The
  // final pass multiplies by n^{-1} with full reduction to [0, q).
  const uint64_t q = q_;
  const uint64_t two_q = 2 * q;
  size_t t = 1;
  for (size_t m = n_; m > 1; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    for (size_t i = 0; i < h; ++i) {
      const size_t j2 = j1 + t;
      const uint64_t w = inv_root_powers_[h + i];
      const uint64_t ws = inv_root_powers_shoup_[h + i];
      for (size_t j = j1; j < j2; ++j) {
        const uint64_t u = a[j];
        const uint64_t v = a[j + t];
        uint64_t s = u + v;
        if (s >= two_q) s -= two_q;
        a[j] = s;
        a[j + t] = MulModShoupLazy(u + two_q - v, w, ws, q);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (size_t i = 0; i < n_; ++i) {
    a[i] = MulModShoup(a[i], n_inv_, n_inv_shoup_, q);
  }
}

}  // namespace vfps::he

// Dispatched residue-vector kernels (see poly_simd.h for the contract).
//
// Layout of this file: scalar references first (the oracle the differential
// test compares against), then the AVX2 and AVX-512 backends composed from
// the exact helpers in simd_math.h, then the thin ActiveIsa() dispatchers.
// Every backend performs the same unsigned 64-bit operations in the same
// order as its scalar reference, so results are bit-identical.

#include "he/poly_simd.h"

#include "he/simd_math.h"
#include "simd/simd.h"

namespace vfps::he::detail {

// ---------------------------------------------------------------------------
// Scalar references
// ---------------------------------------------------------------------------

void AddModScalar(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  for (size_t j = 0; j < n; ++j) a[j] = AddMod(a[j], b[j], q);
}

void SubModScalar(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  for (size_t j = 0; j < n; ++j) a[j] = SubMod(a[j], b[j], q);
}

void NegateModScalar(uint64_t* a, size_t n, uint64_t q) {
  for (size_t j = 0; j < n; ++j) a[j] = NegateMod(a[j], q);
}

void MulModBarrettScalar(uint64_t* a, const uint64_t* b, size_t n,
                         const Modulus& m) {
  for (size_t j = 0; j < n; ++j) a[j] = MulMod(a[j], b[j], m);
}

void MulModShoupScalar(uint64_t* a, size_t n, uint64_t w, uint64_t w_shoup,
                       uint64_t q) {
  for (size_t j = 0; j < n; ++j) a[j] = MulModShoup(a[j], w, w_shoup, q);
}

void RescaleRoundScalar(uint64_t* dst, const uint64_t* src,
                        const uint64_t* last, size_t n, uint64_t q_last,
                        const Modulus& m, uint64_t q_last_inv,
                        uint64_t q_last_inv_shoup) {
  const uint64_t q = m.value;
  const uint64_t q_last_half = q_last / 2;
  for (size_t c = 0; c < n; ++c) {
    const uint64_t r = last[c];
    uint64_t r_mod_q;
    if (r > q_last_half) {
      r_mod_q = NegateMod(BarrettReduce64(q_last - r, m), q);
    } else {
      r_mod_q = BarrettReduce64(r, m);
    }
    const uint64_t t = SubMod(src[c], r_mod_q, q);
    dst[c] = MulModShoup(t, q_last_inv, q_last_inv_shoup, q);
  }
}

#ifdef VFPS_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 backends
// ---------------------------------------------------------------------------

namespace {

VFPS_TARGET_AVX2 void AddModAvx2(uint64_t* a, const uint64_t* b, size_t n,
                                 uint64_t q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(q));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j),
                        Avx2CSub(_mm256_add_epi64(va, vb), vq));
  }
  for (; j < n; ++j) a[j] = AddMod(a[j], b[j], q);
}

VFPS_TARGET_AVX2 void SubModAvx2(uint64_t* a, const uint64_t* b, size_t n,
                                 uint64_t q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(q));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i d = _mm256_sub_epi64(va, vb);
    const __m256i lt = Avx2CmpLtU64(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j),
                        _mm256_add_epi64(d, _mm256_and_si256(lt, vq)));
  }
  for (; j < n; ++j) a[j] = SubMod(a[j], b[j], q);
}

VFPS_TARGET_AVX2 void NegateModAvx2(uint64_t* a, size_t n, uint64_t q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(q));
  const __m256i zero = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j));
    const __m256i is_zero = _mm256_cmpeq_epi64(va, zero);
    const __m256i neg = _mm256_sub_epi64(vq, va);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j),
                        _mm256_andnot_si256(is_zero, neg));
  }
  for (; j < n; ++j) a[j] = NegateMod(a[j], q);
}

// Lane-wise BarrettReduce128 of the product a * b — the same carry chain as
// the scalar version: carry words are recovered with unsigned compares
// (sum < addend) and folded in as 0/1 by subtracting the all-ones mask.
VFPS_TARGET_AVX2 void MulModBarrettAvx2(uint64_t* a, const uint64_t* b,
                                        size_t n, const Modulus& m) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(m.value));
  const __m256i r_lo =
      _mm256_set1_epi64x(static_cast<int64_t>(m.const_ratio[0]));
  const __m256i r_hi =
      _mm256_set1_epi64x(static_cast<int64_t>(m.const_ratio[1]));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i z_lo = Avx2MulLo64(va, vb);
    const __m256i z_hi = Avx2MulHi64(va, vb);
    const __m256i carry = Avx2MulHi64(z_lo, r_lo);
    const __m256i m1_lo = _mm256_add_epi64(Avx2MulLo64(z_lo, r_hi), carry);
    __m256i m1_hi = Avx2MulHi64(z_lo, r_hi);
    m1_hi = _mm256_sub_epi64(m1_hi, Avx2CmpLtU64(m1_lo, carry));
    const __m256i m2_lo = _mm256_add_epi64(Avx2MulLo64(z_hi, r_lo), m1_lo);
    __m256i m2_hi = Avx2MulHi64(z_hi, r_lo);
    m2_hi = _mm256_sub_epi64(m2_hi, Avx2CmpLtU64(m2_lo, m1_lo));
    const __m256i q_est = _mm256_add_epi64(
        _mm256_add_epi64(Avx2MulLo64(z_hi, r_hi), m1_hi), m2_hi);
    const __m256i r = _mm256_sub_epi64(z_lo, Avx2MulLo64(q_est, vq));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), Avx2CSub(r, vq));
  }
  for (; j < n; ++j) a[j] = MulMod(a[j], b[j], m);
}

VFPS_TARGET_AVX2 void MulModShoupAvx2(uint64_t* a, size_t n, uint64_t w,
                                      uint64_t w_shoup, uint64_t q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(q));
  const __m256i vw = _mm256_set1_epi64x(static_cast<int64_t>(w));
  const __m256i vws = _mm256_set1_epi64x(static_cast<int64_t>(w_shoup));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + j));
    const __m256i lazy = Avx2MulModShoupLazy(va, vw, vws, vq);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), Avx2CSub(lazy, vq));
  }
  for (; j < n; ++j) a[j] = MulModShoup(a[j], w, w_shoup, q);
}

VFPS_TARGET_AVX2 void RescaleRoundAvx2(uint64_t* dst, const uint64_t* src,
                                       const uint64_t* last, size_t n,
                                       uint64_t q_last, const Modulus& m,
                                       uint64_t q_last_inv,
                                       uint64_t q_last_inv_shoup) {
  const uint64_t q = m.value;
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(q));
  const __m256i v_qlast = _mm256_set1_epi64x(static_cast<int64_t>(q_last));
  const __m256i v_half = _mm256_set1_epi64x(static_cast<int64_t>(q_last / 2));
  const __m256i ratio_hi =
      _mm256_set1_epi64x(static_cast<int64_t>(m.const_ratio[1]));
  const __m256i v_inv = _mm256_set1_epi64x(static_cast<int64_t>(q_last_inv));
  const __m256i v_invs =
      _mm256_set1_epi64x(static_cast<int64_t>(q_last_inv_shoup));
  const __m256i zero = _mm256_setzero_si256();
  size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256i vr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(last + c));
    // Centered remainder: reduce r (small half) or q_last - r (big half).
    const __m256i big = Avx2CmpLtU64(v_half, vr);
    const __m256i sel =
        _mm256_blendv_epi8(vr, _mm256_sub_epi64(v_qlast, vr), big);
    const __m256i red = Avx2BarrettReduce64(sel, ratio_hi, vq);
    const __m256i is_zero = _mm256_cmpeq_epi64(red, zero);
    const __m256i neg =
        _mm256_andnot_si256(is_zero, _mm256_sub_epi64(vq, red));
    const __m256i r_mod_q = _mm256_blendv_epi8(red, neg, big);
    const __m256i vsrc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + c));
    const __m256i d = _mm256_sub_epi64(vsrc, r_mod_q);
    const __m256i lt = Avx2CmpLtU64(vsrc, r_mod_q);
    const __m256i t = _mm256_add_epi64(d, _mm256_and_si256(lt, vq));
    const __m256i lazy = Avx2MulModShoupLazy(t, v_inv, v_invs, vq);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + c),
                        Avx2CSub(lazy, vq));
  }
  if (c < n) {
    RescaleRoundScalar(dst + c, src + c, last + c, n - c, q_last, m,
                       q_last_inv, q_last_inv_shoup);
  }
}

// ---------------------------------------------------------------------------
// AVX-512 backends
// ---------------------------------------------------------------------------

VFPS_TARGET_AVX512 void AddModAvx512(uint64_t* a, const uint64_t* b, size_t n,
                                     uint64_t q) {
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(q));
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i va = _mm512_loadu_si512(a + j);
    const __m512i vb = _mm512_loadu_si512(b + j);
    _mm512_storeu_si512(a + j, Avx512CSub(_mm512_add_epi64(va, vb), vq));
  }
  for (; j < n; ++j) a[j] = AddMod(a[j], b[j], q);
}

VFPS_TARGET_AVX512 void SubModAvx512(uint64_t* a, const uint64_t* b, size_t n,
                                     uint64_t q) {
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(q));
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i va = _mm512_loadu_si512(a + j);
    const __m512i vb = _mm512_loadu_si512(b + j);
    const __m512i d = _mm512_sub_epi64(va, vb);
    const __mmask8 lt = _mm512_cmplt_epu64_mask(va, vb);
    _mm512_storeu_si512(a + j, _mm512_mask_add_epi64(d, lt, d, vq));
  }
  for (; j < n; ++j) a[j] = SubMod(a[j], b[j], q);
}

VFPS_TARGET_AVX512 void NegateModAvx512(uint64_t* a, size_t n, uint64_t q) {
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(q));
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i va = _mm512_loadu_si512(a + j);
    const __mmask8 nz = _mm512_test_epi64_mask(va, va);
    _mm512_storeu_si512(a + j, _mm512_maskz_sub_epi64(nz, vq, va));
  }
  for (; j < n; ++j) a[j] = NegateMod(a[j], q);
}

VFPS_TARGET_AVX512 void MulModBarrettAvx512(uint64_t* a, const uint64_t* b,
                                            size_t n, const Modulus& m) {
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(m.value));
  const __m512i r_lo = _mm512_set1_epi64(static_cast<int64_t>(m.const_ratio[0]));
  const __m512i r_hi = _mm512_set1_epi64(static_cast<int64_t>(m.const_ratio[1]));
  const __m512i one = _mm512_set1_epi64(1);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i va = _mm512_loadu_si512(a + j);
    const __m512i vb = _mm512_loadu_si512(b + j);
    const __m512i z_lo = Avx512MulLo64(va, vb);
    const __m512i z_hi = Avx512MulHi64(va, vb);
    const __m512i carry = Avx512MulHi64(z_lo, r_lo);
    const __m512i m1_lo = _mm512_add_epi64(Avx512MulLo64(z_lo, r_hi), carry);
    __m512i m1_hi = Avx512MulHi64(z_lo, r_hi);
    m1_hi = _mm512_mask_add_epi64(m1_hi, _mm512_cmplt_epu64_mask(m1_lo, carry),
                                  m1_hi, one);
    const __m512i m2_lo = _mm512_add_epi64(Avx512MulLo64(z_hi, r_lo), m1_lo);
    __m512i m2_hi = Avx512MulHi64(z_hi, r_lo);
    m2_hi = _mm512_mask_add_epi64(m2_hi, _mm512_cmplt_epu64_mask(m2_lo, m1_lo),
                                  m2_hi, one);
    const __m512i q_est = _mm512_add_epi64(
        _mm512_add_epi64(Avx512MulLo64(z_hi, r_hi), m1_hi), m2_hi);
    const __m512i r = _mm512_sub_epi64(z_lo, Avx512MulLo64(q_est, vq));
    _mm512_storeu_si512(a + j, Avx512CSub(r, vq));
  }
  for (; j < n; ++j) a[j] = MulMod(a[j], b[j], m);
}

VFPS_TARGET_AVX512 void MulModShoupAvx512(uint64_t* a, size_t n, uint64_t w,
                                          uint64_t w_shoup, uint64_t q) {
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(q));
  const __m512i vw = _mm512_set1_epi64(static_cast<int64_t>(w));
  const __m512i vws = _mm512_set1_epi64(static_cast<int64_t>(w_shoup));
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i va = _mm512_loadu_si512(a + j);
    const __m512i lazy = Avx512MulModShoupLazy(va, vw, vws, vq);
    _mm512_storeu_si512(a + j, Avx512CSub(lazy, vq));
  }
  for (; j < n; ++j) a[j] = MulModShoup(a[j], w, w_shoup, q);
}

VFPS_TARGET_AVX512 void RescaleRoundAvx512(uint64_t* dst, const uint64_t* src,
                                           const uint64_t* last, size_t n,
                                           uint64_t q_last, const Modulus& m,
                                           uint64_t q_last_inv,
                                           uint64_t q_last_inv_shoup) {
  const uint64_t q = m.value;
  const __m512i vq = _mm512_set1_epi64(static_cast<int64_t>(q));
  const __m512i v_qlast = _mm512_set1_epi64(static_cast<int64_t>(q_last));
  const __m512i v_half = _mm512_set1_epi64(static_cast<int64_t>(q_last / 2));
  const __m512i ratio_hi =
      _mm512_set1_epi64(static_cast<int64_t>(m.const_ratio[1]));
  const __m512i v_inv = _mm512_set1_epi64(static_cast<int64_t>(q_last_inv));
  const __m512i v_invs =
      _mm512_set1_epi64(static_cast<int64_t>(q_last_inv_shoup));
  size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m512i vr = _mm512_loadu_si512(last + c);
    const __mmask8 big = _mm512_cmplt_epu64_mask(v_half, vr);
    const __m512i sel = _mm512_mask_sub_epi64(vr, big, v_qlast, vr);
    const __m512i red = Avx512BarrettReduce64(sel, ratio_hi, vq);
    const __mmask8 nz = _mm512_test_epi64_mask(red, red);
    const __m512i neg = _mm512_maskz_sub_epi64(nz, vq, red);
    const __m512i r_mod_q = _mm512_mask_mov_epi64(red, big, neg);
    const __m512i vsrc = _mm512_loadu_si512(src + c);
    const __m512i d = _mm512_sub_epi64(vsrc, r_mod_q);
    const __mmask8 lt = _mm512_cmplt_epu64_mask(vsrc, r_mod_q);
    const __m512i t = _mm512_mask_add_epi64(d, lt, d, vq);
    const __m512i lazy = Avx512MulModShoupLazy(t, v_inv, v_invs, vq);
    _mm512_storeu_si512(dst + c, Avx512CSub(lazy, vq));
  }
  if (c < n) {
    RescaleRoundScalar(dst + c, src + c, last + c, n - c, q_last, m,
                       q_last_inv, q_last_inv_shoup);
  }
}

}  // namespace

#endif  // VFPS_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

void AddModVec(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
#ifdef VFPS_SIMD_X86
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      AddModAvx512(a, b, n, q);
      return;
    case simd::Isa::kAvx2:
      AddModAvx2(a, b, n, q);
      return;
    case simd::Isa::kScalar:
      break;
  }
#endif
  AddModScalar(a, b, n, q);
}

void SubModVec(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
#ifdef VFPS_SIMD_X86
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      SubModAvx512(a, b, n, q);
      return;
    case simd::Isa::kAvx2:
      SubModAvx2(a, b, n, q);
      return;
    case simd::Isa::kScalar:
      break;
  }
#endif
  SubModScalar(a, b, n, q);
}

void NegateModVec(uint64_t* a, size_t n, uint64_t q) {
#ifdef VFPS_SIMD_X86
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      NegateModAvx512(a, n, q);
      return;
    case simd::Isa::kAvx2:
      NegateModAvx2(a, n, q);
      return;
    case simd::Isa::kScalar:
      break;
  }
#endif
  NegateModScalar(a, n, q);
}

void MulModBarrettVec(uint64_t* a, const uint64_t* b, size_t n,
                      const Modulus& m) {
#ifdef VFPS_SIMD_X86
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      MulModBarrettAvx512(a, b, n, m);
      return;
    case simd::Isa::kAvx2:
      MulModBarrettAvx2(a, b, n, m);
      return;
    case simd::Isa::kScalar:
      break;
  }
#endif
  MulModBarrettScalar(a, b, n, m);
}

void MulModShoupVec(uint64_t* a, size_t n, uint64_t w, uint64_t w_shoup,
                    uint64_t q) {
#ifdef VFPS_SIMD_X86
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      MulModShoupAvx512(a, n, w, w_shoup, q);
      return;
    case simd::Isa::kAvx2:
      MulModShoupAvx2(a, n, w, w_shoup, q);
      return;
    case simd::Isa::kScalar:
      break;
  }
#endif
  MulModShoupScalar(a, n, w, w_shoup, q);
}

void RescaleRoundVec(uint64_t* dst, const uint64_t* src, const uint64_t* last,
                     size_t n, uint64_t q_last, const Modulus& m,
                     uint64_t q_last_inv, uint64_t q_last_inv_shoup) {
#ifdef VFPS_SIMD_X86
  switch (simd::ActiveIsa()) {
    case simd::Isa::kAvx512:
      RescaleRoundAvx512(dst, src, last, n, q_last, m, q_last_inv,
                         q_last_inv_shoup);
      return;
    case simd::Isa::kAvx2:
      RescaleRoundAvx2(dst, src, last, n, q_last, m, q_last_inv,
                       q_last_inv_shoup);
      return;
    case simd::Isa::kScalar:
      break;
  }
#endif
  RescaleRoundScalar(dst, src, last, n, q_last, m, q_last_inv,
                     q_last_inv_shoup);
}

}  // namespace vfps::he::detail

#ifndef VFPS_HE_NTT_H_
#define VFPS_HE_NTT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "he/modarith.h"

namespace vfps::he {

/// \brief Precomputed tables for the negacyclic number-theoretic transform
/// over Z_q[X]/(X^n + 1).
///
/// The forward transform maps coefficient form to evaluation form at the odd
/// powers of a primitive 2n-th root of unity ψ; in evaluation form polynomial
/// multiplication is pointwise. n must be a power of two and q ≡ 1 (mod 2n).
class NttTables {
 public:
  /// Builds tables (finds ψ automatically).
  static Result<NttTables> Create(size_t n, uint64_t q);

  size_t n() const { return n_; }
  uint64_t q() const { return q_; }
  uint64_t psi() const { return psi_; }

  /// Barrett-ready modulus for division-free pointwise arithmetic mod q.
  const Modulus& modulus() const { return modulus_; }

  /// \brief Bit-reversal permutation over [0, n): bit_rev()[i] is i with its
  /// log2(n) low bits reversed. Precomputed once at Create; shared by the
  /// transforms here and by the CKKS encoder's FFT.
  const std::vector<size_t>& bit_rev() const { return bit_rev_; }

  /// \brief In-place forward negacyclic NTT (coefficient -> evaluation
  /// form), dispatched to the widest backend simd::ActiveIsa() allows.
  /// Input residues must be < q; output residues are fully reduced to
  /// [0, q). Every backend is bit-identical to ForwardScalar: between
  /// butterfly stages values stay lazy in [0, 4q) and the final pass reduces
  /// (see docs/KERNELS.md).
  void Forward(uint64_t* a) const;

  /// \brief In-place inverse negacyclic NTT (evaluation -> coefficient
  /// form), dispatched like Forward. Input residues must be < q; stages stay
  /// lazy in [0, 2q); outputs are fully reduced to [0, q) and bit-identical
  /// to InverseScalar.
  void Inverse(uint64_t* a) const;

  /// Always-built scalar reference for Forward (the differential-test
  /// oracle; also the portable fallback the dispatcher selects when no
  /// vector backend applies).
  void ForwardScalar(uint64_t* a) const;

  /// Always-built scalar reference for Inverse.
  void InverseScalar(uint64_t* a) const;

  void Forward(std::vector<uint64_t>* a) const { Forward(a->data()); }
  void Inverse(std::vector<uint64_t>* a) const { Inverse(a->data()); }

 private:
  NttTables() = default;

  // Vector backends (ntt_simd.cc). On non-x86 builds they fall back to the
  // scalar reference; the dispatcher never selects them there anyway.
  void ForwardAvx2(uint64_t* a) const;
  void InverseAvx2(uint64_t* a) const;
  void ForwardAvx512(uint64_t* a) const;
  void InverseAvx512(uint64_t* a) const;

  size_t n_ = 0;
  int log_n_ = 0;
  uint64_t q_ = 0;
  uint64_t psi_ = 0;
  uint64_t n_inv_ = 0;
  uint64_t n_inv_shoup_ = 0;
  Modulus modulus_;
  // Powers of psi in bit-reversed order (Cooley-Tukey layout), and likewise
  // for psi^{-1} (Gentleman-Sande layout for the inverse). The *_shoup_
  // companions hold floor(w * 2^64 / q) for each twiddle, enabling the
  // division-free lazy butterflies (see docs/ARCHITECTURE.md, "Performance
  // kernels").
  std::vector<uint64_t> root_powers_;
  std::vector<uint64_t> root_powers_shoup_;
  std::vector<uint64_t> inv_root_powers_;
  std::vector<uint64_t> inv_root_powers_shoup_;
  std::vector<size_t> bit_rev_;
};

}  // namespace vfps::he

#endif  // VFPS_HE_NTT_H_

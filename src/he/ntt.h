#ifndef VFPS_HE_NTT_H_
#define VFPS_HE_NTT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace vfps::he {

/// \brief Precomputed tables for the negacyclic number-theoretic transform
/// over Z_q[X]/(X^n + 1).
///
/// The forward transform maps coefficient form to evaluation form at the odd
/// powers of a primitive 2n-th root of unity ψ; in evaluation form polynomial
/// multiplication is pointwise. n must be a power of two and q ≡ 1 (mod 2n).
class NttTables {
 public:
  /// Builds tables (finds ψ automatically).
  static Result<NttTables> Create(size_t n, uint64_t q);

  size_t n() const { return n_; }
  uint64_t q() const { return q_; }
  uint64_t psi() const { return psi_; }

  /// In-place forward negacyclic NTT (coefficient -> evaluation form).
  void Forward(uint64_t* a) const;

  /// In-place inverse negacyclic NTT (evaluation -> coefficient form).
  void Inverse(uint64_t* a) const;

  void Forward(std::vector<uint64_t>* a) const { Forward(a->data()); }
  void Inverse(std::vector<uint64_t>* a) const { Inverse(a->data()); }

 private:
  NttTables() = default;

  size_t n_ = 0;
  int log_n_ = 0;
  uint64_t q_ = 0;
  uint64_t psi_ = 0;
  uint64_t n_inv_ = 0;
  // Powers of psi in bit-reversed order (Cooley-Tukey layout), and likewise
  // for psi^{-1} (Gentleman-Sande layout for the inverse).
  std::vector<uint64_t> root_powers_;
  std::vector<uint64_t> inv_root_powers_;
};

}  // namespace vfps::he

#endif  // VFPS_HE_NTT_H_

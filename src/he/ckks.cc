#include "he/ckks.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "he/modarith.h"
#include "he/poly_simd.h"

namespace vfps::he {

Result<std::shared_ptr<const CkksContext>> CkksContext::Create(
    const CkksParams& params) {
  if (params.poly_degree < 8) {
    return Status::InvalidArgument("CkksContext: poly_degree too small");
  }
  for (int bits : params.prime_bits) {
    if (bits < 30 || bits > 59) {
      return Status::InvalidArgument(
          "CkksContext: prime bits must be in [30, 59]");
    }
  }
  auto ctx = std::shared_ptr<CkksContext>(new CkksContext());
  ctx->params_ = params;
  VFPS_ASSIGN_OR_RETURN(ctx->rns_,
                        RnsContext::Create(params.poly_degree, params.prime_bits));
  VFPS_ASSIGN_OR_RETURN(auto encoder, CkksEncoder::Create(ctx->rns_));
  ctx->encoder_ = std::make_unique<CkksEncoder>(std::move(encoder));
  return std::shared_ptr<const CkksContext>(ctx);
}

CkksSecretKey CkksContext::GenerateSecretKey(Rng* rng) const {
  CkksSecretKey sk;
  sk.s = SampleTernary(*rns_, rng);
  ToNtt(*rns_, &sk.s);
  return sk;
}

CkksPublicKey CkksContext::GeneratePublicKey(const CkksSecretKey& sk,
                                             Rng* rng) const {
  CkksPublicKey pk;
  pk.a = SampleUniform(*rns_, rng);  // already NTT form
  RnsPoly e = SampleGaussian(*rns_, rng, params_.noise_sigma);
  ToNtt(*rns_, &e);
  // b = -(a*s + e)
  pk.b = pk.a;
  MulPointwiseInPlace(*rns_, &pk.b, sk.s);
  AddInPlace(*rns_, &pk.b, e);
  NegateInPlace(*rns_, &pk.b);
  return pk;
}

CkksCiphertext CkksContext::Encrypt(const CkksPublicKey& pk,
                                    const RnsPoly& plaintext, double scale,
                                    Rng* rng) const {
  // Per-thread scratch for the three masking polynomials: every component is
  // overwritten by the samplers, and the Rng consumption is identical to the
  // allocating SampleTernary/SampleGaussian, so reuse is invisible to both
  // determinism and callers. Saves three n * num_primes allocations per
  // encryption — the oracle's hottest allocation site.
  thread_local RnsPoly u, e0, e1;
  SampleTernaryInto(*rns_, rng, &u);
  ToNtt(*rns_, &u);
  SampleGaussianInto(*rns_, rng, &e0, params_.noise_sigma);
  ToNtt(*rns_, &e0);
  SampleGaussianInto(*rns_, rng, &e1, params_.noise_sigma);
  ToNtt(*rns_, &e1);

  CkksCiphertext ct;
  ct.scale = scale;
  // c0 = b*u + e0 + m
  ct.c0 = pk.b;
  MulPointwiseInPlace(*rns_, &ct.c0, u);
  AddInPlace(*rns_, &ct.c0, e0);
  AddInPlace(*rns_, &ct.c0, plaintext);
  // c1 = a*u + e1
  ct.c1 = pk.a;
  MulPointwiseInPlace(*rns_, &ct.c1, u);
  AddInPlace(*rns_, &ct.c1, e1);
  return ct;
}

RnsPoly CkksContext::Decrypt(const CkksSecretKey& sk,
                             const CkksCiphertext& ct) const {
  // m' = c0 + c1 * s
  RnsPoly m = ct.c1;
  MulPointwiseInPlace(*rns_, &m, sk.s);
  AddInPlace(*rns_, &m, ct.c0);
  return m;
}

Result<CkksCiphertext> CkksContext::EncryptVector(
    const CkksPublicKey& pk, std::span<const double> values,
    Rng* rng) const {
  VFPS_ASSIGN_OR_RETURN(RnsPoly pt, encoder_->Encode(values, params_.scale));
  return Encrypt(pk, pt, params_.scale, rng);
}

Result<std::vector<double>> CkksContext::DecryptVector(
    const CkksSecretKey& sk, const CkksCiphertext& ct, size_t count) const {
  RnsPoly pt = Decrypt(sk, ct);
  return encoder_->Decode(pt, ct.scale, count);
}

Status CkksContext::AddInPlaceCt(CkksCiphertext* x,
                                 const CkksCiphertext& y) const {
  if (x->scale != y.scale) {
    return Status::InvalidArgument("CKKS Add: scale mismatch");
  }
  AddInPlace(*rns_, &x->c0, y.c0);
  AddInPlace(*rns_, &x->c1, y.c1);
  return Status::OK();
}

Result<CkksCiphertext> CkksContext::Add(const CkksCiphertext& x,
                                        const CkksCiphertext& y) const {
  CkksCiphertext out = x;
  VFPS_RETURN_NOT_OK(AddInPlaceCt(&out, y));
  return out;
}

Result<CkksCiphertext> CkksContext::Sub(const CkksCiphertext& x,
                                        const CkksCiphertext& y) const {
  if (x.scale != y.scale) {
    return Status::InvalidArgument("CKKS Sub: scale mismatch");
  }
  CkksCiphertext out = x;
  SubInPlace(*rns_, &out.c0, y.c0);
  SubInPlace(*rns_, &out.c1, y.c1);
  return out;
}

Result<CkksCiphertext> CkksContext::AddPlain(const CkksCiphertext& x,
                                             const RnsPoly& plaintext) const {
  CkksCiphertext out = x;
  if (!plaintext.ntt_form) {
    RnsPoly pt = plaintext;
    ToNtt(*rns_, &pt);
    AddInPlace(*rns_, &out.c0, pt);
  } else {
    AddInPlace(*rns_, &out.c0, plaintext);
  }
  return out;
}

CkksCiphertext CkksContext::MulScalar(const CkksCiphertext& x,
                                      uint64_t scalar) const {
  CkksCiphertext out = x;
  MulScalarInPlace(*rns_, &out.c0, scalar);
  MulScalarInPlace(*rns_, &out.c1, scalar);
  return out;
}

CkksRelinKey CkksContext::GenerateRelinKey(const CkksSecretKey& sk,
                                           Rng* rng) const {
  CkksRelinKey key;
  key.digit_bits = 28;
  size_t total_bits = 0;
  for (uint64_t q : rns_->primes()) {
    size_t bits = 0;
    while ((q >> bits) != 0) ++bits;
    total_bits += bits;
  }
  const size_t num_digits =
      (total_bits + key.digit_bits - 1) / static_cast<size_t>(key.digit_bits);

  // s^2 in NTT form.
  RnsPoly s2 = sk.s;
  MulPointwiseInPlace(*rns_, &s2, sk.s);

  for (size_t j = 0; j < num_digits; ++j) {
    RnsPoly a = SampleUniform(*rns_, rng);
    RnsPoly e = SampleGaussian(*rns_, rng, params_.noise_sigma);
    ToNtt(*rns_, &e);
    // b = -(a*s + e) + T^j * s^2, with T^j reduced per prime.
    RnsPoly b = a;
    MulPointwiseInPlace(*rns_, &b, sk.s);
    AddInPlace(*rns_, &b, e);
    NegateInPlace(*rns_, &b);
    RnsPoly shifted = s2;
    for (size_t i = 0; i < rns_->num_primes(); ++i) {
      const uint64_t q = rns_->prime(i);
      const uint64_t tj = PowMod(2, static_cast<uint64_t>(key.digit_bits) * j, q);
      for (size_t c = 0; c < rns_->n(); ++c) {
        shifted.residues[i][c] = MulMod(shifted.residues[i][c], tj, q);
      }
    }
    AddInPlace(*rns_, &b, shifted);
    key.b.push_back(std::move(b));
    key.a.push_back(std::move(a));
  }
  return key;
}

Result<CkksCiphertext> CkksContext::Multiply(const CkksCiphertext& x,
                                             const CkksCiphertext& y,
                                             const CkksRelinKey& rk) const {
  if (x.level() != rns_->num_primes() || y.level() != rns_->num_primes()) {
    return Status::InvalidArgument("CKKS Multiply: inputs must be at full level");
  }
  if (rk.b.empty()) {
    return Status::InvalidArgument("CKKS Multiply: empty relinearization key");
  }

  // Tensor product components (all operands are in NTT form).
  RnsPoly d0 = x.c0;
  MulPointwiseInPlace(*rns_, &d0, y.c0);
  RnsPoly d1a = x.c0;
  MulPointwiseInPlace(*rns_, &d1a, y.c1);
  RnsPoly d1b = x.c1;
  MulPointwiseInPlace(*rns_, &d1b, y.c0);
  AddInPlace(*rns_, &d1a, d1b);
  RnsPoly d2 = x.c1;
  MulPointwiseInPlace(*rns_, &d2, y.c1);

  // Relinearize d2: digit-decompose its coefficients (base T over the CRT
  // composition) and fold through the key.
  FromNtt(*rns_, &d2);
  const size_t n = rns_->n();
  const uint64_t digit_mask = (1ULL << rk.digit_bits) - 1;
  for (size_t j = 0; j < rk.b.size(); ++j) {
    RnsPoly digit = ZeroPoly(*rns_);
    for (size_t c = 0; c < n; ++c) {
      const unsigned __int128 v = ComposeCoeffU128(*rns_, d2, c);
      const uint64_t dj = static_cast<uint64_t>(
          (v >> (static_cast<unsigned>(rk.digit_bits) * j)) & digit_mask);
      for (size_t i = 0; i < rns_->num_primes(); ++i) {
        digit.residues[i][c] = dj % rns_->prime(i);
      }
    }
    ToNtt(*rns_, &digit);
    RnsPoly tb = digit;
    MulPointwiseInPlace(*rns_, &tb, rk.b[j]);
    AddInPlace(*rns_, &d0, tb);
    RnsPoly ta = std::move(digit);
    MulPointwiseInPlace(*rns_, &ta, rk.a[j]);
    AddInPlace(*rns_, &d1a, ta);
  }

  CkksCiphertext out;
  out.c0 = std::move(d0);
  out.c1 = std::move(d1a);
  out.scale = x.scale * y.scale;
  return out;
}

Result<CkksCiphertext> CkksContext::MultiplyPlain(const CkksCiphertext& x,
                                                  const RnsPoly& plaintext,
                                                  double pt_scale) const {
  if (!plaintext.ntt_form) {
    return Status::InvalidArgument("CKKS MultiplyPlain: plaintext must be NTT form");
  }
  if (pt_scale <= 0.0) {
    return Status::InvalidArgument("CKKS MultiplyPlain: bad plaintext scale");
  }
  CkksCiphertext out = x;
  MulPointwiseInPlace(*rns_, &out.c0, plaintext);
  MulPointwiseInPlace(*rns_, &out.c1, plaintext);
  out.scale = x.scale * pt_scale;
  return out;
}

Result<CkksCiphertext> CkksContext::Rescale(const CkksCiphertext& x) const {
  const size_t level = x.level();
  if (level < 2) {
    return Status::InvalidArgument("CKKS Rescale: no prime left to drop");
  }
  const size_t last = level - 1;
  const uint64_t q_last = rns_->prime(last);
  CkksCiphertext out;
  out.scale = x.scale / static_cast<double>(q_last);
  // Scratch for the coefficient-form copy (fully overwritten below).
  thread_local RnsPoly coeff;
  for (const RnsPoly* src : {&x.c0, &x.c1}) {
    ResizePoly(*rns_, &coeff);
    for (size_t i = 0; i < src->num_primes(); ++i) {
      coeff.residues[i].assign(src->residues[i].begin(),
                               src->residues[i].end());
    }
    coeff.ntt_form = src->ntt_form;
    FromNtt(*rns_, &coeff);
    RnsPoly dropped;
    dropped.ntt_form = false;
    dropped.residues.resize(last);
    for (size_t i = 0; i < last; ++i) {
      auto& dst = dropped.residues[i];
      dst.resize(rns_->n());
      // Centered remainder of the dropped residue, reduced into q and folded
      // with the cached (q_last mod q)^{-1}; dispatched to the widest SIMD
      // backend and bit-identical to the scalar loop (see poly_simd.h).
      detail::RescaleRoundVec(dst.data(), coeff.residues[i].data(),
                              coeff.residues[last].data(), rns_->n(), q_last,
                              rns_->modulus(i), rns_->rescale_q_last_inv(i),
                              rns_->rescale_q_last_inv_shoup(i));
    }
    ToNtt(*rns_, &dropped);
    if (src == &x.c0) {
      out.c0 = std::move(dropped);
    } else {
      out.c1 = std::move(dropped);
    }
  }
  return out;
}

void CkksContext::SerializeCiphertext(const CkksCiphertext& ct,
                                      BinaryWriter* out) const {
  out->WriteDouble(ct.scale);
  out->WriteU8(ct.c0.ntt_form ? 1 : 0);
  for (const RnsPoly* poly : {&ct.c0, &ct.c1}) {
    out->WriteU32(static_cast<uint32_t>(poly->num_primes()));
    for (const auto& residue : poly->residues) out->WriteU64Vec(residue);
  }
}

Result<CkksCiphertext> CkksContext::DeserializeCiphertext(
    BinaryReader* in) const {
  CkksCiphertext ct;
  VFPS_ASSIGN_OR_RETURN(ct.scale, in->ReadDouble());
  VFPS_ASSIGN_OR_RETURN(uint8_t ntt_form, in->ReadU8());
  for (RnsPoly* poly : {&ct.c0, &ct.c1}) {
    VFPS_ASSIGN_OR_RETURN(uint32_t num_primes, in->ReadU32());
    if (num_primes == 0 || num_primes > rns_->num_primes()) {
      return Status::ProtocolError("CKKS deserialize: prime count mismatch");
    }
    poly->residues.resize(num_primes);
    for (uint32_t i = 0; i < num_primes; ++i) {
      VFPS_ASSIGN_OR_RETURN(poly->residues[i], in->ReadU64Vec());
      if (poly->residues[i].size() != rns_->n()) {
        return Status::ProtocolError("CKKS deserialize: degree mismatch");
      }
    }
    poly->ntt_form = (ntt_form != 0);
  }
  return ct;
}

size_t CkksContext::CiphertextByteSize() const {
  // scale + form byte + 2 polys * (prime-count header + per-prime vectors).
  return sizeof(double) + 1 +
         2 * (sizeof(uint32_t) +
              rns_->num_primes() * (sizeof(uint32_t) + rns_->n() * sizeof(uint64_t)));
}

}  // namespace vfps::he

#ifndef VFPS_HE_CKKS_ENCODER_H_
#define VFPS_HE_CKKS_ENCODER_H_

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "he/rns.h"

namespace vfps::he {

/// \brief CKKS canonical-embedding encoder.
///
/// Encodes a vector of up to n/2 real values into a plaintext polynomial of
/// Z_Q[X]/(X^n + 1) such that the polynomial evaluated at the odd powers of
/// the primitive 2n-th complex root of unity reproduces the values times the
/// scale. Both directions run in O(n log n) via a radix-2 FFT:
///
///   encode:  pad values to length n, FFT, twist by w^{-k}, take (2/n)*Re,
///            multiply by the scale, round to integers, map to RNS.
///   decode:  CRT-compose coefficients, twist by w^k, inverse FFT, divide by
///            the scale, take the first n/2 real parts.
class CkksEncoder {
 public:
  static Result<CkksEncoder> Create(std::shared_ptr<const RnsContext> ctx);

  size_t slot_count() const { return ctx_->n() / 2; }

  /// \brief Encode at most slot_count() values with the given scale. The
  /// result is returned in NTT (evaluation) form, ready for pointwise ops.
  /// Fails if any rounded coefficient would overflow the 62-bit safety bound.
  /// Values beyond `values.size()` implicitly encode as zero (the unused
  /// slots of a partially-filled ciphertext are zero-masked by construction).
  /// Accepts a span so batched callers can encode sub-ranges without copying.
  Result<RnsPoly> Encode(std::span<const double> values, double scale) const;

  /// \brief Decode `count` values from a plaintext polynomial at the given
  /// scale. Accepts either form (transforms a copy if needed).
  Result<std::vector<double>> Decode(const RnsPoly& poly, double scale,
                                     size_t count) const;

 private:
  explicit CkksEncoder(std::shared_ptr<const RnsContext> ctx)
      : ctx_(std::move(ctx)) {}

  // In-place radix-2 FFT; sign = -1 forward, +1 inverse (unnormalized).
  void Fft(std::vector<std::complex<double>>* a, int sign) const;

  std::shared_ptr<const RnsContext> ctx_;
  // Twist factors w^k = exp(i*pi*k/n), k in [0, n).
  std::vector<std::complex<double>> twist_;
  // Bit-reversal permutation for the FFT.
  std::vector<size_t> bit_rev_;
  // Roots e^{-2*pi*i*k/n} for the forward FFT (conjugate for inverse).
  std::vector<std::complex<double>> fft_roots_;
};

}  // namespace vfps::he

#endif  // VFPS_HE_CKKS_ENCODER_H_

#ifndef VFPS_HE_CKKS_H_
#define VFPS_HE_CKKS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/random.h"
#include "common/result.h"
#include "he/ckks_encoder.h"
#include "he/rns.h"

namespace vfps::he {

/// \brief CKKS scheme parameters.
///
/// The defaults (n = 4096, two 54-bit primes, scale 2^40) match the additive
/// workload of the VFPS-SM protocol: Q ~ 2^108 leaves > 60 bits of headroom
/// above the scale, so dozens of ciphertext additions stay far from overflow.
struct CkksParams {
  size_t poly_degree = 4096;
  std::vector<int> prime_bits = {54, 54};
  double scale = 1099511627776.0;  // 2^40
  double noise_sigma = 3.2;
};

/// Secret key: a ternary ring element (stored in NTT form).
struct CkksSecretKey {
  RnsPoly s;
};

/// Public key (b, a) with b = -(a*s + e); both in NTT form.
struct CkksPublicKey {
  RnsPoly b;
  RnsPoly a;
};

/// RLWE ciphertext (c0, c1); decryption computes c0 + c1 * s.
struct CkksCiphertext {
  RnsPoly c0;
  RnsPoly c1;
  double scale = 0.0;

  /// Remaining RNS primes (full level = params.prime_bits.size(); each
  /// Rescale consumes one).
  size_t level() const { return c0.num_primes(); }
};

/// \brief Relinearization key: digit-decomposition "encryptions" of s^2,
/// b_j = -(a_j s + e_j) + T^j s^2 with T = 2^digit_bits. Used to fold the
/// quadratic term of a ciphertext-ciphertext product back to two components.
struct CkksRelinKey {
  std::vector<RnsPoly> b;  // NTT form
  std::vector<RnsPoly> a;  // NTT form
  int digit_bits = 0;
};

/// \brief CKKS context: validated parameters, RNS base, encoder, and all
/// scheme operations. Immutable and shareable across threads.
class CkksContext {
 public:
  static Result<std::shared_ptr<const CkksContext>> Create(
      const CkksParams& params);

  const CkksParams& params() const { return params_; }
  const RnsContext& rns() const { return *rns_; }
  const CkksEncoder& encoder() const { return *encoder_; }
  size_t slot_count() const { return encoder_->slot_count(); }

  CkksSecretKey GenerateSecretKey(Rng* rng) const;
  CkksPublicKey GeneratePublicKey(const CkksSecretKey& sk, Rng* rng) const;

  /// Encrypt an already-encoded plaintext polynomial (NTT form).
  CkksCiphertext Encrypt(const CkksPublicKey& pk, const RnsPoly& plaintext,
                         double scale, Rng* rng) const;

  /// Decrypt to the plaintext polynomial (NTT form); decode separately.
  RnsPoly Decrypt(const CkksSecretKey& sk, const CkksCiphertext& ct) const;

  /// Encode + encrypt at most slot_count() doubles. Takes a span so batched
  /// callers can encrypt slot-count()-sized windows of a longer vector
  /// without copying; slots past `values.size()` encode as zero.
  Result<CkksCiphertext> EncryptVector(const CkksPublicKey& pk,
                                       std::span<const double> values,
                                       Rng* rng) const;
  /// Brace-list convenience (std::span lacks the initializer_list
  /// constructor until C++26).
  Result<CkksCiphertext> EncryptVector(const CkksPublicKey& pk,
                                       std::initializer_list<double> values,
                                       Rng* rng) const {
    return EncryptVector(pk, std::span<const double>(values.begin(), values.size()),
                         rng);
  }

  /// Decrypt + decode `count` doubles.
  Result<std::vector<double>> DecryptVector(const CkksSecretKey& sk,
                                            const CkksCiphertext& ct,
                                            size_t count) const;

  /// Homomorphic ciphertext addition (scales must match).
  Result<CkksCiphertext> Add(const CkksCiphertext& x,
                             const CkksCiphertext& y) const;
  Status AddInPlaceCt(CkksCiphertext* x, const CkksCiphertext& y) const;

  /// Homomorphic subtraction x - y.
  Result<CkksCiphertext> Sub(const CkksCiphertext& x,
                             const CkksCiphertext& y) const;

  /// Add an encoded plaintext (same scale) to a ciphertext.
  Result<CkksCiphertext> AddPlain(const CkksCiphertext& x,
                                  const RnsPoly& plaintext) const;

  /// Multiply a ciphertext by a small non-negative integer scalar.
  CkksCiphertext MulScalar(const CkksCiphertext& x, uint64_t scalar) const;

  /// Generate the relinearization key for ciphertext-ciphertext multiplies.
  CkksRelinKey GenerateRelinKey(const CkksSecretKey& sk, Rng* rng) const;

  /// Homomorphic multiply with relinearization. Inputs must be at full level
  /// (2 primes); the output scale is x.scale * y.scale — follow with
  /// Rescale to bring it back down and consume one prime.
  Result<CkksCiphertext> Multiply(const CkksCiphertext& x,
                                  const CkksCiphertext& y,
                                  const CkksRelinKey& rk) const;

  /// Multiply by an encoded plaintext (NTT form, encoded at `pt_scale`).
  /// The output scale is x.scale * pt_scale — follow with Rescale.
  Result<CkksCiphertext> MultiplyPlain(const CkksCiphertext& x,
                                       const RnsPoly& plaintext,
                                       double pt_scale) const;

  /// Drop the last remaining RNS prime, dividing the encrypted values (and
  /// the scale) by it. Requires level >= 2.
  Result<CkksCiphertext> Rescale(const CkksCiphertext& x) const;

  /// Ciphertext wire format; size feeds the simulated network's byte meter.
  void SerializeCiphertext(const CkksCiphertext& ct, BinaryWriter* out) const;
  Result<CkksCiphertext> DeserializeCiphertext(BinaryReader* in) const;

  /// Serialized ciphertext size in bytes for the current parameters.
  size_t CiphertextByteSize() const;

 private:
  CkksContext() = default;
  CkksParams params_;
  std::shared_ptr<const RnsContext> rns_;
  std::unique_ptr<CkksEncoder> encoder_;
};

}  // namespace vfps::he

#endif  // VFPS_HE_CKKS_H_

#ifndef VFPS_DATA_SYNTHETIC_H_
#define VFPS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace vfps::data {

/// Role a generated feature plays; the partitioner uses this metadata to
/// build participants of controlled, heterogeneous quality.
enum class FeatureKind : uint8_t {
  kInformative = 0,  // projection of the label-bearing latent factor
  kRedundant = 1,    // noisy linear combination of informative features
  kNoise = 2,        // label-independent (but row-correlated via intensity)
};

/// \brief Configuration for the low-intrinsic-dimension classification
/// generator.
///
/// The generator mimics what matters about the paper's 10 tabular datasets
/// for the selection algorithms:
///   - sample count, feature width, class balance;
///   - difficulty: class centroids sit `centroid_distance` apart in a latent
///     space with unit label-relevant noise, so KNN-on-everything accuracy
///     lands near Phi(distance / 2);
///   - LOW INTRINSIC DIMENSION: every informative feature is a random
///     projection of one shared latent vector z (class offset + market
///     "segment" + noise). Because all vertical slices observe projections
///     of the same z, every participant's distance ranking approximates
///     ||delta z|| — the cross-party rank correlation that makes Fagin's
///     algorithm terminate early on real data (Fig. 9);
///   - redundancy: extra features that are noisy combinations of informative
///     ones, and noise features that correlate across rows only through a
///     scalar intensity factor. These control how much participants can
///     overlap, which is what the diversity study manipulates.
struct SyntheticConfig {
  size_t num_samples = 1000;
  size_t num_features = 20;
  int num_classes = 2;
  size_t num_informative = 10;
  size_t num_redundant = 5;  // rest of the features are pure noise
  /// Latent-space distance between class centroids (unit within-class noise);
  /// KNN accuracy before label noise is roughly Phi(centroid_distance / 2).
  double centroid_distance = 3.0;
  double label_noise = 0.01;  // probability of flipping a label
  double redundant_noise = 0.15;
  std::vector<double> class_priors;  // empty = uniform
  uint64_t seed = 42;

  /// Intrinsic dimension of the informative latent z (clamped to
  /// num_informative; 0 = auto = min(5, num_informative)).
  size_t latent_dim = 0;
  /// Per-feature observation noise on top of the projection of z, drawn
  /// log-uniformly per feature from [min, max]. Real tabular features vary
  /// wildly in quality; this heterogeneity is what makes randomly-split
  /// participants differ in value (so selection matters), exactly as in the
  /// paper's datasets. Set min == max for homogeneous features.
  double feature_noise_min = 0.4;
  double feature_noise_max = 1.3;
  /// Label-independent "segment" clusters in latent space (0 = auto: about
  /// one per 600 samples, at least 4). Segments make rows clumpy, as real
  /// tabular data is.
  size_t num_segments = 0;
  double segment_spread = 1.2;
  /// Per-segment tilt of the class prior (binary tasks): real market/patient
  /// segments correlate with outcomes, which is what makes geometric
  /// coverage of the row distribution (the KNN-likelihood objective)
  /// label-relevant. 0 disables the correlation.
  double segment_label_tilt = 0.3;
  /// Scalar per-row intensity that loads on every noise feature, so even
  /// noise-heavy participants produce usable sub-rankings.
  double intensity_factor = 0.7;
};

/// Generated dataset plus per-feature metadata.
struct SyntheticDataset {
  Dataset data;
  std::vector<FeatureKind> kinds;  // size = num_features
};

/// \brief Draw a labeled dataset from the low-intrinsic-dimension model.
/// Deterministic given the config (including the seed).
Result<SyntheticDataset> GenerateClassification(const SyntheticConfig& config);

namespace detail {
/// Frozen generator parameters (class/segment centers, projections, mixing
/// weights), drawn once from the config seed. Shared by the sequential
/// generator and the shard stream so both sample the same row model.
struct SyntheticModel {
  size_t latent_dim = 0;
  size_t segments = 0;
  size_t n_inf = 0;
  size_t n_red = 0;
  size_t n_noise = 0;
  std::vector<std::vector<double>> class_centers;
  std::vector<std::vector<double>> segment_centers;
  std::vector<double> segment_class1_prior;
  std::vector<std::vector<double>> projections;
  std::vector<double> feature_noise;
  std::vector<std::vector<double>> mix;
  std::vector<double> cumulative;  // cumulative class priors
};
}  // namespace detail

/// \brief Streaming per-shard view of the synthetic dataset: materializes any
/// row range [begin, end) on demand, so an out-of-core run over S shards
/// holds one shard's rows at a time instead of the full N-row matrix.
///
/// Row i is a pure function of (config, i): each row draws from its own RNG
/// stream seeded by mixing the config seed with the row index. Tiling the
/// range therefore cannot change the data — Rows(0, N) row i equals
/// Rows(b, e) row i for every shard layout, which is what makes sharded runs
/// invariant to the shard count. NOTE: the per-row streams deliberately
/// differ from GenerateClassification's single sequential stream (kept
/// bit-identical for existing callers); the two samplers draw from the SAME
/// frozen model, just with different noise realizations.
class SyntheticShardStream {
 public:
  /// Validates the config and freezes the model (same parameter draws as
  /// GenerateClassification, so difficulty/structure match the presets).
  static Result<SyntheticShardStream> Create(const SyntheticConfig& config);

  size_t num_rows() const { return config_.num_samples; }
  size_t num_features() const { return config_.num_features; }
  const std::vector<FeatureKind>& kinds() const { return kinds_; }

  /// Dataset holding rows [begin, end) of the virtual dataset (row r of the
  /// result is virtual row begin + r). Allocates (end - begin) rows only.
  Result<Dataset> Rows(size_t begin, size_t end) const;

 private:
  SyntheticConfig config_;
  detail::SyntheticModel model_;
  std::vector<FeatureKind> kinds_;
};

}  // namespace vfps::data

#endif  // VFPS_DATA_SYNTHETIC_H_

#ifndef VFPS_DATA_LIBSVM_LOADER_H_
#define VFPS_DATA_LIBSVM_LOADER_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace vfps::data {

/// \brief Load a LIBSVM-format file ("label idx:value idx:value ...") into a
/// dense Dataset. Several of the paper's datasets (Adult/a9a, IJCNN, SUSY,
/// Web/w8a) are distributed in this format.
///
/// \param num_features 0 means infer from the maximum index seen.
Result<Dataset> LoadLibsvm(const std::string& path, size_t num_features = 0);

/// Parse LIBSVM content from a string (exposed for testing).
Result<Dataset> ParseLibsvm(const std::string& content, size_t num_features = 0);

}  // namespace vfps::data

#endif  // VFPS_DATA_LIBSVM_LOADER_H_

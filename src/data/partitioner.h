#ifndef VFPS_DATA_PARTITIONER_H_
#define VFPS_DATA_PARTITIONER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/synthetic.h"

namespace vfps::data {

/// \brief Vertical partition of the joint feature space: participant p holds
/// the feature columns listed in partition[p]. Column indices may repeat
/// across participants only when duplicates are injected deliberately
/// (the Fig. 6 diversity study).
using VerticalPartition = std::vector<std::vector<size_t>>;

/// \brief Random contiguous-size split, matching the paper's setup
/// ("randomly split each dataset into P vertical partitions based on the
/// number of features"). Every participant receives at least one feature.
Result<VerticalPartition> RandomVerticalPartition(size_t num_features,
                                                  size_t num_participants,
                                                  uint64_t seed);

/// \brief Quality-stratified split used by the selection benchmarks.
///
/// Real vertical consortia are heterogeneous: some members hold rich signal,
/// others hold mostly derived or irrelevant columns. This split reproduces
/// that structure from the generator metadata: informative features are
/// distributed with a geometric skew (earlier participants get more),
/// redundant features (noisy combinations of informative ones held elsewhere)
/// are concentrated on later participants, and noise is spread evenly.
/// The result: participants differ in marginal value AND overlap pairwise,
/// which is exactly the regime where diversity-aware selection wins.
///
/// Caveat: participant widths are intentionally unequal here, and the
/// paper's similarity statistic w(p, s) compares raw aggregated distances,
/// which scale with width — so under this split w partially reflects width
/// rather than content. The paper's own evaluation uses near-equal random
/// splits (PartitionMode::kRandom in the experiment driver), which is what
/// the table benches use.
Result<VerticalPartition> QualityStratifiedPartition(
    const std::vector<FeatureKind>& kinds, size_t num_participants,
    uint64_t seed);

/// \brief Append `count` exact copies of participant `source` (the Fig. 6
/// duplicate-participant injection). Copies hold the same columns.
Result<VerticalPartition> WithDuplicates(const VerticalPartition& base,
                                         size_t source, size_t count);

/// Materialize each participant's local feature matrix X^p.
std::vector<Dataset> MaterializeViews(const Dataset& joint,
                                      const VerticalPartition& partition);

/// \brief Concatenate the columns of the selected participants (training view
/// after participant selection). Selected indices must be distinct.
Result<Dataset> ConcatViews(const Dataset& joint,
                            const VerticalPartition& partition,
                            const std::vector<size_t>& selected);

/// Total feature count held by `selected` participants.
size_t SelectedFeatureCount(const VerticalPartition& partition,
                            const std::vector<size_t>& selected);

/// \brief One row shard: the contiguous instance range [begin, end) a
/// simulated storage node of a party holds. The row-shard axis is orthogonal
/// to the vertical (feature) split above — every party's FeatureBlock is cut
/// into the SAME row ranges, so shard s of every party covers the same
/// instances and per-shard aggregation stays slot-aligned.
struct RowShard {
  size_t begin = 0;
  size_t end = 0;

  size_t rows() const { return end - begin; }
  bool contains(size_t row) const { return row >= begin && row < end; }
};

/// \brief Near-equal contiguous row shards: the first (rows % shards) shards
/// hold one extra row. Deterministic (no seed — contiguity is what makes the
/// range-splittable distance kernels reusable per shard). shards > rows
/// yields trailing empty shards, which the top-k merge treats as identity.
Result<std::vector<RowShard>> MakeRowShards(size_t rows, size_t shards);

/// The shard index holding `row` under MakeRowShards(rows, shards) — O(1)
/// arithmetic, no plan lookup.
size_t ShardOfRow(size_t row, size_t rows, size_t shards);

}  // namespace vfps::data

#endif  // VFPS_DATA_PARTITIONER_H_

#include "data/scaler.h"

#include <cmath>

#include "common/macros.h"

namespace vfps::data {

StandardScaler StandardScaler::Fit(const Dataset& dataset) {
  StandardScaler scaler;
  const size_t n = dataset.num_samples();
  const size_t f = dataset.num_features();
  scaler.means_.assign(f, 0.0);
  scaler.stddevs_.assign(f, 1.0);
  if (n == 0) return scaler;
  for (size_t i = 0; i < n; ++i) {
    const double* row = dataset.Row(i);
    for (size_t j = 0; j < f; ++j) scaler.means_[j] += row[j];
  }
  for (double& m : scaler.means_) m /= static_cast<double>(n);
  std::vector<double> var(f, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = dataset.Row(i);
    for (size_t j = 0; j < f; ++j) {
      const double d = row[j] - scaler.means_[j];
      var[j] += d * d;
    }
  }
  for (size_t j = 0; j < f; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    scaler.stddevs_[j] = sd > 1e-12 ? sd : 1.0;
  }
  return scaler;
}

Status StandardScaler::Transform(Dataset* dataset) const {
  VFPS_CHECK_ARG(dataset->num_features() == means_.size(),
                 "scaler: feature width mismatch");
  for (size_t i = 0; i < dataset->num_samples(); ++i) {
    double* row = dataset->MutableRow(i);
    for (size_t j = 0; j < means_.size(); ++j) {
      row[j] = (row[j] - means_[j]) / stddevs_[j];
    }
  }
  return Status::OK();
}

Status StandardizeSplit(DataSplit* split) {
  const StandardScaler scaler = StandardScaler::Fit(split->train);
  VFPS_RETURN_NOT_OK(scaler.Transform(&split->train));
  if (!split->valid.empty()) VFPS_RETURN_NOT_OK(scaler.Transform(&split->valid));
  if (!split->test.empty()) VFPS_RETURN_NOT_OK(scaler.Transform(&split->test));
  return Status::OK();
}

}  // namespace vfps::data

#include "data/presets.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace vfps::data {

namespace {
// name, domain, paper_rows, base_rows, features, classes, informative,
// redundant, centroid_distance, label_noise, minority_prior.
//
// centroid_distance is tuned so the KNN-on-all-participants accuracy lands
// in the neighborhood of the paper's Table IV column for each dataset (Rice
// ~0.99 is nearly separable, SD ~0.71 is hard). base_rows preserve the
// paper's relative size ordering (SUSY largest, Bank smallest) at one-host
// scale; --scale multiplies them.
const DatasetPreset kPresets[] = {
    {"Bank", "Finance", 10000, 4000, 11, 2, 6, 3, 2.12, 0.02, 0.40},
    {"Credit", "Finance", 30000, 7200, 23, 2, 12, 8, 1.83, 0.03, 0.35},
    {"Phishing", "Internet", 11055, 4400, 68, 2, 30, 30, 3.25, 0.01, 0.45},
    {"Web", "Internet", 64700, 10400, 300, 2, 120, 150, 4.39, 0.004, 0.50},
    {"Rice", "Science", 18185, 5600, 10, 2, 6, 2, 5.10, 0.003, 0.50},
    {"Adult", "Science", 32561, 8000, 123, 2, 50, 55, 1.48, 0.03, 0.30},
    {"IJCNN", "Science", 141691, 16000, 22, 2, 11, 8, 6.18, 0.005, 0.45},
    {"SUSY", "Science", 5000000, 48000, 18, 2, 10, 6, 2.54, 0.04, 0.50},
    {"HDI", "Healthcare", 253661, 20000, 21, 2, 11, 7, 3.55, 0.01, 0.40},
    {"SD", "Healthcare", 991346, 32000, 23, 2, 10, 8, 1.57, 0.05, 0.50},
};
}  // namespace

SyntheticConfig DatasetPreset::MakeConfig(double scale, uint64_t seed) const {
  SyntheticConfig config;
  config.num_samples = std::max<size_t>(
      200, static_cast<size_t>(static_cast<double>(base_rows) * scale));
  config.num_features = features;
  config.num_classes = classes;
  config.num_informative = informative;
  config.num_redundant = redundant;
  config.centroid_distance = centroid_distance;
  config.label_noise = label_noise;
  config.class_priors = {1.0 - minority_prior, minority_prior};
  config.seed = seed;
  return config;
}

const std::vector<DatasetPreset>& PaperDatasets() {
  static const std::vector<DatasetPreset>* presets =
      new std::vector<DatasetPreset>(std::begin(kPresets), std::end(kPresets));
  return *presets;
}

Result<DatasetPreset> FindPreset(const std::string& name) {
  for (const auto& preset : PaperDatasets()) {
    if (preset.name == name) return preset;
  }
  return Status::NotFound(StrFormat("no dataset preset named '%s'", name.c_str()));
}

Result<SyntheticDataset> LoadPreset(const std::string& name, double scale,
                                    uint64_t seed) {
  VFPS_ASSIGN_OR_RETURN(auto preset, FindPreset(name));
  return GenerateClassification(preset.MakeConfig(scale, seed));
}

}  // namespace vfps::data

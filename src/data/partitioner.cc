#include "data/partitioner.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "common/string_util.h"

namespace vfps::data {

Result<VerticalPartition> RandomVerticalPartition(size_t num_features,
                                                  size_t num_participants,
                                                  uint64_t seed) {
  VFPS_CHECK_ARG(num_participants >= 1, "partition: need >= 1 participant");
  VFPS_CHECK_ARG(num_features >= num_participants,
                 "partition: more participants than features");
  Rng rng(seed);
  const auto perm = rng.Permutation(num_features);
  VerticalPartition out(num_participants);
  // Contiguous chunks of near-equal size over the shuffled column order.
  const size_t base = num_features / num_participants;
  const size_t extra = num_features % num_participants;
  size_t pos = 0;
  for (size_t p = 0; p < num_participants; ++p) {
    const size_t take = base + (p < extra ? 1 : 0);
    out[p].assign(perm.begin() + pos, perm.begin() + pos + take);
    pos += take;
  }
  return out;
}

Result<VerticalPartition> QualityStratifiedPartition(
    const std::vector<FeatureKind>& kinds, size_t num_participants,
    uint64_t seed) {
  VFPS_CHECK_ARG(num_participants >= 1, "partition: need >= 1 participant");
  VFPS_CHECK_ARG(kinds.size() >= num_participants,
                 "partition: more participants than features");
  Rng rng(seed);
  std::vector<size_t> informative, redundant, noise;
  for (size_t j = 0; j < kinds.size(); ++j) {
    switch (kinds[j]) {
      case FeatureKind::kInformative:
        informative.push_back(j);
        break;
      case FeatureKind::kRedundant:
        redundant.push_back(j);
        break;
      case FeatureKind::kNoise:
        noise.push_back(j);
        break;
    }
  }
  rng.Shuffle(&informative);
  rng.Shuffle(&redundant);
  rng.Shuffle(&noise);

  VerticalPartition out(num_participants);

  // Informative: geometric skew. Participant p receives a share proportional
  // to r^p with r = 0.6, so early participants carry most of the signal.
  {
    std::vector<double> weights(num_participants);
    double total = 0.0;
    double w = 1.0;
    for (size_t p = 0; p < num_participants; ++p) {
      weights[p] = w;
      total += w;
      w *= 0.6;
    }
    size_t assigned = 0;
    for (size_t p = 0; p < num_participants; ++p) {
      size_t take = static_cast<size_t>(
          static_cast<double>(informative.size()) * weights[p] / total + 0.5);
      take = std::min(take, informative.size() - assigned);
      for (size_t i = 0; i < take; ++i) out[p].push_back(informative[assigned++]);
    }
    // Leftovers (rounding) go to the first participant.
    while (assigned < informative.size()) out[0].push_back(informative[assigned++]);
  }

  // Redundant: concentrated on the second half of the consortium, creating
  // participants whose content is largely derivable from others'.
  {
    const size_t start = num_participants / 2;
    const size_t span = num_participants - start;
    for (size_t i = 0; i < redundant.size(); ++i) {
      out[start + (i % span)].push_back(redundant[i]);
    }
  }

  // Noise: round-robin so everyone has some filler.
  for (size_t i = 0; i < noise.size(); ++i) {
    out[i % num_participants].push_back(noise[i]);
  }

  // Guarantee non-empty views by stealing from the largest participant.
  for (size_t p = 0; p < num_participants; ++p) {
    if (!out[p].empty()) continue;
    size_t richest = 0;
    for (size_t q = 1; q < num_participants; ++q) {
      if (out[q].size() > out[richest].size()) richest = q;
    }
    if (out[richest].size() <= 1) {
      return Status::Internal("partition: cannot make all views non-empty");
    }
    out[p].push_back(out[richest].back());
    out[richest].pop_back();
  }
  return out;
}

Result<VerticalPartition> WithDuplicates(const VerticalPartition& base,
                                         size_t source, size_t count) {
  VFPS_CHECK_ARG(source < base.size(), "duplicates: source out of range");
  VerticalPartition out = base;
  for (size_t i = 0; i < count; ++i) out.push_back(base[source]);
  return out;
}

std::vector<Dataset> MaterializeViews(const Dataset& joint,
                                      const VerticalPartition& partition) {
  std::vector<Dataset> views;
  views.reserve(partition.size());
  for (const auto& columns : partition) {
    views.push_back(joint.SelectColumns(columns));
  }
  return views;
}

Result<Dataset> ConcatViews(const Dataset& joint,
                            const VerticalPartition& partition,
                            const std::vector<size_t>& selected) {
  std::vector<size_t> columns;
  std::vector<bool> seen(partition.size(), false);
  for (size_t p : selected) {
    VFPS_CHECK_ARG(p < partition.size(), "concat: participant out of range");
    VFPS_CHECK_ARG(!seen[p], "concat: duplicate participant in selection");
    seen[p] = true;
    columns.insert(columns.end(), partition[p].begin(), partition[p].end());
  }
  VFPS_CHECK_ARG(!columns.empty(), "concat: empty selection");
  return joint.SelectColumns(columns);
}

size_t SelectedFeatureCount(const VerticalPartition& partition,
                            const std::vector<size_t>& selected) {
  size_t total = 0;
  for (size_t p : selected) {
    if (p < partition.size()) total += partition[p].size();
  }
  return total;
}

Result<std::vector<RowShard>> MakeRowShards(size_t rows, size_t shards) {
  VFPS_CHECK_ARG(shards >= 1, "row-shards: need >= 1 shard");
  std::vector<RowShard> plan;
  plan.reserve(shards);
  const size_t base = rows / shards;
  const size_t extra = rows % shards;  // first `extra` shards get base + 1
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t size = base + (s < extra ? 1 : 0);
    plan.push_back(RowShard{begin, begin + size});
    begin += size;
  }
  return plan;
}

size_t ShardOfRow(size_t row, size_t rows, size_t shards) {
  const size_t base = rows / shards;
  const size_t extra = rows % shards;
  // The first `extra` shards span base + 1 rows each.
  const size_t fat_span = extra * (base + 1);
  if (row < fat_span) return row / (base + 1);
  return extra + (row - fat_span) / base;
}

}  // namespace vfps::data

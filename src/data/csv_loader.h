#ifndef VFPS_DATA_CSV_LOADER_H_
#define VFPS_DATA_CSV_LOADER_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace vfps::data {

/// \brief Options for loading a dense CSV into a Dataset.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Column holding the class label; -1 means the last column.
  int label_column = -1;
};

/// \brief Load a CSV file whose cells are all numeric (labels are rounded to
/// the nearest integer and remapped to a dense 0..C-1 range).
///
/// This is how real copies of the paper's datasets (Bank, Credit, HDI, ...)
/// can be dropped into the benchmarks in place of the synthetic presets.
Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options);

/// Parse CSV content from a string (exposed for testing).
Result<Dataset> ParseCsv(const std::string& content, const CsvOptions& options);

}  // namespace vfps::data

#endif  // VFPS_DATA_CSV_LOADER_H_

#include "data/synthetic.h"

#include <cmath>

#include "common/macros.h"

namespace vfps::data {

namespace {

Status ValidateConfig(const SyntheticConfig& config) {
  VFPS_CHECK_ARG(config.num_samples > 0, "synthetic: num_samples must be > 0");
  VFPS_CHECK_ARG(config.num_features > 0, "synthetic: num_features must be > 0");
  VFPS_CHECK_ARG(config.num_classes >= 2, "synthetic: need >= 2 classes");
  VFPS_CHECK_ARG(config.num_informative > 0, "synthetic: need informative features");
  VFPS_CHECK_ARG(
      config.num_informative + config.num_redundant <= config.num_features,
      "synthetic: informative + redundant exceeds num_features");
  VFPS_CHECK_ARG(config.label_noise >= 0.0 && config.label_noise < 0.5,
                 "synthetic: label_noise must be in [0, 0.5)");
  VFPS_CHECK_ARG(config.centroid_distance > 0.0,
                 "synthetic: centroid_distance must be > 0");
  if (!config.class_priors.empty()) {
    VFPS_CHECK_ARG(
        config.class_priors.size() == static_cast<size_t>(config.num_classes),
        "synthetic: class_priors size mismatch");
  }
  VFPS_CHECK_ARG(config.feature_noise_min > 0.0 &&
                     config.feature_noise_max >= config.feature_noise_min,
                 "synthetic: bad feature noise range");
  return Status::OK();
}

// Draw the frozen model parameters from `rng`. The draw ORDER here is part of
// the reproducibility contract: GenerateClassification continues sampling
// rows from the same rng, so any reordering would silently change every
// dataset ever generated.
detail::SyntheticModel BuildModel(const SyntheticConfig& config, Rng* rng) {
  detail::SyntheticModel m;
  m.n_inf = config.num_informative;
  m.n_red = config.num_redundant;
  m.n_noise = config.num_features - m.n_inf - m.n_red;
  m.latent_dim =
      config.latent_dim > 0
          ? std::min(config.latent_dim, m.n_inf)
          : std::max<size_t>(3, std::min<size_t>(8, m.n_inf / 2));
  m.segments = config.num_segments > 0
                   ? config.num_segments
                   : std::max<size_t>(4, config.num_samples / 600);

  // Class centers in latent space, scaled so the expected pairwise distance
  // matches centroid_distance (random directions: E[D^2] = 2 L sep^2). The
  // label-independent segment scatter inflates the within-class variance
  // that global models (LR/MLP) see, so the separation is stretched by a
  // compromise factor between the local (KNN) and global noise scales.
  const double noise_scale =
      std::sqrt(1.0 + 0.5 * config.segment_spread * config.segment_spread);
  const double sep = config.centroid_distance * noise_scale /
                     std::sqrt(2.0 * static_cast<double>(m.latent_dim));
  m.class_centers.assign(config.num_classes,
                         std::vector<double>(m.latent_dim));
  for (auto& center : m.class_centers) {
    for (double& v : center) v = sep * rng->Normal();
  }
  if (config.num_classes == 2) {
    // Normalize the realized centroid distance exactly (random draws have
    // high variance at low latent dimension, which would make the preset
    // difficulty wobble across seeds).
    double dist2 = 0.0;
    for (size_t d = 0; d < m.latent_dim; ++d) {
      const double diff = m.class_centers[1][d] - m.class_centers[0][d];
      dist2 += diff * diff;
    }
    const double target = config.centroid_distance * noise_scale;
    const double ratio = dist2 > 0 ? target / std::sqrt(dist2) : 1.0;
    for (size_t d = 0; d < m.latent_dim; ++d) {
      const double mid = 0.5 * (m.class_centers[0][d] + m.class_centers[1][d]);
      m.class_centers[0][d] = mid + (m.class_centers[0][d] - mid) * ratio;
      m.class_centers[1][d] = mid + (m.class_centers[1][d] - mid) * ratio;
    }
  }

  // Segment centroids in latent space, each with a tilted class prior (for
  // binary tasks) so that row geometry carries label information.
  m.segment_centers.assign(m.segments, std::vector<double>(m.latent_dim));
  m.segment_class1_prior.resize(m.segments);
  const double base_prior1 =
      config.class_priors.empty() ? 0.5 : config.class_priors[1];
  for (size_t g = 0; g < m.segments; ++g) {
    for (double& v : m.segment_centers[g]) {
      v = config.segment_spread * rng->Normal();
    }
    const double tilt =
        config.num_classes == 2
            ? rng->Uniform(-config.segment_label_tilt, config.segment_label_tilt)
            : 0.0;
    m.segment_class1_prior[g] =
        std::min(0.95, std::max(0.05, base_prior1 + tilt));
  }

  // Sparse unit projection per informative feature: each feature observes
  // only a couple of the latent dimensions, so different features (and hence
  // different vertical slices) cover different parts of the signal. This is
  // the property that makes participant DIVERSITY valuable: a participant
  // whose features cover latent dimensions nobody else observes contributes
  // genuinely new information. Every latent dimension is guaranteed at least
  // one observing feature (round-robin base assignment).
  m.projections.assign(m.n_inf, std::vector<double>(m.latent_dim, 0.0));
  m.feature_noise.resize(m.n_inf);
  for (size_t j = 0; j < m.n_inf; ++j) {
    auto& proj = m.projections[j];
    // Primary dim round-robin + one extra random dim, random signs/weights.
    const size_t d0 = j % m.latent_dim;
    const size_t d1 = rng->NextBounded(m.latent_dim);
    proj[d0] = rng->Normal();
    proj[d1] += 0.6 * rng->Normal();
    double norm = 0.0;
    for (double v : proj) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& v : proj) v /= norm;
    } else {
      proj[d0] = 1.0;
    }
    const double log_lo = std::log(config.feature_noise_min);
    const double log_hi = std::log(config.feature_noise_max);
    m.feature_noise[j] = std::exp(rng->Uniform(log_lo, log_hi));
  }

  // Fixed unit mixing weights for the redundant features.
  m.mix.assign(m.n_red, std::vector<double>(m.n_inf));
  for (auto& row : m.mix) {
    double norm = 0.0;
    for (double& w : row) {
      w = rng->Normal();
      norm += w * w;
    }
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& w : row) w /= norm;
    }
  }

  // Cumulative class priors for sampling.
  m.cumulative.resize(config.num_classes);
  {
    double total = 0.0;
    for (int c = 0; c < config.num_classes; ++c) {
      total += config.class_priors.empty() ? 1.0 : config.class_priors[c];
      m.cumulative[c] = total;
    }
    for (double& v : m.cumulative) v /= total;
  }
  return m;
}

std::vector<FeatureKind> ModelKinds(const detail::SyntheticModel& m) {
  std::vector<FeatureKind> kinds;
  kinds.reserve(m.n_inf + m.n_red + m.n_noise);
  for (size_t j = 0; j < m.n_inf; ++j) kinds.push_back(FeatureKind::kInformative);
  for (size_t j = 0; j < m.n_red; ++j) kinds.push_back(FeatureKind::kRedundant);
  for (size_t j = 0; j < m.n_noise; ++j) kinds.push_back(FeatureKind::kNoise);
  return kinds;
}

// Sample one row from the frozen model: segment, class, latent z, features,
// label noise — in exactly this draw order (shared by the sequential
// generator and the per-row streams). `z` and `x_inf` are caller scratch.
int DrawRow(const SyntheticConfig& config, const detail::SyntheticModel& m,
            Rng* rng, double* row, std::vector<double>* z,
            std::vector<double>* x_inf) {
  // Draw segment, then class from the segment's (possibly tilted) prior.
  const size_t seg_id = rng->NextBounded(m.segments);
  const auto& segment = m.segment_centers[seg_id];
  int y = 0;
  if (config.num_classes == 2) {
    y = rng->Bernoulli(m.segment_class1_prior[seg_id]) ? 1 : 0;
  } else {
    const double u = rng->NextDouble();
    while (y + 1 < config.num_classes && u > m.cumulative[y]) ++y;
  }

  // Latent vector: class offset + segment + unit label-relevant noise.
  for (size_t d = 0; d < m.latent_dim; ++d) {
    (*z)[d] = m.class_centers[y][d] + segment[d] + rng->Normal();
  }

  for (size_t j = 0; j < m.n_inf; ++j) {
    double v = 0.0;
    for (size_t d = 0; d < m.latent_dim; ++d) v += m.projections[j][d] * (*z)[d];
    (*x_inf)[j] = v + m.feature_noise[j] * rng->Normal();
    row[j] = (*x_inf)[j];
  }
  for (size_t j = 0; j < m.n_red; ++j) {
    double v = 0.0;
    for (size_t k = 0; k < m.n_inf; ++k) v += m.mix[j][k] * (*x_inf)[k];
    row[m.n_inf + j] = v + config.redundant_noise * rng->Normal();
  }
  const double intensity = config.intensity_factor * rng->Normal();
  for (size_t j = 0; j < m.n_noise; ++j) {
    row[m.n_inf + m.n_red + j] = rng->Normal() + intensity;
  }

  if (config.label_noise > 0.0 && rng->Bernoulli(config.label_noise)) {
    y = static_cast<int>(rng->NextBounded(config.num_classes));
  }
  return y;
}

// Salt + finalizer for the per-row RNG streams (SplitMix64-style avalanche):
// adjacent row indices must land on statistically independent streams.
constexpr uint64_t kRowStreamSalt = 0x5EEDF10A7B0A75ULL;

uint64_t RowStreamSeed(uint64_t seed, uint64_t row) {
  uint64_t x = seed ^ kRowStreamSalt ^ (row * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

Result<SyntheticDataset> GenerateClassification(const SyntheticConfig& config) {
  VFPS_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  const detail::SyntheticModel m = BuildModel(config, &rng);

  SyntheticDataset out;
  out.data = Dataset(config.num_samples, config.num_features, config.num_classes);
  out.kinds = ModelKinds(m);

  std::vector<double> z(m.latent_dim);
  std::vector<double> x_inf(m.n_inf);
  for (size_t i = 0; i < config.num_samples; ++i) {
    out.data.SetLabel(i,
                      DrawRow(config, m, &rng, out.data.MutableRow(i), &z, &x_inf));
  }
  return out;
}

Result<SyntheticShardStream> SyntheticShardStream::Create(
    const SyntheticConfig& config) {
  VFPS_RETURN_NOT_OK(ValidateConfig(config));
  SyntheticShardStream stream;
  stream.config_ = config;
  Rng rng(config.seed);
  stream.model_ = BuildModel(config, &rng);
  stream.kinds_ = ModelKinds(stream.model_);
  return stream;
}

Result<Dataset> SyntheticShardStream::Rows(size_t begin, size_t end) const {
  VFPS_CHECK_ARG(begin <= end && end <= config_.num_samples,
                 "shard-stream: row range out of bounds");
  Dataset out(end - begin, config_.num_features, config_.num_classes);
  std::vector<double> z(model_.latent_dim);
  std::vector<double> x_inf(model_.n_inf);
  for (size_t i = begin; i < end; ++i) {
    Rng row_rng(RowStreamSeed(config_.seed, i));
    out.SetLabel(i - begin, DrawRow(config_, model_, &row_rng,
                                    out.MutableRow(i - begin), &z, &x_inf));
  }
  return out;
}

}  // namespace vfps::data

#include "data/synthetic.h"

#include <cmath>

#include "common/macros.h"

namespace vfps::data {

Result<SyntheticDataset> GenerateClassification(const SyntheticConfig& config) {
  VFPS_CHECK_ARG(config.num_samples > 0, "synthetic: num_samples must be > 0");
  VFPS_CHECK_ARG(config.num_features > 0, "synthetic: num_features must be > 0");
  VFPS_CHECK_ARG(config.num_classes >= 2, "synthetic: need >= 2 classes");
  VFPS_CHECK_ARG(config.num_informative > 0, "synthetic: need informative features");
  VFPS_CHECK_ARG(
      config.num_informative + config.num_redundant <= config.num_features,
      "synthetic: informative + redundant exceeds num_features");
  VFPS_CHECK_ARG(config.label_noise >= 0.0 && config.label_noise < 0.5,
                 "synthetic: label_noise must be in [0, 0.5)");
  VFPS_CHECK_ARG(config.centroid_distance > 0.0,
                 "synthetic: centroid_distance must be > 0");
  if (!config.class_priors.empty()) {
    VFPS_CHECK_ARG(
        config.class_priors.size() == static_cast<size_t>(config.num_classes),
        "synthetic: class_priors size mismatch");
  }

  Rng rng(config.seed);
  const size_t n_inf = config.num_informative;
  const size_t n_red = config.num_redundant;
  const size_t n_noise = config.num_features - n_inf - n_red;
  const size_t latent_dim =
      config.latent_dim > 0 ? std::min(config.latent_dim, n_inf)
                            : std::max<size_t>(3, std::min<size_t>(8, n_inf / 2));
  const size_t segments =
      config.num_segments > 0 ? config.num_segments
                              : std::max<size_t>(4, config.num_samples / 600);

  // Class centers in latent space, scaled so the expected pairwise distance
  // matches centroid_distance (random directions: E[D^2] = 2 L sep^2). The
  // label-independent segment scatter inflates the within-class variance
  // that global models (LR/MLP) see, so the separation is stretched by a
  // compromise factor between the local (KNN) and global noise scales.
  const double noise_scale =
      std::sqrt(1.0 + 0.5 * config.segment_spread * config.segment_spread);
  const double sep = config.centroid_distance * noise_scale /
                     std::sqrt(2.0 * static_cast<double>(latent_dim));
  std::vector<std::vector<double>> class_centers(
      config.num_classes, std::vector<double>(latent_dim));
  for (auto& center : class_centers) {
    for (double& v : center) v = sep * rng.Normal();
  }
  if (config.num_classes == 2) {
    // Normalize the realized centroid distance exactly (random draws have
    // high variance at low latent dimension, which would make the preset
    // difficulty wobble across seeds).
    double dist2 = 0.0;
    for (size_t d = 0; d < latent_dim; ++d) {
      const double diff = class_centers[1][d] - class_centers[0][d];
      dist2 += diff * diff;
    }
    const double target = config.centroid_distance * noise_scale;
    const double ratio = dist2 > 0 ? target / std::sqrt(dist2) : 1.0;
    for (size_t d = 0; d < latent_dim; ++d) {
      const double mid = 0.5 * (class_centers[0][d] + class_centers[1][d]);
      class_centers[0][d] = mid + (class_centers[0][d] - mid) * ratio;
      class_centers[1][d] = mid + (class_centers[1][d] - mid) * ratio;
    }
  }

  // Segment centroids in latent space, each with a tilted class prior (for
  // binary tasks) so that row geometry carries label information.
  std::vector<std::vector<double>> segment_centers(
      segments, std::vector<double>(latent_dim));
  std::vector<double> segment_class1_prior(segments);
  const double base_prior1 =
      config.class_priors.empty() ? 0.5 : config.class_priors[1];
  for (size_t g = 0; g < segments; ++g) {
    for (double& v : segment_centers[g]) v = config.segment_spread * rng.Normal();
    const double tilt =
        config.num_classes == 2
            ? rng.Uniform(-config.segment_label_tilt, config.segment_label_tilt)
            : 0.0;
    segment_class1_prior[g] = std::min(0.95, std::max(0.05, base_prior1 + tilt));
  }

  // Sparse unit projection per informative feature: each feature observes
  // only a couple of the latent dimensions, so different features (and hence
  // different vertical slices) cover different parts of the signal. This is
  // the property that makes participant DIVERSITY valuable: a participant
  // whose features cover latent dimensions nobody else observes contributes
  // genuinely new information. Every latent dimension is guaranteed at least
  // one observing feature (round-robin base assignment).
  VFPS_CHECK_ARG(config.feature_noise_min > 0.0 &&
                     config.feature_noise_max >= config.feature_noise_min,
                 "synthetic: bad feature noise range");
  std::vector<std::vector<double>> projections(n_inf,
                                               std::vector<double>(latent_dim, 0.0));
  std::vector<double> feature_noise(n_inf);
  for (size_t j = 0; j < n_inf; ++j) {
    auto& proj = projections[j];
    // Primary dim round-robin + one extra random dim, random signs/weights.
    const size_t d0 = j % latent_dim;
    const size_t d1 = rng.NextBounded(latent_dim);
    proj[d0] = rng.Normal();
    proj[d1] += 0.6 * rng.Normal();
    double norm = 0.0;
    for (double v : proj) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& v : proj) v /= norm;
    } else {
      proj[d0] = 1.0;
    }
    const double log_lo = std::log(config.feature_noise_min);
    const double log_hi = std::log(config.feature_noise_max);
    feature_noise[j] = std::exp(rng.Uniform(log_lo, log_hi));
  }

  // Fixed unit mixing weights for the redundant features.
  std::vector<std::vector<double>> mix(n_red, std::vector<double>(n_inf));
  for (auto& row : mix) {
    double norm = 0.0;
    for (double& w : row) {
      w = rng.Normal();
      norm += w * w;
    }
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& w : row) w /= norm;
    }
  }

  // Cumulative class priors for sampling.
  std::vector<double> cumulative(config.num_classes);
  {
    double total = 0.0;
    for (int c = 0; c < config.num_classes; ++c) {
      total += config.class_priors.empty() ? 1.0 : config.class_priors[c];
      cumulative[c] = total;
    }
    for (double& v : cumulative) v /= total;
  }

  SyntheticDataset out;
  out.data = Dataset(config.num_samples, config.num_features, config.num_classes);
  out.kinds.reserve(config.num_features);
  for (size_t j = 0; j < n_inf; ++j) out.kinds.push_back(FeatureKind::kInformative);
  for (size_t j = 0; j < n_red; ++j) out.kinds.push_back(FeatureKind::kRedundant);
  for (size_t j = 0; j < n_noise; ++j) out.kinds.push_back(FeatureKind::kNoise);

  std::vector<double> z(latent_dim);
  std::vector<double> x_inf(n_inf);
  for (size_t i = 0; i < config.num_samples; ++i) {
    // Draw segment, then class from the segment's (possibly tilted) prior.
    const size_t seg_id = rng.NextBounded(segments);
    const auto& segment = segment_centers[seg_id];
    int y = 0;
    if (config.num_classes == 2) {
      y = rng.Bernoulli(segment_class1_prior[seg_id]) ? 1 : 0;
    } else {
      const double u = rng.NextDouble();
      while (y + 1 < config.num_classes && u > cumulative[y]) ++y;
    }

    // Latent vector: class offset + segment + unit label-relevant noise.
    for (size_t d = 0; d < latent_dim; ++d) {
      z[d] = class_centers[y][d] + segment[d] + rng.Normal();
    }

    double* row = out.data.MutableRow(i);
    for (size_t j = 0; j < n_inf; ++j) {
      double v = 0.0;
      for (size_t d = 0; d < latent_dim; ++d) v += projections[j][d] * z[d];
      x_inf[j] = v + feature_noise[j] * rng.Normal();
      row[j] = x_inf[j];
    }
    for (size_t j = 0; j < n_red; ++j) {
      double v = 0.0;
      for (size_t k = 0; k < n_inf; ++k) v += mix[j][k] * x_inf[k];
      row[n_inf + j] = v + config.redundant_noise * rng.Normal();
    }
    const double intensity = config.intensity_factor * rng.Normal();
    for (size_t j = 0; j < n_noise; ++j) {
      row[n_inf + n_red + j] = rng.Normal() + intensity;
    }

    if (config.label_noise > 0.0 && rng.Bernoulli(config.label_noise)) {
      y = static_cast<int>(rng.NextBounded(config.num_classes));
    }
    out.data.SetLabel(i, y);
  }
  return out;
}

}  // namespace vfps::data

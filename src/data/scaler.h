#ifndef VFPS_DATA_SCALER_H_
#define VFPS_DATA_SCALER_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace vfps::data {

/// \brief Per-feature standardization (zero mean, unit variance), fit on the
/// training split and applied to all splits, as the downstream LR/MLP/KNN
/// models expect. Constant features are left centered with unit divisor.
class StandardScaler {
 public:
  static StandardScaler Fit(const Dataset& dataset);

  /// Transform in place; the dataset must have the fitted width.
  Status Transform(Dataset* dataset) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

/// Fit on split->train and transform train/valid/test in place.
Status StandardizeSplit(DataSplit* split);

}  // namespace vfps::data

#endif  // VFPS_DATA_SCALER_H_

#include "data/libsvm_loader.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace vfps::data {

Result<Dataset> ParseLibsvm(const std::string& content, size_t num_features) {
  struct SparseRow {
    double label;
    std::vector<std::pair<size_t, double>> entries;  // 0-based index
  };
  std::vector<SparseRow> rows;
  size_t max_index = 0;

  std::istringstream stream(content);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tokens = SplitString(trimmed, ' ');
    SparseRow row;
    bool have_label = false;
    for (const auto& token : tokens) {
      const std::string_view t = TrimString(token);
      if (t.empty()) continue;
      if (!have_label) {
        VFPS_ASSIGN_OR_RETURN(row.label, ParseDouble(t));
        have_label = true;
        continue;
      }
      const size_t colon = t.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument(
            StrFormat("LIBSVM line %zu: malformed entry", line_no));
      }
      VFPS_ASSIGN_OR_RETURN(int64_t index, ParseInt64(t.substr(0, colon)));
      VFPS_ASSIGN_OR_RETURN(double value, ParseDouble(t.substr(colon + 1)));
      if (index < 1) {
        return Status::InvalidArgument(
            StrFormat("LIBSVM line %zu: indices are 1-based", line_no));
      }
      const size_t idx0 = static_cast<size_t>(index - 1);
      max_index = std::max(max_index, idx0 + 1);
      row.entries.emplace_back(idx0, value);
    }
    if (!have_label) {
      return Status::InvalidArgument(
          StrFormat("LIBSVM line %zu: missing label", line_no));
    }
    rows.push_back(std::move(row));
  }
  VFPS_CHECK_ARG(!rows.empty(), "LIBSVM: no data rows");

  const size_t width = num_features == 0 ? max_index : num_features;
  VFPS_CHECK_ARG(width >= max_index, "LIBSVM: num_features below max index");

  // Remap labels (e.g. -1/+1 or 1..C) to dense 0..C-1.
  std::map<long long, int> label_map;
  for (const auto& row : rows) label_map.emplace(std::llround(row.label), 0);
  int next = 0;
  for (auto& [key, id] : label_map) id = next++;

  Dataset out(rows.size(), width, static_cast<int>(label_map.size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    for (const auto& [idx, value] : rows[i].entries) out.Set(i, idx, value);
    out.SetLabel(i, label_map.at(std::llround(rows[i].label)));
  }
  return out;
}

Result<Dataset> LoadLibsvm(const std::string& path, size_t num_features) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open LIBSVM file: " + path);
  std::ostringstream content;
  content << file.rdbuf();
  return ParseLibsvm(content.str(), num_features);
}

}  // namespace vfps::data

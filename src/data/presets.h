#ifndef VFPS_DATA_PRESETS_H_
#define VFPS_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/synthetic.h"

namespace vfps::data {

/// \brief Synthetic stand-in for one of the paper's ten evaluation datasets
/// (Table III). Feature width, class count, class balance, and difficulty
/// (via centroid_distance) mirror the original; row counts are scaled down so the
/// full experiment grid runs on one machine, preserving the relative size
/// ordering (SUSY largest ... Bank smallest) that drives the timing tables.
struct DatasetPreset {
  std::string name;
  std::string domain;
  size_t paper_rows;
  size_t base_rows;   // rows at --scale 1
  size_t features;    // exactly the paper's width
  int classes;
  size_t informative;
  size_t redundant;
  /// Target Euclidean distance between class centroids in the informative
  /// latent space (unit label-relevant noise); calibrated so the KNN-on-all
  /// accuracy lands near the paper's Table IV value (accuracy ~ Phi(D/2)
  /// before label noise).
  double centroid_distance;
  double label_noise;
  double minority_prior;  // prior of class 1 (0.5 = balanced)

  /// Generator config for this preset at a given row scale.
  SyntheticConfig MakeConfig(double scale, uint64_t seed) const;
};

/// All ten presets in Table III order.
const std::vector<DatasetPreset>& PaperDatasets();

/// Look up a preset by (case-sensitive) name, e.g. "SUSY".
Result<DatasetPreset> FindPreset(const std::string& name);

/// Generate the synthetic stand-in for `name` at the given row scale.
Result<SyntheticDataset> LoadPreset(const std::string& name, double scale,
                                    uint64_t seed);

}  // namespace vfps::data

#endif  // VFPS_DATA_PRESETS_H_

#include "data/dataset.h"

#include <algorithm>

#include "common/macros.h"

namespace vfps::data {

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(std::max(num_classes_, 1), 0);
  for (int y : labels_) {
    if (y >= 0 && y < static_cast<int>(counts.size())) ++counts[y];
  }
  return counts;
}

Dataset Dataset::SelectRows(const std::vector<size_t>& rows) const {
  Dataset out(rows.size(), num_features_, num_classes_);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double* src = Row(rows[i]);
    std::copy(src, src + num_features_, out.MutableRow(i));
    out.SetLabel(i, Label(rows[i]));
  }
  return out;
}

Dataset Dataset::SelectColumns(const std::vector<size_t>& columns) const {
  Dataset out(num_samples_, columns.size(), num_classes_);
  for (size_t i = 0; i < num_samples_; ++i) {
    const double* src = Row(i);
    double* dst = out.MutableRow(i);
    for (size_t c = 0; c < columns.size(); ++c) dst[c] = src[columns[c]];
    out.SetLabel(i, Label(i));
  }
  return out;
}

Result<DataSplit> SplitDataset(const Dataset& dataset, double train_frac,
                               double valid_frac, uint64_t seed) {
  VFPS_CHECK_ARG(train_frac > 0.0 && valid_frac >= 0.0 &&
                     train_frac + valid_frac <= 1.0,
                 "SplitDataset: invalid fractions");
  VFPS_CHECK_ARG(dataset.num_samples() >= 3, "SplitDataset: dataset too small");
  Rng rng(seed);
  const auto perm = rng.Permutation(dataset.num_samples());
  const size_t n_train =
      static_cast<size_t>(train_frac * static_cast<double>(perm.size()));
  const size_t n_valid =
      static_cast<size_t>(valid_frac * static_cast<double>(perm.size()));
  std::vector<size_t> train_rows(perm.begin(), perm.begin() + n_train);
  std::vector<size_t> valid_rows(perm.begin() + n_train,
                                 perm.begin() + n_train + n_valid);
  std::vector<size_t> test_rows(perm.begin() + n_train + n_valid, perm.end());
  DataSplit split;
  split.train = dataset.SelectRows(train_rows);
  split.valid = dataset.SelectRows(valid_rows);
  split.test = dataset.SelectRows(test_rows);
  return split;
}

}  // namespace vfps::data

#include "data/csv_loader.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace vfps::data {

Result<Dataset> ParseCsv(const std::string& content, const CsvOptions& options) {
  std::vector<std::vector<double>> rows;
  std::vector<double> raw_labels;
  std::istringstream stream(content);
  std::string line;
  size_t line_no = 0;
  size_t num_columns = 0;
  bool skipped_header = !options.has_header;

  while (std::getline(stream, line)) {
    ++line_no;
    const std::string_view trimmed = TrimString(line);
    if (trimmed.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const auto cells = SplitString(trimmed, options.delimiter);
    if (num_columns == 0) {
      num_columns = cells.size();
      VFPS_CHECK_ARG(num_columns >= 2, "CSV: need at least 2 columns");
    } else if (cells.size() != num_columns) {
      return Status::InvalidArgument(
          StrFormat("CSV line %zu: expected %zu cells, got %zu", line_no,
                    num_columns, cells.size()));
    }
    const size_t label_col = options.label_column < 0
                                 ? num_columns - 1
                                 : static_cast<size_t>(options.label_column);
    if (label_col >= num_columns) {
      return Status::InvalidArgument("CSV: label column out of range");
    }
    std::vector<double> row;
    row.reserve(num_columns - 1);
    for (size_t c = 0; c < cells.size(); ++c) {
      auto value = ParseDouble(cells[c]);
      if (!value.ok()) {
        return Status::InvalidArgument(
            StrFormat("CSV line %zu column %zu: %s", line_no, c,
                      value.status().message().c_str()));
      }
      if (c == label_col) {
        raw_labels.push_back(*value);
      } else {
        row.push_back(*value);
      }
    }
    rows.push_back(std::move(row));
  }
  VFPS_CHECK_ARG(!rows.empty(), "CSV: no data rows");

  // Remap labels to a dense 0..C-1 range.
  std::map<long long, int> label_map;
  for (double raw : raw_labels) {
    const long long key = std::llround(raw);
    label_map.emplace(key, 0);
  }
  int next = 0;
  for (auto& [key, id] : label_map) id = next++;

  Dataset out(rows.size(), rows[0].size(), static_cast<int>(label_map.size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), out.MutableRow(i));
    out.SetLabel(i, label_map.at(std::llround(raw_labels[i])));
  }
  return out;
}

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open CSV file: " + path);
  std::ostringstream content;
  content << file.rdbuf();
  return ParseCsv(content.str(), options);
}

}  // namespace vfps::data

#ifndef VFPS_DATA_DATASET_H_
#define VFPS_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace vfps::data {

/// \brief Dense labeled dataset: row-major feature matrix plus integer class
/// labels. This is the "joint" view; vertical partitions (each participant's
/// feature slice) are defined on top of it by partitioner.h.
class Dataset {
 public:
  Dataset() = default;
  Dataset(size_t num_samples, size_t num_features, int num_classes)
      : num_samples_(num_samples),
        num_features_(num_features),
        num_classes_(num_classes),
        features_(num_samples * num_features, 0.0),
        labels_(num_samples, 0) {}

  size_t num_samples() const { return num_samples_; }
  size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }
  bool empty() const { return num_samples_ == 0; }

  double At(size_t row, size_t col) const {
    return features_[row * num_features_ + col];
  }
  void Set(size_t row, size_t col, double v) {
    features_[row * num_features_ + col] = v;
  }
  const double* Row(size_t row) const {
    return features_.data() + row * num_features_;
  }
  double* MutableRow(size_t row) { return features_.data() + row * num_features_; }

  int Label(size_t row) const { return labels_[row]; }
  void SetLabel(size_t row, int y) { labels_[row] = y; }
  const std::vector<int>& labels() const { return labels_; }

  /// Per-class sample counts (used for the prior likelihood N_c / N).
  std::vector<size_t> ClassCounts() const;

  /// A new dataset restricted to the given rows (in the given order).
  Dataset SelectRows(const std::vector<size_t>& rows) const;

  /// A new dataset restricted to the given feature columns (in order).
  Dataset SelectColumns(const std::vector<size_t>& columns) const;

 private:
  size_t num_samples_ = 0;
  size_t num_features_ = 0;
  int num_classes_ = 0;
  std::vector<double> features_;
  std::vector<int> labels_;
};

/// \brief Train / validation / test split.
struct DataSplit {
  Dataset train;
  Dataset valid;
  Dataset test;
};

/// \brief Randomly split into train/valid/test with the paper's 80/10/10
/// default. Fractions must sum to <= 1; the remainder goes to test.
Result<DataSplit> SplitDataset(const Dataset& dataset, double train_frac,
                               double valid_frac, uint64_t seed);

}  // namespace vfps::data

#endif  // VFPS_DATA_DATASET_H_

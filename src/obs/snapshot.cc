#include "obs/snapshot.h"

#include <chrono>
#include <utility>

namespace vfps::obs {

PeriodicSnapshotWriter::PeriodicSnapshotWriter(MetricsRegistry* registry,
                                               std::string path,
                                               double interval_seconds)
    : registry_(registry),
      path_(std::move(path)),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 1.0) {}

PeriodicSnapshotWriter::~PeriodicSnapshotWriter() { Stop(); }

void PeriodicSnapshotWriter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread(&PeriodicSnapshotWriter::Run, this);
}

void PeriodicSnapshotWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  WriteOnce();  // Final snapshot so the file reflects the end state.
}

void PeriodicSnapshotWriter::Run() {
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    WriteOnce();
    lock.lock();
  }
}

void PeriodicSnapshotWriter::WriteOnce() {
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  registry_->SetGauge("obs.snapshot.count",
                      static_cast<double>(snapshots_written()));
  // Best-effort: a transient write failure on one tick must not kill the run.
  (void)registry_->WriteJsonFile(path_);
}

}  // namespace vfps::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "obs/trace.h"

namespace vfps::obs {

namespace internal {

size_t ShardIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) &
      (kCounterShards - 1);
  return shard;
}

}  // namespace internal

std::string EncodeLabels(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = name;
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out.push_back('=');
    out += value;
  }
  out.push_back('}');
  return out;
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::LogValue(uint64_t value) {
  ValueShard& shard = value_shards_[internal::ShardIndex()];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.values.size() < kValueLogShardCap) shard.values.push_back(value);
}

Histogram::Summary Histogram::Percentiles() const {
  std::vector<uint64_t> merged;
  for (const ValueShard& shard : value_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.insert(merged.end(), shard.values.begin(), shard.values.end());
  }
  Summary s;
  if (merged.empty()) return s;
  std::sort(merged.begin(), merged.end());
  const size_t n = merged.size();
  // Nearest-rank: p-th percentile is element ceil(p/100 * n), 1-indexed.
  auto rank = [n](uint64_t p) { return (p * n + 99) / 100 - 1; };
  s.p50 = merged[rank(50)];
  s.p95 = merged[rank(95)];
  s.p99 = merged[rank(99)];
  s.max = merged.back();
  return s;
}

std::vector<uint64_t> ExponentialBuckets(uint64_t start, uint64_t factor,
                                         size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  uint64_t edge = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = ExponentialBuckets(1, 4, 12);
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

Counter* MetricsRegistry::GetLabeledCounter(const std::string& name,
                                            const MetricLabels& labels) {
  std::string series = EncodeLabels(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(series);
  if (it != counters_.end()) return it->second.get();
  if (!labels.empty()) {
    size_t& created = label_series_[name];
    if (created >= kMaxLabelSeriesPerName) {
      series = name + "{overflow=true}";
      auto& overflow = counters_[series];
      if (overflow == nullptr) overflow = std::make_unique<Counter>();
      return overflow.get();
    }
    ++created;
  }
  auto& slot = counters_[series];
  slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetLabeledHistogram(const std::string& name,
                                                const MetricLabels& labels,
                                                std::vector<uint64_t> bounds) {
  std::string series = EncodeLabels(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(series);
  if (it != histograms_.end()) return it->second.get();
  if (!labels.empty()) {
    size_t& created = label_series_[name];
    if (created >= kMaxLabelSeriesPerName) {
      series = name + "{overflow=true}";
      auto& overflow = histograms_[series];
      if (overflow == nullptr) {
        if (bounds.empty()) bounds = ExponentialBuckets(1, 4, 12);
        overflow = std::make_unique<Histogram>(std::move(bounds));
      }
      return overflow.get();
    }
    ++created;
  }
  auto& slot = histograms_[series];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = ExponentialBuckets(1, 4, 12);
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  GetGauge(name)->Set(value);
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const MetricLabels& labels) const {
  return CounterValue(EncodeLabels(name, labels));
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterEntries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> entries;
  entries.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    entries.emplace_back(name, counter->Value());
  }
  return entries;
}

void MetricsRegistry::EnableTracing() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrFormat("\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"schema_version\": 2,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += StrFormat(": %llu",
                     static_cast<unsigned long long>(counter->Value()));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += StrFormat(": %.17g", gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    const Histogram::Summary summary = hist->Percentiles();
    out += StrFormat(
        ": {\"count\": %llu, \"sum\": %llu, \"p50\": %llu, \"p95\": %llu, "
        "\"p99\": %llu, \"max\": %llu, \"buckets\": [",
        static_cast<unsigned long long>(hist->Count()),
        static_cast<unsigned long long>(hist->Sum()),
        static_cast<unsigned long long>(summary.p50),
        static_cast<unsigned long long>(summary.p95),
        static_cast<unsigned long long>(summary.p99),
        static_cast<unsigned long long>(summary.max));
    const auto& bounds = hist->bounds();
    for (size_t b = 0; b <= bounds.size(); ++b) {
      if (b > 0) out += ", ";
      if (b < bounds.size()) {
        out += StrFormat("{\"le\": %llu, \"count\": %llu}",
                         static_cast<unsigned long long>(bounds[b]),
                         static_cast<unsigned long long>(hist->BucketCount(b)));
      } else {
        out += StrFormat("{\"le\": \"+inf\", \"count\": %llu}",
                         static_cast<unsigned long long>(hist->BucketCount(b)));
      }
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("metrics: cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != json.size() || !closed_ok) {
    return Status::IOError("metrics: short write to " + path);
  }
  return Status::OK();
}

}  // namespace vfps::obs

#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/sim_clock.h"
#include "common/string_util.h"

namespace vfps::obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread span nesting depth. Thread-local (not per-Tracer) because a
// thread records to at most one tracer at a time in this codebase.
thread_local uint32_t t_span_depth = 0;

}  // namespace

Tracer::Tracer() : origin_ns_(SteadyNowNs()) {}

uint64_t Tracer::NowNs() const { return SteadyNowNs() - origin_ns_; }

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint32_t Tracer::ThreadOrdinal() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const uint32_t ordinal =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string Tracer::ToJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.name < b.name;
            });
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 0, \"tid\": %u, "
        "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"sim_start_s\": %.9f, "
        "\"sim_dur_s\": %.9f, \"depth\": %u}}",
        e.name.c_str(), e.thread, static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.dur_ns) / 1e3, e.sim_start_seconds,
        e.sim_dur_seconds, e.depth);
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

Status Tracer::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("trace: cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != json.size() || !closed_ok) {
    return Status::IOError("trace: short write to " + path);
  }
  return Status::OK();
}

Span::Span(Tracer* tracer, const char* name, const SimClock* clock)
    : tracer_(tracer), name_(name), clock_(clock) {
  if (tracer_ == nullptr) return;
  start_ns_ = tracer_->NowNs();
  sim_start_seconds_ = clock_ != nullptr ? clock_->Total() : 0.0;
  depth_ = t_span_depth++;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;  // Idempotence: a second End() (or the dtor) is a no-op.
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = tracer->NowNs() - start_ns_;
  if (clock_ != nullptr) {
    event.sim_start_seconds = sim_start_seconds_;
    event.sim_dur_seconds = clock_->Total() - sim_start_seconds_;
  }
  event.thread = Tracer::ThreadOrdinal();
  event.depth = depth_;
  tracer->Record(std::move(event));
}

}  // namespace vfps::obs

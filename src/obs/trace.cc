#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/sim_clock.h"
#include "common/string_util.h"

namespace vfps::obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread span nesting depth. Thread-local (not per-Tracer) because a
// thread records to at most one tracer at a time in this codebase.
thread_local uint32_t t_span_depth = 0;

// Per-thread current causal context; saved/restored by Span and TraceScope.
thread_local TraceContext t_current_context;

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer() : origin_ns_(SteadyNowNs()) {}

uint64_t Tracer::NowNs() const { return SteadyNowNs() - origin_ns_; }

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::Instant(
    const char* name,
    std::vector<std::pair<std::string, std::string>> annotations) {
  const TraceContext parent = Current();
  TraceEvent event;
  event.name = name;
  event.start_ns = NowNs();
  event.instant = true;
  event.span_id = NextId();
  event.parent_span_id = parent.span_id;
  // A free-floating instant (no enclosing span) starts its own degenerate
  // trace so every event still belongs to exactly one tree.
  event.trace_id = parent.valid() ? parent.trace_id : event.span_id;
  event.thread = ThreadOrdinal();
  event.depth = t_span_depth;
  event.annotations = std::move(annotations);
  Record(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

TraceContext Tracer::Current() { return t_current_context; }

void Tracer::SetCurrent(const TraceContext& ctx) { t_current_context = ctx; }

uint32_t Tracer::ThreadOrdinal() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const uint32_t ordinal =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string Tracer::ToJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread != b.thread) return a.thread < b.thread;
              if (a.name != b.name) return a.name < b.name;
              return a.span_id < b.span_id;
            });
  std::string out = "{\"schema_version\": 2, \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(&out, e.name);
    if (e.instant) {
      out += StrFormat(
          ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": %u, "
          "\"ts\": %.3f",
          e.thread, static_cast<double>(e.start_ns) / 1e3);
    } else {
      out += StrFormat(
          ", \"ph\": \"X\", \"pid\": 0, \"tid\": %u, \"ts\": %.3f, "
          "\"dur\": %.3f",
          e.thread, static_cast<double>(e.start_ns) / 1e3,
          static_cast<double>(e.dur_ns) / 1e3);
    }
    out += StrFormat(
        ", \"args\": {\"trace_id\": %llu, \"span_id\": %llu, "
        "\"parent_span_id\": %llu, \"sim_start_s\": %.9f, "
        "\"sim_dur_s\": %.9f, \"depth\": %u",
        static_cast<unsigned long long>(e.trace_id),
        static_cast<unsigned long long>(e.span_id),
        static_cast<unsigned long long>(e.parent_span_id), e.sim_start_seconds,
        e.sim_dur_seconds, e.depth);
    if (!e.node.empty()) {
      out += ", \"node\": ";
      AppendJsonString(&out, e.node);
    }
    if (!e.annotations.empty()) {
      out += ", \"annotations\": {";
      bool first_ann = true;
      for (const auto& [key, value] : e.annotations) {
        if (!first_ann) out += ", ";
        first_ann = false;
        AppendJsonString(&out, key);
        out += ": ";
        AppendJsonString(&out, value);
      }
      out += "}";
    }
    out += "}}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

Status Tracer::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("trace: cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed_ok = std::fclose(f) == 0;
  if (written != json.size() || !closed_ok) {
    return Status::IOError("trace: short write to " + path);
  }
  return Status::OK();
}

Span::Span(Tracer* tracer, const char* name, const SimClock* clock)
    : tracer_(tracer), name_(name), clock_(clock) {
  if (tracer_ == nullptr) return;
  start_ns_ = tracer_->NowNs();
  sim_start_seconds_ = clock_ != nullptr ? clock_->Total() : 0.0;
  depth_ = t_span_depth++;
  saved_ = Tracer::Current();
  context_.span_id = tracer_->NextId();
  context_.trace_id = saved_.valid() ? saved_.trace_id : context_.span_id;
  Tracer::SetCurrent(context_);
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;  // Idempotence: a second End() (or the dtor) is a no-op.
  --t_span_depth;
  Tracer::SetCurrent(saved_);
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = tracer->NowNs() - start_ns_;
  if (clock_ != nullptr) {
    event.sim_start_seconds = sim_start_seconds_;
    event.sim_dur_seconds = clock_->Total() - sim_start_seconds_;
  }
  event.thread = Tracer::ThreadOrdinal();
  event.depth = depth_;
  event.trace_id = context_.trace_id;
  event.span_id = context_.span_id;
  event.parent_span_id = saved_.span_id;
  event.node = std::move(node_);
  event.annotations = std::move(annotations_);
  tracer->Record(std::move(event));
}

void Span::SetNode(const std::string& node) {
  if (tracer_ == nullptr) return;
  node_ = node;
}

void Span::Annotate(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  annotations_.emplace_back(key, value);
}

TraceScope::TraceScope(Tracer* tracer, const TraceContext& ctx)
    : active_(tracer != nullptr) {
  if (!active_) return;
  saved_ = Tracer::Current();
  Tracer::SetCurrent(ctx);
}

TraceScope::~TraceScope() {
  if (!active_) return;
  Tracer::SetCurrent(saved_);
}

}  // namespace vfps::obs

#ifndef VFPS_OBS_TRACE_H_
#define VFPS_OBS_TRACE_H_

#include <cstdint>
#include <atomic>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace vfps {
class SimClock;
}  // namespace vfps

namespace vfps::obs {

/// \brief Causal identity of the currently open span.
///
/// `trace_id` names the tree (a root span's trace_id is its own span_id);
/// `span_id` names the node. A zero context means "no span open". The context
/// is carried across threads by TraceScope and across simulated network hops
/// as side-band metadata on SimNetwork envelopes, so one selection run yields
/// one causally connected tree spanning server and party nodes.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return span_id != 0; }
};

/// One completed span (or instant annotation). Wall times are nanoseconds
/// relative to the Tracer's construction; sim times are simulated seconds
/// (0 when the span had no SimClock attached).
struct TraceEvent {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  double sim_start_seconds = 0.0;
  double sim_dur_seconds = 0.0;
  uint32_t thread = 0;  ///< Stable per-thread ordinal (first-use order).
  uint32_t depth = 0;   ///< Nesting depth within the recording thread.
  uint64_t trace_id = 0;        ///< Tree identity (root's own span_id).
  uint64_t span_id = 0;         ///< Unique per event within the Tracer.
  uint64_t parent_span_id = 0;  ///< 0 for roots.
  bool instant = false;         ///< Zero-duration annotation (chrome ph "i").
  std::string node;             ///< Logical node, e.g. "participant-3".
  /// Free-form key/value annotations (retry counts, fault fates, churn
  /// events). Emitted in insertion order.
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// \brief Collector for scoped spans.
///
/// Spans are recorded on End() under a mutex; the instrumented code paths emit
/// a handful of spans per query (phase granularity, not per-element), so the
/// lock is off any hot loop. Export is chrome://tracing "trace event" JSON so
/// the output loads directly in Perfetto.
///
/// Causality: every Span allocates a span_id from this Tracer and parents
/// itself under the calling thread's current TraceContext (see Current()).
/// Fan-out code adopts the parent context on worker threads via TraceScope;
/// the simulated network stamps the sender's context on each envelope so the
/// receive side can attach protocol events to the right branch.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Nanoseconds since this Tracer was constructed (steady clock).
  uint64_t NowNs() const;

  void Record(TraceEvent event);

  /// Record a zero-duration annotated event (chrome "i" phase) parented to
  /// the calling thread's current context. Used for retries, injected fault
  /// fates, and churn events — things with no duration of their own that
  /// must stay attached to the causal tree instead of vanishing into
  /// counters.
  void Instant(const char* name,
               std::vector<std::pair<std::string, std::string>> annotations =
                   {});

  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON (schema_version 2): {"schema_version": 2,
  /// "traceEvents": [{"name": ..., "ph": "X"|"i", "ts": us, "dur": us,
  /// "pid": 0, "tid": thread, "args": {"trace_id": ..., "span_id": ...,
  /// "parent_span_id": ..., "sim_start_s": ..., "sim_dur_s": ...,
  /// "depth": ...}}, ...]}. Events are emitted sorted by (start_ns, thread,
  /// name, span_id) with deterministic key order so the output is stable for
  /// a deterministic workload.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  /// Next unique span/trace id (never 0).
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// The calling thread's current span context (zero if no span is open).
  /// Thread-local, not per-Tracer: a thread records to at most one tracer at
  /// a time in this codebase.
  static TraceContext Current();

  /// Stable ordinal of the calling thread (assigned on first use).
  static uint32_t ThreadOrdinal();

 private:
  friend class Span;
  friend class TraceScope;
  static void SetCurrent(const TraceContext& ctx);

  uint64_t origin_ns_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII scoped span. A null tracer makes construction, End(), and
/// destruction no-ops (one branch each), preserving the zero-cost-when-
/// disabled contract.
///
/// If a SimClock is attached the span also records the simulated time that
/// elapsed while it was open — fed_knn phases charge costs to the per-task
/// clock, so the span shows both wall time and simulated protocol time.
///
/// The span parents itself under Tracer::Current() at construction and
/// installs its own context for the duration of the scope, so nested spans
/// (even ones opened by callees that never saw this object) link correctly.
class Span {
 public:
  Span(Tracer* tracer, const char* name, const SimClock* clock = nullptr);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record the span now instead of at scope exit. Idempotent.
  void End();

  /// This span's causal identity (zero when the tracer is null).
  TraceContext context() const { return context_; }

  /// Label the logical node ("agg-server", "participant-3", ...) this span
  /// executed on. No-op on a null tracer.
  void SetNode(const std::string& node);

  /// Attach a key/value annotation. No-op on a null tracer.
  void Annotate(const std::string& key, const std::string& value);

 private:
  Tracer* tracer_;
  const char* name_;
  const SimClock* clock_;
  uint64_t start_ns_ = 0;
  double sim_start_seconds_ = 0.0;
  uint32_t depth_ = 0;
  TraceContext context_;
  TraceContext saved_;
  std::string node_;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

/// \brief RAII adoption of a TraceContext on the current thread.
///
/// Fan-out code captures Tracer::Current() on the submitting thread and
/// constructs a TraceScope inside the pool task, so spans opened on the
/// worker thread parent under the submitting span instead of starting
/// orphan roots. Null tracer → no-op.
class TraceScope {
 public:
  TraceScope(Tracer* tracer, const TraceContext& ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_;
  TraceContext saved_;
};

/// Open a scoped span for the rest of the enclosing block. `tracer` may be
/// null (no-op). OBS_SPAN_CLOCKED additionally samples `clock` (SimClock*)
/// so the span carries simulated elapsed time.
#define OBS_SPAN(tracer, name) \
  ::vfps::obs::Span VFPS_CONCAT(obs_span_, __LINE__)((tracer), (name))
#define OBS_SPAN_CLOCKED(tracer, name, clock)                            \
  ::vfps::obs::Span VFPS_CONCAT(obs_span_, __LINE__)((tracer), (name), \
                                                     (clock))

}  // namespace vfps::obs

#endif  // VFPS_OBS_TRACE_H_

#ifndef VFPS_OBS_TRACE_H_
#define VFPS_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace vfps {
class SimClock;
}  // namespace vfps

namespace vfps::obs {

/// One completed span. Wall times are nanoseconds relative to the Tracer's
/// construction; sim times are simulated seconds (0 when the span had no
/// SimClock attached).
struct TraceEvent {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  double sim_start_seconds = 0.0;
  double sim_dur_seconds = 0.0;
  uint32_t thread = 0;  ///< Stable per-thread ordinal (first-use order).
  uint32_t depth = 0;   ///< Nesting depth within the recording thread.
};

/// \brief Collector for scoped spans.
///
/// Spans are recorded on End() under a mutex; the instrumented code paths emit
/// a handful of spans per query (phase granularity, not per-element), so the
/// lock is off any hot loop. Export is chrome://tracing "trace event" JSON so
/// the output loads directly in Perfetto.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Nanoseconds since this Tracer was constructed (steady clock).
  uint64_t NowNs() const;

  void Record(TraceEvent event);

  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents": [{"name": ..., "ph": "X",
  /// "ts": us, "dur": us, "pid": 0, "tid": thread, "args": {...}}, ...]}.
  /// Events are emitted sorted by (start_ns, thread, name) so the output is
  /// stable for a deterministic workload.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  /// Stable ordinal of the calling thread (assigned on first use).
  static uint32_t ThreadOrdinal();

 private:
  uint64_t origin_ns_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII scoped span. A null tracer makes construction, End(), and
/// destruction no-ops (one branch each), preserving the zero-cost-when-
/// disabled contract.
///
/// If a SimClock is attached the span also records the simulated time that
/// elapsed while it was open — fed_knn phases charge costs to the per-task
/// clock, so the span shows both wall time and simulated protocol time.
class Span {
 public:
  Span(Tracer* tracer, const char* name, const SimClock* clock = nullptr);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record the span now instead of at scope exit. Idempotent.
  void End();

 private:
  Tracer* tracer_;
  const char* name_;
  const SimClock* clock_;
  uint64_t start_ns_ = 0;
  double sim_start_seconds_ = 0.0;
  uint32_t depth_ = 0;
};

/// Open a scoped span for the rest of the enclosing block. `tracer` may be
/// null (no-op). OBS_SPAN_CLOCKED additionally samples `clock` (SimClock*)
/// so the span carries simulated elapsed time.
#define OBS_SPAN(tracer, name) \
  ::vfps::obs::Span VFPS_CONCAT(obs_span_, __LINE__)((tracer), (name))
#define OBS_SPAN_CLOCKED(tracer, name, clock)                            \
  ::vfps::obs::Span VFPS_CONCAT(obs_span_, __LINE__)((tracer), (name), \
                                                     (clock))

}  // namespace vfps::obs

#endif  // VFPS_OBS_TRACE_H_

#ifndef VFPS_OBS_SNAPSHOT_H_
#define VFPS_OBS_SNAPSHOT_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace vfps::obs {

/// \brief Background thread that writes a MetricsRegistry JSON snapshot to a
/// file every `interval_seconds`, for watching long runs from outside the
/// process (`vfps_cli run --metrics-interval=N`).
///
/// Each tick overwrites `path` with the current registry ToJson() — the same
/// schema_version-2 document the final `--metrics-out` write produces, so
/// tooling reads one format. The tick count is exported as the gauge
/// `obs.snapshot.count` (a gauge, not a counter, so the wall-clock-dependent
/// tick count never perturbs counter-determinism comparisons across runs).
///
/// Start() spawns the thread; Stop() (or the destructor) joins it after one
/// final write, so the file always reflects the end state. The registry must
/// outlive the writer.
class PeriodicSnapshotWriter {
 public:
  PeriodicSnapshotWriter(MetricsRegistry* registry, std::string path,
                         double interval_seconds);
  ~PeriodicSnapshotWriter();
  PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
  PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

  void Start();
  /// Idempotent; writes one final snapshot before returning.
  void Stop();

  uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void WriteOnce();

  MetricsRegistry* registry_;
  std::string path_;
  double interval_seconds_;
  std::atomic<uint64_t> snapshots_written_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace vfps::obs

#endif  // VFPS_OBS_SNAPSHOT_H_

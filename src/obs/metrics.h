#ifndef VFPS_OBS_METRICS_H_
#define VFPS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace vfps::obs {

class Tracer;

/// Label set for a dimensioned metric: key/value pairs like
/// {{"party", "3"}, {"phase", "aggregate"}}. Keys and values must match
/// [A-Za-z0-9_.:-]+ (no braces, commas, '=' or quotes — they are embedded
/// verbatim in the flat series name). Order does not matter; encoding sorts
/// by key.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical flat series name: `name{k1=v1,k2=v2}` with keys sorted
/// lexicographically, so {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}}
/// address the same series. Empty labels return `name` unchanged.
std::string EncodeLabels(const std::string& name, const MetricLabels& labels);

/// Per-base-name cap on distinct label series. The label dimensions used in
/// this codebase are all naturally bounded (party index, phase name, algo,
/// cache hit/miss); the cap is a backstop against an unbounded label sneaking
/// in, not a tuning knob. Past the cap, new series collapse into
/// `name{overflow=true}` so totals are still conserved.
inline constexpr size_t kMaxLabelSeriesPerName = 64;

/// Number of per-thread shards a Counter stripes its value across. A power of
/// two so the shard index is a cheap mask.
inline constexpr size_t kCounterShards = 16;

namespace internal {
/// Stable shard index of the calling thread (assigned on first use, reused for
/// the thread's lifetime). Two threads may share a shard; correctness never
/// depends on exclusivity, sharding only spreads cache-line traffic.
size_t ShardIndex();
}  // namespace internal

/// \brief Monotonic event counter, striped across per-thread shards.
///
/// Thread-safety/determinism contract: Add() is safe from any thread (each
/// thread hits its own cache-line-padded shard with a relaxed atomic add) and
/// Value() merges the shards by summing them in fixed shard order. Because
/// shard merging is a sum of non-negative integers, the merged total depends
/// only on the multiset of Add() calls — never on which thread issued them —
/// so a workload whose *event set* is thread-count-invariant (the guarantee
/// every parallel path in this codebase already makes) reports identical
/// totals at any --threads value.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    cells_[internal::ShardIndex()].v.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  /// Merged total over all shards. May be called concurrently with Add();
  /// a concurrent read observes some prefix of the in-flight increments.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zero every shard. Only call while no thread is concurrently Add()ing.
  void Reset() {
    for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCounterShards> cells_{};
};

/// \brief Last-write-wins instantaneous value. Safe to Set()/Value() from any
/// thread; deterministic only when set from a single-threaded context (which
/// is how the pipeline uses it — gauges record run-level facts, not events).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { v_.store(value, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief Fixed-bucket histogram over non-negative integer observations
/// (byte sizes, candidate counts, latencies in nanoseconds).
///
/// `bounds` are inclusive upper bucket edges in strictly ascending order; an
/// implicit +inf bucket catches everything above the last edge. Buckets,
/// count, and sum are Counters, so the same shard-merge determinism contract
/// applies: totals are identical at any thread count for a thread-count-
/// invariant event set.
///
/// Beyond the buckets, every recorded value is also appended to a per-shard
/// log (mutex per shard, bounded at kValueLogShardCap entries per shard) so
/// Percentiles() can report *exact* p50/p95/p99/max from the merged multiset.
/// Because the merge sorts the union of all shard logs, the summary depends
/// only on the multiset of recorded values, preserving the thread-count-
/// invariance contract while all shards stay under their cap. Instrumented
/// sites record at per-query / per-selection-job granularity (thousands of
/// values, not millions), so the caps are never the binding constraint in
/// practice; a saturated shard keeps counting in the buckets but stops
/// extending the exact log.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    buckets_[b].Add(1);
    count_.Add(1);
    sum_.Add(value);
    LogValue(value);
  }

  uint64_t Count() const { return count_.Value(); }
  uint64_t Sum() const { return sum_.Value(); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Count in bucket `i`; i == bounds().size() is the +inf bucket.
  uint64_t BucketCount(size_t i) const { return buckets_[i].Value(); }

  /// Exact summary over the logged values (nearest-rank percentiles).
  /// All-zero when nothing was recorded.
  struct Summary {
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
  };
  Summary Percentiles() const;

  /// Per-shard cap on the exact-value log (the bucket counters are never
  /// capped). 16 shards x 65536 values covers every workload this pipeline
  /// records at histogram granularity.
  static constexpr size_t kValueLogShardCap = 65536;

 private:
  void LogValue(uint64_t value);

  struct alignas(64) ValueShard {
    mutable std::mutex mu;
    std::vector<uint64_t> values;
  };

  std::vector<uint64_t> bounds_;
  std::vector<Counter> buckets_;  // bounds_.size() + 1 (last = +inf)
  Counter count_;
  Counter sum_;
  std::array<ValueShard, kCounterShards> value_shards_;
};

/// Bucket edges `start, start*factor, ...` (count edges), for Histogram.
std::vector<uint64_t> ExponentialBuckets(uint64_t start, uint64_t factor,
                                         size_t count);

/// \brief Process-wide named-metric registry with optional tracing.
///
/// The registry is the opt-in switch of the observability layer: every
/// instrumented component holds a `MetricsRegistry*` that defaults to
/// nullptr, and a disabled registry costs exactly one branch on that null
/// pointer per instrumentation site (bench_obs_overhead pins this down).
/// When attached, instrumentation sites cache `Counter*`/`Histogram*`
/// handles once (Get* takes a mutex; Add()/Record() never does).
///
/// Metric naming scheme: dot-separated `<layer>.<event>[.<unit>]`, e.g.
/// `he.encrypt.count`, `net.bytes_sent`, `topk.fagin.sorted_access_depth`
/// (see docs/ARCHITECTURE.md, "Observability").
///
/// Thread-safety: Get*/SetGauge/CounterValue/ToJson may be called from any
/// thread. Handles returned by Get* are stable for the registry's lifetime.
/// ToJson() output is deterministic: metrics are emitted in name order and
/// values are shard-merged sums.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The first call decides a histogram's bucket bounds;
  /// later calls with different bounds return the existing instance.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds = {});

  /// Labeled (dimensioned) variants: find-or-create the series
  /// `name{k=v,...}` (see EncodeLabels). Distinct series per base name are
  /// capped at kMaxLabelSeriesPerName; past the cap the returned handle is
  /// the shared `name{overflow=true}` series, so totals stay conserved and a
  /// runaway label cannot blow up the registry. The returned handle obeys
  /// the same shard-merge determinism contract as the unlabeled metrics.
  Counter* GetLabeledCounter(const std::string& name,
                             const MetricLabels& labels);
  Histogram* GetLabeledHistogram(const std::string& name,
                                 const MetricLabels& labels,
                                 std::vector<uint64_t> bounds = {});

  void SetGauge(const std::string& name, double value);

  /// Current merged value of a counter, 0 if it was never created.
  uint64_t CounterValue(const std::string& name) const;
  uint64_t CounterValue(const std::string& name,
                        const MetricLabels& labels) const;

  /// Every counter series (labeled and unlabeled) with its merged value, in
  /// lexicographic name order. This is the surface the thread-determinism
  /// tests compare across --threads values: the full multiset of series
  /// names AND totals must be bit-identical.
  std::vector<std::pair<std::string, uint64_t>> CounterEntries() const;

  /// Attach a span collector; tracer() stays nullptr (and every OBS_SPAN is a
  /// no-op) until this is called.
  void EnableTracing();
  Tracer* tracer() const { return tracer_.get(); }

  /// Deterministic JSON snapshot (schema_version 2): {"schema_version": 2,
  /// "counters": {...}, "gauges": {...}, "histograms": {...}}, keys in
  /// lexicographic order; each histogram carries exact p50/p95/p99/max next
  /// to its buckets.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  /// Distinct label series created per base name (cardinality-cap state).
  std::map<std::string, size_t> label_series_;
  std::unique_ptr<Tracer> tracer_;
};

}  // namespace vfps::obs

#endif  // VFPS_OBS_METRICS_H_

#ifndef VFPS_CORE_EXPERIMENT_H_
#define VFPS_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/selector.h"
#include "ml/classifier.h"
#include "net/fault.h"
#include "vfl/split_train.h"

namespace vfps::core {

/// Which HE backend the experiment instantiates. Accuracy-focused benches use
/// kPlain for speed (the cost model makes simulated times backend-agnostic);
/// protocol-focused benches run real CKKS.
enum class HeBackendKind { kCkks, kPaillier, kPlain };

const char* HeBackendKindName(HeBackendKind kind);

/// How the joint feature space is split across participants.
enum class PartitionMode {
  kQualityStratified,  // heterogeneous quality + overlap (selection benches)
  kRandom,             // the paper's uniform random split (diversity study)
};

/// \brief One cell of the paper's evaluation grid: a dataset, a consortium
/// shape, a selection method, and a downstream model.
struct ExperimentConfig {
  std::string dataset = "Bank";
  /// When non-empty, load this CSV file (numeric cells, label in the last
  /// column) instead of generating the `dataset` preset — the path for
  /// running the pipeline on real copies of the paper's datasets. CSV runs
  /// always use random vertical partitions (no feature-kind metadata).
  std::string csv_path;
  double scale = 1.0;            // row-count multiplier on the preset
  size_t participants = 4;       // P (before duplicate injection)
  size_t select = 2;             // |S| participants to keep
  SelectionMethod method = SelectionMethod::kVfpsSm;
  ml::ModelKind model = ml::ModelKind::kLogReg;

  HeBackendKind backend = HeBackendKind::kPlain;
  /// Key size for the Paillier backend. 1024 is the realistic default; the
  /// HE-backend ablation drops to 512 to keep its (one ciphertext per value,
  /// that is the point) demonstration fast.
  size_t paillier_modulus_bits = 1024;
  /// CKKS slot layout: kPacked (production, n/2 values per ciphertext) or
  /// kScalar (one value per ciphertext — the ablation baseline that measures
  /// what slot packing saves).
  he::CkksPacking ckks_packing = he::CkksPacking::kPacked;
  vfl::FedKnnConfig knn;                 // oracle settings
  ml::ClassifierOptions classifier;      // downstream hyper-parameters
  net::CostModel cost;                   // simulated-deployment calibration

  /// Fig. 6 diversity study: append `duplicates` cloned participants to the
  /// consortium before selection. With round_robin (the paper's protocol of
  /// "incrementally adding participants with replicated data"), duplicate i
  /// clones participant (i mod P); otherwise all clone `duplicate_source`.
  size_t duplicate_source = 0;
  size_t duplicates = 0;
  bool duplicates_round_robin = true;
  PartitionMode partition = PartitionMode::kQualityStratified;

  uint64_t seed = 42;
  size_t utility_queries = 32;           // SHAPLEY / VF-MINE query budget
  size_t shapley_exact_limit = 12;
  size_t shapley_mc_permutations = 16;

  /// Worker threads for the encrypted-KNN pipeline. 1 (default) runs fully
  /// serial; 0 means "use the hardware concurrency"; N > 1 creates an
  /// N-thread pool shared by the selection phase. Results are bit-identical
  /// at any value — only wall_seconds changes.
  size_t num_threads = 1;

  /// Seeded network-fault plan (CLI `--fault-spec`). The zero default means
  /// no plan is attached and the run is bit-identical to pre-fault-injection
  /// behavior. Faults the retry layer absorbs leave selection output
  /// unchanged; a participant crash triggers graceful degradation (see
  /// VfpsSmSelector). The schedule is a pure function of (faults, fault_seed)
  /// at any thread count.
  net::FaultSpec faults;
  uint64_t fault_seed = 0;  // CLI `--fault-seed`

  /// Selection checkpointing (VFPS-SM variants only; see core/checkpoint.h).
  /// `checkpoint_out`: after a successful selection, serialize its state to
  /// this path. `resume_from`: load a prior checkpoint and continue from it —
  /// the oracle phase is skipped and the greedy scan resumes. Empty (default)
  /// disables both. CLI `--checkpoint-out` / `--resume-from`.
  std::string checkpoint_out;
  std::string resume_from;

  /// Optional metrics/tracing sink (CLI `--metrics-out` / `--trace-out`).
  /// When non-null, the deployment objects (HE backend, network, selector)
  /// publish their counters and spans here; run-level facts are added as
  /// gauges. Borrowed; must outlive RunExperiment. nullptr disables all
  /// observability (the default, and effectively free).
  obs::MetricsRegistry* obs = nullptr;
};

/// \brief Everything a table/figure needs about one experiment run.
struct ExperimentResult {
  SelectionOutcome selection;
  vfl::TrainingOutcome training;
  double selection_sim_seconds = 0.0;
  double training_sim_seconds = 0.0;
  double total_sim_seconds = 0.0;
  double wall_seconds = 0.0;  // real time this run took on this host
  size_t rows = 0;            // training rows after the split
  size_t features = 0;
  size_t consortium_size = 0;  // P after duplicate injection
  /// Injected faults that fired during the run (all zeros without a fault
  /// plan). Quarantined participants are in selection.quarantined.
  net::FaultStats faults;
};

/// \brief Run the full pipeline for one grid cell: generate the dataset
/// preset, split 80/10/10, standardize, build the quality-stratified vertical
/// partition (+ optional duplicates), select participants with the chosen
/// method over the simulated encrypted deployment, then train and evaluate
/// the downstream model on the selected sub-consortium.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

}  // namespace vfps::core

#endif  // VFPS_CORE_EXPERIMENT_H_

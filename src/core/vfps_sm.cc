#include "core/vfps_sm.h"

#include <algorithm>

#include "common/macros.h"

namespace vfps::core {

Result<SelectionOutcome> VfpsSmSelector::Select(const SelectionContext& ctx,
                                                size_t target) {
  VFPS_RETURN_NOT_OK(ValidateContext(ctx, target));
  const double clock_before = ctx.clock->Total();

  vfl::FederatedKnnOracle oracle(&ctx.split->train, ctx.partition, ctx.backend,
                                 ctx.network, ctx.cost, ctx.clock, ctx.pool);
  vfl::FedKnnConfig knn = ctx.knn;
  knn.mode = mode_;
  knn.seed = ctx.seed;

  SelectionOutcome outcome;
  VFPS_ASSIGN_OR_RETURN(auto neighborhoods, oracle.Run(knn, &outcome.knn_stats));
  VFPS_ASSIGN_OR_RETURN(
      last_similarity_,
      BuildSimilarity(neighborhoods, ctx.partition->size(), ctx.pool));

  KnnSubmodularFunction f(last_similarity_);
  const GreedyResult greedy =
      lazy_greedy_ ? LazyGreedyMaximize(f, target) : GreedyMaximize(f, target);
  // The greedy pass runs at the leader over the P x P similarity matrix;
  // its cost is P^2 per marginal-gain evaluation.
  ctx.clock->Advance(
      CostCategory::kCompute,
      static_cast<double>(greedy.evaluations) *
          static_cast<double>(ctx.partition->size()) * ctx.cost->compare_seconds);

  outcome.scores.assign(ctx.partition->size(), 0.0);
  for (size_t i = 0; i < greedy.selected.size(); ++i) {
    outcome.scores[greedy.selected[i]] = greedy.gains[i];
  }
  outcome.selected = greedy.selected;
  std::sort(outcome.selected.begin(), outcome.selected.end());
  outcome.sim_seconds = ctx.clock->Total() - clock_before;
  return outcome;
}

}  // namespace vfps::core

#include "core/vfps_sm.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vfps::core {

Result<SelectionOutcome> VfpsSmSelector::Select(const SelectionContext& ctx,
                                                size_t target) {
  VFPS_RETURN_NOT_OK(ValidateContext(ctx, target));
  const double clock_before = ctx.clock->Total();
  const size_t p = ctx.partition->size();
  obs::Tracer* const tracer =
      ctx.obs == nullptr ? nullptr : ctx.obs->tracer();

  vfl::FederatedKnnOracle oracle(&ctx.split->train, ctx.partition, ctx.backend,
                                 ctx.network, ctx.cost, ctx.clock, ctx.pool,
                                 ctx.obs);
  vfl::FedKnnConfig knn = ctx.knn;
  knn.mode = mode_;
  knn.seed = ctx.seed;

  // Run the oracle; on a participant crash, quarantine the dead and rerun
  // over the survivors (a second crash during the rerun degrades again).
  // Only participants (ids >= 1) are expendable: a dead leader or server is
  // unrecoverable and the error propagates.
  SelectionOutcome outcome;
  obs::Span span_oracle(tracer, "select.oracle", ctx.clock);
  Result<std::vector<vfl::QueryNeighborhood>> run = oracle.Run(knn, &outcome.knn_stats);
  while (!run.ok() && run.status().IsPeerDead()) {
    const std::vector<net::NodeId> dead = outcome.knn_stats.dead_nodes;
    bool recoverable = !dead.empty();
    for (net::NodeId d : dead) {
      recoverable = recoverable && d >= 1 && static_cast<size_t>(d) < p;
    }
    if (!recoverable) return run.status();
    for (net::NodeId d : dead) {
      const auto id = static_cast<size_t>(d);
      if (std::find(knn.quarantined.begin(), knn.quarantined.end(), id) ==
          knn.quarantined.end()) {
        knn.quarantined.push_back(id);
      }
    }
    std::sort(knn.quarantined.begin(), knn.quarantined.end());
    if (knn.quarantined.size() + 2 > p) return run.status();  // < 2 survivors
    VFPS_LOG(Warning) << name() << ": participant crash mid-oracle ("
                      << run.status().ToString() << "); quarantining "
                      << knn.quarantined.size()
                      << " participant(s) and rerunning over survivors";
    if (ctx.obs != nullptr) {
      ctx.obs->GetCounter("select.quarantine.events")->Add(1);
    }
    outcome.knn_stats = vfl::FedKnnStats{};
    run = oracle.Run(knn, &outcome.knn_stats);
  }
  if (!run.ok()) return run.status();
  span_oracle.End();
  if (ctx.obs != nullptr && !knn.quarantined.empty()) {
    ctx.obs->GetCounter("select.quarantine.participants")
        ->Add(knn.quarantined.size());
  }
  const std::vector<vfl::QueryNeighborhood> neighborhoods = run.MoveValueUnsafe();
  outcome.quarantined = knn.quarantined;

  // Similarity + greedy over the survivors. With no quarantine this is the
  // pristine P-sized path, bit-identical to the fault-free run.
  std::vector<size_t> survivors;
  survivors.reserve(p - outcome.quarantined.size());
  for (size_t id = 0; id < p; ++id) {
    if (std::find(outcome.quarantined.begin(), outcome.quarantined.end(), id) ==
        outcome.quarantined.end()) {
      survivors.push_back(id);
    }
  }

  obs::Span span_sim(tracer, "select.similarity", ctx.clock);
  if (outcome.quarantined.empty()) {
    VFPS_ASSIGN_OR_RETURN(last_similarity_,
                          BuildSimilarity(neighborhoods, p, ctx.pool));
  } else {
    // Compact each neighborhood's per-participant aggregates to survivor
    // positions so the matrix is indexed 0..|survivors|-1.
    std::vector<vfl::QueryNeighborhood> compact = neighborhoods;
    for (vfl::QueryNeighborhood& hood : compact) {
      std::vector<double> dt;
      dt.reserve(survivors.size());
      for (size_t id : survivors) dt.push_back(hood.per_party_dt[id]);
      hood.per_party_dt = std::move(dt);
    }
    VFPS_ASSIGN_OR_RETURN(
        last_similarity_,
        BuildSimilarity(compact, survivors.size(), ctx.pool));
  }

  span_sim.End();

  obs::Span span_greedy(tracer, "select.greedy", ctx.clock);
  KnnSubmodularFunction f(last_similarity_);
  const size_t effective_target = std::min(target, survivors.size());
  const GreedyResult greedy = lazy_greedy_
                                  ? LazyGreedyMaximize(f, effective_target)
                                  : GreedyMaximize(f, effective_target);
  // The greedy pass runs at the leader over the survivor-sized similarity
  // matrix; its cost is |survivors|^2 per marginal-gain evaluation.
  ctx.clock->Advance(CostCategory::kCompute,
                     static_cast<double>(greedy.evaluations) *
                         static_cast<double>(survivors.size()) *
                         ctx.cost->compare_seconds);
  span_greedy.End();
  if (ctx.obs != nullptr) {
    ctx.obs->GetCounter("select.greedy.evaluations")->Add(greedy.evaluations);
  }

  // Map survivor positions back to original participant ids; quarantined
  // slots keep a 0.0 score.
  outcome.scores.assign(p, 0.0);
  outcome.selected.clear();
  outcome.selected.reserve(greedy.selected.size());
  for (size_t i = 0; i < greedy.selected.size(); ++i) {
    const size_t id = survivors[greedy.selected[i]];
    outcome.scores[id] = greedy.gains[i];
    outcome.selected.push_back(id);
  }
  std::sort(outcome.selected.begin(), outcome.selected.end());
  outcome.sim_seconds = ctx.clock->Total() - clock_before;
  return outcome;
}

}  // namespace vfps::core

#include "core/vfps_sm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vfl/selection_cache.h"

namespace vfps::core {

namespace {

bool Contains(const std::vector<size_t>& v, size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

void SortedInsert(std::vector<size_t>* v, size_t x) {
  if (!Contains(*v, x)) {
    v->insert(std::upper_bound(v->begin(), v->end(), x), x);
  }
}

std::vector<uint64_t> ToU64(const std::vector<size_t>& v) {
  return std::vector<uint64_t>(v.begin(), v.end());
}

std::vector<size_t> ToSizes(const std::vector<uint64_t>& v) {
  return std::vector<size_t>(v.begin(), v.end());
}

}  // namespace

Result<SelectionOutcome> VfpsSmSelector::Select(const SelectionContext& ctx,
                                                size_t target) {
  VFPS_RETURN_NOT_OK(ValidateContext(ctx, target));
  Stopwatch job_watch;
  const double clock_before = ctx.clock->Total();
  const size_t p = ctx.partition->size();
  const size_t n = ctx.split->train.num_samples();
  obs::Tracer* const tracer =
      ctx.obs == nullptr ? nullptr : ctx.obs->tracer();

  vfl::FederatedKnnOracle oracle(&ctx.split->train, ctx.partition, ctx.backend,
                                 ctx.network, ctx.cost, ctx.clock, ctx.pool,
                                 ctx.obs);
  vfl::FedKnnConfig knn = ctx.knn;
  knn.mode = mode_;
  knn.seed = ctx.seed;

  SelectionOutcome outcome;
  std::vector<vfl::QueryNeighborhood> neighborhoods;

  // --- Resume path: a compatible checkpoint replaces the oracle phase. ---
  if (ctx.resume != nullptr) {
    const SelectionCheckpoint& ckp = *ctx.resume;
    VFPS_RETURN_NOT_OK(ckp.CompatibleWith(
        ctx.seed, static_cast<int64_t>(mode_), knn.k, knn.num_queries,
        knn.fagin_batch, knn.query_group, n, p, knn.shards,
        knn.prefilter_clusters));
    // Re-derive the per-party digests from the stored d_T streams; a frame
    // that decoded but drifted from its own digests is rejected.
    const std::vector<uint32_t> digests =
        SelectionCheckpoint::ComputePartyDigests(ckp.neighborhoods, p);
    if (digests != ckp.party_digests) {
      return Status::Corrupt(
          "checkpoint: per-party d_T digests do not match the stored "
          "neighborhoods");
    }
    neighborhoods = ckp.neighborhoods;
    knn.quarantined = ToSizes(ckp.quarantined);
    knn.absent = ToSizes(ckp.absent);
    knn.joined = ToSizes(ckp.joined);
    knn.healed = ToSizes(ckp.healed);
    if (ctx.obs != nullptr) {
      ctx.obs->GetCounter("select.checkpoint.resumed")->Add(1);
    }
  } else {
    // --- Oracle phase with churn handling. ---
    // A fault plan with join= rules means some participants are not yet part
    // of the consortium: they start absent and are spliced in when a run
    // observes their join threshold.
    if (ctx.network->faults_enabled()) {
      const net::FaultSpec* spec = ctx.network->fault_spec();
      for (net::NodeId node : spec->InitialAbsentees()) {
        const auto id = static_cast<size_t>(node);
        if (node >= 1 && id < p && !Contains(knn.joined, id)) {
          SortedInsert(&knn.absent, id);
        }
      }
    }

    // The contribution cache turns every rerun into an incremental repair:
    // only the membership delta recomputes. Attached only under a fault plan
    // so the pristine path stays byte-for-byte untouched.
    vfl::SelectionCache cache;
    if (ctx.network->faults_enabled()) oracle.set_cache(&cache);

    uint64_t repair_rounds = 0, repair_leaves = 0, repair_crashes = 0;
    uint64_t repair_joins = 0, repair_heals = 0;
    // Each membership change triggers at most one rerun; P participants can
    // each leave once and join once, plus slack for heals.
    const uint64_t max_rounds = 2 * static_cast<uint64_t>(p) + 4;

    obs::Span span_oracle(tracer, "select.oracle", ctx.clock);
    Result<std::vector<vfl::QueryNeighborhood>> run =
        oracle.Run(knn, &outcome.knn_stats);
    for (;;) {
      bool membership_changed = false;
      if (!run.ok()) {
        if (!run.status().IsPeerDead()) return run.status();
        // Only participants (ids >= 1) are expendable: a dead leader or
        // server is unrecoverable and the error propagates.
        const std::vector<net::NodeId> dead = outcome.knn_stats.dead_nodes;
        bool recoverable = !dead.empty();
        for (net::NodeId d : dead) {
          recoverable = recoverable && d >= 1 && static_cast<size_t>(d) < p;
        }
        if (!recoverable) return run.status();
        const std::vector<net::NodeId>& departed =
            outcome.knn_stats.departed_nodes;
        for (net::NodeId d : dead) {
          const auto id = static_cast<size_t>(d);
          if (Contains(knn.quarantined, id)) continue;
          SortedInsert(&knn.quarantined, id);
          const bool left = std::find(departed.begin(), departed.end(), d) !=
                            departed.end();
          if (left) {
            ++repair_leaves;
          } else {
            ++repair_crashes;
          }
          if (tracer != nullptr) {
            tracer->Instant("select.churn.quarantine",
                            {{"party", StrFormat("%zu", id)},
                             {"cause", left ? "leave" : "crash"}});
          }
          membership_changed = true;
        }
        if (!membership_changed) return run.status();  // no progress possible
        VFPS_LOG(Warning) << name() << ": membership loss mid-oracle ("
                          << run.status().ToString() << "); quarantining "
                          << knn.quarantined.size()
                          << " participant(s) and repairing over survivors";
        if (ctx.obs != nullptr) {
          ctx.obs->GetCounter("select.quarantine.events")->Add(1);
        }
      } else {
        // Success: splice in any participant whose join= threshold the run
        // crossed, and un-quarantine any whose heal= threshold it crossed.
        for (net::NodeId j : outcome.knn_stats.joined_nodes) {
          const auto id = static_cast<size_t>(j);
          if (j < 1 || id >= p || !Contains(knn.absent, id)) continue;
          knn.absent.erase(
              std::remove(knn.absent.begin(), knn.absent.end(), id),
              knn.absent.end());
          SortedInsert(&knn.joined, id);
          ++repair_joins;
          if (tracer != nullptr) {
            tracer->Instant("select.churn.join",
                            {{"party", StrFormat("%zu", id)}});
          }
          membership_changed = true;
        }
        for (net::NodeId h : outcome.knn_stats.healed_nodes) {
          const auto id = static_cast<size_t>(h);
          if (h < 1 || id >= p || !Contains(knn.quarantined, id)) continue;
          knn.quarantined.erase(std::remove(knn.quarantined.begin(),
                                            knn.quarantined.end(), id),
                                knn.quarantined.end());
          SortedInsert(&knn.healed, id);
          ++repair_heals;
          if (tracer != nullptr) {
            tracer->Instant("select.churn.heal",
                            {{"party", StrFormat("%zu", id)}});
          }
          membership_changed = true;
        }
        if (!membership_changed) break;  // converged
        VFPS_LOG(Info) << name() << ": splicing membership change ("
                       << repair_joins << " join(s), " << repair_heals
                       << " heal(s)) and repairing the selection";
      }

      if (++repair_rounds > max_rounds) {
        return Status::Unavailable(StrFormat(
            "%s: selection repair did not converge after %llu rounds",
            name().c_str(), static_cast<unsigned long long>(repair_rounds)));
      }
      obs::Span span_repair(tracer, "select.repair", ctx.clock);
      outcome.knn_stats = vfl::FedKnnStats{};
      run = oracle.Run(knn, &outcome.knn_stats);
      span_repair.End();
    }
    span_oracle.End();

    if (ctx.obs != nullptr) {
      if (repair_rounds > 0) {
        obs::MetricsRegistry* m = ctx.obs;
        m->GetCounter("select.repair.events")->Add(1);
        m->GetCounter("select.repair.rounds")->Add(repair_rounds);
        m->GetCounter("select.repair.leaves")->Add(repair_leaves);
        m->GetCounter("select.repair.crashes")->Add(repair_crashes);
        m->GetCounter("select.repair.joins")->Add(repair_joins);
        m->GetCounter("select.repair.heals")->Add(repair_heals);
        m->GetCounter("select.repair.reused_contributions")
            ->Add(outcome.knn_stats.reused_contributions);
      }
      if (!knn.quarantined.empty()) {
        ctx.obs->GetCounter("select.quarantine.participants")
            ->Add(knn.quarantined.size());
      }
    }
    neighborhoods = run.MoveValueUnsafe();
  }
  outcome.quarantined = knn.quarantined;
  outcome.absent = knn.absent;

  // Similarity + greedy over the survivors. With no exclusions this is the
  // pristine P-sized path, bit-identical to the fault-free run.
  std::vector<size_t> survivors;
  survivors.reserve(p);
  for (size_t id = 0; id < p; ++id) {
    if (!Contains(outcome.quarantined, id) && !Contains(outcome.absent, id)) {
      survivors.push_back(id);
    }
  }

  obs::Span span_sim(tracer, "select.similarity", ctx.clock);
  if (survivors.size() == p) {
    VFPS_ASSIGN_OR_RETURN(last_similarity_,
                          BuildSimilarity(neighborhoods, p, ctx.pool));
  } else {
    // Compact each neighborhood's per-participant aggregates to survivor
    // positions so the matrix is indexed 0..|survivors|-1.
    std::vector<vfl::QueryNeighborhood> compact = neighborhoods;
    for (vfl::QueryNeighborhood& hood : compact) {
      std::vector<double> dt;
      dt.reserve(survivors.size());
      for (size_t id : survivors) dt.push_back(hood.per_party_dt[id]);
      hood.per_party_dt = std::move(dt);
    }
    VFPS_ASSIGN_OR_RETURN(
        last_similarity_,
        BuildSimilarity(compact, survivors.size(), ctx.pool));
  }
  span_sim.End();

  obs::Span span_greedy(tracer, "select.greedy", ctx.clock);
  KnnSubmodularFunction f(last_similarity_);
  const size_t effective_target = std::min(target, survivors.size());
  GreedyCheckpoint gc;
  GreedyResult greedy;
  if (lazy_greedy_) {
    greedy = LazyGreedyMaximize(
        f, effective_target,
        ctx.resume != nullptr ? &ctx.resume->greedy : nullptr,
        ctx.checkpoint != nullptr ? &gc : nullptr);
  } else {
    greedy = GreedyMaximize(f, effective_target);
    if (ctx.checkpoint != nullptr) {
      // Plain greedy keeps no CELF bounds; publish the prefix with vacuous
      // bounds so a resume re-evaluates every candidate (same selection).
      KnnSubmodularFunction::Incremental replay(&f);
      for (size_t s : greedy.selected) replay.Add(s);
      gc.selected = greedy.selected;
      gc.gains = greedy.gains;
      gc.best = replay.best();
      gc.value = replay.value();
      gc.bounds.assign(survivors.size(),
                       std::numeric_limits<double>::infinity());
      gc.bound_rounds.assign(survivors.size(), 0);
    }
  }
  // The greedy pass runs at the leader over the survivor-sized similarity
  // matrix; its cost is |survivors|^2 per marginal-gain evaluation.
  ctx.clock->Advance(CostCategory::kCompute,
                     static_cast<double>(greedy.evaluations) *
                         static_cast<double>(survivors.size()) *
                         ctx.cost->compare_seconds);
  span_greedy.End();
  if (ctx.obs != nullptr) {
    ctx.obs->GetCounter("select.greedy.evaluations")->Add(greedy.evaluations);
  }

  // Map survivor positions back to original participant ids; quarantined and
  // absent slots keep a 0.0 score.
  outcome.scores.assign(p, 0.0);
  outcome.selected.clear();
  outcome.selected.reserve(greedy.selected.size());
  for (size_t i = 0; i < greedy.selected.size(); ++i) {
    const size_t id = survivors[greedy.selected[i]];
    outcome.scores[id] = greedy.gains[i];
    outcome.selected.push_back(id);
  }
  std::sort(outcome.selected.begin(), outcome.selected.end());

  if (ctx.checkpoint != nullptr) {
    SelectionCheckpoint& ckp = *ctx.checkpoint;
    ckp.seed = ctx.seed;
    ckp.mode = static_cast<int64_t>(mode_);
    ckp.k = knn.k;
    ckp.num_queries = knn.num_queries;
    ckp.fagin_batch = knn.fagin_batch;
    ckp.query_group = knn.query_group;
    ckp.n_rows = n;
    ckp.num_participants = p;
    ckp.shards = knn.shards;
    ckp.prefilter_clusters = knn.prefilter_clusters;
    ckp.target = target;
    ckp.quarantined = ToU64(outcome.quarantined);
    ckp.absent = ToU64(outcome.absent);
    ckp.joined = ToU64(knn.joined);
    ckp.healed = ToU64(knn.healed);
    ckp.neighborhoods = neighborhoods;
    ckp.party_digests = SelectionCheckpoint::ComputePartyDigests(neighborhoods, p);
    ckp.greedy = gc;
    ckp.value = greedy.value;
    if (ctx.obs != nullptr) {
      ctx.obs->GetCounter("select.checkpoint.saved")->Add(1);
    }
  }

  outcome.sim_seconds = ctx.clock->Total() - clock_before;
  if (ctx.obs != nullptr) {
    // Per-selection-job latency for the SLO surface. Simulated time is a
    // deterministic function of the protocol (thread-count-invariant
    // percentiles); wall time is real elapsed time.
    ctx.obs->GetHistogram("select.job.sim_ns")
        ->Record(static_cast<uint64_t>(
            std::llround(outcome.sim_seconds * 1e9)));
    ctx.obs->GetHistogram("select.job.wall_ns")
        ->Record(static_cast<uint64_t>(
            std::llround(job_watch.ElapsedSeconds() * 1e9)));
  }
  return outcome;
}

}  // namespace vfps::core

#include "core/vfmine.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/random.h"

namespace vfps::core {

double MutualInformation(const std::vector<int>& a, const std::vector<int>& b,
                         int num_classes) {
  if (a.empty() || a.size() != b.size() || num_classes < 1) return 0.0;
  const size_t c = static_cast<size_t>(num_classes);
  std::vector<double> joint(c * c, 0.0), pa(c, 0.0), pb(c, 0.0);
  const double inv = 1.0 / static_cast<double>(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0 || a[i] >= num_classes || b[i] < 0 || b[i] >= num_classes) {
      continue;
    }
    joint[static_cast<size_t>(a[i]) * c + static_cast<size_t>(b[i])] += inv;
    pa[a[i]] += inv;
    pb[b[i]] += inv;
  }
  double mi = 0.0;
  for (size_t x = 0; x < c; ++x) {
    for (size_t y = 0; y < c; ++y) {
      const double pxy = joint[x * c + y];
      if (pxy > 0.0 && pa[x] > 0.0 && pb[y] > 0.0) {
        mi += pxy * std::log(pxy / (pa[x] * pb[y]));
      }
    }
  }
  return std::max(mi, 0.0);
}

Result<SelectionOutcome> VfMineSelector::Select(const SelectionContext& ctx,
                                                size_t target) {
  VFPS_RETURN_NOT_OK(ValidateContext(ctx, target));
  const size_t p = ctx.partition->size();
  const double clock_before = ctx.clock->Total();

  // Utility queries: seeded subsample of the validation split.
  const data::Dataset& valid = ctx.split->valid;
  VFPS_CHECK_ARG(valid.num_samples() > 0, "VF-MINE: empty validation split");
  Rng rng(ctx.seed ^ 0x3F1E57A7ULL);
  const size_t want = std::min(ctx.utility_queries, valid.num_samples());
  const data::Dataset queries =
      valid.SelectRows(rng.SampleWithoutReplacement(valid.num_samples(), want));
  std::vector<int> truth = queries.labels();

  vfl::FederatedKnnOracle oracle(&ctx.split->train, ctx.partition, ctx.backend,
                                 ctx.network, ctx.cost, ctx.clock, ctx.pool);

  // Sample groups of about half the consortium; group g is anchored on
  // participant g mod P so that every participant is scored.
  const size_t num_groups = std::max<size_t>(p, ctx.vfmine_groups_factor * p);
  const size_t group_size = std::max<size_t>(1, (p + 1) / 2);
  std::vector<double> score_sum(p, 0.0);
  std::vector<size_t> group_count(p, 0);

  for (size_t g = 0; g < num_groups; ++g) {
    const size_t anchor = g % p;
    std::vector<size_t> pool;
    for (size_t i = 0; i < p; ++i) {
      if (i != anchor) pool.push_back(i);
    }
    rng.Shuffle(&pool);
    std::vector<size_t> group = {anchor};
    for (size_t i = 0; i + 1 < group_size && i < pool.size(); ++i) {
      group.push_back(pool[i]);
    }
    std::sort(group.begin(), group.end());

    VFPS_ASSIGN_OR_RETURN(
        auto predictions,
        oracle.ClassifyPredictions(queries, group, ctx.knn.k,
                                   /*charge_costs=*/true));
    const double mi =
        MutualInformation(predictions, truth, ctx.split->train.num_classes());
    for (size_t member : group) {
      score_sum[member] += mi;
      ++group_count[member];
    }
  }

  std::vector<double> scores(p, 0.0);
  for (size_t i = 0; i < p; ++i) {
    scores[i] = group_count[i] == 0
                    ? 0.0
                    : score_sum[i] / static_cast<double>(group_count[i]);
  }
  last_scores_ = scores;

  std::vector<size_t> idx(p);
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + target, idx.end(),
                    [&scores](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(target);
  std::sort(idx.begin(), idx.end());

  SelectionOutcome outcome;
  outcome.selected = std::move(idx);
  outcome.scores = scores;
  outcome.sim_seconds = ctx.clock->Total() - clock_before;
  return outcome;
}

}  // namespace vfps::core

#include "core/greedy.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/macros.h"

namespace vfps::core {

GreedyResult GreedyMaximize(const KnnSubmodularFunction& f, size_t target) {
  GreedyResult result;
  const size_t p = f.ground_set_size();
  target = std::min(target, p);
  KnnSubmodularFunction::Incremental state(&f);
  std::vector<bool> chosen(p, false);
  for (size_t round = 0; round < target; ++round) {
    double best_gain = -1.0;
    size_t best = p;
    for (size_t candidate = 0; candidate < p; ++candidate) {
      if (chosen[candidate]) continue;
      const double gain = state.GainOf(candidate);
      ++result.evaluations;
      if (gain > best_gain) {
        best_gain = gain;
        best = candidate;
      }
    }
    chosen[best] = true;
    state.Add(best);
    result.selected.push_back(best);
    result.gains.push_back(best_gain);
  }
  result.value = state.value();
  return result;
}

GreedyResult LazyGreedyMaximize(const KnnSubmodularFunction& f, size_t target) {
  return LazyGreedyMaximize(f, target, nullptr, nullptr);
}

GreedyResult LazyGreedyMaximize(const KnnSubmodularFunction& f, size_t target,
                                const GreedyCheckpoint* resume,
                                GreedyCheckpoint* checkpoint_out) {
  GreedyResult result;
  const size_t p = f.ground_set_size();
  target = std::min(target, p);

  // A checkpoint shaped for a different ground set cannot be trusted; fall
  // back to a cold start (callers validate compatibility upstream).
  if (resume != nullptr &&
      (resume->best.size() != p || resume->bounds.size() != p ||
       resume->bound_rounds.size() != p ||
       resume->selected.size() != resume->gains.size() ||
       resume->selected.size() > p)) {
    resume = nullptr;
  }

  // Target inside the resumed prefix: the answer is the truncated prefix
  // (greedy is prefix-monotone). Replay it to rebuild exact accumulators.
  if (resume != nullptr && resume->selected.size() >= target) {
    KnnSubmodularFunction::Incremental replay(&f);
    result.selected.assign(resume->selected.begin(),
                           resume->selected.begin() + target);
    result.gains.assign(resume->gains.begin(), resume->gains.begin() + target);
    for (size_t s : result.selected) replay.Add(s);
    result.value = replay.value();
    if (checkpoint_out != nullptr) {
      checkpoint_out->selected = result.selected;
      checkpoint_out->gains = result.gains;
      checkpoint_out->best = replay.best();
      checkpoint_out->value = replay.value();
      // The resumed bounds were computed against the LONGER prefix, so they
      // may undercut gains w.r.t. the truncated one — publish vacuous bounds
      // that force re-evaluation instead.
      checkpoint_out->bounds.assign(p, std::numeric_limits<double>::infinity());
      checkpoint_out->bound_rounds.assign(p, 0);
    }
    return result;
  }

  KnnSubmodularFunction::Incremental state =
      resume != nullptr
          ? KnnSubmodularFunction::Incremental(&f, resume->best, resume->value)
          : KnnSubmodularFunction::Incremental(&f);
  std::vector<bool> chosen(p, false);

  // (stale upper bound, -index) max-heap; smaller index wins gain ties to
  // match plain greedy's tie-break.
  struct Entry {
    double bound;
    size_t index;
    size_t round_evaluated;
    bool operator<(const Entry& o) const {
      if (bound != o.bound) return bound < o.bound;
      return index > o.index;
    }
  };
  std::priority_queue<Entry> heap;
  if (resume != nullptr) {
    // Reconstruct the heap exactly as it stood at the checkpointed pick
    // boundary; the continued scan is then indistinguishable from the
    // uninterrupted one.
    result.selected = resume->selected;
    result.gains = resume->gains;
    for (size_t s : result.selected) chosen[s] = true;
    for (size_t candidate = 0; candidate < p; ++candidate) {
      if (chosen[candidate]) continue;
      heap.push({resume->bounds[candidate], candidate,
                 resume->bound_rounds[candidate]});
    }
  } else {
    for (size_t candidate = 0; candidate < p; ++candidate) {
      const double gain = state.GainOf(candidate);
      ++result.evaluations;
      // The state is untouched until the first pick, so these initial bounds
      // are already exact for round 1.
      heap.push({gain, candidate, 1});
    }
  }

  for (size_t round = result.selected.size() + 1; round <= target; ++round) {
    for (;;) {
      Entry top = heap.top();
      heap.pop();
      if (top.round_evaluated == round) {
        // Fresh bound on top: by submodularity every other bound is an upper
        // bound of a smaller true gain, so this is the argmax.
        state.Add(top.index);
        result.selected.push_back(top.index);
        result.gains.push_back(top.bound);
        break;
      }
      top.bound = state.GainOf(top.index);
      ++result.evaluations;
      top.round_evaluated = round;
      heap.push(top);
    }
  }
  result.value = state.value();

  if (checkpoint_out != nullptr) {
    checkpoint_out->selected = result.selected;
    checkpoint_out->gains = result.gains;
    checkpoint_out->best = state.best();
    checkpoint_out->value = state.value();
    checkpoint_out->bounds.assign(p, 0.0);
    checkpoint_out->bound_rounds.assign(p, 0);
    while (!heap.empty()) {
      const Entry e = heap.top();
      heap.pop();
      checkpoint_out->bounds[e.index] = e.bound;
      checkpoint_out->bound_rounds[e.index] = e.round_evaluated;
    }
  }
  return result;
}

Result<GreedyResult> ExhaustiveMaximize(const KnnSubmodularFunction& f,
                                        size_t target) {
  const size_t p = f.ground_set_size();
  VFPS_CHECK_ARG(p <= 20, "exhaustive: ground set too large (P > 20)");
  target = std::min(target, p);
  GreedyResult result;
  double best_value = -1.0;
  std::vector<size_t> subset;
  for (uint32_t mask = 0; mask < (1u << p); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != target) continue;
    subset.clear();
    for (size_t i = 0; i < p; ++i) {
      if (mask & (1u << i)) subset.push_back(i);
    }
    const double value = f.Value(subset);
    ++result.evaluations;
    if (value > best_value) {
      best_value = value;
      result.selected = subset;
    }
  }
  result.value = best_value;
  result.gains.assign(result.selected.size(), 0.0);
  return result;
}

}  // namespace vfps::core

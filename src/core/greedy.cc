#include "core/greedy.h"

#include <algorithm>
#include <queue>

#include "common/macros.h"

namespace vfps::core {

GreedyResult GreedyMaximize(const KnnSubmodularFunction& f, size_t target) {
  GreedyResult result;
  const size_t p = f.ground_set_size();
  target = std::min(target, p);
  KnnSubmodularFunction::Incremental state(&f);
  std::vector<bool> chosen(p, false);
  for (size_t round = 0; round < target; ++round) {
    double best_gain = -1.0;
    size_t best = p;
    for (size_t candidate = 0; candidate < p; ++candidate) {
      if (chosen[candidate]) continue;
      const double gain = state.GainOf(candidate);
      ++result.evaluations;
      if (gain > best_gain) {
        best_gain = gain;
        best = candidate;
      }
    }
    chosen[best] = true;
    state.Add(best);
    result.selected.push_back(best);
    result.gains.push_back(best_gain);
  }
  result.value = state.value();
  return result;
}

GreedyResult LazyGreedyMaximize(const KnnSubmodularFunction& f, size_t target) {
  GreedyResult result;
  const size_t p = f.ground_set_size();
  target = std::min(target, p);
  KnnSubmodularFunction::Incremental state(&f);

  // (stale upper bound, -index) max-heap; smaller index wins gain ties to
  // match plain greedy's tie-break.
  struct Entry {
    double bound;
    size_t index;
    size_t round_evaluated;
    bool operator<(const Entry& o) const {
      if (bound != o.bound) return bound < o.bound;
      return index > o.index;
    }
  };
  std::priority_queue<Entry> heap;
  for (size_t candidate = 0; candidate < p; ++candidate) {
    const double gain = state.GainOf(candidate);
    ++result.evaluations;
    // The state is untouched until the first pick, so these initial bounds
    // are already exact for round 1.
    heap.push({gain, candidate, 1});
  }

  for (size_t round = 1; round <= target; ++round) {
    for (;;) {
      Entry top = heap.top();
      heap.pop();
      if (top.round_evaluated == round) {
        // Fresh bound on top: by submodularity every other bound is an upper
        // bound of a smaller true gain, so this is the argmax.
        state.Add(top.index);
        result.selected.push_back(top.index);
        result.gains.push_back(top.bound);
        break;
      }
      top.bound = state.GainOf(top.index);
      ++result.evaluations;
      top.round_evaluated = round;
      heap.push(top);
    }
  }
  result.value = state.value();
  return result;
}

Result<GreedyResult> ExhaustiveMaximize(const KnnSubmodularFunction& f,
                                        size_t target) {
  const size_t p = f.ground_set_size();
  VFPS_CHECK_ARG(p <= 20, "exhaustive: ground set too large (P > 20)");
  target = std::min(target, p);
  GreedyResult result;
  double best_value = -1.0;
  std::vector<size_t> subset;
  for (uint32_t mask = 0; mask < (1u << p); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != target) continue;
    subset.clear();
    for (size_t i = 0; i < p; ++i) {
      if (mask & (1u << i)) subset.push_back(i);
    }
    const double value = f.Value(subset);
    ++result.evaluations;
    if (value > best_value) {
      best_value = value;
      result.selected = subset;
    }
  }
  result.value = best_value;
  result.gains.assign(result.selected.size(), 0.0);
  return result;
}

}  // namespace vfps::core

#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "common/buffer.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace vfps::core {

namespace {

// '2' since the shard-layout fingerprint fields joined the body: the field
// reads below are sequential, so a format change MUST bump the magic —
// pre-sharding files then fail with a clear bad-magic error up front.
constexpr char kMagic[8] = {'V', 'F', 'P', 'S', 'C', 'K', 'P', '2'};

void WriteU64Sizes(BinaryWriter* w, const std::vector<size_t>& v) {
  w->WriteU32(static_cast<uint32_t>(v.size()));
  for (size_t x : v) w->WriteU64(static_cast<uint64_t>(x));
}

Result<std::vector<size_t>> ReadU64Sizes(BinaryReader* r) {
  VFPS_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  std::vector<size_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    VFPS_ASSIGN_OR_RETURN(const uint64_t x, r->ReadU64());
    v.push_back(static_cast<size_t>(x));
  }
  return v;
}

}  // namespace

std::vector<uint32_t> SelectionCheckpoint::ComputePartyDigests(
    const std::vector<vfl::QueryNeighborhood>& neighborhoods,
    size_t num_participants) {
  std::vector<Crc32Accumulator> acc(num_participants);
  for (const vfl::QueryNeighborhood& hood : neighborhoods) {
    for (size_t party = 0;
         party < num_participants && party < hood.per_party_dt.size();
         ++party) {
      const double dt = hood.per_party_dt[party];
      uint64_t bits;
      std::memcpy(&bits, &dt, sizeof(bits));
      acc[party].Update(bits);
    }
  }
  std::vector<uint32_t> digests(num_participants);
  for (size_t party = 0; party < num_participants; ++party) {
    digests[party] = acc[party].value();
  }
  return digests;
}

std::vector<uint8_t> SelectionCheckpoint::Serialize() const {
  BinaryWriter body;
  body.WriteU64(seed);
  body.WriteI64(mode);
  body.WriteU64(k);
  body.WriteU64(num_queries);
  body.WriteU64(fagin_batch);
  body.WriteU64(query_group);
  body.WriteU64(n_rows);
  body.WriteU64(num_participants);
  body.WriteU64(shards);
  body.WriteU64(prefilter_clusters);
  body.WriteU64(target);

  body.WriteU64Vec(quarantined);
  body.WriteU64Vec(absent);
  body.WriteU64Vec(joined);
  body.WriteU64Vec(healed);

  body.WriteU32(static_cast<uint32_t>(neighborhoods.size()));
  for (const vfl::QueryNeighborhood& hood : neighborhoods) {
    body.WriteU64(hood.query_row);
    body.WriteU64Vec(hood.neighbors);
    body.WriteDoubleVec(hood.per_party_dt);
  }
  body.WriteU32Vec(party_digests);

  WriteU64Sizes(&body, greedy.selected);
  body.WriteDoubleVec(greedy.gains);
  body.WriteDoubleVec(greedy.best);
  body.WriteDoubleVec(greedy.bounds);
  WriteU64Sizes(&body, greedy.bound_rounds);
  body.WriteDouble(greedy.value);
  body.WriteDouble(value);

  BinaryWriter out;
  for (char c : kMagic) out.WriteU8(static_cast<uint8_t>(c));
  out.WriteCrcFramed(body.bytes());
  return out.TakeBytes();
}

Result<SelectionCheckpoint> SelectionCheckpoint::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "checkpoint: bad magic (not a VFPSCKP2 file)");
  }
  BinaryReader framed(bytes.data() + sizeof(kMagic),
                      bytes.size() - sizeof(kMagic));
  VFPS_ASSIGN_OR_RETURN(const std::vector<uint8_t> body, framed.ReadCrcFramed());

  BinaryReader r(body);
  SelectionCheckpoint ckp;
  VFPS_ASSIGN_OR_RETURN(ckp.seed, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.mode, r.ReadI64());
  VFPS_ASSIGN_OR_RETURN(ckp.k, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.num_queries, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.fagin_batch, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.query_group, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.n_rows, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.num_participants, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.shards, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.prefilter_clusters, r.ReadU64());
  VFPS_ASSIGN_OR_RETURN(ckp.target, r.ReadU64());

  VFPS_ASSIGN_OR_RETURN(ckp.quarantined, r.ReadU64Vec());
  VFPS_ASSIGN_OR_RETURN(ckp.absent, r.ReadU64Vec());
  VFPS_ASSIGN_OR_RETURN(ckp.joined, r.ReadU64Vec());
  VFPS_ASSIGN_OR_RETURN(ckp.healed, r.ReadU64Vec());

  VFPS_ASSIGN_OR_RETURN(const uint32_t num_hoods, r.ReadU32());
  ckp.neighborhoods.resize(num_hoods);
  for (uint32_t i = 0; i < num_hoods; ++i) {
    vfl::QueryNeighborhood& hood = ckp.neighborhoods[i];
    VFPS_ASSIGN_OR_RETURN(hood.query_row, r.ReadU64());
    VFPS_ASSIGN_OR_RETURN(hood.neighbors, r.ReadU64Vec());
    VFPS_ASSIGN_OR_RETURN(hood.per_party_dt, r.ReadDoubleVec());
  }
  VFPS_ASSIGN_OR_RETURN(ckp.party_digests, r.ReadU32Vec());

  VFPS_ASSIGN_OR_RETURN(ckp.greedy.selected, ReadU64Sizes(&r));
  VFPS_ASSIGN_OR_RETURN(ckp.greedy.gains, r.ReadDoubleVec());
  VFPS_ASSIGN_OR_RETURN(ckp.greedy.best, r.ReadDoubleVec());
  VFPS_ASSIGN_OR_RETURN(ckp.greedy.bounds, r.ReadDoubleVec());
  VFPS_ASSIGN_OR_RETURN(ckp.greedy.bound_rounds, ReadU64Sizes(&r));
  VFPS_ASSIGN_OR_RETURN(ckp.greedy.value, r.ReadDouble());
  VFPS_ASSIGN_OR_RETURN(ckp.value, r.ReadDouble());
  if (!r.AtEnd()) {
    return Status::Corrupt("checkpoint: trailing bytes after body");
  }
  return ckp;
}

Status SelectionCheckpoint::SaveFile(const std::string& path) const {
  const std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(
        StrFormat("checkpoint: cannot open '%s' for writing", path.c_str()));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int closed = std::fclose(f);
  if (written != bytes.size() || closed != 0) {
    return Status::IOError(
        StrFormat("checkpoint: short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<SelectionCheckpoint> SelectionCheckpoint::LoadFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(
        StrFormat("checkpoint: cannot open '%s' for reading", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError(
        StrFormat("checkpoint: cannot stat '%s'", path.c_str()));
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Status::IOError(
        StrFormat("checkpoint: short read from '%s'", path.c_str()));
  }
  return Deserialize(bytes);
}

Status SelectionCheckpoint::CompatibleWith(
    uint64_t run_seed, int64_t run_mode, uint64_t run_k,
    uint64_t run_num_queries, uint64_t run_fagin_batch,
    uint64_t run_query_group, uint64_t run_n_rows,
    uint64_t run_num_participants, uint64_t run_shards,
    uint64_t run_prefilter_clusters) const {
  const auto mismatch = [](const char* field, uint64_t have, uint64_t want) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint: %s mismatch (checkpoint %llu vs run %llu)", field,
        static_cast<unsigned long long>(have),
        static_cast<unsigned long long>(want)));
  };
  if (seed != run_seed) return mismatch("seed", seed, run_seed);
  if (mode != run_mode) {
    return mismatch("oracle mode", static_cast<uint64_t>(mode),
                    static_cast<uint64_t>(run_mode));
  }
  if (k != run_k) return mismatch("k", k, run_k);
  if (num_queries != run_num_queries) {
    return mismatch("num_queries", num_queries, run_num_queries);
  }
  if (fagin_batch != run_fagin_batch) {
    return mismatch("fagin_batch", fagin_batch, run_fagin_batch);
  }
  if (query_group != run_query_group) {
    return mismatch("query_group", query_group, run_query_group);
  }
  if (n_rows != run_n_rows) return mismatch("n_rows", n_rows, run_n_rows);
  if (num_participants != run_num_participants) {
    return mismatch("num_participants", num_participants,
                    run_num_participants);
  }
  if (shards != run_shards) return mismatch("shards", shards, run_shards);
  if (prefilter_clusters != run_prefilter_clusters) {
    return mismatch("prefilter_clusters", prefilter_clusters,
                    run_prefilter_clusters);
  }
  return Status::OK();
}

}  // namespace vfps::core

#ifndef VFPS_CORE_SIMILARITY_H_
#define VFPS_CORE_SIMILARITY_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "vfl/fed_knn.h"

namespace vfps::core {

/// \brief Symmetric P x P participant similarity matrix
/// w(p, s) = (1/|Q|) * sum_q (d_T - |d_T^p - d_T^s|) / d_T  (paper §III-A).
///
/// w is in [0, 1]; identical participants have w = 1, and the diagonal is 1
/// by construction. High w(p, s) means p's distance geometry is well
/// approximated by s, i.e. keeping both adds little diversity.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  explicit SimilarityMatrix(size_t num_participants)
      : p_(num_participants), w_(num_participants * num_participants, 0.0) {}

  size_t num_participants() const { return p_; }
  double At(size_t a, size_t b) const { return w_[a * p_ + b]; }
  void Set(size_t a, size_t b, double v) {
    w_[a * p_ + b] = v;
    w_[b * p_ + a] = v;
  }

 private:
  size_t p_ = 0;
  std::vector<double> w_;
};

/// \brief Build the similarity matrix from the per-query distance aggregates
/// the federated KNN oracle produced. Queries whose total distance d_T is
/// zero (all participants agree exactly) contribute full similarity.
///
/// When `pool` is non-null, rows of the upper triangle are assembled in
/// parallel. Each matrix cell is still accumulated in query order, so the
/// result is bit-identical at any thread count (floating-point addition
/// order per accumulator never changes). Complexity: O(|Q| * P^2).
Result<SimilarityMatrix> BuildSimilarity(
    const std::vector<vfl::QueryNeighborhood>& neighborhoods,
    size_t num_participants, ThreadPool* pool = nullptr);

}  // namespace vfps::core

#endif  // VFPS_CORE_SIMILARITY_H_

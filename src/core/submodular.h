#ifndef VFPS_CORE_SUBMODULAR_H_
#define VFPS_CORE_SUBMODULAR_H_

#include <vector>

#include "core/similarity.h"

namespace vfps::core {

/// \brief The KNN submodular set function of Theorem 1:
///   f(S) = sum_{p in P} max_{s in S} w(p, s),   f(emptyset) = 0.
///
/// Normalized, monotone, and submodular (proved in the paper; verified by
/// property tests over random similarity matrices). Greedy maximization
/// therefore carries the (1 - 1/e) guarantee and naturally prefers diverse
/// participants: a duplicate of an already-selected participant has zero
/// marginal gain.
class KnnSubmodularFunction {
 public:
  explicit KnnSubmodularFunction(SimilarityMatrix w) : w_(std::move(w)) {}

  size_t ground_set_size() const { return w_.num_participants(); }

  /// f(S). Elements of `subset` must be distinct and in range.
  double Value(const std::vector<size_t>& subset) const;

  /// f(S ∪ {candidate}) − f(S).
  double MarginalGain(const std::vector<size_t>& subset, size_t candidate) const;

  const SimilarityMatrix& similarity() const { return w_; }

  /// \brief Incremental evaluation state: tracks max_{s in S} w(p, s) per p,
  /// making each marginal-gain query O(P) instead of O(P * |S|).
  class Incremental {
   public:
    explicit Incremental(const KnnSubmodularFunction* f);
    /// Rebuild from checkpointed accumulators (see core::GreedyCheckpoint):
    /// `best` is max_{s in S} w(p, s) per ground element for some prefix S,
    /// `value` is f(S).
    Incremental(const KnnSubmodularFunction* f, std::vector<double> best,
                double value)
        : f_(f), best_(std::move(best)), value_(value) {}
    double value() const { return value_; }
    double GainOf(size_t candidate) const;
    void Add(size_t candidate);
    /// The per-element accumulators (for checkpointing).
    const std::vector<double>& best() const { return best_; }

   private:
    const KnnSubmodularFunction* f_;
    std::vector<double> best_;  // current max similarity per ground element
    double value_ = 0.0;
  };

 private:
  SimilarityMatrix w_;
};

}  // namespace vfps::core

#endif  // VFPS_CORE_SUBMODULAR_H_

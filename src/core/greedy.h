#ifndef VFPS_CORE_GREEDY_H_
#define VFPS_CORE_GREEDY_H_

#include <vector>

#include "common/result.h"
#include "core/submodular.h"

namespace vfps::core {

/// \brief Output of a submodular maximizer.
struct GreedyResult {
  std::vector<size_t> selected;  // participants in pick order
  std::vector<double> gains;     // marginal gain realized by each pick
  double value = 0.0;            // f(selected)
  size_t evaluations = 0;        // marginal-gain evaluations performed
};

/// \brief Algorithm 1: plain greedy — at each step add the participant with
/// the largest marginal gain. (1 - 1/e) approximation for the monotone
/// submodular f.
GreedyResult GreedyMaximize(const KnnSubmodularFunction& f, size_t target);

/// \brief Lazy greedy (CELF): exploits submodularity — a participant's gain
/// can only shrink as S grows, so stale upper bounds from earlier rounds
/// prune most re-evaluations. Returns exactly the same selection as plain
/// greedy (modulo equal-gain ties, which both break by smallest index) with
/// far fewer evaluations; an ablation bench quantifies the savings.
GreedyResult LazyGreedyMaximize(const KnnSubmodularFunction& f, size_t target);

/// \brief Snapshot of a lazy-greedy scan at a pick boundary: the selected
/// prefix, the incremental f(S) accumulators, and the CELF heap's stale
/// bounds. Resuming from it reconstructs the exact heap state, so the
/// continued scan picks the same elements the uninterrupted scan would.
struct GreedyCheckpoint {
  std::vector<size_t> selected;      // greedy prefix in pick order
  std::vector<double> gains;         // marginal gain realized by each pick
  std::vector<double> best;          // Incremental: max_{s in S} w(p, s) per p
  std::vector<double> bounds;        // CELF stale bound per candidate
  std::vector<size_t> bound_rounds;  // round each bound was last evaluated
  double value = 0.0;                // f(prefix)
};

/// \brief Lazy greedy with checkpoint/resume. `resume` (nullable) continues a
/// prior scan: a target inside the resumed prefix returns the truncated
/// prefix; a larger target runs only the remaining rounds. `checkpoint_out`
/// (nullable) receives the scan state at the final pick boundary. A resume
/// whose vectors do not match the ground-set size is ignored (cold start).
GreedyResult LazyGreedyMaximize(const KnnSubmodularFunction& f, size_t target,
                                const GreedyCheckpoint* resume,
                                GreedyCheckpoint* checkpoint_out);

/// \brief Exhaustive optimum over all subsets of the target size; exponential
/// in P, only for the approximation-quality ablation (P <= 20).
Result<GreedyResult> ExhaustiveMaximize(const KnnSubmodularFunction& f,
                                        size_t target);

}  // namespace vfps::core

#endif  // VFPS_CORE_GREEDY_H_

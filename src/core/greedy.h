#ifndef VFPS_CORE_GREEDY_H_
#define VFPS_CORE_GREEDY_H_

#include <vector>

#include "common/result.h"
#include "core/submodular.h"

namespace vfps::core {

/// \brief Output of a submodular maximizer.
struct GreedyResult {
  std::vector<size_t> selected;  // participants in pick order
  std::vector<double> gains;     // marginal gain realized by each pick
  double value = 0.0;            // f(selected)
  size_t evaluations = 0;        // marginal-gain evaluations performed
};

/// \brief Algorithm 1: plain greedy — at each step add the participant with
/// the largest marginal gain. (1 - 1/e) approximation for the monotone
/// submodular f.
GreedyResult GreedyMaximize(const KnnSubmodularFunction& f, size_t target);

/// \brief Lazy greedy (CELF): exploits submodularity — a participant's gain
/// can only shrink as S grows, so stale upper bounds from earlier rounds
/// prune most re-evaluations. Returns exactly the same selection as plain
/// greedy (modulo equal-gain ties, which both break by smallest index) with
/// far fewer evaluations; an ablation bench quantifies the savings.
GreedyResult LazyGreedyMaximize(const KnnSubmodularFunction& f, size_t target);

/// \brief Exhaustive optimum over all subsets of the target size; exponential
/// in P, only for the approximation-quality ablation (P <= 20).
Result<GreedyResult> ExhaustiveMaximize(const KnnSubmodularFunction& f,
                                        size_t target);

}  // namespace vfps::core

#endif  // VFPS_CORE_GREEDY_H_

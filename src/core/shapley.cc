#include "core/shapley.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/random.h"

namespace vfps::core {

namespace {

// Utility-evaluation query set: a seeded subsample of the validation split.
data::Dataset MakeUtilityQueries(const SelectionContext& ctx) {
  const data::Dataset& valid = ctx.split->valid;
  const size_t want = std::min(ctx.utility_queries, valid.num_samples());
  Rng rng(ctx.seed ^ 0x5A4B3C2DULL);
  return valid.SelectRows(rng.SampleWithoutReplacement(valid.num_samples(), want));
}

// U(emptyset): accuracy of always predicting the training majority class.
double EmptyCoalitionUtility(const data::Dataset& train,
                             const data::Dataset& queries) {
  const auto counts = train.ClassCounts();
  int majority = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[majority]) majority = static_cast<int>(c);
  }
  if (queries.num_samples() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < queries.num_samples(); ++i) {
    correct += (queries.Label(i) == majority);
  }
  return static_cast<double>(correct) / static_cast<double>(queries.num_samples());
}

std::vector<size_t> MaskToSubset(uint32_t mask, size_t p) {
  std::vector<size_t> subset;
  for (size_t i = 0; i < p; ++i) {
    if (mask & (1u << i)) subset.push_back(i);
  }
  return subset;
}

// Top-`target` indices by score, ties broken by smaller index.
std::vector<size_t> TopByScore(const std::vector<double>& scores, size_t target) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + target, idx.end(),
                    [&scores](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(target);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace

Result<SelectionOutcome> ShapleySelector::Select(const SelectionContext& ctx,
                                                 size_t target) {
  VFPS_RETURN_NOT_OK(ValidateContext(ctx, target));
  const size_t p = ctx.partition->size();
  const double clock_before = ctx.clock->Total();

  const data::Dataset queries = MakeUtilityQueries(ctx);
  VFPS_CHECK_ARG(queries.num_samples() > 0,
                 "SHAPLEY: empty validation split, no utility queries");
  vfl::FederatedKnnOracle oracle(&ctx.split->train, ctx.partition, ctx.backend,
                                 ctx.network, ctx.cost, ctx.clock, ctx.pool);
  const double u_empty = EmptyCoalitionUtility(ctx.split->train, queries);

  std::vector<double> values(p, 0.0);
  size_t coalition_evals = 0;

  if (p <= ctx.shapley_exact_limit) {
    // Exact: enumerate the full coalition lattice.
    const uint32_t full = (1u << p);
    std::vector<double> utility(full, u_empty);
    for (uint32_t mask = 1; mask < full; ++mask) {
      VFPS_ASSIGN_OR_RETURN(
          utility[mask],
          oracle.ClassifyAccuracy(queries, MaskToSubset(mask, p), ctx.knn.k,
                                  /*charge_costs=*/true));
      ++coalition_evals;
    }
    // SV(i) = (1/P) * sum over coalitions S without i of
    //          [U(S + i) - U(S)] / C(P-1, |S|).
    std::vector<double> inv_choose(p, 0.0);
    for (size_t s = 0; s < p; ++s) {
      double choose = 1.0;
      for (size_t j = 0; j < s; ++j) {
        choose = choose * static_cast<double>(p - 1 - j) / static_cast<double>(j + 1);
      }
      inv_choose[s] = 1.0 / choose;
    }
    for (uint32_t mask = 0; mask < full; ++mask) {
      const size_t size = static_cast<size_t>(__builtin_popcount(mask));
      for (size_t i = 0; i < p; ++i) {
        if (mask & (1u << i)) continue;
        values[i] += inv_choose[size] *
                     (utility[mask | (1u << i)] - utility[mask]);
      }
    }
    for (double& v : values) v /= static_cast<double>(p);
  } else {
    // Monte-Carlo permutation sampling.
    Rng rng(ctx.seed ^ 0x51A71E55ULL);
    const size_t m = std::max<size_t>(1, ctx.shapley_mc_permutations);
    for (size_t round = 0; round < m; ++round) {
      const auto perm = rng.Permutation(p);
      double prev_utility = u_empty;
      std::vector<size_t> prefix;
      for (size_t pos = 0; pos < p; ++pos) {
        prefix.push_back(perm[pos]);
        std::vector<size_t> sorted_prefix = prefix;
        std::sort(sorted_prefix.begin(), sorted_prefix.end());
        VFPS_ASSIGN_OR_RETURN(
            const double utility,
            oracle.ClassifyAccuracy(queries, sorted_prefix, ctx.knn.k,
                                    /*charge_costs=*/true));
        ++coalition_evals;
        values[perm[pos]] += utility - prev_utility;
        prev_utility = utility;
      }
    }
    for (double& v : values) v /= static_cast<double>(m);

    // Extrapolate the cost of the coalitions a faithful exact SHAPLEY would
    // still have to evaluate, at the measured per-coalition rate.
    const double measured = ctx.clock->Total() - clock_before;
    const double per_eval = measured / static_cast<double>(coalition_evals);
    const double total_coalitions = std::pow(2.0, static_cast<double>(p)) - 1.0;
    const double remaining =
        std::max(0.0, total_coalitions - static_cast<double>(coalition_evals));
    ctx.clock->Advance(CostCategory::kCompute, remaining * per_eval);
  }

  last_values_ = values;
  SelectionOutcome outcome;
  outcome.scores = values;
  outcome.selected = TopByScore(values, target);
  outcome.sim_seconds = ctx.clock->Total() - clock_before;
  return outcome;
}

}  // namespace vfps::core

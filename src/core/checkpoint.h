#ifndef VFPS_CORE_CHECKPOINT_H_
#define VFPS_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/greedy.h"
#include "vfl/fed_knn.h"

namespace vfps::core {

/// \brief Serializable snapshot of a VFPS-SM selection run, written by
/// `vfps_cli --checkpoint-out` and consumed by `--resume-from`.
///
/// Contents: the protocol fingerprint (everything that shapes the oracle's
/// output — a resume against a differently-shaped run is rejected), the
/// membership state at checkpoint time, the oracle's query neighborhoods with
/// their per-party d_T aggregates, a CRC-32 digest of each party's d_T stream
/// (cheap tamper/drift detection per participant), and the lazy-greedy scan
/// state (GreedyCheckpoint) so a resumed selection continues the greedy scan
/// from its checkpointed prefix instead of restarting it.
///
/// Wire format: the 8-byte magic "VFPSCKP2" followed by one CRC-framed body
/// (common/buffer WriteCrcFramed) — any bit flip in the body fails the load
/// with a Corrupt status instead of resuming from garbage.
struct SelectionCheckpoint {
  // --- Protocol fingerprint ---
  uint64_t seed = 0;
  int64_t mode = 0;  // static_cast of vfl::KnnOracleMode
  uint64_t k = 0;
  uint64_t num_queries = 0;
  uint64_t fagin_batch = 0;
  uint64_t query_group = 0;
  uint64_t n_rows = 0;            // training rows
  uint64_t num_participants = 0;  // P
  /// Shard layout of the oracle run (FedKnnConfig::shards /
  /// prefilter_clusters). Part of the fingerprint: a resume under a
  /// different shard count or pre-filter setting is rejected, because the
  /// pre-filter changes the neighborhoods and per-shard stats/costs differ.
  /// Adding these fields bumped the wire magic to VFPSCKP2, so pre-sharding
  /// checkpoint files fail with a clear bad-magic error instead of
  /// misparsing.
  uint64_t shards = 1;
  uint64_t prefilter_clusters = 0;
  uint64_t target = 0;  // selection target of the checkpointed run

  // --- Membership at checkpoint time ---
  std::vector<uint64_t> quarantined;
  std::vector<uint64_t> absent;
  std::vector<uint64_t> joined;
  std::vector<uint64_t> healed;

  // --- Oracle output over the final membership ---
  std::vector<vfl::QueryNeighborhood> neighborhoods;
  /// CRC-32 over participant p's d_T^p stream in query order (one digest per
  /// participant, quarantined slots digest their zero placeholders).
  std::vector<uint32_t> party_digests;

  // --- Greedy scan state ---
  GreedyCheckpoint greedy;
  double value = 0.0;  // f(selected prefix)

  std::vector<uint8_t> Serialize() const;
  static Result<SelectionCheckpoint> Deserialize(
      const std::vector<uint8_t>& bytes);

  Status SaveFile(const std::string& path) const;
  static Result<SelectionCheckpoint> LoadFile(const std::string& path);

  /// InvalidArgument (with the first mismatching field named) unless this
  /// checkpoint's fingerprint matches the given run shape. `target` is
  /// deliberately NOT part of the comparison: resuming with a different
  /// target truncates or extends the greedy prefix.
  Status CompatibleWith(uint64_t run_seed, int64_t run_mode, uint64_t run_k,
                        uint64_t run_num_queries, uint64_t run_fagin_batch,
                        uint64_t run_query_group, uint64_t run_n_rows,
                        uint64_t run_num_participants, uint64_t run_shards,
                        uint64_t run_prefilter_clusters) const;

  /// The per-participant digests for a neighborhood set: digest p accumulates
  /// p's d_T value of every query in query order.
  static std::vector<uint32_t> ComputePartyDigests(
      const std::vector<vfl::QueryNeighborhood>& neighborhoods,
      size_t num_participants);
};

}  // namespace vfps::core

#endif  // VFPS_CORE_CHECKPOINT_H_

#ifndef VFPS_CORE_SHAPLEY_H_
#define VFPS_CORE_SHAPLEY_H_

#include "core/selector.h"

namespace vfps::core {

/// \brief SHAPLEY baseline: score each participant by its Shapley value over
/// the federated-KNN proxy utility U(S) = validation accuracy of KNN using
/// only the participants in S, then keep the top scorers.
///
/// Exact computation enumerates all 2^P - 1 coalitions (each one a federated
/// KNN evaluation whose cost is charged to the clock) — this is why the
/// paper finds SHAPLEY orders of magnitude slower and exponentially worse
/// with P. Beyond ctx.shapley_exact_limit participants the values are
/// Monte-Carlo estimated from sampled permutations and the *remaining*
/// coalition cost is extrapolated onto the clock at the measured per-
/// coalition rate, preserving the exponential timing shape (see
/// EXPERIMENTS.md).
class ShapleySelector final : public ParticipantSelector {
 public:
  std::string name() const override { return "SHAPLEY"; }
  Result<SelectionOutcome> Select(const SelectionContext& ctx,
                                  size_t target) override;

  /// Shapley values of the last Select call, one per participant.
  const std::vector<double>& last_values() const { return last_values_; }

 private:
  std::vector<double> last_values_;
};

}  // namespace vfps::core

#endif  // VFPS_CORE_SHAPLEY_H_

#ifndef VFPS_CORE_VFMINE_H_
#define VFPS_CORE_VFMINE_H_

#include "core/selector.h"

namespace vfps::core {

/// \brief VF-MINE baseline (Jiang et al., NeurIPS'22 "VF-PS"): sample
/// participant groups, score each group by the mutual information between
/// the group's federated-KNN predictions and the true labels, and score each
/// participant by the average MI of the groups containing it; keep the top
/// scorers.
///
/// The per-participant scores are additive averages, so the method cannot
/// see redundancy between participants — a duplicated participant inherits
/// its twin's (high) score, which is exactly the failure mode the Fig. 6
/// diversity study exposes.
class VfMineSelector final : public ParticipantSelector {
 public:
  std::string name() const override { return "VF-MINE"; }
  Result<SelectionOutcome> Select(const SelectionContext& ctx,
                                  size_t target) override;

  /// MI-based scores of the last Select call, one per participant.
  const std::vector<double>& last_scores() const { return last_scores_; }

 private:
  std::vector<double> last_scores_;
};

/// \brief Plug-in mutual-information estimate (in nats) between two integer
/// label sequences, from their joint histogram. Exposed for unit tests.
double MutualInformation(const std::vector<int>& a, const std::vector<int>& b,
                         int num_classes);

}  // namespace vfps::core

#endif  // VFPS_CORE_VFMINE_H_

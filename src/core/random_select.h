#ifndef VFPS_CORE_RANDOM_SELECT_H_
#define VFPS_CORE_RANDOM_SELECT_H_

#include "core/selector.h"

namespace vfps::core {

/// \brief RANDOM baseline: uniformly sample the sub-consortium. Selection is
/// instantaneous (the paper reports 0 selection time for it).
class RandomSelector final : public ParticipantSelector {
 public:
  std::string name() const override { return "RANDOM"; }
  Result<SelectionOutcome> Select(const SelectionContext& ctx,
                                  size_t target) override;
};

}  // namespace vfps::core

#endif  // VFPS_CORE_RANDOM_SELECT_H_

#include "core/selector.h"

#include "common/macros.h"
#include "core/random_select.h"
#include "core/shapley.h"
#include "core/vfmine.h"
#include "core/vfps_sm.h"

namespace vfps::core {

const char* SelectionMethodName(SelectionMethod method) {
  switch (method) {
    case SelectionMethod::kAll:
      return "ALL";
    case SelectionMethod::kRandom:
      return "RANDOM";
    case SelectionMethod::kShapley:
      return "SHAPLEY";
    case SelectionMethod::kVfMine:
      return "VF-MINE";
    case SelectionMethod::kVfpsSm:
      return "VFPS-SM";
    case SelectionMethod::kVfpsSmBase:
      return "VFPS-SM-BASE";
  }
  return "UNKNOWN";
}

Result<SelectionMethod> ParseSelectionMethod(const std::string& name) {
  if (name == "ALL" || name == "all") return SelectionMethod::kAll;
  if (name == "RANDOM" || name == "random") return SelectionMethod::kRandom;
  if (name == "SHAPLEY" || name == "shapley") return SelectionMethod::kShapley;
  if (name == "VF-MINE" || name == "vfmine") return SelectionMethod::kVfMine;
  if (name == "VFPS-SM" || name == "vfps-sm") return SelectionMethod::kVfpsSm;
  if (name == "VFPS-SM-BASE" || name == "vfps-sm-base") {
    return SelectionMethod::kVfpsSmBase;
  }
  return Status::InvalidArgument("unknown selection method: " + name);
}

Status ValidateContext(const SelectionContext& ctx, size_t target) {
  VFPS_CHECK_ARG(ctx.split != nullptr, "selector: missing data split");
  VFPS_CHECK_ARG(ctx.partition != nullptr, "selector: missing partition");
  VFPS_CHECK_ARG(ctx.backend != nullptr, "selector: missing HE backend");
  VFPS_CHECK_ARG(ctx.network != nullptr, "selector: missing network");
  VFPS_CHECK_ARG(ctx.cost != nullptr, "selector: missing cost model");
  VFPS_CHECK_ARG(ctx.clock != nullptr, "selector: missing clock");
  VFPS_CHECK_ARG(target >= 1, "selector: target must be >= 1");
  VFPS_CHECK_ARG(target <= ctx.partition->size(),
                 "selector: target exceeds participant count");
  return Status::OK();
}

Result<std::unique_ptr<ParticipantSelector>> CreateSelector(
    SelectionMethod method) {
  switch (method) {
    case SelectionMethod::kAll:
      return Status::InvalidArgument(
          "ALL trains with every participant; there is no selector");
    case SelectionMethod::kRandom:
      return std::unique_ptr<ParticipantSelector>(new RandomSelector());
    case SelectionMethod::kShapley:
      return std::unique_ptr<ParticipantSelector>(new ShapleySelector());
    case SelectionMethod::kVfMine:
      return std::unique_ptr<ParticipantSelector>(new VfMineSelector());
    case SelectionMethod::kVfpsSm:
      return std::unique_ptr<ParticipantSelector>(
          new VfpsSmSelector(vfl::KnnOracleMode::kFagin));
    case SelectionMethod::kVfpsSmBase:
      return std::unique_ptr<ParticipantSelector>(
          new VfpsSmSelector(vfl::KnnOracleMode::kBase));
  }
  return Status::InvalidArgument("unknown selection method");
}

}  // namespace vfps::core

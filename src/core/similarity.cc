#include "core/similarity.h"

#include <cmath>

#include "common/macros.h"

namespace vfps::core {

Result<SimilarityMatrix> BuildSimilarity(
    const std::vector<vfl::QueryNeighborhood>& neighborhoods,
    size_t num_participants, ThreadPool* pool) {
  VFPS_CHECK_ARG(!neighborhoods.empty(), "similarity: no query results");
  VFPS_CHECK_ARG(num_participants >= 1, "similarity: no participants");
  for (const auto& hood : neighborhoods) {
    VFPS_CHECK_ARG(hood.per_party_dt.size() == num_participants,
                   "similarity: per-party distance size mismatch");
  }

  // Per-query totals first (serial, O(|Q| * P)), so the parallel rows below
  // are pure reads of shared state.
  std::vector<double> totals(neighborhoods.size(), 0.0);
  for (size_t q = 0; q < neighborhoods.size(); ++q) {
    for (double dt : neighborhoods[q].per_party_dt) totals[q] += dt;
  }

  // Rows of the upper triangle are independent; each cell accumulates over
  // queries in query order regardless of which thread owns the row, keeping
  // the matrix bit-identical at any thread count.
  SimilarityMatrix w(num_participants);
  std::vector<double> accum(num_participants * num_participants, 0.0);
  const auto fill_row = [&](size_t a) {
    for (size_t q = 0; q < neighborhoods.size(); ++q) {
      const auto& dt = neighborhoods[q].per_party_dt;
      for (size_t b = a; b < num_participants; ++b) {
        double wq = 1.0;  // d_T == 0: indistinguishable, fully similar
        if (totals[q] > 0.0) {
          wq = (totals[q] - std::abs(dt[a] - dt[b])) / totals[q];
        }
        accum[a * num_participants + b] += wq;
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, num_participants, fill_row);
  } else {
    for (size_t a = 0; a < num_participants; ++a) fill_row(a);
  }

  const double inv = 1.0 / static_cast<double>(neighborhoods.size());
  for (size_t a = 0; a < num_participants; ++a) {
    for (size_t b = a; b < num_participants; ++b) {
      w.Set(a, b, accum[a * num_participants + b] * inv);
    }
  }
  return w;
}

}  // namespace vfps::core

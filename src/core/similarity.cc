#include "core/similarity.h"

#include <cmath>

#include "common/macros.h"

namespace vfps::core {

Result<SimilarityMatrix> BuildSimilarity(
    const std::vector<vfl::QueryNeighborhood>& neighborhoods,
    size_t num_participants) {
  VFPS_CHECK_ARG(!neighborhoods.empty(), "similarity: no query results");
  VFPS_CHECK_ARG(num_participants >= 1, "similarity: no participants");

  SimilarityMatrix w(num_participants);
  std::vector<double> accum(num_participants * num_participants, 0.0);
  for (const auto& hood : neighborhoods) {
    VFPS_CHECK_ARG(hood.per_party_dt.size() == num_participants,
                   "similarity: per-party distance size mismatch");
    double total = 0.0;
    for (double dt : hood.per_party_dt) total += dt;
    for (size_t a = 0; a < num_participants; ++a) {
      for (size_t b = a; b < num_participants; ++b) {
        double wq = 1.0;  // d_T == 0: indistinguishable, fully similar
        if (total > 0.0) {
          wq = (total - std::abs(hood.per_party_dt[a] - hood.per_party_dt[b])) /
               total;
        }
        accum[a * num_participants + b] += wq;
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(neighborhoods.size());
  for (size_t a = 0; a < num_participants; ++a) {
    for (size_t b = a; b < num_participants; ++b) {
      w.Set(a, b, accum[a * num_participants + b] * inv);
    }
  }
  return w;
}

}  // namespace vfps::core

#ifndef VFPS_CORE_VFPS_SM_H_
#define VFPS_CORE_VFPS_SM_H_

#include "core/greedy.h"
#include "core/selector.h"
#include "core/similarity.h"

namespace vfps::core {

/// \brief The paper's method: run the (encrypted) federated KNN oracle over
/// a sampled query set, derive the participant-similarity matrix w(p, s),
/// and greedily maximize the KNN submodular function
/// f(S) = sum_p max_{s in S} w(p, s).
///
/// The oracle mode distinguishes VFPS-SM (Fagin-optimized candidate sets)
/// from the VFPS-SM-BASE ablation (every instance encrypted per query).
///
/// Threading: Select() honors SelectionContext::pool — the KNN queries and
/// the similarity-matrix assembly run on the pool when one is supplied, and
/// both stages guarantee bit-identical outputs at any thread count, so the
/// selected set and scores never depend on parallelism. One VfpsSmSelector
/// instance must be driven from one thread at a time (it caches
/// last_similarity()).
///
/// Churn tolerance: when the network has a fault plan, Select() runs a
/// membership loop instead of a single oracle pass. A participant that
/// crashes or leaves (PeerDead) is quarantined and the oracle repaired over
/// the survivors; a join= participant starts absent and is spliced in when a
/// run crosses its threshold; a heal= participant is un-quarantined the same
/// way. Repairs are incremental: a vfl::SelectionCache carries every
/// surviving party's contributions across reruns, so only the membership
/// delta recomputes (select.repair.* metrics quantify this). Exclusions are
/// reported in SelectionOutcome::quarantined / ::absent. Only participants
/// (ids >= 1) can churn; a dead leader or server still fails the run. After
/// a degraded run, last_similarity() is indexed by survivor position, not
/// participant id.
///
/// Checkpoint/resume: SelectionContext::checkpoint captures the finished
/// run's state (membership, neighborhoods, per-party digests, greedy scan);
/// SelectionContext::resume restores it — the oracle phase is skipped and
/// the greedy scan continues from the checkpointed prefix (identical
/// selection to an uninterrupted run; a different target truncates or
/// extends the prefix).
class VfpsSmSelector final : public ParticipantSelector {
 public:
  /// \param mode kFagin for VFPS-SM, kBase for the VFPS-SM-BASE ablation
  ///        (kThreshold selects the TA merge variant).
  /// \param lazy_greedy use the lazy-evaluation greedy (same output as the
  ///        plain greedy — the submodular function is exact — but fewer
  ///        marginal-gain evaluations charged to the clock).
  explicit VfpsSmSelector(vfl::KnnOracleMode mode, bool lazy_greedy = true)
      : mode_(mode), lazy_greedy_(lazy_greedy) {}

  std::string name() const override {
    return mode_ == vfl::KnnOracleMode::kFagin ? "VFPS-SM" : "VFPS-SM-BASE";
  }

  /// \brief Run selection: |Q| encrypted KNN queries, similarity assembly,
  /// then (lazy) greedy maximization.
  ///
  /// Complexity: the oracle dominates — per query O(P * N * F/P + N log N)
  /// simulated work, encrypting only the Fagin/TA candidate set (or N-1
  /// values under kBase) — followed by O(target * P^2) greedy. Simulated
  /// seconds land on ctx.clock; wall-clock scales with the pool size.
  Result<SelectionOutcome> Select(const SelectionContext& ctx,
                                  size_t target) override;

  /// The similarity matrix of the last Select call (for diagnostics/tests).
  /// Valid until the next Select on this instance.
  const SimilarityMatrix& last_similarity() const { return last_similarity_; }

 private:
  vfl::KnnOracleMode mode_;
  bool lazy_greedy_;
  SimilarityMatrix last_similarity_;
};

}  // namespace vfps::core

#endif  // VFPS_CORE_VFPS_SM_H_

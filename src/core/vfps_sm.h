#ifndef VFPS_CORE_VFPS_SM_H_
#define VFPS_CORE_VFPS_SM_H_

#include "core/greedy.h"
#include "core/selector.h"
#include "core/similarity.h"

namespace vfps::core {

/// \brief The paper's method: run the (encrypted) federated KNN oracle over
/// a sampled query set, derive the participant-similarity matrix w(p, s),
/// and greedily maximize the KNN submodular function
/// f(S) = sum_p max_{s in S} w(p, s).
///
/// The oracle mode distinguishes VFPS-SM (Fagin-optimized candidate sets)
/// from the VFPS-SM-BASE ablation (every instance encrypted per query).
class VfpsSmSelector final : public ParticipantSelector {
 public:
  explicit VfpsSmSelector(vfl::KnnOracleMode mode, bool lazy_greedy = true)
      : mode_(mode), lazy_greedy_(lazy_greedy) {}

  std::string name() const override {
    return mode_ == vfl::KnnOracleMode::kFagin ? "VFPS-SM" : "VFPS-SM-BASE";
  }

  Result<SelectionOutcome> Select(const SelectionContext& ctx,
                                  size_t target) override;

  /// The similarity matrix of the last Select call (for diagnostics/tests).
  const SimilarityMatrix& last_similarity() const { return last_similarity_; }

 private:
  vfl::KnnOracleMode mode_;
  bool lazy_greedy_;
  SimilarityMatrix last_similarity_;
};

}  // namespace vfps::core

#endif  // VFPS_CORE_VFPS_SM_H_

#include "core/submodular.h"

#include <algorithm>

namespace vfps::core {

double KnnSubmodularFunction::Value(const std::vector<size_t>& subset) const {
  if (subset.empty()) return 0.0;
  const size_t p = w_.num_participants();
  double total = 0.0;
  for (size_t a = 0; a < p; ++a) {
    double best = 0.0;
    bool first = true;
    for (size_t s : subset) {
      const double w = w_.At(a, s);
      if (first || w > best) {
        best = w;
        first = false;
      }
    }
    total += best;
  }
  return total;
}

double KnnSubmodularFunction::MarginalGain(const std::vector<size_t>& subset,
                                           size_t candidate) const {
  std::vector<size_t> extended = subset;
  extended.push_back(candidate);
  return Value(extended) - Value(subset);
}

KnnSubmodularFunction::Incremental::Incremental(const KnnSubmodularFunction* f)
    : f_(f), best_(f->ground_set_size(), 0.0) {}

double KnnSubmodularFunction::Incremental::GainOf(size_t candidate) const {
  const size_t p = f_->ground_set_size();
  double gain = 0.0;
  for (size_t a = 0; a < p; ++a) {
    const double w = f_->similarity().At(a, candidate);
    if (w > best_[a]) gain += w - best_[a];
  }
  return gain;
}

void KnnSubmodularFunction::Incremental::Add(size_t candidate) {
  const size_t p = f_->ground_set_size();
  for (size_t a = 0; a < p; ++a) {
    const double w = f_->similarity().At(a, candidate);
    if (w > best_[a]) {
      value_ += w - best_[a];
      best_[a] = w;
    }
  }
}

}  // namespace vfps::core

#include "core/experiment.h"

#include <numeric>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "data/csv_loader.h"
#include "data/presets.h"
#include "data/scaler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace vfps::core {

const char* HeBackendKindName(HeBackendKind kind) {
  switch (kind) {
    case HeBackendKind::kCkks:
      return "ckks";
    case HeBackendKind::kPaillier:
      return "paillier";
    case HeBackendKind::kPlain:
      return "plain";
  }
  return "unknown";
}

namespace {
Result<std::unique_ptr<he::HeBackend>> MakeBackend(const ExperimentConfig& config) {
  switch (config.backend) {
    case HeBackendKind::kCkks:
      return he::CreateCkksBackend(he::CkksParams{}, config.seed,
                                   config.ckks_packing);
    case HeBackendKind::kPaillier:
      return he::CreatePaillierBackend(config.paillier_modulus_bits,
                                       /*fractional_bits=*/20, config.seed);
    case HeBackendKind::kPlain:
      return Result<std::unique_ptr<he::HeBackend>>(he::CreatePlainBackend());
  }
  return Status::InvalidArgument("unknown HE backend kind");
}
}  // namespace

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  Stopwatch wall;

  // Data: preset or CSV -> 80/10/10 split -> standardize on train statistics.
  data::SyntheticDataset synthetic;
  if (!config.csv_path.empty()) {
    VFPS_ASSIGN_OR_RETURN(synthetic.data,
                          data::LoadCsv(config.csv_path, data::CsvOptions{}));
    // Real data carries no generator metadata; treat every column uniformly.
    synthetic.kinds.assign(synthetic.data.num_features(),
                           data::FeatureKind::kInformative);
  } else {
    VFPS_ASSIGN_OR_RETURN(
        synthetic, data::LoadPreset(config.dataset, config.scale, config.seed));
  }
  VFPS_ASSIGN_OR_RETURN(auto split,
                        data::SplitDataset(synthetic.data, 0.8, 0.1, config.seed));
  VFPS_RETURN_NOT_OK(data::StandardizeSplit(&split));

  // Consortium: vertical partition (+ Fig. 6 duplicates).
  data::VerticalPartition partition;
  if (config.partition == PartitionMode::kQualityStratified) {
    VFPS_ASSIGN_OR_RETURN(
        partition,
        data::QualityStratifiedPartition(synthetic.kinds, config.participants,
                                         config.seed));
  } else {
    VFPS_ASSIGN_OR_RETURN(
        partition,
        data::RandomVerticalPartition(synthetic.data.num_features(),
                                      config.participants, config.seed));
  }
  if (config.duplicates > 0) {
    if (config.duplicates_round_robin) {
      for (size_t i = 0; i < config.duplicates; ++i) {
        VFPS_ASSIGN_OR_RETURN(
            partition,
            data::WithDuplicates(partition, i % config.participants, 1));
      }
    } else {
      VFPS_ASSIGN_OR_RETURN(
          partition, data::WithDuplicates(partition, config.duplicate_source,
                                          config.duplicates));
    }
  }

  // Simulated deployment.
  VFPS_ASSIGN_OR_RETURN(auto backend, MakeBackend(config));
  net::SimNetwork network;
  SimClock clock;
  // Label the HE op counters with the backend kind (he.encrypt_ops{backend=
  // ckks} etc.), so a run's ciphertext-op totals attribute to the scheme
  // that produced them. Must precede set_metrics — labels apply when the
  // counter handles are resolved.
  backend->set_metric_labels({{"backend", HeBackendKindName(config.backend)}});
  backend->set_metrics(config.obs);
  network.set_metrics(config.obs);
  obs::Tracer* const tracer =
      config.obs == nullptr ? nullptr : config.obs->tracer();
  if (config.faults.any()) {
    VFPS_RETURN_NOT_OK(config.faults.Validate());
    network.EnableFaults(config.faults, config.fault_seed, &clock);
  }
  std::unique_ptr<ThreadPool> pool;
  if (config.num_threads != 1) {  // 0 = hardware concurrency (ThreadPool ctor)
    pool = std::make_unique<ThreadPool>(config.num_threads);
    backend->set_thread_pool(pool.get());
  }

  ExperimentResult result;
  result.rows = split.train.num_samples();
  result.features = split.train.num_features();
  result.consortium_size = partition.size();

  // Selection phase.
  if (config.method == SelectionMethod::kAll) {
    result.selection.selected.resize(partition.size());
    std::iota(result.selection.selected.begin(), result.selection.selected.end(),
              size_t{0});
    result.selection.sim_seconds = 0.0;
  } else {
    obs::Span span_select(tracer, "experiment.selection", &clock);
    SelectionContext ctx;
    ctx.split = &split;
    ctx.partition = &partition;
    ctx.backend = backend.get();
    ctx.network = &network;
    ctx.cost = &config.cost;
    ctx.clock = &clock;
    ctx.pool = pool.get();
    ctx.obs = config.obs;
    ctx.knn = config.knn;
    ctx.seed = config.seed;
    ctx.utility_queries = config.utility_queries;
    ctx.shapley_exact_limit = config.shapley_exact_limit;
    ctx.shapley_mc_permutations = config.shapley_mc_permutations;
    SelectionCheckpoint resume;
    if (!config.resume_from.empty()) {
      VFPS_ASSIGN_OR_RETURN(resume,
                            SelectionCheckpoint::LoadFile(config.resume_from));
      ctx.resume = &resume;
    }
    SelectionCheckpoint checkpoint;
    if (!config.checkpoint_out.empty()) ctx.checkpoint = &checkpoint;
    VFPS_ASSIGN_OR_RETURN(auto selector, CreateSelector(config.method));
    VFPS_ASSIGN_OR_RETURN(result.selection, selector->Select(ctx, config.select));
    // Only the VFPS-SM variants fill the checkpoint; an untouched one (other
    // methods) is not worth writing.
    if (ctx.checkpoint != nullptr && checkpoint.num_participants > 0) {
      VFPS_RETURN_NOT_OK(checkpoint.SaveFile(config.checkpoint_out));
    }
  }
  result.selection_sim_seconds = result.selection.sim_seconds;
  result.faults = network.fault_stats();

  // Downstream training on the selected sub-consortium.
  obs::Span span_train(tracer, "experiment.training", &clock);
  vfl::DownstreamOptions downstream;
  downstream.model = config.model;
  downstream.classifier = config.classifier;
  VFPS_ASSIGN_OR_RETURN(
      result.training,
      vfl::RunDownstreamTraining(split, partition, result.selection.selected,
                                 downstream, config.cost, &clock));
  span_train.End();
  result.training_sim_seconds = result.training.sim_seconds;
  result.total_sim_seconds =
      result.selection_sim_seconds + result.training_sim_seconds;
  result.wall_seconds = wall.ElapsedSeconds();
  if (config.obs != nullptr) {
    config.obs->SetGauge("experiment.accuracy", result.training.test_accuracy);
    config.obs->SetGauge("experiment.sim_seconds", result.total_sim_seconds);
    config.obs->SetGauge("experiment.wall_seconds", result.wall_seconds);
    config.obs->SetGauge("experiment.consortium_size",
                         static_cast<double>(result.consortium_size));
    config.obs->SetGauge(
        "experiment.threads",
        static_cast<double>(pool != nullptr ? pool->num_threads() : 1));
    // Kernel ISA provenance lives in the runner layer, NOT in the selector:
    // the forced-scalar-vs-SIMD bit-identity check compares the selector's
    // merged counters across runs, and an isa label inside the selector
    // would make those legitimately differ.
    const simd::Isa isa = simd::ActiveIsa();
    config.obs->SetGauge("kernel.isa", static_cast<double>(isa));
    config.obs
        ->GetLabeledCounter("kernel.isa.selected", {{"isa", simd::IsaName(isa)}})
        ->Add();
  }
  return result;
}

}  // namespace vfps::core

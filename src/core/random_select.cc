#include "core/random_select.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"

namespace vfps::core {

Result<SelectionOutcome> RandomSelector::Select(const SelectionContext& ctx,
                                                size_t target) {
  VFPS_RETURN_NOT_OK(ValidateContext(ctx, target));
  Rng rng(ctx.seed ^ 0xAC1DC0DEULL);
  SelectionOutcome outcome;
  outcome.selected = rng.SampleWithoutReplacement(ctx.partition->size(), target);
  std::sort(outcome.selected.begin(), outcome.selected.end());
  outcome.sim_seconds = 0.0;
  return outcome;
}

}  // namespace vfps::core

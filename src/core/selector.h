#ifndef VFPS_CORE_SELECTOR_H_
#define VFPS_CORE_SELECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "he/backend.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "vfl/fed_knn.h"

namespace vfps::obs {
class MetricsRegistry;
}  // namespace vfps::obs

namespace vfps::core {

struct SelectionCheckpoint;  // core/checkpoint.h

/// Participant-selection methods evaluated in the paper.
enum class SelectionMethod {
  kAll,         // no selection: train with every participant
  kRandom,      // uniform random subset
  kShapley,     // Shapley values over the federated-KNN proxy utility
  kVfMine,      // VF-MINE: mutual-information group scoring
  kVfpsSm,      // this paper: submodular maximization + Fagin-optimized KNN
  kVfpsSmBase,  // ablation: same, with the encrypt-everything KNN oracle
};

const char* SelectionMethodName(SelectionMethod method);
Result<SelectionMethod> ParseSelectionMethod(const std::string& name);

/// \brief Everything a selector needs: the data, the simulated deployment,
/// and method hyper-parameters.
///
/// All pointers are borrowed: the caller owns the objects and must keep them
/// alive for the duration of Select(). One context must not be used by two
/// selectors concurrently (the deployment objects it points at are not
/// thread-safe); selectors parallelize internally through `pool`.
struct SelectionContext {
  const data::DataSplit* split = nullptr;  // standardized joint feature views
  const data::VerticalPartition* partition = nullptr;
  he::HeBackend* backend = nullptr;
  net::SimNetwork* network = nullptr;
  const net::CostModel* cost = nullptr;
  SimClock* clock = nullptr;  // charged with selection-phase time
  /// Optional worker pool. When non-null (and > 1 thread), the encrypted-KNN
  /// oracle runs its queries in parallel and the similarity matrix is
  /// assembled threaded; results are bit-identical to the serial path (see
  /// vfl::FederatedKnnOracle). nullptr selects the serial path.
  ThreadPool* pool = nullptr;
  /// Optional metrics/tracing sink. When non-null, selectors publish
  /// `select.*` counters and phase spans, and the deployment objects they
  /// build (oracle, task-local networks) inherit it. nullptr (the default)
  /// disables all observability at the cost of a branch per site.
  obs::MetricsRegistry* obs = nullptr;

  vfl::FedKnnConfig knn;  // oracle settings (k, |Q|, Fagin batch, seed)
  uint64_t seed = 42;

  /// Resume state (nullable; VFPS-SM variants only): a checkpoint previously
  /// saved via `checkpoint`, validated against this run's fingerprint. On a
  /// match the oracle phase is skipped entirely and the greedy scan continues
  /// from the checkpointed prefix; on a mismatch Select() fails typed.
  const SelectionCheckpoint* resume = nullptr;
  /// When non-null (VFPS-SM variants only), Select() fills it with the
  /// completed run's state — membership, neighborhoods, per-party digests,
  /// and the greedy scan at its final pick boundary — for --checkpoint-out.
  SelectionCheckpoint* checkpoint = nullptr;

  /// Validation rows used as the utility-evaluation set by SHAPLEY / VF-MINE.
  size_t utility_queries = 32;
  /// SHAPLEY enumerates all 2^P coalitions up to this P; beyond it, Shapley
  /// values are Monte-Carlo estimated and the remaining coalition cost is
  /// extrapolated onto the clock (documented in EXPERIMENTS.md).
  size_t shapley_exact_limit = 12;
  size_t shapley_mc_permutations = 16;
  /// VF-MINE samples (factor * P) participant groups for MI scoring.
  size_t vfmine_groups_factor = 2;
};

/// \brief A selection decision plus its accounting.
struct SelectionOutcome {
  std::vector<size_t> selected;  // ascending participant ids
  /// Per-participant score in the method's own currency (marginal gain,
  /// Shapley value, MI, ...); empty for RANDOM.
  std::vector<double> scores;
  double sim_seconds = 0.0;       // simulated selection time
  vfl::FedKnnStats knn_stats;     // populated by the VFPS-SM variants
  /// Participants that crashed mid-protocol and were excluded by graceful
  /// degradation (ascending ids). Empty in a healthy run. Quarantined
  /// participants are never in `selected` and keep a 0.0 score.
  std::vector<size_t> quarantined;
  /// Participants whose join= rule never fired during the run (ascending
  /// ids): they were not part of the consortium for any completed oracle
  /// pass, are never in `selected`, and keep a 0.0 score.
  std::vector<size_t> absent;
};

/// \brief Interface implemented by every selection method.
class ParticipantSelector {
 public:
  virtual ~ParticipantSelector() = default;

  /// Method name as it appears in CLI flags and result tables ("vfps-sm",
  /// "shapley", ...). Stable across runs; safe to key result files on.
  virtual std::string name() const = 0;

  /// \brief Choose `target` of the ctx.partition->size() participants.
  ///
  /// \param ctx borrowed deployment + hyper-parameters; see SelectionContext
  ///        for lifetime and threading rules.
  /// \param target how many participants to keep, 1 <= target <= P.
  /// \return the selected ids (ascending), per-participant scores, and the
  ///         simulated selection-phase seconds charged to ctx.clock.
  ///
  /// Deterministic for a fixed (ctx seeds, target) at any thread count.
  /// Complexity is method-specific: VFPS-SM runs |Q| encrypted KNN queries
  /// plus an O(P^2 * target) greedy pass; SHAPLEY runs up to 2^P coalition
  /// evaluations (Monte-Carlo beyond shapley_exact_limit).
  virtual Result<SelectionOutcome> Select(const SelectionContext& ctx,
                                          size_t target) = 0;
};

/// \brief Factory for the method implementations.
///
/// kAll is not a selector (there is nothing to select); asking for it
/// returns InvalidArgument. The returned selector is stateless between
/// Select() calls and may be reused across experiments.
Result<std::unique_ptr<ParticipantSelector>> CreateSelector(
    SelectionMethod method);

/// \brief Validate that a context is fully populated (shared by
/// implementations): non-null data/deployment pointers, a consistent
/// partition, and 1 <= target <= P. Returns InvalidArgument otherwise.
Status ValidateContext(const SelectionContext& ctx, size_t target);

}  // namespace vfps::core

#endif  // VFPS_CORE_SELECTOR_H_

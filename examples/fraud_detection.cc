// Fraud-detection consortium — the paper's Fig. 1 motivating scenario.
//
// A bank (leader, holds the fraud labels) wants to train a fraud model with
// an e-commerce company, a credit bureau, and two data vendors. The credit
// bureau's features largely duplicate the bank's own financial view, and one
// vendor sells repackaged noise. Budget allows training with TWO partners.
//
// This example builds that consortium explicitly (hand-crafted feature
// assignment rather than the automatic partitioner), runs VFPS-SM and the
// baselines under real CKKS encryption, and shows how diversity-aware
// selection avoids the reseller and lands on a pair of partners with
// genuinely complementary information.
//
//   ./build/examples/fraud_detection

#include <cstdio>

#include "common/macros.h"
#include "core/selector.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "vfl/split_train.h"

namespace {

using namespace vfps;  // NOLINT(build/namespaces)

constexpr const char* kPartyNames[] = {"bank(leader)", "e-commerce",
                                       "credit-bureau", "vendor-A", "vendor-B"};

std::string PartyList(const std::vector<size_t>& parties) {
  std::string out;
  for (size_t p : parties) {
    out += (out.empty() ? "" : "+") + std::string(kPartyNames[p]);
  }
  return out;
}

}  // namespace

int main() {
  // 24 features: 9 informative (0-8), 9 redundant combinations (9-17),
  // 6 noise (18-23).
  data::SyntheticConfig config;
  config.num_samples = 4000;
  config.num_features = 24;
  config.num_informative = 9;
  config.num_redundant = 9;
  config.centroid_distance = 3.6;
  config.label_noise = 0.02;
  config.class_priors = {0.85, 0.15};  // fraud is rare
  config.seed = 7;
  auto generated = data::GenerateClassification(config);
  generated.status().Abort("generate");
  auto split = data::SplitDataset(generated->data, 0.8, 0.1, 7);
  split.status().Abort("split");
  VFPS_ABORT_NOT_OK(data::StandardizeSplit(&*split));

  // Hand-crafted consortium (near-equal widths, heterogeneous content):
  //   bank:          informative 0-2 + its own derived metrics 9, 10
  //   e-commerce:    informative 3-5 + noise 18 (shopping data, new signal)
  //   credit bureau: redundant 11-13 (recombinations of financials) + inf 6
  //   vendor-A:      informative 7, 8 + noise 19, 20
  //   vendor-B:      a data reseller: recombined columns 14-17 + noise 21
  //                  (the classic "hitch-rider": busy-looking, nothing new)
  data::VerticalPartition partition = {{0, 1, 2, 9, 10},
                                       {3, 4, 5, 18},
                                       {11, 12, 13, 6},
                                       {7, 8, 19, 20},
                                       {14, 15, 16, 17, 21}};

  auto backend = he::CreateCkksBackend(/*seed=*/99);
  backend.status().Abort("ckks backend");
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;

  core::SelectionContext ctx;
  ctx.split = &*split;
  ctx.partition = &partition;
  ctx.backend = backend->get();
  ctx.network = &network;
  ctx.cost = &cost;
  ctx.clock = &clock;
  ctx.knn.k = 10;
  ctx.knn.num_queries = 160;
  ctx.utility_queries = 32;
  ctx.seed = 7;

  std::printf("Fraud-detection consortium: pick 2 partners out of 5\n");
  std::printf("(real CKKS encryption; times are simulated cluster seconds)\n\n");

  for (core::SelectionMethod method :
       {core::SelectionMethod::kShapley, core::SelectionMethod::kVfMine,
        core::SelectionMethod::kVfpsSm}) {
    auto selector = core::CreateSelector(method);
    selector.status().Abort("selector");
    auto outcome = (*selector)->Select(ctx, 2);
    outcome.status().Abort("select");

    vfl::DownstreamOptions downstream;
    downstream.model = ml::ModelKind::kLogReg;
    auto training = vfl::RunDownstreamTraining(
        *split, partition, outcome->selected, downstream, cost, nullptr);
    training.status().Abort("train");

    std::printf("%-8s -> %-26s selection %6.1fs  fraud-model accuracy %.4f\n",
                core::SelectionMethodName(method),
                PartyList(outcome->selected).c_str(), outcome->sim_seconds,
                training->test_accuracy);
  }

  std::printf(
      "\nThe submodular objective discounts the credit bureau and vendor-B\n"
      "(both views are derivable from others' columns), pairing the bank's\n"
      "signal with a partner holding genuinely new information.\n");
  return 0;
}

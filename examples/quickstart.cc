// Quickstart: select 2 of 4 participants on a synthetic "Bank"-style dataset
// and compare every selection method on the same downstream LR task.
//
//   ./build/examples/quickstart
//
// This walks the whole public API surface: dataset presets, the simulated
// encrypted deployment, every selector, and the downstream split trainer.

#include <cstdio>

#include "common/macros.h"
#include "core/experiment.h"

namespace {

using vfps::core::ExperimentConfig;
using vfps::core::RunExperiment;
using vfps::core::SelectionMethod;

void PrintRow(const char* method, const vfps::core::ExperimentResult& r) {
  std::string members;
  for (size_t p : r.selection.selected) {
    members += (members.empty() ? "" : ",") + std::to_string(p);
  }
  std::printf("%-14s picked={%-7s} selection=%8.1fs training=%8.1fs total=%8.1fs accuracy=%.4f\n",
              method, members.c_str(), r.selection_sim_seconds,
              r.training_sim_seconds, r.total_sim_seconds,
              r.training.test_accuracy);
}

}  // namespace

int main() {
  std::printf("VFPS-SM quickstart: Bank preset, P=4, select 2, downstream LR\n");
  std::printf("(times are simulated cluster seconds from the calibrated cost model)\n\n");

  const SelectionMethod methods[] = {
      SelectionMethod::kAll,       SelectionMethod::kRandom,
      SelectionMethod::kShapley,   SelectionMethod::kVfMine,
      SelectionMethod::kVfpsSmBase, SelectionMethod::kVfpsSm,
  };

  for (SelectionMethod method : methods) {
    ExperimentConfig config;
    config.dataset = "Bank";
    config.participants = 4;
    config.select = 2;
    config.method = method;
    config.model = vfps::ml::ModelKind::kLogReg;
    config.backend = vfps::core::HeBackendKind::kCkks;  // real encryption
    config.knn.k = 10;
    config.knn.num_queries = 32;
    config.seed = 42;
    auto result = RunExperiment(config);
    result.status().Abort("quickstart experiment");
    PrintRow(vfps::core::SelectionMethodName(method), *result);
  }

  std::printf("\nExpected shape: VFPS-SM's total time beats ALL and SHAPLEY,\n");
  std::printf("its accuracy is at or above VF-MINE/RANDOM, and VFPS-SM-BASE\n");
  std::printf("pays much more selection time for the same choice.\n");
  return 0;
}

// Healthcare triage consortium (HDI-style, Table III "Healthcare" domain).
//
// A hospital network (leader, holds diabetes-indicator labels) considers
// eight data partners: clinics, a pharmacy chain, wearable vendors, an
// insurer, and assorted brokers. It can fund a federated study with THREE of
// them. This example sweeps the selection budget (|S| = 1..6), showing the
// diminishing returns the submodular objective predicts, and prints the
// marginal-gain audit trail a practitioner would use to justify the choice.
//
//   ./build/examples/healthcare_triage

#include <algorithm>
#include <cstdio>

#include "common/macros.h"
#include "core/vfps_sm.h"
#include "data/presets.h"
#include "data/scaler.h"
#include "vfl/split_train.h"

using namespace vfps;  // NOLINT(build/namespaces)

int main() {
  // HDI preset scaled down, split across 8 heterogeneous participants.
  auto generated = data::LoadPreset("HDI", /*scale=*/0.4, /*seed=*/11);
  generated.status().Abort("preset");
  auto split = data::SplitDataset(generated->data, 0.8, 0.1, 11);
  split.status().Abort("split");
  VFPS_ABORT_NOT_OK(data::StandardizeSplit(&*split));
  auto partition =
      data::QualityStratifiedPartition(generated->kinds, /*participants=*/8, 11);
  partition.status().Abort("partition");

  auto backend = he::CreateCkksBackend(/*seed=*/5);
  backend.status().Abort("ckks backend");
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;

  core::SelectionContext ctx;
  ctx.split = &*split;
  ctx.partition = &*partition;
  ctx.backend = backend->get();
  ctx.network = &network;
  ctx.cost = &cost;
  ctx.clock = &clock;
  ctx.knn.k = 10;
  ctx.knn.num_queries = 48;
  ctx.seed = 11;

  std::printf("Healthcare triage: HDI-style data across 8 partners\n\n");

  // One selection pass gives the full greedy order; sweep budgets from it.
  core::VfpsSmSelector selector(vfl::KnnOracleMode::kFagin);
  auto outcome = selector.Select(ctx, 6);
  outcome.status().Abort("select");

  std::printf("Greedy audit trail (marginal submodular gain per pick):\n");
  core::KnnSubmodularFunction f(selector.last_similarity());
  auto greedy = core::LazyGreedyMaximize(f, 6);
  for (size_t i = 0; i < greedy.selected.size(); ++i) {
    std::printf("  pick %zu: partner-%zu  gain %.4f\n", i + 1,
                greedy.selected[i], greedy.gains[i]);
  }

  std::printf("\nBudget sweep (downstream MLP accuracy):\n");
  for (size_t budget = 1; budget <= 6; ++budget) {
    std::vector<size_t> selected(greedy.selected.begin(),
                                 greedy.selected.begin() + budget);
    std::sort(selected.begin(), selected.end());
    vfl::DownstreamOptions downstream;
    downstream.model = ml::ModelKind::kMlp;
    auto training = vfl::RunDownstreamTraining(*split, *partition, selected,
                                               downstream, cost, nullptr);
    training.status().Abort("train");
    std::printf("  |S| = %zu  accuracy %.4f  simulated training %7.1fs\n",
                budget, training->test_accuracy, training->sim_seconds);
  }

  std::printf(
      "\nThe gain sequence is non-increasing (submodularity), and accuracy\n"
      "saturates after a few diverse partners while training cost keeps\n"
      "growing — the case for selecting a sub-consortium.\n");
  return 0;
}

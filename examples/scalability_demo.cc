// Scalability demo: how the three selection frameworks behave as the
// consortium grows (a condensed, narrated version of Fig. 7), plus a live
// look at the Fagin oracle's candidate sets (Fig. 9's mechanism).
//
//   ./build/examples/scalability_demo

#include <cstdio>

#include "common/macros.h"
#include "core/experiment.h"

using namespace vfps;  // NOLINT(build/namespaces)

int main() {
  std::printf("Growing the consortium on the Phishing preset (select P/2):\n\n");
  std::printf("%4s  %12s  %12s  %12s\n", "P", "SHAPLEY(s)", "VF-MINE(s)",
              "VFPS-SM(s)");
  for (size_t p : {4u, 6u, 8u, 10u, 12u}) {
    double seconds[3] = {0, 0, 0};
    const core::SelectionMethod methods[] = {core::SelectionMethod::kShapley,
                                             core::SelectionMethod::kVfMine,
                                             core::SelectionMethod::kVfpsSm};
    for (int m = 0; m < 3; ++m) {
      core::ExperimentConfig config;
      config.dataset = "Phishing";
      config.scale = 0.25;
      config.participants = p;
      config.select = p / 2;
      config.method = methods[m];
      config.model = ml::ModelKind::kKnn;
      config.knn.num_queries = 16;
      config.utility_queries = 12;
      config.seed = 3;
      auto result = core::RunExperiment(config);
      result.status().Abort("experiment");
      seconds[m] = result->selection_sim_seconds;
    }
    std::printf("%4zu  %12.1f  %12.1f  %12.1f\n", p, seconds[0], seconds[1],
                seconds[2]);
  }

  std::printf("\nWhy VFPS-SM stays flat: the Fagin oracle only encrypts its\n");
  std::printf("candidate set. Candidates per query as the dataset grows:\n\n");
  std::printf("%10s  %12s  %14s  %10s\n", "rows", "BASE/query", "FAGIN/query",
              "reduction");
  for (double scale : {0.25, 0.5, 1.0}) {
    double per_query[2] = {0, 0};
    size_t rows = 0;
    const core::SelectionMethod modes[] = {core::SelectionMethod::kVfpsSmBase,
                                           core::SelectionMethod::kVfpsSm};
    for (int m = 0; m < 2; ++m) {
      core::ExperimentConfig config;
      config.dataset = "SUSY";
      config.scale = scale;
      config.method = modes[m];
      config.model = ml::ModelKind::kKnn;
      config.knn.num_queries = 8;
      config.seed = 3;
      auto result = core::RunExperiment(config);
      result.status().Abort("experiment");
      per_query[m] = result->selection.knn_stats.AvgCandidatesPerQuery();
      rows = result->rows;
    }
    std::printf("%10zu  %12.0f  %14.0f  %9.1fx\n", rows, per_query[0],
                per_query[1], per_query[0] / per_query[1]);
  }
  return 0;
}

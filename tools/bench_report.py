#!/usr/bin/env python3
"""Aggregate google-benchmark JSON into the schema'd BENCH_*.json artifact.

Reads the raw output of `bench_kernels --benchmark_format=json` run with
repetitions (per-repetition samples included), derives the *median* (the
human-facing number) and the *min* (the regression-gate number) per
benchmark, and emits:

    {
      "schema": "vfps-bench-v1",
      "repetitions": 5,
      "build": {"type": "Release", "native_arch": false},
      "kernels": {
        "BM_NttForward/4096": {
          "ns_per_op": 12345.6,           # median of repetitions
          "min_ns_per_op": 11888.1,       # fastest repetition
          "items_per_second": 1.2e8,      # when the bench reports it
          "bytes_per_second": 9.8e8,      # when the bench reports it
          "baseline_ns": 45678.9,         # from --baseline, when present
          "speedup_vs_baseline": 3.7      # baseline_ns / ns_per_op
        },
        "shard_scale/rows:1000000/shards:8": {
          "mem_bytes": 123456789,         # peak RSS, fresh process (--mem-raw)
          "baseline_mem_bytes": 120000000,
          "mem_ratio_vs_baseline": 1.03
        }, ...
      }
    }

With --check-regression PCT the script exits nonzero if any kernel present
in the baseline is more than PCT percent slower than its baseline. Two
noise defenses make this workable on shared/virtualized hosts:

  * min-of-R, not median: interference is one-sided (it only ever makes a
    run slower), so the fastest repetition is the low-variance estimator of
    what the code can do, while medians of short runs flap by 1.5x or more
    run to run.
  * calibration normalization: a kernel is flagged only if its slowdown
    also survives division by the drift of an *unchanged* calibration
    kernel (--calibration, default BM_MulModU128) — this cancels
    machine-state drift (thermal throttling, CPU steal, slower CI runner)
    that inflates every absolute number at once.
"""

import argparse
import json
import sys


def load_runs(raw):
    """Return {name: [benchmark-dict, ...]} of per-repetition samples."""
    out = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("aggregate_name"):
            continue  # we derive our own aggregates from the samples
        name = bench.get("run_name") or bench["name"]
        out.setdefault(name, []).append(bench)
    return out


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale.get(unit, 1.0)


ISA_NAMES = {0: "scalar", 1: "avx2", 2: "avx512"}


def entry_isa(entry):
    """Numeric simd::Isa a row ran on (the `isa` user counter), or None."""
    isa = entry.get("counters", {}).get("isa")
    return int(isa) if isinstance(isa, (int, float)) else None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", help="google-benchmark JSON output")
    parser.add_argument("--out", required=True, help="aggregated JSON to write")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_*.json to compute speedups against")
    parser.add_argument("--check-regression", type=float, default=None,
                        metavar="PCT",
                        help="fail if any kernel is PCT%% slower than baseline")
    parser.add_argument("--calibration", default="BM_MulModU128",
                        metavar="NAME",
                        help="reference kernel used to normalize the "
                             "regression check for machine-speed drift")
    parser.add_argument("--flagged-out", default=None, metavar="FILE",
                        help="write flagged kernel names (one per line) so "
                             "the harness can re-measure just those")
    parser.add_argument("--gate-estimator", choices=("min", "median"),
                        default="min",
                        help="statistic compared against the baseline's same "
                             "statistic by --check-regression (default min; "
                             "the full-precision retry uses median, which is "
                             "stable there and robust to kernels whose min "
                             "is bimodal across scheduling windows)")
    parser.add_argument("--mem-raw", default=None, metavar="FILE",
                        help="JSONL of bench/shard_scale records (one fresh "
                             "process each); emitted as mem_bytes rows and "
                             "gated like timings, but without calibration — "
                             "RSS does not drift with host speed")
    parser.add_argument("--repetitions", type=int, default=0)
    parser.add_argument("--native-arch", action="store_true")
    args = parser.parse_args()

    with open(args.raw) as f:
        raw = json.load(f)

    baseline = {}
    if args.baseline:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f).get("kernels", {})
        except FileNotFoundError:
            print(f"[bench_report] baseline {args.baseline} not found; "
                  "emitting absolute numbers only", file=sys.stderr)

    kernels = {}
    for name, runs in sorted(load_runs(raw).items()):
        times = [to_ns(r["real_time"], r["time_unit"]) for r in runs]
        entry = {"ns_per_op": median(times),
                 "min_ns_per_op": min(times),
                 "cpu_ns_per_op": median(
                     to_ns(r["cpu_time"], r["time_unit"]) for r in runs)}
        rep = runs[len(runs) // 2]
        for rate_key in ("items_per_second", "bytes_per_second"):
            if rate_key in rep:
                entry[rate_key] = rep[rate_key]
        # Preserve user counters (state.counters[...], e.g. ct_ops_per_query)
        # — google-benchmark flattens them into the per-run dict alongside its
        # own fields, so take any numeric key that is not a standard field.
        standard = {"real_time", "cpu_time", "iterations", "repetitions",
                    "repetition_index", "threads", "family_index",
                    "per_family_instance_index", "items_per_second",
                    "bytes_per_second"}
        user = {k: v for k, v in rep.items()
                if k not in standard and isinstance(v, (int, float))
                and not isinstance(v, bool)}
        if user:
            entry["counters"] = user
            # Peak-RSS a bench reported via state.counters["mem_bytes"] is a
            # first-class schema field, same as the shard_scale rows below.
            if "mem_bytes" in user:
                entry["mem_bytes"] = user["mem_bytes"]
        base = baseline.get(name)
        if base and base.get("ns_per_op"):
            entry["baseline_ns"] = base["ns_per_op"]
            entry["speedup_vs_baseline"] = base["ns_per_op"] / entry["ns_per_op"]
            # ISA provenance: a dispatched row measured on a different ISA
            # than its baseline row (host difference, forced-scalar run) is
            # not a like-for-like comparison — record the mismatch so the
            # regression gate can refuse to judge it instead of silently
            # mixing baselines.
            base_isa = entry_isa(base)
            now_isa = entry_isa(entry)
            if base_isa is not None and now_isa is not None \
                    and base_isa != now_isa:
                entry["baseline_isa"] = ISA_NAMES.get(base_isa, str(base_isa))
        kernels[name] = entry

    # Within-run scalar-vs-SIMD speedups: every pinned row `X/isa:Y` gets the
    # ratio against its `X/isa:scalar` sibling from the SAME run — immune to
    # host drift by construction (same binary, same machine, same session).
    for name, entry in kernels.items():
        if "/isa:" not in name or name.endswith("/isa:scalar"):
            continue
        sibling = kernels.get(name.rsplit("/isa:", 1)[0] + "/isa:scalar")
        if sibling and sibling.get("ns_per_op"):
            entry["speedup_vs_scalar_isa"] = (
                sibling["ns_per_op"] / entry["ns_per_op"])

    # Out-of-core memory rows: each shard_scale record (a fresh process per
    # configuration) becomes a kernel entry keyed by its parameters, carrying
    # mem_bytes instead of timings.
    if args.mem_raw:
        with open(args.mem_raw) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                name = (f"shard_scale/rows:{rec['rows']}"
                        f"/shards:{rec['shards']}")
                entry = {"mem_bytes": rec["mem_bytes"],
                         "counters": {k: rec[k] for k in
                                      ("max_shard_rows", "candidates_scored",
                                       "merges", "wall_seconds")
                                      if k in rec}}
                base = baseline.get(name)
                if base and base.get("mem_bytes"):
                    entry["baseline_mem_bytes"] = base["mem_bytes"]
                    entry["mem_ratio_vs_baseline"] = (
                        rec["mem_bytes"] / base["mem_bytes"])
                kernels[name] = entry

    def gate_stat(entry):
        if args.gate_estimator == "median":
            return entry.get("ns_per_op")
        return entry.get("min_ns_per_op") or entry.get("ns_per_op")

    def base_stat(name):
        return gate_stat(baseline.get(name, {}))

    # Regression gate: a kernel is flagged only if its slowdown survives BOTH
    # estimators — the absolute min-of-R ratio AND the ratio normalized by an
    # unchanged calibration kernel. A genuine code regression inflates both; a
    # throttled/overcommitted host inflates only the absolute ratio (the
    # calibration kernel slows down with it), and per-kernel scheduler jitter
    # rarely pushes both past the same threshold. The calibration kernel
    # itself is never gated: it is the yardstick (its code is deliberately
    # frozen), and failing the build because the *host* runs it slower would
    # reintroduce exactly the machine-drift failures it exists to cancel.
    regressions = []
    mem_regressions = []
    if args.check_regression is not None:
        factor = 1.0 + args.check_regression / 100.0
        cal, base_cal = kernels.get(args.calibration), base_stat(args.calibration)
        cal_drift = (gate_stat(cal) / base_cal
                     if cal and base_cal else None)
        if cal_drift and cal_drift > factor:
            print(f"[bench_report] note: host runs the calibration kernel "
                  f"{args.calibration} {cal_drift:.2f}x slower than the "
                  f"baseline host — expect every absolute number to be "
                  f"inflated", file=sys.stderr)
        for name, entry in kernels.items():
            if name == args.calibration:
                continue
            base_ns = base_stat(name)
            if not base_ns:
                continue
            if "baseline_isa" in entry:
                # Measured on a different ISA than the baseline row (see
                # above): slower-than-baseline here means "this host/override
                # runs a different backend", not "the code regressed".
                print(f"[bench_report] note: {name} ran on "
                      f"{ISA_NAMES.get(entry_isa(entry))} but its baseline "
                      f"was {entry['baseline_isa']}; not gated",
                      file=sys.stderr)
                continue
            now_ns = gate_stat(entry)
            raw_ratio = now_ns / base_ns
            if raw_ratio <= factor:
                continue
            if cal_drift:
                if raw_ratio / cal_drift <= factor:
                    print(f"[bench_report] note: {name} {args.gate_estimator} "
                          f"{raw_ratio:.2f}x baseline but host is "
                          f"{cal_drift:.2f}x slower on the calibration "
                          f"kernel; not flagged", file=sys.stderr)
                    continue
            regressions.append((name, now_ns, base_ns))
        # Memory gate: RSS is deterministic up to allocator jitter, so the
        # raw ratio is compared directly — no calibration normalization and
        # no re-measure retry (a repeat run would return the same number).
        for name, entry in kernels.items():
            base_mem = baseline.get(name, {}).get("mem_bytes")
            now_mem = entry.get("mem_bytes")
            if not base_mem or not now_mem:
                continue
            if now_mem / base_mem > factor:
                mem_regressions.append((name, now_mem, base_mem))

    report = {
        "schema": "vfps-bench-v1",
        "generated_by": "tools/run_bench.sh",
        "repetitions": args.repetitions,
        "build": {"type": "Release", "native_arch": bool(args.native_arch)},
        "context": {k: raw.get("context", {}).get(k)
                    for k in ("host_name", "num_cpus", "mhz_per_cpu",
                              "library_build_type")},
        "kernels": kernels,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench_report] wrote {args.out} ({len(kernels)} kernels)")

    if args.flagged_out:
        with open(args.flagged_out, "w") as f:
            for name, _, _ in regressions:
                f.write(name + "\n")

    if regressions:
        print(f"[bench_report] REGRESSION: {len(regressions)} kernel(s) "
              f"slower than baseline by > {args.check_regression}%:",
              file=sys.stderr)
        est = args.gate_estimator
        for name, now, base in regressions:
            print(f"  {name}: {est} {now:.0f} ns vs baseline {est} "
                  f"{base:.0f} ns ({now / base:.2f}x)", file=sys.stderr)
    if mem_regressions:
        print(f"[bench_report] MEMORY REGRESSION: {len(mem_regressions)} "
              f"row(s) above baseline peak RSS by > "
              f"{args.check_regression}%:", file=sys.stderr)
        for name, now, base in mem_regressions:
            print(f"  {name}: {now / 2**20:.1f} MiB vs baseline "
                  f"{base / 2**20:.1f} MiB ({now / base:.2f}x)",
                  file=sys.stderr)
    return 1 if (regressions or mem_regressions) else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Trace/metrics analysis toolchain for vfps_cli observability artifacts.

Consumes the two files a run emits:

  * ``--trace-out``   -> chrome://tracing JSON, schema_version 2: causally
    linked spans (trace_id / span_id / parent_span_id in ``args``) plus
    zero-duration instants (retries, fault fates, churn events).
  * ``--metrics-out`` -> metrics JSON, schema_version 2: flat counters
    (labeled series are ``name{k=v,...}`` keys), gauges, and histograms
    with exact p50/p95/p99/max summaries.

Subcommands:

  check     Structural validation, designed as a CI gate: schema versions,
            unique span ids, every parent resolves (balanced spans), every
            knn.query span hangs off one fan-out parent, a non-empty
            critical path per query, histogram bucket counts that sum to
            the recorded count, and (when both artifacts are given) the
            per-phase sim-time breakdown reconciling with the measured
            selection job time within --phase-gap (default 5%).
  report    Human-readable cost attribution: per-phase and per-party
            breakdown (simulated and wall), ciphertext-op counts from the
            labeled he.* counters, latency summaries, and the critical
            path of the slowest queries.
  diff      Compare two metrics files. --expect-identical-counters exits
            nonzero on ANY counter difference (the thread-count
            determinism gate: counters must be bit-identical across
            --threads 1/2/8); otherwise prints relative deltas.
  collapsed Collapsed-stack output (one ``a;b;c value`` line per stack,
            self wall-time microseconds) for flamegraph.pl / speedscope.

Offline and dependency-free (stdlib only) so it can run in CI. Exit code 0
on success; check/diff exit 1 with one line per violation.
"""

import argparse
import json
import re
import sys
from collections import defaultdict

SCHEMA_VERSION = 2
LABELED_RE = re.compile(r"^([^{]+)\{(.*)\}$")


# ---------------------------------------------------------------------------
# Loading


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_schema(doc, path, errors):
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        errors.append(
            f"{path}: schema_version is {version!r}, want {SCHEMA_VERSION}"
        )


def split_series(key):
    """'name{k=v,k2=v2}' -> (name, {k: v}); plain names -> (name, {})."""
    m = LABELED_RE.match(key)
    if not m:
        return key, {}
    labels = {}
    for part in m.group(2).split(","):
        if "=" in part:
            k, v = part.split("=", 1)
            labels[k] = v
    return m.group(1), labels


class Trace:
    """Parsed trace: spans/instants indexed by span id, children adjacency."""

    def __init__(self, doc):
        self.events = doc.get("traceEvents", [])
        self.spans = {}  # span_id -> event (ph == "X" only)
        self.instants = []
        self.children = defaultdict(list)  # parent span_id -> [span_id]
        for e in self.events:
            args = e.get("args", {})
            sid = args.get("span_id", 0)
            if e.get("ph") == "X":
                self.spans[sid] = e
            else:
                self.instants.append(e)
            parent = args.get("parent_span_id", 0)
            if e.get("ph") == "X":
                self.children[parent].append(sid)

    @staticmethod
    def ids(event):
        args = event.get("args", {})
        return (
            args.get("trace_id", 0),
            args.get("span_id", 0),
            args.get("parent_span_id", 0),
        )

    def named(self, name):
        return [e for e in self.spans.values() if e["name"] == name]

    def self_us(self, span_id):
        """Wall self-time: own duration minus direct children's durations."""
        own = self.spans[span_id].get("dur", 0.0)
        child_total = sum(
            self.spans[c].get("dur", 0.0) for c in self.children[span_id]
        )
        return max(0.0, own - child_total)

    def stack(self, span_id):
        """Ancestor chain root..self as a list of names."""
        names = []
        seen = set()
        sid = span_id
        while sid and sid in self.spans and sid not in seen:
            seen.add(sid)
            names.append(self.spans[sid]["name"])
            sid = self.spans[sid]["args"].get("parent_span_id", 0)
        return list(reversed(names))

    def critical_path(self, span_id):
        """Greedy longest-wall-time descent: the chain of spans a query's
        latency actually sits on."""
        path = []
        sid = span_id
        while sid in self.spans:
            path.append(self.spans[sid])
            kids = self.children.get(sid, [])
            if not kids:
                break
            sid = max(kids, key=lambda c: self.spans[c].get("dur", 0.0))
        return path


# ---------------------------------------------------------------------------
# check


def run_check(args):
    errors = []
    trace_doc = load_json(args.trace)
    check_schema(trace_doc, args.trace, errors)
    trace = Trace(trace_doc)

    if not trace.events:
        errors.append(f"{args.trace}: empty traceEvents")

    # Balanced spans: unique ids, every nonzero parent resolves to a
    # recorded span, trace ids nonzero.
    seen_ids = set()
    for e in trace.events:
        trace_id, span_id, _ = Trace.ids(e)
        if span_id == 0:
            errors.append(f"{e['name']}: zero span_id")
        elif span_id in seen_ids:
            errors.append(f"{e['name']}: duplicate span_id {span_id}")
        seen_ids.add(span_id)
        if trace_id == 0:
            errors.append(f"{e['name']}: zero trace_id")
    for e in trace.events:
        _, _, parent = Trace.ids(e)
        if parent and parent not in trace.spans:
            errors.append(
                f"{e['name']}: orphaned — parent span {parent} never recorded"
            )

    # One causally connected tree per query: every knn.query span must have
    # a parent, they must all share it, and each must have a non-empty
    # critical path.
    queries = trace.named("knn.query")
    parents = set()
    for q in queries:
        _, span_id, parent = Trace.ids(q)
        if parent == 0:
            errors.append(f"knn.query span {span_id}: orphan root")
        parents.add(parent)
        path = trace.critical_path(span_id)
        if not path:
            errors.append(f"knn.query span {span_id}: empty critical path")
    if queries and len(parents) != 1:
        errors.append(
            f"knn.query spans have {len(parents)} distinct parents, want 1"
        )

    metrics = None
    if args.metrics:
        metrics = load_json(args.metrics)
        check_schema(metrics, args.metrics, errors)
        for name, hist in metrics.get("histograms", {}).items():
            bucket_total = sum(b["count"] for b in hist.get("buckets", []))
            if bucket_total != hist.get("count"):
                errors.append(
                    f"histogram {name}: bucket counts sum to {bucket_total}, "
                    f"recorded count is {hist.get('count')}"
                )
            summary = hist.get("count", 0)
            if summary and hist.get("max", 0) < hist.get("p99", 0):
                errors.append(f"histogram {name}: max below p99")

        # Attribution gate: the per-phase sim-time counters must reconcile
        # with the measured per-job selection time. Only comparable when the
        # phase counters exist (i.e. the KNN oracle actually ran).
        counters = metrics.get("counters", {})
        phase_total = sum(
            v
            for k, v in counters.items()
            if split_series(k)[0] == "knn.phase.sim_ns"
        )
        job = metrics.get("histograms", {}).get("select.job.sim_ns")
        if phase_total and job and job.get("sum"):
            gap = abs(phase_total - job["sum"]) / job["sum"]
            if gap > args.phase_gap:
                errors.append(
                    f"per-phase sim breakdown off by {gap:.1%} from "
                    f"select.job.sim_ns (allowed {args.phase_gap:.0%})"
                )

    for line in errors:
        print(f"CHECK FAIL: {line}", file=sys.stderr)
    if errors:
        return 1
    n_span = len(trace.spans)
    n_inst = len(trace.instants)
    print(
        f"OK: {n_span} spans, {n_inst} instants, {len(queries)} queries, "
        f"schema v{SCHEMA_VERSION}"
        + (", metrics reconciled" if metrics else "")
    )
    return 0


# ---------------------------------------------------------------------------
# report


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} us"
    return f"{ns:.0f} ns"


def print_table(title, rows, headers):
    print(f"\n== {title}")
    if not rows:
        print("  (none)")
        return
    widths = [
        max(len(str(r[i])) for r in rows + [headers])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"  {line}")
    for r in rows:
        print(
            "  "
            + "  ".join(str(r[i]).ljust(widths[i]) for i in range(len(r)))
        )


def run_report(args):
    trace = Trace(load_json(args.trace))
    metrics = load_json(args.metrics) if args.metrics else {}
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})

    # Per-phase: simulated ns from the labeled counters, wall us aggregated
    # over same-named spans.
    phase_sim = {}
    for key, value in counters.items():
        name, labels = split_series(key)
        if name == "knn.phase.sim_ns":
            phase_sim[labels.get("phase", "?")] = value
    span_wall = defaultdict(float)
    span_count = defaultdict(int)
    for e in trace.spans.values():
        span_wall[e["name"]] += e.get("dur", 0.0)
        span_count[e["name"]] += 1
    total_sim = sum(phase_sim.values()) or 1

    def phase_span(phase):
        # Phases map to same-named knn.* spans, except encrypt whose span
        # comes from the HE layer.
        return "he.encrypt" if phase == "encrypt" else f"knn.{phase}"

    rows = [
        (
            phase,
            fmt_ns(sim),
            f"{100.0 * sim / total_sim:.1f}%",
            fmt_ns(span_wall.get(phase_span(phase), 0.0) * 1e3),
            span_count.get(phase_span(phase), 0),
        )
        for phase, sim in sorted(
            phase_sim.items(), key=lambda kv: -kv[1]
        )
    ]
    print_table(
        "Per-phase breakdown",
        rows,
        ("phase", "sim", "sim%", "wall", "spans"),
    )

    # Per-party: labeled traffic + encrypted-value counters, and wall time
    # of party-labeled compute spans (args.node).
    party = defaultdict(dict)
    for key, value in counters.items():
        name, labels = split_series(key)
        if "party" in labels:
            party[labels["party"]][name] = value
    node_wall = defaultdict(float)
    for e in trace.spans.values():
        node = e.get("args", {}).get("node")
        if node:
            node_wall[node] += e.get("dur", 0.0)
    rows = [
        (
            p,
            stats.get("net.party.messages", 0),
            stats.get("net.party.bytes", 0),
            stats.get("knn.party.encrypted_values", 0),
            fmt_ns(node_wall.get(f"participant-{p}", 0.0) * 1e3),
        )
        for p, stats in sorted(party.items(), key=lambda kv: kv[0])
    ]
    print_table(
        "Per-party breakdown",
        rows,
        ("party", "messages", "bytes", "enc_values", "compute_wall"),
    )

    # Ciphertext ops from the labeled he.* counters.
    rows = [
        (key, value)
        for key, value in sorted(counters.items())
        if split_series(key)[0].startswith("he.")
    ]
    print_table("Ciphertext ops", rows, ("counter", "value"))

    # Latency summaries.
    rows = []
    for name in sorted(histograms):
        if not name.endswith((".sim_ns", ".wall_ns", "_ns")):
            continue
        h = histograms[name]
        rows.append(
            (
                name,
                h.get("count", 0),
                fmt_ns(h.get("p50", 0)),
                fmt_ns(h.get("p95", 0)),
                fmt_ns(h.get("p99", 0)),
                fmt_ns(h.get("max", 0)),
            )
        )
    print_table(
        "Latency summaries", rows, ("histogram", "n", "p50", "p95", "p99", "max")
    )

    # Critical path of the slowest queries (wall time).
    queries = sorted(
        trace.named("knn.query"), key=lambda e: -e.get("dur", 0.0)
    )
    print(f"\n== Critical paths (slowest {min(args.top, len(queries))} queries)")
    for q in queries[: args.top]:
        _, span_id, _ = Trace.ids(q)
        notes = q.get("args", {}).get("annotations", {})
        path = trace.critical_path(span_id)
        chain = " > ".join(
            f"{s['name']}({fmt_ns(s.get('dur', 0.0) * 1e3)})" for s in path
        )
        print(
            f"  query unit={notes.get('unit', '?')} "
            f"wall={fmt_ns(q.get('dur', 0.0) * 1e3)}: {chain}"
        )
    return 0


# ---------------------------------------------------------------------------
# diff


def run_diff(args):
    a = load_json(args.a)
    b = load_json(args.b)
    ca = a.get("counters", {})
    cb = b.get("counters", {})
    names = sorted(set(ca) | set(cb))
    mismatches = []
    for name in names:
        va, vb = ca.get(name), cb.get(name)
        if va != vb:
            mismatches.append((name, va, vb))
    if args.expect_identical_counters:
        for name, va, vb in mismatches:
            print(f"DIFF FAIL: {name}: {va} != {vb}", file=sys.stderr)
        if mismatches:
            return 1
        print(f"OK: {len(names)} counter series bit-identical")
        return 0
    if not mismatches:
        print(f"counters: all {len(names)} series identical")
    else:
        print_table(
            "Counter deltas",
            [
                (
                    name,
                    va,
                    vb,
                    "n/a"
                    if not va or vb is None or va is None
                    else f"{100.0 * (vb - va) / va:+.1f}%",
                )
                for name, va, vb in mismatches
            ],
            ("counter", "a", "b", "delta"),
        )
    # Histograms: compare the exact summaries.
    ha = a.get("histograms", {})
    hb = b.get("histograms", {})
    rows = []
    for name in sorted(set(ha) | set(hb)):
        sa, sb = ha.get(name, {}), hb.get(name, {})
        for stat in ("count", "p50", "p95", "p99", "max"):
            if sa.get(stat) != sb.get(stat):
                rows.append((name, stat, sa.get(stat), sb.get(stat)))
    if rows:
        print_table("Histogram deltas", rows, ("histogram", "stat", "a", "b"))
    return 0


# ---------------------------------------------------------------------------
# collapsed


def run_collapsed(args):
    trace = Trace(load_json(args.trace))
    stacks = defaultdict(float)
    for span_id in trace.spans:
        stacks[";".join(trace.stack(span_id))] += trace.self_us(span_id)
    out = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout
    try:
        for stack, self_us in sorted(stacks.items()):
            # flamegraph.pl wants integer sample counts; microseconds work.
            out.write(f"{stack} {max(1, round(self_us))}\n")
    finally:
        if args.output:
            out.close()
    return 0


# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="CI gate: validate artifact structure")
    p.add_argument("--trace", required=True)
    p.add_argument("--metrics", default=None)
    p.add_argument(
        "--phase-gap",
        type=float,
        default=0.05,
        help="allowed relative gap between per-phase sim breakdown and the "
        "measured selection job time (default 0.05)",
    )
    p.set_defaults(func=run_check)

    p = sub.add_parser("report", help="per-party/per-phase cost attribution")
    p.add_argument("--trace", required=True)
    p.add_argument("--metrics", default=None)
    p.add_argument("--top", type=int, default=5, help="critical paths shown")
    p.set_defaults(func=run_report)

    p = sub.add_parser("diff", help="compare two metrics files")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument(
        "--expect-identical-counters",
        action="store_true",
        help="exit nonzero on any counter difference (determinism gate)",
    )
    p.set_defaults(func=run_diff)

    p = sub.add_parser("collapsed", help="collapsed-stack flamegraph output")
    p.add_argument("--trace", required=True)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=run_collapsed)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `collapsed | head`
        sys.exit(0)

#!/usr/bin/env sh
# Bench-regression harness: build the kernel benchmark suite in Release
# (-O3 -DNDEBUG), run it with warmup + R repetitions, and emit a schema'd
# JSON artifact (see tools/bench_report.py for the schema): median-of-R as
# the reported ns/op, min-of-R for the regression gate.
#
# Usage: tools/run_bench.sh [options]
#   --quick            5 short repetitions (CI smoke; min-of-R absorbs noise)
#   --out=FILE         output JSON (default: BENCH_pr9.json in repo root)
#   --baseline=FILE    prior BENCH_*.json to compute speedups against
#                      (default: bench/BASELINE_seed.json)
#   --check=PCT        exit nonzero if any kernel regresses > PCT% vs baseline
#   --native           configure with -DVFPS_NATIVE_ARCH=ON (-march=native)
#   --build-dir=DIR    build directory (default: build-bench)
#   --filter=REGEX     forwarded to --benchmark_filter
#   --no-mem           skip the shard_scale peak-RSS rows
#   --mem-rows=N       dataset size for the peak-RSS rows (default 1000000)
#   --mem-extra=SPECS  extra "rows:shards" peak-RSS runs, space-separated
#                      (e.g. --mem-extra="5000000:64 78125:1" records the
#                      5M-row sweep plus its fixed-shard-size reference)
#
# Besides the timing kernels, the artifact carries `mem_bytes` rows measured
# by bench/shard_scale: one FRESH PROCESS per shard count (ru_maxrss is a
# process high-water mark, so in-process sweeps cannot compare shard counts),
# gated against the baseline by the same --check percentage.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-bench"
OUT="$ROOT/BENCH_pr9.json"
BASELINE="$ROOT/bench/BASELINE_seed.json"
CHECK=""
NATIVE=OFF
REPS=5
MIN_TIME=0.25
WARMUP=0.2
FILTER=".*"
MEM=1
MEM_ROWS=1000000
MEM_EXTRA=""

for arg in "$@"; do
  case "$arg" in
    --quick) REPS=5; MIN_TIME=0.1; WARMUP=0.05 ;;
    --out=*) OUT="${arg#--out=}" ;;
    --baseline=*) BASELINE="${arg#--baseline=}" ;;
    --check=*) CHECK="${arg#--check=}" ;;
    --check) CHECK=25 ;;
    --native) NATIVE=ON ;;
    --build-dir=*) BUILD="${arg#--build-dir=}" ;;
    --filter=*) FILTER="${arg#--filter=}" ;;
    --no-mem) MEM=0 ;;
    --mem-rows=*) MEM_ROWS="${arg#--mem-rows=}" ;;
    --mem-extra=*) MEM_EXTRA="${arg#--mem-extra=}" ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-O3 -DNDEBUG" \
  -DVFPS_NATIVE_ARCH="$NATIVE" \
  -DVFPS_BUILD_TESTS=OFF -DVFPS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD" -j --target bench_kernels bench_knn bench_topk \
  shard_scale >/dev/null

# Peak-RSS rows: shard_scale once per configuration, each in a FRESH process
# (ru_maxrss is a process-lifetime high-water mark; an in-process sweep
# could not compare shard counts). The last entry is the fixed-shard-size
# single-shard reference the flat-memory claim is judged against.
MEM_RAW="$BUILD/bench_mem_raw.jsonl"
if [ "$MEM" = "1" ]; then
  : >"$MEM_RAW"
  # shellcheck disable=SC2086  # MEM_EXTRA is a space-separated spec list
  for spec in "$MEM_ROWS:1" "$MEM_ROWS:8" "$MEM_ROWS:32" \
              "$((MEM_ROWS / 32)):1" $MEM_EXTRA; do
    "$BUILD/bench/shard_scale" --rows="${spec%%:*}" --shards="${spec##*:}" \
      --queries=4 >>"$MEM_RAW"
  done
fi

# Keep the per-repetition samples (no aggregates-only): the report derives
# the median for human numbers and the MIN for the regression gate — on
# shared/virtualized hosts timing noise is one-sided (only ever slower), so
# min-of-R is the stable estimator.
RAW="$BUILD/bench_kernels_raw.json"
"$BUILD/bench/bench_kernels" \
  --benchmark_filter="$FILTER" \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_min_warmup_time="$WARMUP" \
  --benchmark_format=json >"$RAW"

# The sharded-path rows (out-of-core query throughput, hierarchical merge)
# live in other bench binaries; run just those benchmarks and splice their
# samples into the raw stream so one report carries the whole artifact.
# Skipped when --filter narrows the run (that is a targeted re-measure).
if [ "$FILTER" = ".*" ]; then
  "$BUILD/bench/bench_knn" \
    --benchmark_filter='BM_Sharded' \
    --benchmark_repetitions="$REPS" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_min_warmup_time="$WARMUP" \
    --benchmark_format=json >"$BUILD/bench_shard_knn_raw.json"
  "$BUILD/bench/bench_topk" \
    --benchmark_filter='BM_ShardMerge' \
    --benchmark_repetitions="$REPS" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_min_warmup_time="$WARMUP" \
    --benchmark_format=json >"$BUILD/bench_shard_topk_raw.json"
  python3 - "$RAW" "$BUILD/bench_shard_knn_raw.json" \
    "$BUILD/bench_shard_topk_raw.json" <<'PY'
import json, sys
base = json.load(open(sys.argv[1]))
for path in sys.argv[2:]:
    base["benchmarks"].extend(json.load(open(path)).get("benchmarks", []))
json.dump(base, open(sys.argv[1], "w"))
PY
fi

FLAGGED="$BUILD/bench_flagged.txt"
set -- "$RAW" --out "$OUT" --repetitions "$REPS" --flagged-out "$FLAGGED"
if [ "$MEM" = "1" ]; then
  set -- "$@" --mem-raw "$MEM_RAW"
fi
if [ -f "$BASELINE" ]; then
  set -- "$@" --baseline "$BASELINE"
fi
if [ -n "$CHECK" ]; then
  set -- "$@" --check-regression "$CHECK"
fi
if [ "$NATIVE" = "ON" ]; then
  set -- "$@" --native-arch
fi
RC=0
python3 "$ROOT/tools/bench_report.py" "$@" || RC=$?

# A flagged regression on a short run is more often scheduler/VM noise than a
# real slowdown. Re-measure ONLY the flagged kernels (plus the calibration
# kernel, so drift normalization still works) at full precision in a second,
# independent window; the verdict comes from that run, compared median vs
# baseline median — full-precision medians are stable, and unlike min they
# are robust to kernels whose best case is bimodal across scheduling
# windows. A genuine regression reproduces; a transient spike does not.
if [ "$RC" -ne 0 ] && [ -n "$CHECK" ] && [ -s "$FLAGGED" ]; then
  RETRY_FILTER="^($(paste -sd'|' "$FLAGGED")|BM_MulModU128)\$"
  echo "[run_bench] regression flagged; re-measuring at full precision:" \
       "$(tr '\n' ' ' <"$FLAGGED")" >&2
  RAW2="$BUILD/bench_kernels_retry.json"
  "$BUILD/bench/bench_kernels" \
    --benchmark_filter="$RETRY_FILTER" \
    --benchmark_repetitions=5 \
    --benchmark_min_time=0.25 \
    --benchmark_min_warmup_time=0.2 \
    --benchmark_format=json >"$RAW2"
  RC=0
  python3 "$ROOT/tools/bench_report.py" "$RAW2" --out "$BUILD/bench_retry_report.json" \
    --repetitions 5 --baseline "$BASELINE" --check-regression "$CHECK" \
    --gate-estimator=median || RC=$?
fi
exit "$RC"

#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite.
# Exits nonzero on the first failure. Usage: tools/run_tier1.sh [build-dir]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j
# --schedule-random shakes out inter-test ordering dependencies (shared
# fixtures, leftover files) that a fixed schedule would mask.
cd "$BUILD" && ctest --output-on-failure --schedule-random -j

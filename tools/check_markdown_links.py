#!/usr/bin/env python3
"""Offline markdown link checker for the repo docs.

Validates every relative link and image target in the given markdown files
(or files under given directories) against the working tree: the target file
must exist, and a `#fragment` on a markdown target must match a heading
anchor in that file (GitHub slug rules, simplified). External http(s)/mailto
links are NOT fetched -- the checker must stay deterministic and run offline
in CI.

Usage: tools/check_markdown_links.py README.md docs/
Exit code 0 when every link resolves, 1 otherwise (one line per broken link).
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: str) -> set:
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(slugify(m.group(1)))
    return anchors


def links_in(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            # Strip inline code spans so example links are not validated.
            stripped = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(stripped):
                yield lineno, m.group(1)


def collect_files(args):
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md")
                )
        else:
            files.append(arg)
    return sorted(set(files))


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = 0
    for md in collect_files(argv[1:]):
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            base = os.path.dirname(md)
            resolved = os.path.normpath(os.path.join(base, path_part)) if path_part else md
            if not os.path.exists(resolved):
                print(f"{md}:{lineno}: broken link: {target}")
                broken += 1
                continue
            if fragment and resolved.endswith(".md"):
                if slugify(fragment) not in heading_anchors(resolved):
                    print(f"{md}:{lineno}: missing anchor: {target}")
                    broken += 1
    if broken:
        print(f"{broken} broken link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

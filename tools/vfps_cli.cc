// vfps_cli — command-line front end for the VFPS-SM experiment pipeline.
//
//   vfps_cli datasets
//       List the Table III dataset presets.
//   vfps_cli run [--dataset=Bank] [--method=VFPS-SM] [--model=lr]
//                [--participants=4] [--select=2] [--backend=plain]
//                [--scale=0.5] [--k=10] [--queries=64] [--seed=42]
//                [--query-group=1]
//                                (BASE mode: queries per packed HE round;
//                                 0 = auto-fit the backend's CKKS slots,
//                                 1 = one query per round, as before)
//                [--shards=1]    (row-shard the oracle's data plane across N
//                                 simulated storage nodes; per-shard top-k
//                                 lists are merged hierarchically. --shards=1
//                                 is bit-identical to the unsharded oracle)
//                [--prefilter=treecss:C]
//                                (TreeCSS-style per-party k-means pre-filter
//                                 with C clusters; only the nominated cluster
//                                 union pays per-row distance work. Off by
//                                 default — approximate when enabled)
//                [--duplicates=0] [--partition=random|stratified]
//                [--threads=1]   (0 = all cores; results are identical at
//                                 any thread count, only wall time changes)
//                [--fault-spec=drop=0.05,leave=3@40,join=2@80,heal=3@200]
//                [--fault-seed=7]
//                                (seeded network-fault plan; see net/fault.h
//                                 for the mini-language, including the churn
//                                 rules leave=/join=/heal=/part=. Absorbable
//                                 faults leave results identical; a crash or
//                                 leave quarantines the participant and the
//                                 selection is repaired incrementally over
//                                 the survivors; joins/heals are spliced in)
//                [--net-retries=6] [--net-jitter=0.25]
//                                (reliable-channel retry budget and backoff
//                                 jitter factor; defaults 0 keep the built-in
//                                 policy and the exact exponential schedule)
//                [--checkpoint-out=sel.ckpt] [--resume-from=sel.ckpt]
//                                (serialize the selection state — membership,
//                                 neighborhoods, greedy prefix — after the
//                                 run / resume a prior run, skipping its
//                                 oracle phase; VFPS-SM methods only)
//                [--metrics-out=metrics.json]
//                                (write the run's internal counters — HE ops,
//                                 wire bytes, Fagin depth, greedy evaluations
//                                 — as deterministic JSON; identical at any
//                                 --threads value)
//                [--trace-out=trace.json]
//                                (write causally linked spans as
//                                 chrome://tracing JSON, loadable in Perfetto
//                                 and by tools/trace_report.py)
//                [--metrics-interval=0.5]
//                                (with --metrics-out: additionally overwrite
//                                 the metrics file with a live snapshot every
//                                 N seconds while the run is in flight; the
//                                 final write still happens at exit)
//       Run one experiment grid cell and print the outcome.
//   vfps_cli sweep --dataset=Bank [--model=lr] [...]
//       Run every selection method on one configuration side by side.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "data/presets.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace {

using namespace vfps;  // NOLINT(build/namespaces)

std::map<std::string, std::string> ParseFlags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Result<core::ExperimentConfig> BuildConfig(
    const std::map<std::string, std::string>& flags) {
  core::ExperimentConfig config;
  config.dataset = Get(flags, "dataset", "Bank");
  config.csv_path = Get(flags, "csv", "");
  VFPS_ASSIGN_OR_RETURN(auto method,
                        core::ParseSelectionMethod(Get(flags, "method", "VFPS-SM")));
  config.method = method;
  VFPS_ASSIGN_OR_RETURN(auto model, ml::ParseModelKind(Get(flags, "model", "lr")));
  config.model = model;
  VFPS_ASSIGN_OR_RETURN(int64_t participants,
                        ParseInt64(Get(flags, "participants", "4")));
  config.participants = static_cast<size_t>(participants);
  VFPS_ASSIGN_OR_RETURN(int64_t select, ParseInt64(Get(flags, "select", "2")));
  config.select = static_cast<size_t>(select);
  VFPS_ASSIGN_OR_RETURN(config.scale, ParseDouble(Get(flags, "scale", "0.5")));
  VFPS_ASSIGN_OR_RETURN(int64_t k, ParseInt64(Get(flags, "k", "10")));
  config.knn.k = static_cast<size_t>(k);
  VFPS_ASSIGN_OR_RETURN(int64_t queries, ParseInt64(Get(flags, "queries", "64")));
  config.knn.num_queries = static_cast<size_t>(queries);
  VFPS_ASSIGN_OR_RETURN(int64_t query_group,
                        ParseInt64(Get(flags, "query-group", "1")));
  config.knn.query_group = static_cast<size_t>(query_group);
  VFPS_ASSIGN_OR_RETURN(int64_t seed, ParseInt64(Get(flags, "seed", "42")));
  config.seed = static_cast<uint64_t>(seed);
  VFPS_ASSIGN_OR_RETURN(int64_t duplicates, ParseInt64(Get(flags, "duplicates", "0")));
  config.duplicates = static_cast<size_t>(duplicates);
  VFPS_ASSIGN_OR_RETURN(int64_t threads, ParseInt64(Get(flags, "threads", "1")));
  if (threads < 0 || threads > 1024) {
    return Status::InvalidArgument("--threads must be in [0, 1024] (0 = all cores)");
  }
  config.num_threads = static_cast<size_t>(threads);
  VFPS_ASSIGN_OR_RETURN(config.faults,
                        net::ParseFaultSpec(Get(flags, "fault-spec", "")));
  VFPS_ASSIGN_OR_RETURN(int64_t fault_seed,
                        ParseInt64(Get(flags, "fault-seed", "0")));
  config.fault_seed = static_cast<uint64_t>(fault_seed);
  VFPS_ASSIGN_OR_RETURN(int64_t net_retries,
                        ParseInt64(Get(flags, "net-retries", "0")));
  if (net_retries < 0 || net_retries > 64) {
    return Status::InvalidArgument("--net-retries must be in [0, 64]");
  }
  config.knn.net_retries = static_cast<size_t>(net_retries);
  VFPS_ASSIGN_OR_RETURN(config.knn.net_jitter,
                        ParseDouble(Get(flags, "net-jitter", "0")));
  if (config.knn.net_jitter < 0.0 || config.knn.net_jitter > 1.0) {
    return Status::InvalidArgument("--net-jitter must be in [0, 1]");
  }
  config.checkpoint_out = Get(flags, "checkpoint-out", "");
  config.resume_from = Get(flags, "resume-from", "");
  VFPS_ASSIGN_OR_RETURN(int64_t shards, ParseInt64(Get(flags, "shards", "1")));
  if (shards < 1 || shards > 4096) {
    return Status::InvalidArgument("--shards must be in [1, 4096]");
  }
  config.knn.shards = static_cast<size_t>(shards);
  const std::string prefilter = Get(flags, "prefilter", "");
  if (!prefilter.empty()) {
    const std::string prefix = "treecss:";
    if (prefilter.rfind(prefix, 0) != 0) {
      return Status::InvalidArgument(
          "--prefilter must be of the form treecss:<clusters>");
    }
    VFPS_ASSIGN_OR_RETURN(int64_t clusters,
                          ParseInt64(prefilter.substr(prefix.size())));
    if (clusters < 1 || clusters > 65536) {
      return Status::InvalidArgument(
          "--prefilter cluster count must be in [1, 65536]");
    }
    config.knn.prefilter_clusters = static_cast<size_t>(clusters);
  }

  const std::string backend = Get(flags, "backend", "plain");
  if (backend == "plain") {
    config.backend = core::HeBackendKind::kPlain;
  } else if (backend == "ckks") {
    config.backend = core::HeBackendKind::kCkks;
  } else if (backend == "paillier") {
    config.backend = core::HeBackendKind::kPaillier;
  } else {
    return Status::InvalidArgument("unknown backend: " + backend);
  }
  const std::string partition = Get(flags, "partition", "random");
  if (partition == "random") {
    config.partition = core::PartitionMode::kRandom;
  } else if (partition == "stratified") {
    config.partition = core::PartitionMode::kQualityStratified;
  } else {
    return Status::InvalidArgument("unknown partition mode: " + partition);
  }
  return config;
}

void PrintResult(const char* method, const core::ExperimentResult& r) {
  std::string picked;
  for (size_t p : r.selection.selected) {
    picked += (picked.empty() ? "" : ",") + std::to_string(p);
  }
  std::printf(
      "%-13s picked={%s} accuracy=%.4f selection=%.1fs training=%.1fs "
      "total=%.1fs (wall %.2fs)\n",
      method, picked.c_str(), r.training.test_accuracy, r.selection_sim_seconds,
      r.training_sim_seconds, r.total_sim_seconds, r.wall_seconds);
}

int CmdDatasets() {
  std::printf("%-10s %-11s %12s %10s %9s %8s\n", "Name", "Domain", "PaperRows",
              "BaseRows", "Features", "Classes");
  for (const auto& preset : data::PaperDatasets()) {
    std::printf("%-10s %-11s %12zu %10zu %9zu %8d\n", preset.name.c_str(),
                preset.domain.c_str(), preset.paper_rows, preset.base_rows,
                preset.features, preset.classes);
  }
  return 0;
}

int CmdRun(const std::map<std::string, std::string>& flags) {
  auto config = BuildConfig(flags);
  config.status().Abort("config");
  const std::string metrics_out = Get(flags, "metrics-out", "");
  const std::string trace_out = Get(flags, "trace-out", "");
  auto interval = ParseDouble(Get(flags, "metrics-interval", "0"));
  interval.status().Abort("metrics-interval");
  if (*interval < 0.0) {
    Status::InvalidArgument("--metrics-interval must be >= 0")
        .Abort("metrics-interval");
  }
  if (*interval > 0.0 && metrics_out.empty()) {
    Status::InvalidArgument("--metrics-interval requires --metrics-out")
        .Abort("metrics-interval");
  }
  obs::MetricsRegistry registry;
  if (!metrics_out.empty() || !trace_out.empty()) {
    if (!trace_out.empty()) registry.EnableTracing();
    config->obs = &registry;
  }
  obs::PeriodicSnapshotWriter snapshots(&registry, metrics_out, *interval);
  if (*interval > 0.0) snapshots.Start();
  auto result = core::RunExperiment(*config);
  snapshots.Stop();
  result.status().Abort("experiment");
  if (!config->resume_from.empty()) {
    std::printf("resumed selection from %s\n", config->resume_from.c_str());
  }
  if (!config->checkpoint_out.empty()) {
    std::printf("selection checkpoint written to %s\n",
                config->checkpoint_out.c_str());
  }
  if (!metrics_out.empty()) {
    registry.WriteJsonFile(metrics_out).Abort("metrics-out");
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    registry.tracer()->WriteJsonFile(trace_out).Abort("trace-out");
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  const std::string source =
      config->csv_path.empty() ? config->dataset : config->csv_path;
  std::printf("dataset=%s rows=%zu features=%zu consortium=%zu backend=%s\n\n",
              source.c_str(), result->rows, result->features,
              result->consortium_size, core::HeBackendKindName(config->backend));
  PrintResult(core::SelectionMethodName(config->method), *result);
  if (!result->selection.scores.empty()) {
    std::printf("\nper-participant scores:");
    for (size_t p = 0; p < result->selection.scores.size(); ++p) {
      std::printf(" %zu:%.4f", p, result->selection.scores[p]);
    }
    std::printf("\n");
  }
  if (result->selection.knn_stats.queries > 0) {
    std::printf("oracle: %zu queries, %.0f candidates/query, %llu KB on the wire\n",
                result->selection.knn_stats.queries,
                result->selection.knn_stats.AvgCandidatesPerQuery(),
                static_cast<unsigned long long>(
                    result->selection.knn_stats.traffic.bytes / 1024));
  }
  if (result->faults.any()) {
    std::printf(
        "faults: %llu dropped, %llu duplicated, %llu corrupted, %llu delayed "
        "(+%.3fs), %llu swallowed by dead nodes\n",
        static_cast<unsigned long long>(result->faults.dropped),
        static_cast<unsigned long long>(result->faults.duplicated),
        static_cast<unsigned long long>(result->faults.corrupted),
        static_cast<unsigned long long>(result->faults.delayed),
        result->faults.delay_seconds,
        static_cast<unsigned long long>(result->faults.swallowed_dead));
  }
  if (!result->selection.quarantined.empty()) {
    std::string quarantined;
    for (size_t p : result->selection.quarantined) {
      quarantined += (quarantined.empty() ? "" : ",") + std::to_string(p);
    }
    std::printf(
        "degraded: participant(s) {%s} crashed mid-protocol and were "
        "quarantined; selection completed over the survivors\n",
        quarantined.c_str());
  }
  if (!result->selection.absent.empty()) {
    std::string absent;
    for (size_t p : result->selection.absent) {
      absent += (absent.empty() ? "" : ",") + std::to_string(p);
    }
    std::printf(
        "absent: participant(s) {%s} never joined (join= threshold not "
        "reached); selection completed without them\n",
        absent.c_str());
  }
  return 0;
}

int CmdSweep(const std::map<std::string, std::string>& flags) {
  const core::SelectionMethod methods[] = {
      core::SelectionMethod::kAll,     core::SelectionMethod::kRandom,
      core::SelectionMethod::kShapley, core::SelectionMethod::kVfMine,
      core::SelectionMethod::kVfpsSmBase, core::SelectionMethod::kVfpsSm};
  for (core::SelectionMethod method : methods) {
    auto mutable_flags = flags;
    mutable_flags["method"] = core::SelectionMethodName(method);
    auto config = BuildConfig(mutable_flags);
    config.status().Abort("config");
    auto result = core::RunExperiment(*config);
    result.status().Abort("experiment");
    PrintResult(core::SelectionMethodName(method), *result);
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: vfps_cli <datasets|run|sweep> [--key=value ...]\n"
               "try:   vfps_cli run --dataset=SUSY --method=VFPS-SM --model=lr\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "datasets") return CmdDatasets();
  if (command == "run") return CmdRun(ParseFlags(argc, argv, 2));
  if (command == "sweep") return CmdSweep(ParseFlags(argc, argv, 2));
  Usage();
  return 2;
}

// Wall-clock scaling of the parallel encrypted-KNN pipeline on the Fig. 7
// workload (Phishing-style dataset, P participants, one VFPS-SM selection
// pass with a real CKKS backend so encryption dominates per-query work).
//
// The pipeline guarantees bit-identical outputs at every thread count (see
// tests/test_parallel_determinism.cc); this bench measures the only thing
// parallelism is allowed to change — wall time — and verifies the outputs
// really did stay identical while doing so.
//
// Usage: bench_parallel_knn [--scale=0.35] [--queries=24] [--seed=42]
//                           [--threads=1,2,4,8]
//
// Note: speedup is bounded by the host's core count; on a machine with >= 8
// cores the 8-thread row is expected to come in at >= 2x over serial.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace vfps;         // NOLINT(build/namespaces)
using namespace vfps::bench;  // NOLINT(build/namespaces)

namespace {

std::vector<size_t> ParseThreadList(const std::string& spec) {
  std::vector<size_t> out;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string tok = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!tok.empty()) {
      auto parsed = ParseInt64(tok);
      if (!parsed.ok() || *parsed < 1 || *parsed > 1024) {
        std::fprintf(stderr,
                     "--threads must be a comma list of counts in [1, 1024], "
                     "got \"%s\"\n", tok.c_str());
        std::exit(2);
      }
      out.push_back(static_cast<size_t>(*parsed));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--threads list is empty\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.35);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 24));
  const std::vector<size_t> thread_counts =
      ParseThreadList(flags.GetString("threads", "1,2,4,8"));

  std::printf(
      "Parallel encrypted-KNN pipeline: wall-clock vs worker threads\n"
      "(Fig. 7 workload: Phishing, P=8, select 4, CKKS backend, |Q|=%zu, "
      "scale=%.2f; host has %u hardware threads)\n\n",
      queries, scale, std::thread::hardware_concurrency());

  TablePrinter table({"Threads", "Wall s", "Speedup", "SimSeconds", "Picked"});
  double serial_wall = 0.0;
  double serial_sim = -1.0;
  std::string serial_picked;
  for (size_t threads : thread_counts) {
    auto config = GridConfig("Phishing", core::SelectionMethod::kVfpsSm,
                             ml::ModelKind::kKnn, scale, seed);
    config.participants = 8;
    config.select = 4;
    config.backend = core::HeBackendKind::kCkks;
    config.knn.num_queries = queries;
    config.num_threads = threads;

    Stopwatch wall;
    auto result = core::RunExperiment(config);
    RunOrDie("Phishing", result.status());
    const double seconds = wall.ElapsedSeconds();

    std::string picked;
    for (size_t p : result->selection.selected) {
      picked += (picked.empty() ? "" : ",") + std::to_string(p);
    }
    if (serial_wall == 0.0) {
      serial_wall = seconds;
      serial_sim = result->selection_sim_seconds;
      serial_picked = picked;
    }
    // The determinism contract, checked live: same selection, same simulated
    // clock, regardless of the thread count.
    if (picked != serial_picked ||
        result->selection_sim_seconds != serial_sim) {
      std::fprintf(stderr,
                   "FATAL: outputs changed with threads=%zu (picked={%s} vs "
                   "{%s}, sim %.6f vs %.6f)\n",
                   threads, picked.c_str(), serial_picked.c_str(),
                   result->selection_sim_seconds, serial_sim);
      return 1;
    }
    table.AddRow({std::to_string(threads), StrFormat("%.2f", seconds),
                  StrFormat("%.2fx", serial_wall / seconds),
                  FormatSimSeconds(result->selection_sim_seconds), picked});
  }
  table.Print();
  std::printf(
      "\nOutputs verified identical across all thread counts; speedup is pure "
      "wall-clock.\n");
  return 0;
}

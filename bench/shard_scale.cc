// shard_scale — out-of-core sharded-KNN memory harness.
//
//   shard_scale --rows=5000000 --shards=64 [--queries=16] [--k=10]
//               [--features=16] [--parties=4] [--seed=42]
//               [--prefilter=0] [--max-rss-mb=0]
//
// Runs one sharded KNN pass over the streaming synthetic generator and prints
// a vfps-bench-v1-compatible JSON record with the peak RSS. Because ru_maxrss
// is a process-lifetime high-water mark, comparing shard counts requires one
// process per configuration — that is exactly how the CI job and run_bench.sh
// invoke this binary.
//
// --max-rss-mb > 0 turns the run into an assertion: exit 1 if the peak RSS
// exceeds the ceiling. CI uses this to pin the flat-per-shard guarantee.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/partitioner.h"
#include "data/synthetic.h"
#include "vfl/sharded_knn.h"

int main(int argc, char** argv) {
  using namespace vfps;  // NOLINT(build/namespaces)
  bench::Flags flags(argc, argv);

  data::SyntheticConfig data_config;
  data_config.num_samples = static_cast<size_t>(flags.GetInt("rows", 1000000));
  data_config.num_features = static_cast<size_t>(flags.GetInt("features", 16));
  data_config.num_informative = data_config.num_features / 2;
  data_config.num_redundant = data_config.num_features / 4;
  data_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  const size_t parties = static_cast<size_t>(flags.GetInt("parties", 4));
  auto partition_or =
      data::RandomVerticalPartition(data_config.num_features, parties, 3);
  bench::RunOrDie("partition", partition_or.status());

  vfl::ShardedKnnConfig config;
  config.shards = static_cast<size_t>(flags.GetInt("shards", 1));
  config.k = static_cast<size_t>(flags.GetInt("k", 10));
  config.num_queries = static_cast<size_t>(flags.GetInt("queries", 16));
  config.seed = data_config.seed;
  config.prefilter_clusters =
      static_cast<size_t>(flags.GetInt("prefilter", 0));

  Stopwatch watch;
  auto out_or = vfl::RunShardedKnn(data_config, *partition_or, config);
  bench::RunOrDie("sharded knn", out_or.status());
  const double wall = watch.ElapsedSeconds();
  const vfl::ShardedKnnOutput& out = *out_or;

  const size_t peak = bench::PeakRssBytes();
  // Order-insensitive digest of the neighbor ids so two runs (e.g. different
  // shard counts in the invariance check) can be compared from the JSON alone.
  uint64_t digest = 0;
  for (const auto& ids : out.neighbors) {
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t id : ids) {
      h ^= id + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    digest ^= h;
  }

  std::printf(
      "{\"schema\": \"vfps-bench-v1\", \"name\": \"shard_scale\", "
      "\"rows\": %zu, \"shards\": %zu, \"queries\": %zu, \"k\": %zu, "
      "\"prefilter\": %zu, \"max_shard_rows\": %zu, "
      "\"candidates_scored\": %zu, \"merges\": %zu, "
      "\"wall_seconds\": %.3f, \"mem_bytes\": %zu, "
      "\"neighbor_digest\": %llu}\n",
      data_config.num_samples, config.shards, config.num_queries, config.k,
      config.prefilter_clusters, out.max_shard_rows, out.candidates_scored,
      out.merge_stats.merges, wall, peak,
      static_cast<unsigned long long>(digest));

  const int64_t max_rss_mb = flags.GetInt("max-rss-mb", 0);
  if (max_rss_mb > 0 &&
      peak > static_cast<size_t>(max_rss_mb) * 1024 * 1024) {
    std::fprintf(stderr,
                 "shard_scale: peak RSS %zu MiB exceeds ceiling %lld MiB\n",
                 peak / (1024 * 1024), static_cast<long long>(max_rss_mb));
    return 1;
  }
  return 0;
}

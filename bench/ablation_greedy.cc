// Ablation A3 (beyond the paper): submodular maximizer choice. Compares
// plain greedy (Algorithm 1), lazy greedy (CELF), and the exhaustive optimum
// on similarity matrices produced by the real pipeline: objective value,
// marginal-gain evaluations, and the (1 - 1/e) guarantee margin.
//
// Usage: ablation_greedy [--scale=0.35] [--seed=42]

#include <cstdio>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/vfps_sm.h"
#include "data/presets.h"
#include "data/scaler.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.35);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("Ablation: greedy vs lazy greedy vs exhaustive optimum "
              "(Phishing, scale=%.2f)\n\n", scale);

  TablePrinter table({"P", "Select", "Greedy f(S)", "Lazy f(S)", "Optimal f(S)",
                      "Greedy/Opt", "GreedyEvals", "LazyEvals", "ExhaustEvals"});
  for (size_t p : {6u, 10u, 14u, 18u}) {
    // Build the similarity matrix exactly as VFPS-SM would.
    auto generated = data::LoadPreset("Phishing", scale, seed);
    RunOrDie("preset", generated.status());
    auto split = data::SplitDataset(generated->data, 0.8, 0.1, seed);
    RunOrDie("split", split.status());
    RunOrDie("standardize", data::StandardizeSplit(&*split));
    auto partition = data::QualityStratifiedPartition(generated->kinds, p, seed);
    RunOrDie("partition", partition.status());

    auto backend = he::CreatePlainBackend();
    net::SimNetwork network;
    net::CostModel cost;
    SimClock clock;
    core::SelectionContext ctx;
    ctx.split = &*split;
    ctx.partition = &*partition;
    ctx.backend = backend.get();
    ctx.network = &network;
    ctx.cost = &cost;
    ctx.clock = &clock;
    ctx.knn.num_queries = 16;
    ctx.seed = seed;

    core::VfpsSmSelector selector(vfl::KnnOracleMode::kFagin);
    const size_t target = p / 2;
    auto outcome = selector.Select(ctx, target);
    RunOrDie("select", outcome.status());
    core::KnnSubmodularFunction f(selector.last_similarity());

    auto greedy = core::GreedyMaximize(f, target);
    auto lazy = core::LazyGreedyMaximize(f, target);
    auto optimal = core::ExhaustiveMaximize(f, target);
    RunOrDie("exhaustive", optimal.status());

    table.AddRow({std::to_string(p), std::to_string(target),
                  StrFormat("%.4f", greedy.value), StrFormat("%.4f", lazy.value),
                  StrFormat("%.4f", optimal->value),
                  StrFormat("%.4f", greedy.value / optimal->value),
                  std::to_string(greedy.evaluations),
                  std::to_string(lazy.evaluations),
                  std::to_string(optimal->evaluations)});
  }
  table.Print();
  std::printf("\nExpected: greedy/optimal ratio well above the 0.632 "
              "guarantee (usually ~1.0); lazy greedy matches plain greedy's "
              "value with fewer evaluations.\n");
  return 0;
}

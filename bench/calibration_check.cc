// Calibration check: downstream accuracy with ALL participants for every
// dataset preset and model, next to the paper's Table IV "ALL" row. Used to
// tune the presets' centroid_distance values; large deviations mean the
// synthetic stand-ins drifted from the paper's difficulty profile.
//
// Usage: calibration_check [--scale=0.5] [--seed=42]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

namespace {
// Paper Table IV, "ALL" rows: KNN, LR, MLP.
struct Target {
  const char* dataset;
  double knn, lr, mlp;
};
constexpr Target kTargets[] = {
    {"Bank", 0.8300, 0.8156, 0.8595},   {"Phishing", 0.9483, 0.9360, 0.9418},
    {"Rice", 0.9911, 0.9882, 0.9889},   {"Credit", 0.8111, 0.8115, 0.8062},
    {"Adult", 0.8167, 0.8463, 0.8415},  {"Web", 0.9883, 0.9866, 0.9883},
    {"IJCNN", 0.9833, 0.9197, 0.9570},  {"HDI", 0.9250, 0.9075, 0.9082},
    {"SD", 0.7111, 0.7263, 0.8205},     {"SUSY", 0.7844, 0.7876, 0.8011},
};
}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("Calibration: ALL-participant accuracy vs paper Table IV targets "
              "(scale=%.2f)\n\n", scale);
  TablePrinter table({"Dataset", "KNN", "paper", "LR", "paper", "MLP", "paper"});
  double total_abs_dev = 0.0;
  int cells = 0;
  for (const Target& target : kTargets) {
    std::vector<std::string> row = {target.dataset};
    const ml::ModelKind models[] = {ml::ModelKind::kKnn, ml::ModelKind::kLogReg,
                                    ml::ModelKind::kMlp};
    const double papers[] = {target.knn, target.lr, target.mlp};
    for (int m = 0; m < 3; ++m) {
      auto config = GridConfig(target.dataset, core::SelectionMethod::kAll,
                               models[m], scale, seed);
      auto result = core::RunExperiment(config);
      RunOrDie(target.dataset, result.status());
      row.push_back(FormatAccuracy(result->training.test_accuracy));
      row.push_back(FormatAccuracy(papers[m]));
      total_abs_dev += std::abs(result->training.test_accuracy - papers[m]);
      ++cells;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nMean absolute deviation from paper: %.4f over %d cells\n",
              total_abs_dev / cells, cells);
  return 0;
}

// Reproduces Table V: end-to-end running time (selection + training) for the
// KNN / LR / MLP downstream tasks on all ten datasets under each selection
// method. Times are simulated cluster seconds from the calibrated cost model.
//
// Usage: table5_end_to_end [--scale=0.5] [--seed=42] [--datasets=...]
//        [--models=knn,lr,mlp]

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::vector<std::string> datasets = AllDatasets();
  {
    const std::string arg = flags.GetString("datasets", "");
    if (!arg.empty()) datasets = SplitString(arg, ',');
  }
  std::vector<ml::ModelKind> models;
  for (const auto& name :
       SplitString(flags.GetString("models", "knn,lr,mlp"), ',')) {
    models.push_back(ml::ParseModelKind(name).ValueOrDie());
  }

  std::printf("Table V: end-to-end running time in simulated seconds, select 2 of 4 (scale=%.2f)\n\n",
              scale);

  const core::SelectionMethod methods[] = {
      core::SelectionMethod::kAll, core::SelectionMethod::kRandom,
      core::SelectionMethod::kShapley, core::SelectionMethod::kVfMine,
      core::SelectionMethod::kVfpsSm};

  Stopwatch wall;
  for (ml::ModelKind model : models) {
    std::printf("== downstream task: %s ==\n", ml::ModelKindName(model));
    std::vector<std::string> header = {"Method"};
    header.insert(header.end(), datasets.begin(), datasets.end());
    TablePrinter table(header);
    std::vector<std::vector<double>> total(std::size(methods),
                                           std::vector<double>(datasets.size()));
    for (size_t d = 0; d < datasets.size(); ++d) {
      for (size_t m = 0; m < std::size(methods); ++m) {
        auto config = GridConfig(datasets[d], methods[m], model, scale, seed);
        auto result = core::RunExperiment(config);
        RunOrDie(datasets[d].c_str(), result.status());
        total[m][d] = result->total_sim_seconds;
      }
    }
    for (size_t m = 0; m < std::size(methods); ++m) {
      std::vector<std::string> row = {core::SelectionMethodName(methods[m])};
      for (size_t d = 0; d < datasets.size(); ++d) {
        row.push_back(FormatSimSeconds(total[m][d]));
      }
      table.AddRow(std::move(row));
    }
    table.Print();

    // Shape checks mirrored from the paper.
    size_t vfps_faster_than_shapley = 0, vfps_faster_than_vfmine = 0;
    for (size_t d = 0; d < datasets.size(); ++d) {
      vfps_faster_than_shapley += (total[4][d] < total[2][d]);
      vfps_faster_than_vfmine += (total[4][d] < total[3][d]);
    }
    std::printf("VFPS-SM faster than SHAPLEY on %zu/%zu, than VF-MINE on %zu/%zu datasets\n\n",
                vfps_faster_than_shapley, datasets.size(),
                vfps_faster_than_vfmine, datasets.size());
  }
  std::printf("(grid wall time: %.1fs)\n", wall.ElapsedSeconds());
  return 0;
}

#ifndef VFPS_BENCH_BENCH_UTIL_H_
#define VFPS_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction harnesses: tiny flag
// parsing (--key=value), monospace table rendering, and the canonical
// experiment-grid defaults used across benches.

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/experiment.h"

namespace vfps::bench {

/// Peak resident set size of this process in bytes (Linux ru_maxrss is in
/// KiB). This is a high-water mark: it never decreases, so out-of-core
/// benches must be measured in a fresh process per configuration.
inline size_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<size_t>(ru.ru_maxrss) * 1024;
}

/// Current resident set size in bytes (from /proc/self/statm), or 0 where
/// the proc filesystem is unavailable.
inline size_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<size_t>(resident) *
         static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

/// Parse "--key=value" style flags; anything else aborts with usage.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unknown argument: %s (expected --key=value)\n",
                     arg.c_str());
        std::exit(2);
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseDouble(it->second).ValueOrDie();
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseInt64(it->second).ValueOrDie();
  }

  std::string GetString(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Monospace table writer: set a header, append rows, print aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&widths](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&widths](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i == 0 ? "" : "  ",
                    PadLeft(row[i], widths[i]).c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FormatAccuracy(double acc) { return StrFormat("%.4f", acc); }
inline std::string FormatSimSeconds(double s) { return StrFormat("%.1f", s); }

/// The ten Table III dataset names in paper order.
inline const std::vector<std::string>& AllDatasets() {
  static const auto* names = new std::vector<std::string>{
      "Bank", "Phishing", "Rice", "Credit", "Adult",
      "Web",  "IJCNN",    "HDI",  "SD",     "SUSY"};
  return *names;
}

/// Canonical grid-cell configuration shared by the table benches.
inline core::ExperimentConfig GridConfig(const std::string& dataset,
                                         core::SelectionMethod method,
                                         ml::ModelKind model, double scale,
                                         uint64_t seed) {
  core::ExperimentConfig config;
  config.dataset = dataset;
  config.scale = scale;
  config.participants = 4;
  config.select = 2;
  config.method = method;
  config.model = model;
  config.backend = core::HeBackendKind::kPlain;  // sim times are backend-agnostic
  // The paper "randomly splits each dataset into four vertical partitions".
  config.partition = core::PartitionMode::kRandom;
  config.knn.k = 10;
  config.knn.num_queries = 256;
  // Baselines evaluate coalitions on the same query budget as the oracle
  // (the paper scores utilities on the validation set, not a subsample).
  config.utility_queries = 256;
  config.seed = seed;
  return config;
}

inline void RunOrDie(const char* what, const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace vfps::bench

#endif  // VFPS_BENCH_BENCH_UTIL_H_

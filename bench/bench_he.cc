// Microbenchmarks for the homomorphic-encryption substrate: NTT transforms,
// CKKS encode/encrypt/add/decrypt, and Paillier primitives. These are the
// per-operation costs the simulated-deployment cost model is calibrated
// against (net/cost_model.h).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "he/backend.h"
#include "he/ckks.h"
#include "he/modarith.h"
#include "he/ntt.h"
#include "he/paillier.h"

namespace vfps::he {
namespace {

void BM_NttForward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prime = GeneratePrime(54, 2 * n);
  auto tables = NttTables::Create(n, *prime);
  Rng rng(1);
  std::vector<uint64_t> poly(n);
  for (auto& v : poly) v = rng.NextBounded(*prime);
  for (auto _ : state) {
    tables->Forward(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096)->Arg(16384);

struct CkksFixture {
  std::shared_ptr<const CkksContext> ctx;
  Rng rng{7};
  CkksSecretKey sk;
  CkksPublicKey pk;
  std::vector<double> values;

  explicit CkksFixture(size_t degree) {
    CkksParams params;
    params.poly_degree = degree;
    ctx = CkksContext::Create(params).ValueOrDie();
    sk = ctx->GenerateSecretKey(&rng);
    pk = ctx->GeneratePublicKey(sk, &rng);
    values.resize(ctx->slot_count());
    Rng vals(3);
    for (auto& v : values) v = vals.Uniform(-100.0, 100.0);
  }
};

void BM_CkksEncode(benchmark::State& state) {
  CkksFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pt = f.ctx->encoder().Encode(f.values, f.ctx->params().scale);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_CkksEncode)->Arg(1024)->Arg(4096);

void BM_CkksEncrypt(benchmark::State& state) {
  CkksFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto ct = f.ctx->EncryptVector(f.pk, f.values, &f.rng);
    benchmark::DoNotOptimize(ct);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.values.size()));
}
BENCHMARK(BM_CkksEncrypt)->Arg(1024)->Arg(4096);

void BM_CkksAdd(benchmark::State& state) {
  CkksFixture f(static_cast<size_t>(state.range(0)));
  auto a = f.ctx->EncryptVector(f.pk, f.values, &f.rng).ValueOrDie();
  auto b = f.ctx->EncryptVector(f.pk, f.values, &f.rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx->AddInPlaceCt(&a, b));
  }
}
BENCHMARK(BM_CkksAdd)->Arg(1024)->Arg(4096);

void BM_CkksDecrypt(benchmark::State& state) {
  CkksFixture f(static_cast<size_t>(state.range(0)));
  auto ct = f.ctx->EncryptVector(f.pk, f.values, &f.rng).ValueOrDie();
  for (auto _ : state) {
    auto values = f.ctx->DecryptVector(f.sk, ct, f.values.size());
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_CkksDecrypt)->Arg(1024)->Arg(4096);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(11);
  auto keys = Paillier::GenerateKeys(static_cast<size_t>(state.range(0)), &rng)
                  .ValueOrDie();
  for (auto _ : state) {
    auto ct = Paillier::Encrypt(keys.pub, BigInt(123456), &rng);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_PaillierAdd(benchmark::State& state) {
  Rng rng(12);
  auto keys = Paillier::GenerateKeys(512, &rng).ValueOrDie();
  auto a = Paillier::Encrypt(keys.pub, BigInt(1), &rng).ValueOrDie();
  auto b = Paillier::Encrypt(keys.pub, BigInt(2), &rng).ValueOrDie();
  for (auto _ : state) {
    auto sum = Paillier::Add(keys.pub, a, b);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PaillierAdd);

void BM_BackendEncryptVector(benchmark::State& state) {
  CkksParams params;
  auto backend = CreateCkksBackend(params, 5).MoveValueUnsafe();
  std::vector<double> values(static_cast<size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    auto enc = backend->Encrypt(values);
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BackendEncryptVector)->Arg(2048)->Arg(8192)->Arg(32768)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vfps::he

BENCHMARK_MAIN();

// Reproduces Fig. 6: the diversity study. Starting from a 4-participant
// consortium, inject 0..4 exact duplicate participants and select 2 with each
// method; report downstream KNN accuracy. VFPS-SM's submodular objective
// gives duplicates zero marginal gain, so its accuracy stays flat while the
// additive scorers (SHAPLEY, VF-MINE) get fooled into picking clones.
//
// Usage: fig6_diversity [--scale=0.5] [--seed=42] [--max_dup=4]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t max_dup = static_cast<size_t>(flags.GetInt("max_dup", 4));

  std::printf("Fig. 6: KNN accuracy vs injected duplicate participants "
              "(base P=4, select 2, scale=%.2f)\n", scale);
  std::printf("Duplicate i clones participant (i mod 4), i.e. participants are\n"
              "incrementally replicated as in the paper's protocol.\n\n");

  const core::SelectionMethod methods[] = {core::SelectionMethod::kShapley,
                                           core::SelectionMethod::kVfMine,
                                           core::SelectionMethod::kVfpsSm};
  for (const std::string& dataset : {std::string("Phishing"), std::string("Web")}) {
    std::printf("== %s ==\n", dataset.c_str());
    std::vector<std::string> header = {"Method"};
    for (size_t dup = 0; dup <= max_dup; ++dup) {
      header.push_back("+" + std::to_string(dup) + "dup");
    }
    TablePrinter table(header);
    for (core::SelectionMethod method : methods) {
      std::vector<std::string> row = {core::SelectionMethodName(method)};
      for (size_t dup = 0; dup <= max_dup; ++dup) {
        auto config =
            GridConfig(dataset, method, ml::ModelKind::kKnn, scale, seed);
        config.duplicates = dup;
        // The paper splits uniformly at random for this study, so the base
        // participants are comparable and redundancy is what hurts.
        config.partition = core::PartitionMode::kRandom;
        auto result = core::RunExperiment(config);
        RunOrDie(dataset.c_str(), result.status());
        row.push_back(FormatAccuracy(result->training.test_accuracy));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Paper shape: SHAPLEY/VF-MINE accuracy drops with duplicates "
              "(up to -5.0%% / -3.0%% on Phishing); VFPS-SM stays flat.\n");
  return 0;
}

// Kernel-level microbenchmarks feeding the bench-regression harness
// (tools/run_bench.sh -> BENCH_*.json). Benchmarks are named after the
// OPERATION the product executes, not the implementation, so the harness can
// compare runs across PRs: the same name always measures "what the product
// does for this operation today".
//
// Coverage: 64-bit modular multiplication, the negacyclic NTT, the CKKS
// ciphertext ops on the selection hot path (encrypt/decrypt/add/rescale),
// the plaintext distance kernels behind KnnClassifier / FederatedKnnOracle,
// the bounded top-k selection, and one end-to-end encrypted-KNN query.

// Per-ISA rows: the ISA-sensitive benchmarks also register pinned variants
// named `<bench>/isa:<scalar|avx2|avx512>` (only for ISAs the host supports),
// and every dispatched ISA-sensitive row carries an `isa` counter with the
// numeric simd::Isa it actually ran on. tools/bench_report.py uses both: the
// pinned rows yield within-run `speedup_vs_scalar_isa`, and the counter stops
// the regression gate from comparing a row against a baseline measured on a
// different ISA (see docs/KERNELS.md).

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "data/synthetic.h"
#include "he/backend.h"
#include "he/ckks.h"
#include "he/modarith.h"
#include "he/ntt.h"
#include "ml/kernels.h"
#include "ml/knn.h"
#include "simd/simd.h"
#include "vfl/fed_knn.h"

namespace vfps {
namespace {

// Tags an ISA-sensitive benchmark's row with the backend it dispatched to.
void SetIsaCounter(benchmark::State& state) {
  state.counters["isa"] = static_cast<double>(simd::ActiveIsa());
}

// ---------------------------------------------------------------------------
// Modular arithmetic
// ---------------------------------------------------------------------------

constexpr size_t kMulOps = 4096;

struct MulModFixture {
  uint64_t q;
  std::vector<uint64_t> a, b;

  MulModFixture() {
    q = *he::GeneratePrime(54, 2 * 4096);
    Rng rng(17);
    a.resize(kMulOps);
    b.resize(kMulOps);
    for (size_t i = 0; i < kMulOps; ++i) {
      a[i] = rng.NextBounded(q);
      b[i] = rng.NextBounded(q);
    }
  }
};

void BM_MulModU128(benchmark::State& state) {
  MulModFixture f;
  for (auto _ : state) {
    uint64_t acc = 0;
    for (size_t i = 0; i < kMulOps; ++i) acc ^= he::MulMod(f.a[i], f.b[i], f.q);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kMulOps));
}
BENCHMARK(BM_MulModU128);

void BM_MulModBarrett(benchmark::State& state) {
  MulModFixture f;
  const he::Modulus m(f.q);
  for (auto _ : state) {
    uint64_t acc = 0;
    for (size_t i = 0; i < kMulOps; ++i) acc ^= he::MulMod(f.a[i], f.b[i], m);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kMulOps));
}
BENCHMARK(BM_MulModBarrett);

// Multiplication by a fixed operand with a precomputed Shoup quotient — the
// form every NTT butterfly executes.
void BM_MulModShoup(benchmark::State& state) {
  MulModFixture f;
  std::vector<uint64_t> bs(kMulOps);
  for (size_t i = 0; i < kMulOps; ++i) {
    bs[i] = he::ShoupPrecompute(f.b[i], f.q);
  }
  for (auto _ : state) {
    uint64_t acc = 0;
    for (size_t i = 0; i < kMulOps; ++i) {
      acc ^= he::MulModShoup(f.a[i], f.b[i], bs[i], f.q);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kMulOps));
}
BENCHMARK(BM_MulModShoup);

// ---------------------------------------------------------------------------
// Negacyclic NTT
// ---------------------------------------------------------------------------

void NttForwardBody(benchmark::State& state, size_t n) {
  auto prime = he::GeneratePrime(54, 2 * n);
  auto tables = he::NttTables::Create(n, *prime);
  Rng rng(1);
  std::vector<uint64_t> poly(n);
  for (auto& v : poly) v = rng.NextBounded(*prime);
  for (auto _ : state) {
    tables->Forward(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(n * sizeof(uint64_t)));
  SetIsaCounter(state);
}

void BM_NttForward(benchmark::State& state) {
  NttForwardBody(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096);

void NttInverseBody(benchmark::State& state, size_t n) {
  auto prime = he::GeneratePrime(54, 2 * n);
  auto tables = he::NttTables::Create(n, *prime);
  Rng rng(2);
  std::vector<uint64_t> poly(n);
  for (auto& v : poly) v = rng.NextBounded(*prime);
  for (auto _ : state) {
    tables->Inverse(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(n * sizeof(uint64_t)));
  SetIsaCounter(state);
}

void BM_NttInverse(benchmark::State& state) {
  NttInverseBody(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_NttInverse)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------------
// CKKS scheme operations (the encrypted-KNN oracle's per-query HE cost)
// ---------------------------------------------------------------------------

struct CkksKernelFixture {
  std::shared_ptr<const he::CkksContext> ctx;
  Rng rng{7};
  he::CkksSecretKey sk;
  he::CkksPublicKey pk;
  std::vector<double> values;

  explicit CkksKernelFixture(size_t degree) {
    he::CkksParams params;
    params.poly_degree = degree;
    ctx = he::CkksContext::Create(params).ValueOrDie();
    sk = ctx->GenerateSecretKey(&rng);
    pk = ctx->GeneratePublicKey(sk, &rng);
    values.resize(ctx->slot_count());
    Rng vals(3);
    for (auto& v : values) v = vals.Uniform(-100.0, 100.0);
  }
};

void BM_CkksEncrypt(benchmark::State& state) {
  CkksKernelFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto ct = f.ctx->EncryptVector(f.pk, f.values, &f.rng);
    benchmark::DoNotOptimize(ct);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.values.size()));
}
BENCHMARK(BM_CkksEncrypt)->Arg(4096);

void BM_CkksDecrypt(benchmark::State& state) {
  CkksKernelFixture f(static_cast<size_t>(state.range(0)));
  auto ct = f.ctx->EncryptVector(f.pk, f.values, &f.rng).ValueOrDie();
  for (auto _ : state) {
    auto values = f.ctx->DecryptVector(f.sk, ct, f.values.size());
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.values.size()));
}
BENCHMARK(BM_CkksDecrypt)->Arg(4096);

void BM_CkksAdd(benchmark::State& state) {
  CkksKernelFixture f(static_cast<size_t>(state.range(0)));
  auto a = f.ctx->EncryptVector(f.pk, f.values, &f.rng).ValueOrDie();
  auto b = f.ctx->EncryptVector(f.pk, f.values, &f.rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx->AddInPlaceCt(&a, b));
  }
}
BENCHMARK(BM_CkksAdd)->Arg(4096);

void CkksRescaleBody(benchmark::State& state, size_t degree) {
  CkksKernelFixture f(degree);
  auto ct = f.ctx->EncryptVector(f.pk, f.values, &f.rng).ValueOrDie();
  for (auto _ : state) {
    auto dropped = f.ctx->Rescale(ct);
    benchmark::DoNotOptimize(dropped);
  }
  SetIsaCounter(state);
}

void BM_CkksRescale(benchmark::State& state) {
  CkksRescaleBody(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_CkksRescale)->Arg(4096);

// ---------------------------------------------------------------------------
// Distance kernels + bounded top-k
// ---------------------------------------------------------------------------

struct DistanceFixture {
  data::Dataset train;
  data::Dataset test;
  data::VerticalPartition partition;

  DistanceFixture(size_t rows, size_t features, size_t parties) {
    data::SyntheticConfig config;
    config.num_samples = rows + 64;
    config.num_features = features;
    config.num_informative = features / 2;
    config.num_redundant = features / 4;
    config.seed = 9;
    auto generated = data::GenerateClassification(config).ValueOrDie();
    auto split =
        data::SplitDataset(generated.data,
                           static_cast<double>(rows) /
                               static_cast<double>(config.num_samples),
                           0.0, 2)
            .ValueOrDie();
    train = std::move(split.train);
    test = std::move(split.test);
    partition = data::RandomVerticalPartition(features, parties, 3).ValueOrDie();
  }
};

void BM_KnnNeighbors(benchmark::State& state) {
  DistanceFixture f(static_cast<size_t>(state.range(0)), 16, 4);
  ml::KnnClassifier knn(10);
  (void)knn.Fit(f.train, {});
  size_t qi = 0;
  for (auto _ : state) {
    auto neighbors = knn.Neighbors(f.test.Row(qi));
    benchmark::DoNotOptimize(neighbors);
    qi = (qi + 1) % f.test.num_samples();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.train.num_samples()));
}
BENCHMARK(BM_KnnNeighbors)->Arg(2000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_FedKnnClassify(benchmark::State& state) {
  DistanceFixture f(static_cast<size_t>(state.range(0)), 16, 4);
  auto backend = he::CreatePlainBackend();
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;
  vfl::FederatedKnnOracle oracle(&f.train, &f.partition, backend.get(),
                                 &network, &cost, &clock);
  const std::vector<size_t> all = {0, 1, 2, 3};
  for (auto _ : state) {
    auto preds = oracle.ClassifyPredictions(f.test, all, 10, false);
    benchmark::DoNotOptimize(preds);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.test.num_samples()));
}
BENCHMARK(BM_FedKnnClassify)->Arg(2000)->Unit(benchmark::kMillisecond);

// The dispatched fixed-association dot kernel in isolation (the inner loop
// of every plaintext distance computation).
void DotProductBody(benchmark::State& state, size_t n) {
  Rng rng(27);
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.Uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.Uniform(-1.0, 1.0);
  for (auto _ : state) {
    double dot = ml::DotProduct(a.data(), b.data(), n);
    benchmark::DoNotOptimize(dot);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  SetIsaCounter(state);
}

void BM_DotProduct(benchmark::State& state) {
  DotProductBody(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_DotProduct)->Arg(1024);

// The norm-decomposed block distance kernel over a cached FeatureBlock — the
// unit of work KnnClassifier/FederatedKnnOracle repeat per query. 64 features
// keeps the per-row dot in the vector body rather than the ragged tail.
void BlockSquaredDistancesBody(benchmark::State& state, size_t rows) {
  constexpr size_t kFeatures = 64;
  data::Dataset data(rows, kFeatures, 2);
  Rng rng(29);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < kFeatures; ++j) {
      data.Set(i, j, rng.Uniform(-1.0, 1.0));
    }
  }
  const ml::FeatureBlock block(data);
  std::vector<double> query(kFeatures);
  for (auto& v : query) v = rng.Uniform(-1.0, 1.0);
  const double q_norm = ml::SquaredNorm(query.data(), kFeatures);
  std::vector<double> out(rows);
  for (auto _ : state) {
    ml::BlockSquaredDistances(block, query.data(), q_norm, 0, rows,
                              out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(rows * kFeatures * sizeof(double)));
  SetIsaCounter(state);
}

void BM_BlockSquaredDistances(benchmark::State& state) {
  BlockSquaredDistancesBody(state, static_cast<size_t>(state.range(0)));
}
// 256 rows (128 KiB block) stays cache-resident and exposes the kernel's
// compute speed; 2000 rows (1 MiB) spills toward L3 and is bandwidth-bound,
// which is the regime the selector actually runs in for large parties.
BENCHMARK(BM_BlockSquaredDistances)->Arg(256)->Arg(2000);

// The bounded top-k selection over a full distance vector, exactly as the
// leader ranks decrypted aggregates: k smallest by (value, index).
void BM_SmallestK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = 10;
  Rng rng(23);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.Uniform(0.0, 100.0);
  for (auto _ : state) {
    auto idx = ml::SmallestK(values, k);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SmallestK)->Arg(16384)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// End-to-end encrypted-KNN query (BASE mode: encrypt-all, the paper's
// dominant cost). Reported time covers Run() over `kQueries` queries; the
// per-query latency is time / kQueries.
// ---------------------------------------------------------------------------

// Shared runner: BASE-mode Run() with a configurable CKKS packing mode and
// query grouping. Reports ciphertext operations (encrypt + add + decrypt,
// HeOpStats `*_ops`) and packed slots per query as user counters, so the
// packed-vs-scalar and grouped-vs-ungrouped op reductions are visible in the
// JSON artifact next to the wall-clock numbers.
void RunEncKnnBench(benchmark::State& state, size_t queries,
                    he::CkksPacking packing, size_t query_group) {
  DistanceFixture f(static_cast<size_t>(state.range(0)), 16, 4);
  he::CkksParams params;
  params.poly_degree = 1024;
  auto backend = he::CreateCkksBackend(params, 5, packing).MoveValueUnsafe();
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;
  vfl::FederatedKnnOracle oracle(&f.train, &f.partition, backend.get(),
                                 &network, &cost, &clock);
  vfl::FedKnnConfig config;
  config.mode = vfl::KnnOracleMode::kBase;
  config.k = 10;
  config.num_queries = queries;
  config.query_group = query_group;
  uint64_t ct_ops = 0;
  uint64_t values = 0;
  for (auto _ : state) {
    vfl::FedKnnStats stats;
    auto result = oracle.Run(config, &stats);
    benchmark::DoNotOptimize(result);
    ct_ops = stats.he_ops.encrypt_ops + stats.he_ops.add_ops +
             stats.he_ops.decrypt_ops;
    values = stats.he_ops.values_encrypted;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(queries));
  state.counters["ct_ops_per_query"] =
      static_cast<double>(ct_ops) / static_cast<double>(queries);
  state.counters["slots_per_query"] =
      static_cast<double>(values) / static_cast<double>(queries);
}

void BM_EncKnnQuery(benchmark::State& state) {
  RunEncKnnBench(state, /*queries=*/4, he::CkksPacking::kPacked,
                 /*query_group=*/1);
}
BENCHMARK(BM_EncKnnQuery)->Arg(512)->Unit(benchmark::kMillisecond);

// The scalar-era layout (one value per ciphertext): what every query paid
// before slot packing. ct_ops_per_query here vs BM_EncKnnQuery's is the
// headline reduction of the batched HE API (hundreds of ciphertext ops vs
// single digits at these sizes).
void BM_EncKnnQueryScalar(benchmark::State& state) {
  RunEncKnnBench(state, /*queries=*/1, he::CkksPacking::kScalar,
                 /*query_group=*/1);
}
BENCHMARK(BM_EncKnnQueryScalar)->Arg(128)->Unit(benchmark::kMillisecond);

// Cross-query slot batching (FedKnnConfig::query_group = 0 auto-fits the
// slot count): at 128 rows the candidate vectors (127 values) underfill the
// 512 slots, so 4 queries share each packed aggregation round.
void BM_EncKnnQueryGrouped(benchmark::State& state) {
  RunEncKnnBench(state, /*queries=*/8, he::CkksPacking::kPacked,
                 /*query_group=*/0);
}
BENCHMARK(BM_EncKnnQueryGrouped)->Arg(128)->Unit(benchmark::kMillisecond);

// Ungrouped control at the grouped benchmark's size, so the grouped speedup
// is an apples-to-apples wall-clock ratio in the same JSON artifact.
void BM_EncKnnQueryUngrouped(benchmark::State& state) {
  RunEncKnnBench(state, /*queries=*/8, he::CkksPacking::kPacked,
                 /*query_group=*/1);
}
BENCHMARK(BM_EncKnnQueryUngrouped)->Arg(128)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Per-ISA pinned variants (scalar vs SIMD rows in one run)
// ---------------------------------------------------------------------------

// Wraps a bench body so the whole run executes with dispatch pinned to `isa`
// (restored afterwards). Only registered for ISAs the host supports, so every
// emitted row is a real measurement, never a silent fallback.
template <typename Body>
auto PinnedTo(simd::Isa isa, Body body) {
  return [isa, body](benchmark::State& state) {
    const simd::Isa prev = simd::ActiveIsa();
    simd::SetActiveIsa(isa);
    body(state);
    simd::SetActiveIsa(prev);
  };
}

void RegisterIsaPinnedVariants() {
  const simd::Isa widest = simd::DetectCpuIsa();
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (isa > widest) continue;
    const std::string tag = std::string("/isa:") + simd::IsaName(isa);
    benchmark::RegisterBenchmark(
        ("BM_NttForward/4096" + tag).c_str(),
        PinnedTo(isa, [](benchmark::State& s) { NttForwardBody(s, 4096); }));
    benchmark::RegisterBenchmark(
        ("BM_NttInverse/4096" + tag).c_str(),
        PinnedTo(isa, [](benchmark::State& s) { NttInverseBody(s, 4096); }));
    benchmark::RegisterBenchmark(
        ("BM_CkksRescale/4096" + tag).c_str(),
        PinnedTo(isa, [](benchmark::State& s) { CkksRescaleBody(s, 4096); }));
    benchmark::RegisterBenchmark(
        ("BM_DotProduct/1024" + tag).c_str(),
        PinnedTo(isa, [](benchmark::State& s) { DotProductBody(s, 1024); }));
    // 256-row (cache-resident) size: the 2000-row block is bandwidth-bound,
    // so the scalar-vs-SIMD ratio there measures the memory system, not the
    // kernels.
    benchmark::RegisterBenchmark(
        ("BM_BlockSquaredDistances/256" + tag).c_str(),
        PinnedTo(isa, [](benchmark::State& s) {
          BlockSquaredDistancesBody(s, 256);
        }));
    benchmark::RegisterBenchmark(
        ("BM_BlockSquaredDistances/2000" + tag).c_str(),
        PinnedTo(isa, [](benchmark::State& s) {
          BlockSquaredDistancesBody(s, 2000);
        }));
  }
}

}  // namespace
}  // namespace vfps

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  vfps::RegisterIsaPinnedVariants();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Reproduces Fig. 7: selection time as the consortium grows
// (P = 4/8/12/16/20). SHAPLEY's exact coalition enumeration explodes
// exponentially; VF-MINE grows with its group count; VFPS-SM evaluates one
// consortium-wide KNN pass and stays near-flat.
//
// Beyond P=12 the SHAPLEY bars use Monte-Carlo values with the remaining
// coalition cost extrapolated at the measured per-coalition rate (see
// EXPERIMENTS.md; running 2^20 federated evaluations for real is exactly the
// pathology the paper is demonstrating).
//
// Usage: fig7_scalability [--scale=0.35] [--seed=42]
//
// A second axis beyond the paper: --shard-sweep=1 scales the DATA instead of
// the consortium, running the out-of-core sharded engine at 10x the largest
// paper N and reporting wall time, candidate work, and peak RSS per shard
// count (one row per configuration; RSS rows are comparable only against the
// fresh-process numbers from bench/shard_scale.cc, see its header).
//
//   fig7_scalability --shard-sweep=1 [--rows=5000000] [--queries=8] [--k=10]

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/partitioner.h"
#include "data/synthetic.h"
#include "vfl/sharded_knn.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

namespace {

// Fig. 7 extension: N is pushed to 10x the paper's largest dataset (SUSY's
// 500k base rows -> 5M synthetic rows), far past what the in-memory oracle
// can hold, and the shard count sweeps the memory/streaming trade-off.
int RunShardSweep(const Flags& flags) {
  data::SyntheticConfig data_config;
  data_config.num_samples =
      static_cast<size_t>(flags.GetInt("rows", 5000000));
  data_config.num_features = 16;
  data_config.num_informative = 8;
  data_config.num_redundant = 4;
  data_config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto partition =
      data::RandomVerticalPartition(data_config.num_features, 4, 3);
  RunOrDie("partition", partition.status());

  std::printf("Fig. 7 (extended): out-of-core sharded KNN at N=%zu "
              "(10x paper scale)\n\n",
              data_config.num_samples);
  TablePrinter table({"Shards", "ShardRows", "Candidates", "Merges",
                      "Wall(s)", "PeakRSS(MiB)"});
  const size_t shard_counts[] = {8, 16, 32, 64};
  for (size_t shards : shard_counts) {
    vfl::ShardedKnnConfig config;
    config.shards = shards;
    config.k = static_cast<size_t>(flags.GetInt("k", 10));
    config.num_queries = static_cast<size_t>(flags.GetInt("queries", 8));
    config.seed = data_config.seed;
    Stopwatch watch;
    auto out = vfl::RunShardedKnn(data_config, *partition, config);
    RunOrDie("sharded knn", out.status());
    table.AddRow({std::to_string(shards), std::to_string(out->max_shard_rows),
                  std::to_string(out->candidates_scored),
                  std::to_string(out->merge_stats.merges),
                  StrFormat("%.1f", watch.ElapsedSeconds()),
                  std::to_string(PeakRssBytes() / (1024 * 1024))});
  }
  table.Print();
  std::printf("\nShape: wall time is flat (same total row work), resident "
              "memory shrinks with 1/shards; PeakRSS here is the in-process "
              "high-water mark — use shard_scale for per-config numbers.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.GetInt("shard-sweep", 0) != 0) return RunShardSweep(flags);
  const double scale = flags.GetDouble("scale", 0.35);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t parties[] = {4, 8, 12, 16, 20};

  std::printf("Fig. 7: selection time (simulated seconds) vs number of participants "
              "(select P/2, scale=%.2f)\n\n", scale);

  const core::SelectionMethod methods[] = {core::SelectionMethod::kShapley,
                                           core::SelectionMethod::kVfMine,
                                           core::SelectionMethod::kVfpsSm};
  for (const std::string& dataset : {std::string("Phishing"), std::string("Web")}) {
    std::printf("== %s ==\n", dataset.c_str());
    std::vector<std::string> header = {"Method"};
    for (size_t p : parties) header.push_back("P=" + std::to_string(p));
    TablePrinter table(header);
    for (core::SelectionMethod method : methods) {
      std::vector<std::string> row = {core::SelectionMethodName(method)};
      for (size_t p : parties) {
        auto config = GridConfig(dataset, method, ml::ModelKind::kKnn, scale, seed);
        config.participants = p;
        config.select = p / 2;
        // Same query budget for every method (exact SHAPLEY at P=12 bounds it).
        config.knn.num_queries = 16;
        config.utility_queries = 16;
        config.shapley_exact_limit = 12;
        config.shapley_mc_permutations = 8;
        auto result = core::RunExperiment(config);
        RunOrDie(dataset.c_str(), result.status());
        row.push_back(FormatSimSeconds(result->selection_sim_seconds));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Paper shape: SHAPLEY ~exponential in P, VF-MINE mildly super-linear, "
              "VFPS-SM near-flat and lowest everywhere.\n");
  return 0;
}

// Reproduces Fig. 7: selection time as the consortium grows
// (P = 4/8/12/16/20). SHAPLEY's exact coalition enumeration explodes
// exponentially; VF-MINE grows with its group count; VFPS-SM evaluates one
// consortium-wide KNN pass and stays near-flat.
//
// Beyond P=12 the SHAPLEY bars use Monte-Carlo values with the remaining
// coalition cost extrapolated at the measured per-coalition rate (see
// EXPERIMENTS.md; running 2^20 federated evaluations for real is exactly the
// pathology the paper is demonstrating).
//
// Usage: fig7_scalability [--scale=0.35] [--seed=42]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.35);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t parties[] = {4, 8, 12, 16, 20};

  std::printf("Fig. 7: selection time (simulated seconds) vs number of participants "
              "(select P/2, scale=%.2f)\n\n", scale);

  const core::SelectionMethod methods[] = {core::SelectionMethod::kShapley,
                                           core::SelectionMethod::kVfMine,
                                           core::SelectionMethod::kVfpsSm};
  for (const std::string& dataset : {std::string("Phishing"), std::string("Web")}) {
    std::printf("== %s ==\n", dataset.c_str());
    std::vector<std::string> header = {"Method"};
    for (size_t p : parties) header.push_back("P=" + std::to_string(p));
    TablePrinter table(header);
    for (core::SelectionMethod method : methods) {
      std::vector<std::string> row = {core::SelectionMethodName(method)};
      for (size_t p : parties) {
        auto config = GridConfig(dataset, method, ml::ModelKind::kKnn, scale, seed);
        config.participants = p;
        config.select = p / 2;
        // Same query budget for every method (exact SHAPLEY at P=12 bounds it).
        config.knn.num_queries = 16;
        config.utility_queries = 16;
        config.shapley_exact_limit = 12;
        config.shapley_mc_permutations = 8;
        auto result = core::RunExperiment(config);
        RunOrDie(dataset.c_str(), result.status());
        row.push_back(FormatSimSeconds(result->selection_sim_seconds));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Paper shape: SHAPLEY ~exponential in P, VF-MINE mildly super-linear, "
              "VFPS-SM near-flat and lowest everywhere.\n");
  return 0;
}

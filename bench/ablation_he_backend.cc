// Ablation A1 (beyond the paper): HE backend choice. Runs the VFPS-SM
// selection protocol end to end with real CKKS, real Paillier, and the plain
// pass-through backend, reporting wall-clock of the actual cryptography and
// the (backend-independent) simulated deployment time.
//
// Usage: ablation_he_backend [--scale=0.25] [--queries=8] [--seed=42]

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 8));

  std::printf("Ablation: HE backend under VFPS-SM selection (Bank, P=4, "
              "|Q|=%zu, scale=%.2f)\n", queries, scale);
  std::printf("Paillier runs 512-bit keys here (1024 via the library API) with "
              "one ciphertext per value; CKKS packs 2048 values per ciphertext "
              "(n/2 slots at n=4096). The ckks-scalar row disables the packing "
              "(one slot used per ciphertext) — the layout every value paid "
              "before the batched HE API — so the ciphertext-op column "
              "isolates what slot batching saves.\n\n");

  struct Row {
    core::HeBackendKind kind;
    he::CkksPacking packing;
    const char* label;
  };
  const Row rows[] = {
      {core::HeBackendKind::kPlain, he::CkksPacking::kPacked, "plain"},
      {core::HeBackendKind::kCkks, he::CkksPacking::kPacked, "ckks"},
      {core::HeBackendKind::kCkks, he::CkksPacking::kScalar, "ckks-scalar"},
      {core::HeBackendKind::kPaillier, he::CkksPacking::kPacked, "paillier"},
  };
  TablePrinter table(
      {"Backend", "Wall(s)", "Sim selection(s)", "CT ops", "Picked"});
  for (const Row& row : rows) {
    auto config = GridConfig("Bank", core::SelectionMethod::kVfpsSm,
                             ml::ModelKind::kKnn, scale, seed);
    config.backend = row.kind;
    config.ckks_packing = row.packing;
    config.paillier_modulus_bits = 512;
    config.knn.num_queries = queries;
    Stopwatch wall;
    auto result = core::RunExperiment(config);
    RunOrDie(row.label, result.status());
    std::string picked;
    for (size_t p : result->selection.selected) {
      picked += (picked.empty() ? "" : ",") + std::to_string(p);
    }
    const he::HeOpStats& ops = result->selection.knn_stats.he_ops;
    table.AddRow({row.label, StrFormat("%.2f", wall.ElapsedSeconds()),
                  FormatSimSeconds(result->selection_sim_seconds),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        ops.encrypt_ops + ops.add_ops +
                                        ops.decrypt_ops)),
                  picked});
  }
  table.Print();
  std::printf("\nExpected: identical selections and identical simulated time "
              "across backends; wall-clock plain << ckks << paillier, and "
              "ckks-scalar pays orders of magnitude more ciphertext ops than "
              "packed ckks for the same slot-level work.\n");
  return 0;
}

// Ablation A1 (beyond the paper): HE backend choice. Runs the VFPS-SM
// selection protocol end to end with real CKKS, real Paillier, and the plain
// pass-through backend, reporting wall-clock of the actual cryptography and
// the (backend-independent) simulated deployment time.
//
// Usage: ablation_he_backend [--scale=0.25] [--queries=8] [--seed=42]

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 8));

  std::printf("Ablation: HE backend under VFPS-SM selection (Bank, P=4, "
              "|Q|=%zu, scale=%.2f)\n", queries, scale);
  std::printf("Paillier runs 512-bit keys here (1024 via the library API) with "
              "one ciphertext per value; CKKS packs 2048 values per ciphertext "
              "— the packing is the reason the paper's TenSEAL/CKKS choice is "
              "practical.\n\n");

  TablePrinter table({"Backend", "Wall(s)", "Sim selection(s)", "Picked"});
  const core::HeBackendKind backends[] = {core::HeBackendKind::kPlain,
                                          core::HeBackendKind::kCkks,
                                          core::HeBackendKind::kPaillier};
  for (core::HeBackendKind backend : backends) {
    auto config = GridConfig("Bank", core::SelectionMethod::kVfpsSm,
                             ml::ModelKind::kKnn, scale, seed);
    config.backend = backend;
    config.paillier_modulus_bits = 512;
    config.knn.num_queries = queries;
    Stopwatch wall;
    auto result = core::RunExperiment(config);
    RunOrDie(core::HeBackendKindName(backend), result.status());
    std::string picked;
    for (size_t p : result->selection.selected) {
      picked += (picked.empty() ? "" : ",") + std::to_string(p);
    }
    table.AddRow({core::HeBackendKindName(backend),
                  StrFormat("%.2f", wall.ElapsedSeconds()),
                  FormatSimSeconds(result->selection_sim_seconds), picked});
  }
  table.Print();
  std::printf("\nExpected: identical selections and identical simulated time; "
              "wall-clock plain << ckks << paillier.\n");
  return 0;
}

// Measures what the fault-injection machinery costs when it is NOT being
// used — the property the zero-fault bit-identity contract rests on.
//
// Three layers, each compared pristine vs. with a zero-probability FaultSpec
// attached (injector consulted on every send, nothing ever fires):
//   1. Raw SimNetwork Send+Recv.
//   2. ReliableChannel Send+Recv (pass-through vs. seq+CRC framed ARQ).
//   3. A Fig.7-style VFPS-SM selection end to end.
// With faults disabled entirely (the default) the extra work is a single
// null-pointer check and the zero_spec:0 rows measure the exact code path
// every pre-existing experiment takes — that is the "negligible zero-fault
// overhead" contract. Attaching a spec, even an all-zero one, is an opt-in:
// it turns on the seq+CRC framed ARQ path, whose per-message CRC32 pass is
// visible with the plain HE backend (the protocol is then memcpy-bound)
// and the zero_spec:1 rows quantify what that opt-in costs.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/vfps_sm.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "net/channel.h"
#include "net/fault.h"
#include "net/network.h"

namespace vfps {
namespace {

std::vector<uint8_t> MakePayload(size_t bytes) {
  std::vector<uint8_t> payload(bytes);
  for (size_t i = 0; i < bytes; ++i) payload[i] = static_cast<uint8_t>(i);
  return payload;
}

// arg0: payload bytes; arg1: 1 = attach a zero-probability fault plan.
void BM_RawSendRecv(benchmark::State& state) {
  net::SimNetwork net;
  SimClock clock;
  if (state.range(1) != 0) net.EnableFaults(net::FaultSpec{}, 7, &clock);
  const auto payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    (void)net.Send(0, 1, payload);
    auto got = net.Recv(0, 1);
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawSendRecv)
    ->ArgNames({"bytes", "zero_spec"})
    ->Args({64, 0})->Args({64, 1})
    ->Args({4096, 0})->Args({4096, 1});

// Same round trip through ReliableChannel: pass-through when faults are
// disabled, the full seq+CRC framed ARQ path when a zero spec is attached.
void BM_ChannelSendRecv(benchmark::State& state) {
  net::SimNetwork net;
  SimClock clock;
  if (state.range(1) != 0) net.EnableFaults(net::FaultSpec{}, 7, &clock);
  net::ReliableChannel chan(&net, &clock);
  const auto payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    (void)chan.Send(0, 1, payload);
    auto got = chan.Recv(0, 1);
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelSendRecv)
    ->ArgNames({"bytes", "zero_spec"})
    ->Args({64, 0})->Args({64, 1})
    ->Args({4096, 0})->Args({4096, 1});

// arg0: 1 = attach a zero-probability fault plan. Mirrors the Fig. 7 cell
// shape (4 participants, select 2, FAGIN oracle) at chaos-suite scale.
void BM_VfpsSmSelection(benchmark::State& state) {
  data::SyntheticConfig config;
  config.num_samples = 400;
  config.num_features = 12;
  config.num_informative = 6;
  config.num_redundant = 3;
  config.seed = 31;
  auto generated = data::GenerateClassification(config);
  auto split = data::SplitDataset(generated->data, 0.8, 0.1, 5).MoveValueUnsafe();
  data::StandardizeSplit(&split).Abort("standardize");
  auto partition =
      data::RandomVerticalPartition(config.num_features, 4, 9).MoveValueUnsafe();
  auto backend = he::CreatePlainBackend();
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;
  if (state.range(0) != 0) network.EnableFaults(net::FaultSpec{}, 7, &clock);

  core::SelectionContext ctx;
  ctx.split = &split;
  ctx.partition = &partition;
  ctx.backend = backend.get();
  ctx.network = &network;
  ctx.cost = &cost;
  ctx.clock = &clock;
  ctx.knn.k = 6;
  ctx.knn.num_queries = 16;
  ctx.seed = 11;
  core::VfpsSmSelector selector(vfl::KnnOracleMode::kFagin);
  for (auto _ : state) {
    auto outcome = selector.Select(ctx, 2);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_VfpsSmSelection)
    ->ArgNames({"zero_spec"})
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Incremental repair vs. clean-slate rerun after a single departure.
//
// arg0: 1 = repair (a warmed SelectionCache serves the three survivors'
// score vectors and sub-rankings, so only the Fagin merge over the new
// membership is redone); 0 = clean-slate (no cache: every survivor
// recomputes distances, re-sorts, and re-streams). The PR-7 acceptance gate
// is repair < 30% of clean-slate on this shape (FAGIN oracle, n = 2000
// rows, 4 participants, |Q| = 16).
void BM_SelectRepair(benchmark::State& state) {
  data::SyntheticConfig config;
  config.num_samples = 2000;
  config.num_features = 12;
  config.num_informative = 6;
  config.num_redundant = 3;
  config.seed = 31;
  auto generated = data::GenerateClassification(config);
  auto split = data::SplitDataset(generated->data, 0.8, 0.1, 5).MoveValueUnsafe();
  data::StandardizeSplit(&split).Abort("standardize");
  auto partition =
      data::RandomVerticalPartition(config.num_features, 4, 9).MoveValueUnsafe();
  auto backend = he::CreatePlainBackend();
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;

  vfl::FederatedKnnOracle oracle(&split.train, &partition, backend.get(),
                                 &network, &cost, &clock);
  vfl::FedKnnConfig knn;
  knn.mode = vfl::KnnOracleMode::kFagin;
  knn.k = 6;
  knn.num_queries = 16;
  knn.seed = 11;

  vfl::SelectionCache cache;
  const bool repair = state.range(0) != 0;
  if (repair) {
    // Warm the cache with the pre-departure run, as the selector would have
    // before the leave was detected.
    oracle.set_cache(&cache);
    auto warm = oracle.Run(knn, nullptr);
    if (!warm.ok()) {
      state.SkipWithError(warm.status().ToString().c_str());
      return;
    }
  }

  knn.quarantined = {3};  // participant 3 departed; 3 survivors remain
  for (auto _ : state) {
    auto rerun = oracle.Run(knn, nullptr);
    if (!rerun.ok()) state.SkipWithError(rerun.status().ToString().c_str());
    benchmark::DoNotOptimize(rerun);
  }
}
BENCHMARK(BM_SelectRepair)
    ->ArgNames({"repair"})
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vfps

BENCHMARK_MAIN();

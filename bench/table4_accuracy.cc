// Reproduces Table IV: test accuracy for KNN / LR / MLP downstream tasks on
// all ten datasets under each selection method (select 2 of 4 participants).
//
// Results are averaged over --runs independent draws (dataset, partition,
// and query seeds all change per run), matching the paper's "averaged over
// five runs for robustness".
//
// Usage: table4_accuracy [--scale=0.5] [--seed=42] [--runs=5]
//        [--datasets=Bank,Web,...] [--models=knn,lr,mlp]

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

namespace {

std::vector<std::string> DatasetArg(const Flags& flags) {
  const std::string arg = flags.GetString("datasets", "");
  if (arg.empty()) return AllDatasets();
  return SplitString(arg, ',');
}

std::vector<ml::ModelKind> ModelArg(const Flags& flags) {
  const std::string arg = flags.GetString("models", "knn,lr,mlp");
  std::vector<ml::ModelKind> models;
  for (const auto& name : SplitString(arg, ',')) {
    models.push_back(ml::ParseModelKind(name).ValueOrDie());
  }
  return models;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 5));
  const auto datasets = DatasetArg(flags);
  const auto models = ModelArg(flags);

  std::printf("Table IV: test accuracy, select 2 of 4 (scale=%.2f, mean of %zu runs)\n\n",
              scale, runs);

  const core::SelectionMethod methods[] = {
      core::SelectionMethod::kAll, core::SelectionMethod::kRandom,
      core::SelectionMethod::kShapley, core::SelectionMethod::kVfMine,
      core::SelectionMethod::kVfpsSm};

  Stopwatch wall;
  for (ml::ModelKind model : models) {
    std::printf("== downstream task: %s ==\n", ml::ModelKindName(model));
    std::vector<std::string> header = {"Method"};
    header.insert(header.end(), datasets.begin(), datasets.end());
    TablePrinter table(header);
    // accuracy[method][dataset]
    std::vector<std::vector<double>> acc(std::size(methods),
                                         std::vector<double>(datasets.size()));
    for (size_t d = 0; d < datasets.size(); ++d) {
      for (size_t m = 0; m < std::size(methods); ++m) {
        double total = 0.0;
        for (size_t run = 0; run < runs; ++run) {
          auto config = GridConfig(datasets[d], methods[m], model, scale,
                                   seed + 1000 * run);
          auto result = core::RunExperiment(config);
          RunOrDie(datasets[d].c_str(), result.status());
          total += result->training.test_accuracy;
        }
        acc[m][d] = total / static_cast<double>(runs);
      }
    }
    for (size_t m = 0; m < std::size(methods); ++m) {
      std::vector<std::string> row = {core::SelectionMethodName(methods[m])};
      for (size_t d = 0; d < datasets.size(); ++d) {
        row.push_back(FormatAccuracy(acc[m][d]));
      }
      table.AddRow(std::move(row));
    }
    table.Print();

    // Shape checks mirrored from the paper: VFPS-SM should sit at or near
    // the top of the selectors (the paper bolds/underlines it on most
    // datasets) and clearly above RANDOM.
    size_t vfps_near_best = 0, vfps_above_random = 0;
    for (size_t d = 0; d < datasets.size(); ++d) {
      double best = 0.0;
      for (size_t m = 1; m < std::size(methods); ++m) best = std::max(best, acc[m][d]);
      vfps_near_best += (acc[4][d] >= best - 0.005);
      vfps_above_random += (acc[4][d] >= acc[1][d] - 1e-9);
    }
    std::printf("VFPS-SM within 0.5%% of the best selector on %zu/%zu datasets, "
                ">= RANDOM on %zu/%zu\n\n",
                vfps_near_best, datasets.size(), vfps_above_random,
                datasets.size());
  }
  std::printf("(grid wall time: %.1fs)\n", wall.ElapsedSeconds());
  return 0;
}

// Microbenchmarks for the KNN paths: centralized prediction, the federated
// oracle in BASE and FAGIN modes, and similarity-matrix construction.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include "core/similarity.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "ml/knn.h"
#include "vfl/fed_knn.h"
#include "vfl/sharded_knn.h"

namespace vfps {
namespace {

struct KnnFixture {
  data::Dataset train;
  data::Dataset test;
  data::VerticalPartition partition;
  std::unique_ptr<he::HeBackend> backend = he::CreatePlainBackend();
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;

  explicit KnnFixture(size_t rows, size_t features = 16, size_t parties = 4) {
    data::SyntheticConfig config;
    config.num_samples = rows;
    config.num_features = features;
    config.num_informative = features / 2;
    config.num_redundant = features / 4;
    config.seed = 9;
    auto generated = data::GenerateClassification(config).ValueOrDie();
    auto split = data::SplitDataset(generated.data, 0.9, 0.0, 2).ValueOrDie();
    train = std::move(split.train);
    test = std::move(split.test);
    partition = data::RandomVerticalPartition(features, parties, 3).ValueOrDie();
  }
};

void BM_CentralKnnPredict(benchmark::State& state) {
  KnnFixture f(static_cast<size_t>(state.range(0)));
  ml::KnnClassifier knn(10);
  (void)knn.Fit(f.train, {});
  for (auto _ : state) {
    auto preds = knn.Predict(f.test);
    benchmark::DoNotOptimize(preds);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.test.num_samples()));
}
BENCHMARK(BM_CentralKnnPredict)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

void RunOracle(benchmark::State& state, vfl::KnnOracleMode mode) {
  KnnFixture f(static_cast<size_t>(state.range(0)));
  vfl::FederatedKnnOracle oracle(&f.train, &f.partition, f.backend.get(),
                                 &f.network, &f.cost, &f.clock);
  vfl::FedKnnConfig config;
  config.mode = mode;
  config.k = 10;
  config.num_queries = 8;
  for (auto _ : state) {
    auto result = oracle.Run(config, nullptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}

void BM_FedKnnBase(benchmark::State& state) {
  RunOracle(state, vfl::KnnOracleMode::kBase);
}
BENCHMARK(BM_FedKnnBase)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_FedKnnFagin(benchmark::State& state) {
  RunOracle(state, vfl::KnnOracleMode::kFagin);
}
BENCHMARK(BM_FedKnnFagin)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Encrypted-oracle query throughput under row sharding. shards=1 is the
// pristine single-heap path; higher counts pay the per-shard rounds plus the
// hierarchical merge.
void BM_ShardedFedKnnQuery(benchmark::State& state) {
  KnnFixture f(10000);
  vfl::FederatedKnnOracle oracle(&f.train, &f.partition, f.backend.get(),
                                 &f.network, &f.cost, &f.clock);
  vfl::FedKnnConfig config;
  config.mode = vfl::KnnOracleMode::kBase;
  config.k = 10;
  config.num_queries = 8;
  config.shards = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = oracle.Run(config, nullptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ShardedFedKnnQuery)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// Out-of-core engine: rows stream through shard-sized blocks, so resident
// feature memory is O(shard), not O(N). mem_bytes reports the process peak
// RSS after the run — a high-water mark, comparable only within one process.
void BM_ShardedKnnQuery(benchmark::State& state) {
  data::SyntheticConfig data_config;
  data_config.num_samples = static_cast<size_t>(state.range(0));
  data_config.num_features = 16;
  data_config.num_informative = 8;
  data_config.num_redundant = 4;
  data_config.seed = 9;
  auto partition = data::RandomVerticalPartition(16, 4, 3).ValueOrDie();
  vfl::ShardedKnnConfig config;
  config.shards = static_cast<size_t>(state.range(1));
  config.k = 10;
  config.num_queries = 8;
  for (auto _ : state) {
    auto result = vfl::RunShardedKnn(data_config, partition, config);
    benchmark::DoNotOptimize(result);
  }
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    state.counters["mem_bytes"] = benchmark::Counter(
        static_cast<double>(ru.ru_maxrss) * 1024.0);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ShardedKnnQuery)
    ->Args({100000, 1})
    ->Args({100000, 8})
    ->Args({1000000, 64})
    ->Unit(benchmark::kMillisecond);

void BM_BuildSimilarity(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  std::vector<vfl::QueryNeighborhood> hoods(64);
  Rng rng(4);
  for (auto& hood : hoods) {
    hood.per_party_dt.resize(parties);
    for (double& v : hood.per_party_dt) v = rng.Uniform(0.0, 10.0);
  }
  for (auto _ : state) {
    auto w = core::BuildSimilarity(hoods, parties);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_BuildSimilarity)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace vfps

BENCHMARK_MAIN();

// Reproduces Fig. 4: participant selection time per method on every dataset,
// including the VFPS-SM-BASE ablation. No downstream training — this figure
// isolates the selection phase.
//
// Usage: fig4_selection_time [--scale=0.5] [--seed=42]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("Fig. 4: selection time in simulated seconds (P=4, select 2, scale=%.2f)\n",
              scale);
  std::printf("RANDOM and ALL are omitted (selection time 0 by definition).\n\n");

  const core::SelectionMethod methods[] = {
      core::SelectionMethod::kShapley, core::SelectionMethod::kVfMine,
      core::SelectionMethod::kVfpsSmBase, core::SelectionMethod::kVfpsSm};

  std::vector<std::string> header = {"Method"};
  const auto& datasets = AllDatasets();
  header.insert(header.end(), datasets.begin(), datasets.end());
  TablePrinter table(header);
  std::vector<std::vector<double>> sel(std::size(methods),
                                       std::vector<double>(datasets.size()));
  for (size_t d = 0; d < datasets.size(); ++d) {
    for (size_t m = 0; m < std::size(methods); ++m) {
      // Downstream model choice does not matter: use the cheap KNN task but
      // only report the selection phase.
      auto config = GridConfig(datasets[d], methods[m], ml::ModelKind::kKnn,
                               scale, seed);
      auto result = core::RunExperiment(config);
      RunOrDie(datasets[d].c_str(), result.status());
      sel[m][d] = result->selection_sim_seconds;
    }
  }
  for (size_t m = 0; m < std::size(methods); ++m) {
    std::vector<std::string> row = {core::SelectionMethodName(methods[m])};
    for (size_t d = 0; d < datasets.size(); ++d) {
      row.push_back(FormatSimSeconds(sel[m][d]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nSpeedups of VFPS-SM (paper: up to 365x vs SHAPLEY, 25x vs BASE on SUSY):\n");
  for (size_t d = 0; d < datasets.size(); ++d) {
    std::printf("  %-9s vs SHAPLEY %7.1fx   vs VF-MINE %6.1fx   vs BASE %6.1fx\n",
                datasets[d].c_str(), sel[0][d] / sel[3][d], sel[1][d] / sel[3][d],
                sel[2][d] / sel[3][d]);
  }
  return 0;
}

// Measures what the observability layer costs when it is NOT being used —
// the property the "disabled registry = one null-pointer branch per site"
// contract rests on (the companion of bench_fault_overhead).
//
// Three layers, each compared with no registry (the default every
// pre-existing experiment takes) vs. with a MetricsRegistry attached:
//   1. Raw Counter::Add on a hot loop (the primitive's ceiling).
//   2. SimNetwork Send+Recv (one metered site per message).
//   3. A Fig.7-style VFPS-SM selection end to end — the acceptance bar is
//      that the obs:0 row is within noise (<= ~1%) of the pre-obs baseline,
//      and the obs:1 row shows the (small) cost of full instrumentation.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/vfps_sm.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vfl/fed_knn.h"

namespace vfps {
namespace {

// The primitive itself: a striped relaxed add (attached) vs. the branch the
// instrumentation sites take when no registry is present (null check only).
void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter =
      state.range(0) != 0 ? registry.GetCounter("bench.counter") : nullptr;
  uint64_t i = 0;
  for (auto _ : state) {
    if (counter != nullptr) counter->Add(i & 7);
    benchmark::DoNotOptimize(counter);
    ++i;
  }
}
BENCHMARK(BM_CounterAdd)->ArgNames({"obs"})->Arg(0)->Arg(1);

std::vector<uint8_t> MakePayload(size_t bytes) {
  std::vector<uint8_t> payload(bytes);
  for (size_t i = 0; i < bytes; ++i) payload[i] = static_cast<uint8_t>(i);
  return payload;
}

// arg0: payload bytes; arg1: 1 = attach a metrics registry.
void BM_RawSendRecv(benchmark::State& state) {
  net::SimNetwork net;
  obs::MetricsRegistry registry;
  if (state.range(1) != 0) net.set_metrics(&registry);
  const auto payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    (void)net.Send(0, 1, payload);
    auto got = net.Recv(0, 1);
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawSendRecv)
    ->ArgNames({"bytes", "obs"})
    ->Args({64, 0})->Args({64, 1})
    ->Args({4096, 0})->Args({4096, 1});

// arg0: 0 = no registry (the pre-obs code path), 1 = registry attached,
// 2 = registry + tracing. Workload mirrors BM_VfpsSmSelection in
// bench_fault_overhead exactly, so the two benches are cross-comparable.
void BM_VfpsSmSelection(benchmark::State& state) {
  data::SyntheticConfig config;
  config.num_samples = 400;
  config.num_features = 12;
  config.num_informative = 6;
  config.num_redundant = 3;
  config.seed = 31;
  auto generated = data::GenerateClassification(config);
  auto split = data::SplitDataset(generated->data, 0.8, 0.1, 5).MoveValueUnsafe();
  data::StandardizeSplit(&split).Abort("standardize");
  auto partition =
      data::RandomVerticalPartition(config.num_features, 4, 9).MoveValueUnsafe();
  auto backend = he::CreatePlainBackend();
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;
  obs::MetricsRegistry registry;
  if (state.range(0) >= 2) registry.EnableTracing();

  core::SelectionContext ctx;
  ctx.split = &split;
  ctx.partition = &partition;
  ctx.backend = backend.get();
  ctx.network = &network;
  ctx.cost = &cost;
  ctx.clock = &clock;
  ctx.knn.k = 6;
  ctx.knn.num_queries = 16;
  ctx.seed = 11;
  if (state.range(0) != 0) {
    ctx.obs = &registry;
    backend->set_metrics(&registry);
    network.set_metrics(&registry);
  }
  core::VfpsSmSelector selector(vfl::KnnOracleMode::kFagin);
  for (auto _ : state) {
    auto outcome = selector.Select(ctx, 2);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_VfpsSmSelection)
    ->ArgNames({"obs"})
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// The CI overhead gate's workload: the encrypted-KNN query from
// bench_kernels' BM_EncKnnQuery (CKKS packed, 512 rows, 4 queries), with the
// full labeled-metrics + trace-propagation instrumentation toggled by arg0
// (0 = none, 1 = labeled metrics, 2 = metrics + tracing). The acceptance
// bar: obs:0 within noise of the pre-obs baseline, obs:1 < 5% over obs:0.
// Unlike the plain-backend selection above, real ciphertext work dominates
// here, so this measures the instrumentation against the paper's actual
// cost profile rather than against a metering-bound toy.
void BM_EncKnnQueryObs(benchmark::State& state) {
  data::SyntheticConfig config;
  config.num_samples = 512 + 64;
  config.num_features = 16;
  config.num_informative = 8;
  config.num_redundant = 4;
  config.seed = 9;
  auto generated = data::GenerateClassification(config).ValueOrDie();
  auto split = data::SplitDataset(generated.data, 512.0 / 576.0, 0.0, 2)
                   .MoveValueUnsafe();
  auto partition = data::RandomVerticalPartition(16, 4, 3).MoveValueUnsafe();
  he::CkksParams params;
  params.poly_degree = 1024;
  auto backend =
      he::CreateCkksBackend(params, 5, he::CkksPacking::kPacked)
          .MoveValueUnsafe();
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;
  obs::MetricsRegistry registry;
  if (state.range(0) >= 2) registry.EnableTracing();
  obs::MetricsRegistry* obs = state.range(0) != 0 ? &registry : nullptr;
  if (obs != nullptr) {
    backend->set_metrics(obs);
    network.set_metrics(obs);
  }
  vfl::FederatedKnnOracle oracle(&split.train, &partition, backend.get(),
                                 &network, &cost, &clock, /*pool=*/nullptr,
                                 obs);
  vfl::FedKnnConfig knn;
  knn.mode = vfl::KnnOracleMode::kBase;
  knn.k = 10;
  knn.num_queries = 4;
  knn.query_group = 1;
  for (auto _ : state) {
    auto result = oracle.Run(knn, nullptr);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_EncKnnQueryObs)
    ->ArgNames({"obs"})
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vfps

BENCHMARK_MAIN();

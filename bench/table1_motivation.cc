// Reproduces Table I: training time and model accuracy for LR on SUSY, four
// participants, selecting two. The headline motivation numbers — SHAPLEY's
// selection cost dwarfs everything, VFPS-SM is near-RANDOM speed at
// near-SHAPLEY-or-better accuracy.
//
// Usage: table1_motivation [--scale=1.0] [--queries=32] [--seed=42]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 32));

  std::printf("Table I: LR on SUSY, P=4, select 2 (scale=%.2f)\n", scale);
  std::printf("Times are simulated cluster seconds (see DESIGN.md).\n\n");

  TablePrinter table({"Method", "Parties", "Selection(s)", "Training(s)",
                      "Total(s)", "TestAcc"});
  const core::SelectionMethod methods[] = {
      core::SelectionMethod::kAll, core::SelectionMethod::kShapley,
      core::SelectionMethod::kVfMine, core::SelectionMethod::kVfpsSm};
  for (core::SelectionMethod method : methods) {
    auto config = GridConfig("SUSY", method, ml::ModelKind::kLogReg, scale, seed);
    config.knn.num_queries = queries;
    auto result = core::RunExperiment(config);
    RunOrDie(core::SelectionMethodName(method), result.status());
    table.AddRow({core::SelectionMethodName(method),
                  std::to_string(result->selection.selected.size()),
                  FormatSimSeconds(result->selection_sim_seconds),
                  FormatSimSeconds(result->training_sim_seconds),
                  FormatSimSeconds(result->total_sim_seconds),
                  FormatAccuracy(result->training.test_accuracy)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: SHAPLEY total >> ALL > VF-MINE > VFPS-SM;"
      " accuracy(VFPS-SM) within ~0.6%% of ALL and above VF-MINE.\n");
  return 0;
}

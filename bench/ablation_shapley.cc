// Ablation A5 (beyond the paper): exact vs Monte-Carlo SHAPLEY. Quantifies
// what the MC estimator (used above ctx.shapley_exact_limit participants)
// gives up: value error and selection agreement vs the exact 2^P - 1
// enumeration, against the number of sampled permutations.
//
// Usage: ablation_shapley [--scale=0.35] [--participants=8] [--seed=42]

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/shapley.h"
#include "data/presets.h"
#include "data/scaler.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.35);
  const size_t parties = static_cast<size_t>(flags.GetInt("participants", 8));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("Ablation: exact vs Monte-Carlo SHAPLEY (Phishing, P=%zu, "
              "select %zu, scale=%.2f)\n\n", parties, parties / 2, scale);

  auto generated = data::LoadPreset("Phishing", scale, seed);
  RunOrDie("preset", generated.status());
  auto split = data::SplitDataset(generated->data, 0.8, 0.1, seed);
  RunOrDie("split", split.status());
  RunOrDie("standardize", data::StandardizeSplit(&*split));
  auto partition = data::RandomVerticalPartition(generated->data.num_features(),
                                                 parties, seed);
  RunOrDie("partition", partition.status());

  auto backend = he::CreatePlainBackend();
  net::SimNetwork network;
  net::CostModel cost;

  auto run = [&](size_t exact_limit, size_t permutations, SimClock* clock,
                 std::vector<double>* values) -> std::vector<size_t> {
    core::SelectionContext ctx;
    ctx.split = &*split;
    ctx.partition = &*partition;
    ctx.backend = backend.get();
    ctx.network = &network;
    ctx.cost = &cost;
    ctx.clock = clock;
    ctx.knn.k = 10;
    ctx.utility_queries = 16;
    ctx.seed = seed;
    ctx.shapley_exact_limit = exact_limit;
    ctx.shapley_mc_permutations = permutations;
    core::ShapleySelector selector;
    auto outcome = selector.Select(ctx, parties / 2);
    RunOrDie("shapley", outcome.status());
    *values = selector.last_values();
    return outcome->selected;
  };

  SimClock exact_clock;
  std::vector<double> exact_values;
  const auto exact_pick = run(/*exact_limit=*/20, 0, &exact_clock, &exact_values);

  TablePrinter table({"Estimator", "Permutations", "MaxAbsErr", "PickOverlap",
                      "SimSeconds"});
  table.AddRow({"exact", "-", "0.0000",
                std::to_string(exact_pick.size()) + "/" +
                    std::to_string(exact_pick.size()),
                FormatSimSeconds(exact_clock.Total())});
  for (size_t permutations : {2u, 8u, 32u, 128u}) {
    SimClock clock;
    std::vector<double> values;
    const auto pick = run(/*exact_limit=*/2, permutations, &clock, &values);
    double max_err = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
      max_err = std::max(max_err, std::abs(values[i] - exact_values[i]));
    }
    size_t overlap = 0;
    for (size_t p : pick) {
      for (size_t q : exact_pick) overlap += (p == q);
    }
    table.AddRow({"monte-carlo", std::to_string(permutations),
                  StrFormat("%.4f", max_err),
                  std::to_string(overlap) + "/" + std::to_string(exact_pick.size()),
                  FormatSimSeconds(clock.Total())});
  }
  table.Print();
  std::printf(
      "\nExpected: value error shrinks ~1/sqrt(permutations). Pick overlap is\n"
      "noisier (mid-ranked participants have near-tied Shapley values, so\n"
      "tiny estimation error flips them). The MC clock includes the\n"
      "documented exact-cost extrapolation, so simulated seconds stay\n"
      "comparable by design.\n");
  return 0;
}

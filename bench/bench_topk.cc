// Microbenchmarks for the top-k query algorithms over ranked lists of
// varying size, party count, and cross-party correlation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <utility>

#include "common/random.h"
#include "topk/fagin.h"
#include "topk/naive.h"
#include "topk/shard_merge.h"
#include "topk/threshold.h"

namespace vfps::topk {
namespace {

std::vector<std::vector<double>> MakeScores(size_t parties, size_t items,
                                            double rho, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> shared(items);
  for (double& v : shared) v = rng.NextDouble();
  std::vector<std::vector<double>> scores(parties, std::vector<double>(items));
  for (auto& list : scores) {
    for (size_t i = 0; i < items; ++i) {
      list[i] = rho * shared[i] + (1.0 - rho) * rng.NextDouble();
    }
  }
  return scores;
}

void BM_RankedListBuild(benchmark::State& state) {
  auto scores = MakeScores(4, static_cast<size_t>(state.range(0)), 0.7, 1);
  for (auto _ : state) {
    auto lists = RankedListSet::Build(scores);
    benchmark::DoNotOptimize(lists);
  }
}
BENCHMARK(BM_RankedListBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Fagin(benchmark::State& state) {
  auto lists = RankedListSet::Build(
                   MakeScores(4, static_cast<size_t>(state.range(0)), 0.7, 2))
                   .ValueOrDie();
  for (auto _ : state) {
    auto result = FaginTopk(lists, 10, 64);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Fagin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Threshold(benchmark::State& state) {
  auto lists = RankedListSet::Build(
                   MakeScores(4, static_cast<size_t>(state.range(0)), 0.7, 3))
                   .ValueOrDie();
  for (auto _ : state) {
    auto result = ThresholdTopk(lists, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Threshold)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Naive(benchmark::State& state) {
  auto lists = RankedListSet::Build(
                   MakeScores(4, static_cast<size_t>(state.range(0)), 0.7, 4))
                   .ValueOrDie();
  for (auto _ : state) {
    auto result = NaiveTopk(lists, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Naive)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ShardMerge(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t k = 10;
  Rng rng(7);
  std::vector<ShardTopk> inputs(shards);
  for (size_t s = 0; s < shards; ++s) {
    std::vector<std::pair<double, uint64_t>> entries(k);
    for (size_t i = 0; i < k; ++i) {
      entries[i] = {rng.NextDouble(), s * k + i};
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [v, id] : entries) {
      inputs[s].values.push_back(v);
      inputs[s].ids.push_back(id);
    }
  }
  for (auto _ : state) {
    auto copy = inputs;
    auto merged = HierarchicalTopkMerge(std::move(copy), k);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(shards * k));
}
BENCHMARK(BM_ShardMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FaginVaryingParties(benchmark::State& state) {
  auto lists = RankedListSet::Build(
                   MakeScores(static_cast<size_t>(state.range(0)), 20000, 0.7, 5))
                   .ValueOrDie();
  for (auto _ : state) {
    auto result = FaginTopk(lists, 10, 64);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FaginVaryingParties)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_FaginVaryingCorrelation(benchmark::State& state) {
  const double rho = static_cast<double>(state.range(0)) / 10.0;
  auto lists = RankedListSet::Build(MakeScores(4, 20000, rho, 6)).ValueOrDie();
  for (auto _ : state) {
    auto result = FaginTopk(lists, 10, 64);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FaginVaryingCorrelation)->Arg(1)->Arg(5)->Arg(9);

}  // namespace
}  // namespace vfps::topk

BENCHMARK_MAIN();

// Reproduces Fig. 9: the average number of instances encrypted and
// communicated per query — the ablation that explains the VFPS-SM speedup.
// VFPS-SM-BASE encrypts every training instance per query; VFPS-SM only
// encrypts Fagin's candidate set.
//
// Usage: fig9_candidates [--scale=0.5] [--seed=42] [--queries=16]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 16));

  std::printf("Fig. 9: average encrypted instances per query, BASE vs FAGIN "
              "(P=4, scale=%.2f)\n\n", scale);

  TablePrinter table({"Dataset", "TrainRows", "BASE/query", "VFPS-SM/query",
                      "Reduction"});
  for (const std::string& dataset : AllDatasets()) {
    double per_query[2] = {0.0, 0.0};
    size_t rows = 0;
    const core::SelectionMethod modes[] = {core::SelectionMethod::kVfpsSmBase,
                                           core::SelectionMethod::kVfpsSm};
    for (int i = 0; i < 2; ++i) {
      auto config = GridConfig(dataset, modes[i], ml::ModelKind::kKnn, scale, seed);
      config.knn.num_queries = queries;
      auto result = core::RunExperiment(config);
      RunOrDie(dataset.c_str(), result.status());
      per_query[i] = result->selection.knn_stats.AvgCandidatesPerQuery();
      rows = result->rows;
    }
    table.AddRow({dataset, std::to_string(rows),
                  StrFormat("%.0f", per_query[0]),
                  StrFormat("%.0f", per_query[1]),
                  StrFormat("%.1fx", per_query[0] / per_query[1])});
  }
  table.Print();
  std::printf("\nPaper shape: reductions grow with dataset size "
              "(paper: 24.5x on Rice, 46.0x on SUSY at full 5M rows).\n");
  return 0;
}

// Reproduces Fig. 8: the impact of the KNN oracle's k on VFPS-SM's
// downstream accuracy. The likelihood estimate stabilizes once enough
// neighbors are aggregated (paper: k >= 10 changes little).
//
// Usage: fig8_impact_k [--scale=0.5] [--seed=42]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t ks[] = {1, 5, 10, 20, 50};

  std::printf("Fig. 8: VFPS-SM downstream KNN accuracy vs oracle k "
              "(P=4, select 2, scale=%.2f)\n\n", scale);

  std::vector<std::string> header = {"Dataset"};
  for (size_t k : ks) header.push_back("k=" + std::to_string(k));
  TablePrinter table(header);
  for (const std::string& dataset : {std::string("Phishing"), std::string("Web")}) {
    std::vector<std::string> row = {dataset};
    for (size_t k : ks) {
      auto config = GridConfig(dataset, core::SelectionMethod::kVfpsSm,
                               ml::ModelKind::kKnn, scale, seed);
      config.knn.k = k;
      auto result = core::RunExperiment(config);
      RunOrDie(dataset.c_str(), result.status());
      row.push_back(FormatAccuracy(result->training.test_accuracy));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nPaper shape: accuracy is stable for k >= 10.\n");
  return 0;
}

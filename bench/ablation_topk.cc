// Ablation A2 (beyond the paper): choice of top-k query algorithm inside the
// KNN oracle. Compares Fagin (FA), the Threshold algorithm (TA), and the
// exhaustive scan on identical ranked lists: candidate counts, scan depth,
// and access totals. The paper uses FA and notes other algorithms plug in.
//
// Usage: ablation_topk [--items=4000] [--parties=4] [--k=10] [--seed=42]

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "data/presets.h"
#include "topk/fagin.h"
#include "topk/naive.h"
#include "topk/threshold.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

namespace {

// Ranked lists with controlled cross-party correlation rho: party scores are
// rho * shared + (1 - rho) * private noise. High correlation = the regime
// vertical KNN lives in (parties score the same underlying neighbors).
std::vector<std::vector<double>> CorrelatedScores(size_t parties, size_t items,
                                                  double rho, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> shared(items);
  for (double& v : shared) v = rng.NextDouble();
  std::vector<std::vector<double>> scores(parties, std::vector<double>(items));
  for (auto& list : scores) {
    for (size_t i = 0; i < items; ++i) {
      list[i] = rho * shared[i] + (1.0 - rho) * rng.NextDouble();
    }
  }
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t items = static_cast<size_t>(flags.GetInt("items", 4000));
  const size_t parties = static_cast<size_t>(flags.GetInt("parties", 4));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("Ablation: top-k algorithm (N=%zu, P=%zu, k=%zu)\n\n", items,
              parties, k);

  for (double rho : {0.9, 0.5, 0.1}) {
    std::printf("== cross-party score correlation rho=%.1f ==\n", rho);
    auto lists =
        topk::RankedListSet::Build(CorrelatedScores(parties, items, rho, seed));
    RunOrDie("build lists", lists.status());
    TablePrinter table({"Algorithm", "Depth", "SortedAcc", "RandomAcc",
                        "Candidates", "CandidateFrac"});
    struct Row {
      const char* name;
      Result<topk::TopkResult> run;
    };
    Row rows[] = {
        {"Fagin (FA)", topk::FaginTopk(*lists, k, 64)},
        {"Threshold (TA)", topk::ThresholdTopk(*lists, k)},
        {"Exhaustive", topk::NaiveTopk(*lists, k)},
    };
    for (auto& row : rows) {
      RunOrDie(row.name, row.run.status());
      const auto& r = *row.run;
      table.AddRow({row.name, std::to_string(r.depth),
                    std::to_string(r.sorted_accesses),
                    std::to_string(r.random_accesses),
                    std::to_string(r.candidates),
                    StrFormat("%.3f", static_cast<double>(r.candidates) /
                                          static_cast<double>(items))});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected: at high correlation both FA and TA touch a tiny "
              "fraction of the items; as correlation falls, FA's candidate "
              "set grows toward the exhaustive scan while TA trades depth "
              "for random accesses.\n");
  return 0;
}

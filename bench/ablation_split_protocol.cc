// Ablation A4 (beyond the paper): cross-validation of the cost model. The
// table benches account downstream training analytically
// (vfl::SplitEpochSimSeconds); vfl::SplitLrProtocol executes the federated
// message flow for real (per-batch encryption, homomorphic aggregation,
// residual return) and charges the clock from the *measured* traffic and HE
// op counts. The two estimates should agree on per-epoch cost to within a
// small factor — this bench prints both side by side.
//
// Usage: ablation_split_protocol [--scale=0.25] [--seed=42]

#include <cstdio>

#include "bench_util.h"
#include "data/presets.h"
#include "data/scaler.h"
#include "vfl/split_lr.h"
#include "vfl/split_train.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.25);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("Ablation: analytic vs executed split-LR training cost "
              "(scale=%.2f)\n\n", scale);

  TablePrinter table({"Dataset", "Parties", "Epochs", "Analytic s/epoch",
                      "Measured s/epoch", "Ratio", "Accuracy"});
  for (const std::string& dataset :
       {std::string("Bank"), std::string("Credit"), std::string("IJCNN")}) {
    for (size_t parties : {2u, 4u}) {
      auto generated = data::LoadPreset(dataset, scale, seed);
      RunOrDie("preset", generated.status());
      auto split = data::SplitDataset(generated->data, 0.8, 0.1, seed);
      RunOrDie("split", split.status());
      RunOrDie("standardize", data::StandardizeSplit(&*split));
      auto partition = data::RandomVerticalPartition(
          generated->data.num_features(), parties, seed);
      RunOrDie("partition", partition.status());

      auto backend = he::CreatePlainBackend();
      net::SimNetwork network;
      net::CostModel cost;
      SimClock clock;
      std::vector<size_t> selected(parties);
      for (size_t i = 0; i < parties; ++i) selected[i] = i;

      ml::TrainConfig config;
      config.max_epochs = 8;
      config.patience = 8;  // fixed-epoch run for a clean per-epoch figure
      vfl::SplitLrProtocol protocol(&*split, &*partition, selected,
                                    backend.get(), &network, &cost, &clock);
      auto outcome = protocol.Train(config);
      RunOrDie("train", outcome.status());

      const double analytic = vfl::SplitEpochSimSeconds(
          *partition, selected, ml::ModelKind::kLogReg,
          split->train.num_samples(), config.batch_size,
          split->train.num_classes(), cost);
      const double measured =
          outcome->sim_seconds / static_cast<double>(outcome->epochs);
      table.AddRow({dataset, std::to_string(parties),
                    std::to_string(outcome->epochs),
                    StrFormat("%.3f", analytic), StrFormat("%.3f", measured),
                    StrFormat("%.2f", measured / analytic),
                    FormatAccuracy(outcome->test_accuracy)});
    }
  }
  table.Print();
  std::printf("\nExpected: ratios within a small constant of 1 — the analytic\n"
              "model is a faithful stand-in for the executed protocol.\n");
  return 0;
}

// Reproduces Fig. 5: downstream MLP training time per selection method on
// every dataset. Training with a 2-of-4 sub-consortium must beat training
// with all participants, because split-learning communication scales with
// the number of parties (and their feature widths).
//
// Usage: fig5_training_time [--scale=0.5] [--seed=42]

#include <cstdio>

#include "bench_util.h"

using namespace vfps;          // NOLINT(build/namespaces)
using namespace vfps::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("Fig. 5: MLP training time in simulated seconds (P=4, select 2, scale=%.2f)\n\n",
              scale);

  const core::SelectionMethod methods[] = {
      core::SelectionMethod::kAll, core::SelectionMethod::kRandom,
      core::SelectionMethod::kShapley, core::SelectionMethod::kVfMine,
      core::SelectionMethod::kVfpsSm};

  std::vector<std::string> header = {"Method"};
  const auto& datasets = AllDatasets();
  header.insert(header.end(), datasets.begin(), datasets.end());
  TablePrinter table(header);
  std::vector<std::vector<double>> train(std::size(methods),
                                         std::vector<double>(datasets.size()));
  for (size_t d = 0; d < datasets.size(); ++d) {
    for (size_t m = 0; m < std::size(methods); ++m) {
      auto config =
          GridConfig(datasets[d], methods[m], ml::ModelKind::kMlp, scale, seed);
      auto result = core::RunExperiment(config);
      RunOrDie(datasets[d].c_str(), result.status());
      train[m][d] = result->training_sim_seconds;
    }
  }
  for (size_t m = 0; m < std::size(methods); ++m) {
    std::vector<std::string> row = {core::SelectionMethodName(methods[m])};
    for (size_t d = 0; d < datasets.size(); ++d) {
      row.push_back(FormatSimSeconds(train[m][d]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  size_t subset_faster = 0;
  for (size_t d = 0; d < datasets.size(); ++d) {
    subset_faster += (train[4][d] < train[0][d]);
  }
  std::printf("\nVFPS-SM sub-consortium trains faster than ALL on %zu/%zu datasets "
              "(paper: all; e.g. 3.0x on IJCNN).\n",
              subset_faster, datasets.size());
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/test_bignum.dir/test_bignum.cc.o"
  "CMakeFiles/test_bignum.dir/test_bignum.cc.o.d"
  "test_bignum"
  "test_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_paillier.dir/test_paillier.cc.o"
  "CMakeFiles/test_paillier.dir/test_paillier.cc.o.d"
  "test_paillier"
  "test_paillier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_paillier.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_split_lr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_split_lr.dir/test_split_lr.cc.o"
  "CMakeFiles/test_split_lr.dir/test_split_lr.cc.o.d"
  "test_split_lr"
  "test_split_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_modarith.dir/test_modarith.cc.o"
  "CMakeFiles/test_modarith.dir/test_modarith.cc.o.d"
  "test_modarith"
  "test_modarith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modarith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_fed_knn.dir/test_fed_knn.cc.o"
  "CMakeFiles/test_fed_knn.dir/test_fed_knn.cc.o.d"
  "test_fed_knn"
  "test_fed_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fed_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_fed_knn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_submodular.dir/test_submodular.cc.o"
  "CMakeFiles/test_submodular.dir/test_submodular.cc.o.d"
  "test_submodular"
  "test_submodular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_submodular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_loaders.dir/test_loaders.cc.o"
  "CMakeFiles/test_loaders.dir/test_loaders.cc.o.d"
  "test_loaders"
  "test_loaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_loaders.
# This may be replaced when dependencies are built.

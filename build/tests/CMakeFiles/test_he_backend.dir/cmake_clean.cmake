file(REMOVE_RECURSE
  "CMakeFiles/test_he_backend.dir/test_he_backend.cc.o"
  "CMakeFiles/test_he_backend.dir/test_he_backend.cc.o.d"
  "test_he_backend"
  "test_he_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_he_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

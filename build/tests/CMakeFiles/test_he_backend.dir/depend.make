# Empty dependencies file for test_he_backend.
# This may be replaced when dependencies are built.

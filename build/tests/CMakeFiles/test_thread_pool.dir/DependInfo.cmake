
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_thread_pool.cc" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vfps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vfl/CMakeFiles/vfps_vfl.dir/DependInfo.cmake"
  "/root/repo/build/src/topk/CMakeFiles/vfps_topk.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vfps_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vfps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vfps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/he/CMakeFiles/vfps_he.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vfps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

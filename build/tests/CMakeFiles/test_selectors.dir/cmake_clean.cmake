file(REMOVE_RECURSE
  "CMakeFiles/test_selectors.dir/test_selectors.cc.o"
  "CMakeFiles/test_selectors.dir/test_selectors.cc.o.d"
  "test_selectors"
  "test_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

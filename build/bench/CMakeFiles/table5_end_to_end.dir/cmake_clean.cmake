file(REMOVE_RECURSE
  "CMakeFiles/table5_end_to_end.dir/table5_end_to_end.cc.o"
  "CMakeFiles/table5_end_to_end.dir/table5_end_to_end.cc.o.d"
  "table5_end_to_end"
  "table5_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

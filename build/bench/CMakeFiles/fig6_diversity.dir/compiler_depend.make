# Empty compiler generated dependencies file for fig6_diversity.
# This may be replaced when dependencies are built.

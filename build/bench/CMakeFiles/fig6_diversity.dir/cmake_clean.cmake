file(REMOVE_RECURSE
  "CMakeFiles/fig6_diversity.dir/fig6_diversity.cc.o"
  "CMakeFiles/fig6_diversity.dir/fig6_diversity.cc.o.d"
  "fig6_diversity"
  "fig6_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

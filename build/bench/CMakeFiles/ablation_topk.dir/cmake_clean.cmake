file(REMOVE_RECURSE
  "CMakeFiles/ablation_topk.dir/ablation_topk.cc.o"
  "CMakeFiles/ablation_topk.dir/ablation_topk.cc.o.d"
  "ablation_topk"
  "ablation_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

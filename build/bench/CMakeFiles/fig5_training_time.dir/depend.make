# Empty dependencies file for fig5_training_time.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_split_protocol.
# This may be replaced when dependencies are built.

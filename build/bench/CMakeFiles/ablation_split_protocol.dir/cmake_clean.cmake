file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_protocol.dir/ablation_split_protocol.cc.o"
  "CMakeFiles/ablation_split_protocol.dir/ablation_split_protocol.cc.o.d"
  "ablation_split_protocol"
  "ablation_split_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

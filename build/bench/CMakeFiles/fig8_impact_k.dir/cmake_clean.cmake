file(REMOVE_RECURSE
  "CMakeFiles/fig8_impact_k.dir/fig8_impact_k.cc.o"
  "CMakeFiles/fig8_impact_k.dir/fig8_impact_k.cc.o.d"
  "fig8_impact_k"
  "fig8_impact_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_impact_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig8_impact_k.
# This may be replaced when dependencies are built.

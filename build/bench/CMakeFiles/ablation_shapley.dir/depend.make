# Empty dependencies file for ablation_shapley.
# This may be replaced when dependencies are built.

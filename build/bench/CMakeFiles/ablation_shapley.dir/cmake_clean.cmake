file(REMOVE_RECURSE
  "CMakeFiles/ablation_shapley.dir/ablation_shapley.cc.o"
  "CMakeFiles/ablation_shapley.dir/ablation_shapley.cc.o.d"
  "ablation_shapley"
  "ablation_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig9_candidates.dir/fig9_candidates.cc.o"
  "CMakeFiles/fig9_candidates.dir/fig9_candidates.cc.o.d"
  "fig9_candidates"
  "fig9_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

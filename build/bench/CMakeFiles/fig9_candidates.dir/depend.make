# Empty dependencies file for fig9_candidates.
# This may be replaced when dependencies are built.

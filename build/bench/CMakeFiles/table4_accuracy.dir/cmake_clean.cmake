file(REMOVE_RECURSE
  "CMakeFiles/table4_accuracy.dir/table4_accuracy.cc.o"
  "CMakeFiles/table4_accuracy.dir/table4_accuracy.cc.o.d"
  "table4_accuracy"
  "table4_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_he_backend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_he_backend.dir/ablation_he_backend.cc.o"
  "CMakeFiles/ablation_he_backend.dir/ablation_he_backend.cc.o.d"
  "ablation_he_backend"
  "ablation_he_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_he_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

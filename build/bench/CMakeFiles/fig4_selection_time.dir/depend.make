# Empty dependencies file for fig4_selection_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_motivation.dir/table1_motivation.cc.o"
  "CMakeFiles/table1_motivation.dir/table1_motivation.cc.o.d"
  "table1_motivation"
  "table1_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_he.dir/bench_he.cc.o"
  "CMakeFiles/bench_he.dir/bench_he.cc.o.d"
  "bench_he"
  "bench_he.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_he.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_he.
# This may be replaced when dependencies are built.

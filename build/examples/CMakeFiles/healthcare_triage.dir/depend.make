# Empty dependencies file for healthcare_triage.
# This may be replaced when dependencies are built.

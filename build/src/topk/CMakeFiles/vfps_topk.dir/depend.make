# Empty dependencies file for vfps_topk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvfps_topk.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topk/fagin.cc" "src/topk/CMakeFiles/vfps_topk.dir/fagin.cc.o" "gcc" "src/topk/CMakeFiles/vfps_topk.dir/fagin.cc.o.d"
  "/root/repo/src/topk/naive.cc" "src/topk/CMakeFiles/vfps_topk.dir/naive.cc.o" "gcc" "src/topk/CMakeFiles/vfps_topk.dir/naive.cc.o.d"
  "/root/repo/src/topk/ranked_list.cc" "src/topk/CMakeFiles/vfps_topk.dir/ranked_list.cc.o" "gcc" "src/topk/CMakeFiles/vfps_topk.dir/ranked_list.cc.o.d"
  "/root/repo/src/topk/threshold.cc" "src/topk/CMakeFiles/vfps_topk.dir/threshold.cc.o" "gcc" "src/topk/CMakeFiles/vfps_topk.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

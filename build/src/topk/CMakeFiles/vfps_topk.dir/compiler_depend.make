# Empty compiler generated dependencies file for vfps_topk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vfps_topk.dir/fagin.cc.o"
  "CMakeFiles/vfps_topk.dir/fagin.cc.o.d"
  "CMakeFiles/vfps_topk.dir/naive.cc.o"
  "CMakeFiles/vfps_topk.dir/naive.cc.o.d"
  "CMakeFiles/vfps_topk.dir/ranked_list.cc.o"
  "CMakeFiles/vfps_topk.dir/ranked_list.cc.o.d"
  "CMakeFiles/vfps_topk.dir/threshold.cc.o"
  "CMakeFiles/vfps_topk.dir/threshold.cc.o.d"
  "libvfps_topk.a"
  "libvfps_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

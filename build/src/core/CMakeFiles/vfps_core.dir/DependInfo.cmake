
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/vfps_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/core/CMakeFiles/vfps_core.dir/greedy.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/greedy.cc.o.d"
  "/root/repo/src/core/random_select.cc" "src/core/CMakeFiles/vfps_core.dir/random_select.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/random_select.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/core/CMakeFiles/vfps_core.dir/selector.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/selector.cc.o.d"
  "/root/repo/src/core/shapley.cc" "src/core/CMakeFiles/vfps_core.dir/shapley.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/shapley.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/vfps_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/submodular.cc" "src/core/CMakeFiles/vfps_core.dir/submodular.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/submodular.cc.o.d"
  "/root/repo/src/core/vfmine.cc" "src/core/CMakeFiles/vfps_core.dir/vfmine.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/vfmine.cc.o.d"
  "/root/repo/src/core/vfps_sm.cc" "src/core/CMakeFiles/vfps_core.dir/vfps_sm.cc.o" "gcc" "src/core/CMakeFiles/vfps_core.dir/vfps_sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/he/CMakeFiles/vfps_he.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vfps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vfps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vfps_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/topk/CMakeFiles/vfps_topk.dir/DependInfo.cmake"
  "/root/repo/build/src/vfl/CMakeFiles/vfps_vfl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libvfps_core.a"
)

# Empty compiler generated dependencies file for vfps_core.
# This may be replaced when dependencies are built.

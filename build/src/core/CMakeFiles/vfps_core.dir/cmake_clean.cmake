file(REMOVE_RECURSE
  "CMakeFiles/vfps_core.dir/experiment.cc.o"
  "CMakeFiles/vfps_core.dir/experiment.cc.o.d"
  "CMakeFiles/vfps_core.dir/greedy.cc.o"
  "CMakeFiles/vfps_core.dir/greedy.cc.o.d"
  "CMakeFiles/vfps_core.dir/random_select.cc.o"
  "CMakeFiles/vfps_core.dir/random_select.cc.o.d"
  "CMakeFiles/vfps_core.dir/selector.cc.o"
  "CMakeFiles/vfps_core.dir/selector.cc.o.d"
  "CMakeFiles/vfps_core.dir/shapley.cc.o"
  "CMakeFiles/vfps_core.dir/shapley.cc.o.d"
  "CMakeFiles/vfps_core.dir/similarity.cc.o"
  "CMakeFiles/vfps_core.dir/similarity.cc.o.d"
  "CMakeFiles/vfps_core.dir/submodular.cc.o"
  "CMakeFiles/vfps_core.dir/submodular.cc.o.d"
  "CMakeFiles/vfps_core.dir/vfmine.cc.o"
  "CMakeFiles/vfps_core.dir/vfmine.cc.o.d"
  "CMakeFiles/vfps_core.dir/vfps_sm.cc.o"
  "CMakeFiles/vfps_core.dir/vfps_sm.cc.o.d"
  "libvfps_core.a"
  "libvfps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/vfps_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/vfps_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/logreg.cc" "src/ml/CMakeFiles/vfps_ml.dir/logreg.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/logreg.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/vfps_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/vfps_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/vfps_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/vfps_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/optimizer.cc.o.d"
  "/root/repo/src/ml/train_config.cc" "src/ml/CMakeFiles/vfps_ml.dir/train_config.cc.o" "gcc" "src/ml/CMakeFiles/vfps_ml.dir/train_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vfps_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for vfps_ml.
# This may be replaced when dependencies are built.

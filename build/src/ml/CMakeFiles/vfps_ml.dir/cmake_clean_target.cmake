file(REMOVE_RECURSE
  "libvfps_ml.a"
)

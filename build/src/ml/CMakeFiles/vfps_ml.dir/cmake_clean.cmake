file(REMOVE_RECURSE
  "CMakeFiles/vfps_ml.dir/classifier.cc.o"
  "CMakeFiles/vfps_ml.dir/classifier.cc.o.d"
  "CMakeFiles/vfps_ml.dir/knn.cc.o"
  "CMakeFiles/vfps_ml.dir/knn.cc.o.d"
  "CMakeFiles/vfps_ml.dir/logreg.cc.o"
  "CMakeFiles/vfps_ml.dir/logreg.cc.o.d"
  "CMakeFiles/vfps_ml.dir/matrix.cc.o"
  "CMakeFiles/vfps_ml.dir/matrix.cc.o.d"
  "CMakeFiles/vfps_ml.dir/metrics.cc.o"
  "CMakeFiles/vfps_ml.dir/metrics.cc.o.d"
  "CMakeFiles/vfps_ml.dir/mlp.cc.o"
  "CMakeFiles/vfps_ml.dir/mlp.cc.o.d"
  "CMakeFiles/vfps_ml.dir/optimizer.cc.o"
  "CMakeFiles/vfps_ml.dir/optimizer.cc.o.d"
  "CMakeFiles/vfps_ml.dir/train_config.cc.o"
  "CMakeFiles/vfps_ml.dir/train_config.cc.o.d"
  "libvfps_ml.a"
  "libvfps_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vfps_common.dir/buffer.cc.o"
  "CMakeFiles/vfps_common.dir/buffer.cc.o.d"
  "CMakeFiles/vfps_common.dir/logging.cc.o"
  "CMakeFiles/vfps_common.dir/logging.cc.o.d"
  "CMakeFiles/vfps_common.dir/random.cc.o"
  "CMakeFiles/vfps_common.dir/random.cc.o.d"
  "CMakeFiles/vfps_common.dir/sim_clock.cc.o"
  "CMakeFiles/vfps_common.dir/sim_clock.cc.o.d"
  "CMakeFiles/vfps_common.dir/status.cc.o"
  "CMakeFiles/vfps_common.dir/status.cc.o.d"
  "CMakeFiles/vfps_common.dir/string_util.cc.o"
  "CMakeFiles/vfps_common.dir/string_util.cc.o.d"
  "CMakeFiles/vfps_common.dir/thread_pool.cc.o"
  "CMakeFiles/vfps_common.dir/thread_pool.cc.o.d"
  "libvfps_common.a"
  "libvfps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

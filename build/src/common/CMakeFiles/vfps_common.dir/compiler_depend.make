# Empty compiler generated dependencies file for vfps_common.
# This may be replaced when dependencies are built.

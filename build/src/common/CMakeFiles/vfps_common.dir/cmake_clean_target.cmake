file(REMOVE_RECURSE
  "libvfps_common.a"
)

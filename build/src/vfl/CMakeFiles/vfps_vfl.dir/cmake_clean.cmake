file(REMOVE_RECURSE
  "CMakeFiles/vfps_vfl.dir/fed_knn.cc.o"
  "CMakeFiles/vfps_vfl.dir/fed_knn.cc.o.d"
  "CMakeFiles/vfps_vfl.dir/pseudo_id.cc.o"
  "CMakeFiles/vfps_vfl.dir/pseudo_id.cc.o.d"
  "CMakeFiles/vfps_vfl.dir/split_lr.cc.o"
  "CMakeFiles/vfps_vfl.dir/split_lr.cc.o.d"
  "CMakeFiles/vfps_vfl.dir/split_train.cc.o"
  "CMakeFiles/vfps_vfl.dir/split_train.cc.o.d"
  "libvfps_vfl.a"
  "libvfps_vfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_vfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvfps_vfl.a"
)

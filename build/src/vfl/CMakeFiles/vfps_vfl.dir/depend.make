# Empty dependencies file for vfps_vfl.
# This may be replaced when dependencies are built.

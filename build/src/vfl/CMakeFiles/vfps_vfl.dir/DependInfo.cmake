
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfl/fed_knn.cc" "src/vfl/CMakeFiles/vfps_vfl.dir/fed_knn.cc.o" "gcc" "src/vfl/CMakeFiles/vfps_vfl.dir/fed_knn.cc.o.d"
  "/root/repo/src/vfl/pseudo_id.cc" "src/vfl/CMakeFiles/vfps_vfl.dir/pseudo_id.cc.o" "gcc" "src/vfl/CMakeFiles/vfps_vfl.dir/pseudo_id.cc.o.d"
  "/root/repo/src/vfl/split_lr.cc" "src/vfl/CMakeFiles/vfps_vfl.dir/split_lr.cc.o" "gcc" "src/vfl/CMakeFiles/vfps_vfl.dir/split_lr.cc.o.d"
  "/root/repo/src/vfl/split_train.cc" "src/vfl/CMakeFiles/vfps_vfl.dir/split_train.cc.o" "gcc" "src/vfl/CMakeFiles/vfps_vfl.dir/split_train.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/he/CMakeFiles/vfps_he.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vfps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vfps_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vfps_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/topk/CMakeFiles/vfps_topk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/vfps_net.dir/cost_model.cc.o"
  "CMakeFiles/vfps_net.dir/cost_model.cc.o.d"
  "CMakeFiles/vfps_net.dir/network.cc.o"
  "CMakeFiles/vfps_net.dir/network.cc.o.d"
  "libvfps_net.a"
  "libvfps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

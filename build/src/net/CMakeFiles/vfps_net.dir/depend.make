# Empty dependencies file for vfps_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvfps_net.a"
)

# Empty dependencies file for vfps_data.
# This may be replaced when dependencies are built.

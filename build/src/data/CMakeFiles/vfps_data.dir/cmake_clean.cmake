file(REMOVE_RECURSE
  "CMakeFiles/vfps_data.dir/csv_loader.cc.o"
  "CMakeFiles/vfps_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/vfps_data.dir/dataset.cc.o"
  "CMakeFiles/vfps_data.dir/dataset.cc.o.d"
  "CMakeFiles/vfps_data.dir/libsvm_loader.cc.o"
  "CMakeFiles/vfps_data.dir/libsvm_loader.cc.o.d"
  "CMakeFiles/vfps_data.dir/partitioner.cc.o"
  "CMakeFiles/vfps_data.dir/partitioner.cc.o.d"
  "CMakeFiles/vfps_data.dir/presets.cc.o"
  "CMakeFiles/vfps_data.dir/presets.cc.o.d"
  "CMakeFiles/vfps_data.dir/scaler.cc.o"
  "CMakeFiles/vfps_data.dir/scaler.cc.o.d"
  "CMakeFiles/vfps_data.dir/synthetic.cc.o"
  "CMakeFiles/vfps_data.dir/synthetic.cc.o.d"
  "libvfps_data.a"
  "libvfps_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

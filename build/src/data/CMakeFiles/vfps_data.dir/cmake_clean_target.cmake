file(REMOVE_RECURSE
  "libvfps_data.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vfps_he.dir/backend.cc.o"
  "CMakeFiles/vfps_he.dir/backend.cc.o.d"
  "CMakeFiles/vfps_he.dir/bignum.cc.o"
  "CMakeFiles/vfps_he.dir/bignum.cc.o.d"
  "CMakeFiles/vfps_he.dir/ckks.cc.o"
  "CMakeFiles/vfps_he.dir/ckks.cc.o.d"
  "CMakeFiles/vfps_he.dir/ckks_encoder.cc.o"
  "CMakeFiles/vfps_he.dir/ckks_encoder.cc.o.d"
  "CMakeFiles/vfps_he.dir/modarith.cc.o"
  "CMakeFiles/vfps_he.dir/modarith.cc.o.d"
  "CMakeFiles/vfps_he.dir/ntt.cc.o"
  "CMakeFiles/vfps_he.dir/ntt.cc.o.d"
  "CMakeFiles/vfps_he.dir/paillier.cc.o"
  "CMakeFiles/vfps_he.dir/paillier.cc.o.d"
  "CMakeFiles/vfps_he.dir/rns.cc.o"
  "CMakeFiles/vfps_he.dir/rns.cc.o.d"
  "libvfps_he.a"
  "libvfps_he.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfps_he.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvfps_he.a"
)

# Empty compiler generated dependencies file for vfps_he.
# This may be replaced when dependencies are built.

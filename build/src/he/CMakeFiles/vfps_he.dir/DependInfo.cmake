
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/he/backend.cc" "src/he/CMakeFiles/vfps_he.dir/backend.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/backend.cc.o.d"
  "/root/repo/src/he/bignum.cc" "src/he/CMakeFiles/vfps_he.dir/bignum.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/bignum.cc.o.d"
  "/root/repo/src/he/ckks.cc" "src/he/CMakeFiles/vfps_he.dir/ckks.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/ckks.cc.o.d"
  "/root/repo/src/he/ckks_encoder.cc" "src/he/CMakeFiles/vfps_he.dir/ckks_encoder.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/ckks_encoder.cc.o.d"
  "/root/repo/src/he/modarith.cc" "src/he/CMakeFiles/vfps_he.dir/modarith.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/modarith.cc.o.d"
  "/root/repo/src/he/ntt.cc" "src/he/CMakeFiles/vfps_he.dir/ntt.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/ntt.cc.o.d"
  "/root/repo/src/he/paillier.cc" "src/he/CMakeFiles/vfps_he.dir/paillier.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/paillier.cc.o.d"
  "/root/repo/src/he/rns.cc" "src/he/CMakeFiles/vfps_he.dir/rns.cc.o" "gcc" "src/he/CMakeFiles/vfps_he.dir/rns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

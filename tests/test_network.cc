#include "net/network.h"

#include <gtest/gtest.h>

#include "net/cost_model.h"

namespace vfps::net {
namespace {

TEST(SimNetworkTest, SendRecvFifoPerLink) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(1, kAggregationServer, {1, 2, 3}).ok());
  ASSERT_TRUE(net.Send(1, kAggregationServer, {4}).ok());
  auto first = net.Recv(1, kAggregationServer);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, (std::vector<uint8_t>{1, 2, 3}));
  auto second = net.Recv(1, kAggregationServer);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, (std::vector<uint8_t>{4}));
}

TEST(SimNetworkTest, RecvOnEmptyLinkIsProtocolError) {
  SimNetwork net;
  EXPECT_TRUE(net.Recv(0, 1).status().IsProtocolError());
  ASSERT_TRUE(net.Send(0, 1, {9}).ok());
  // Wrong direction is still empty.
  EXPECT_TRUE(net.Recv(1, 0).status().IsProtocolError());
}

TEST(SimNetworkTest, SelfSendRejected) {
  SimNetwork net;
  EXPECT_FALSE(net.Send(2, 2, {1}).ok());
}

TEST(SimNetworkTest, MetersBytesAndMessages) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(0, 1, std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(net.Send(0, 1, std::vector<uint8_t>(50)).ok());
  ASSERT_TRUE(net.Send(1, 0, std::vector<uint8_t>(7)).ok());
  EXPECT_EQ(net.total().messages, 3u);
  EXPECT_EQ(net.total().bytes, 157u);
  EXPECT_EQ(net.SentBy(0).bytes, 150u);
  EXPECT_EQ(net.ReceivedBy(0).bytes, 7u);
  EXPECT_EQ(net.LinkStats(0, 1).messages, 2u);
  EXPECT_EQ(net.LinkStats(1, 0).bytes, 7u);
  EXPECT_EQ(net.LinkStats(1, 2).messages, 0u);
}

TEST(SimNetworkTest, StatsSurviveRecvAndReset) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(0, 1, {1, 2}).ok());
  ASSERT_TRUE(net.Recv(0, 1).ok());
  EXPECT_EQ(net.total().bytes, 2u);  // receiving does not undo metering
  net.ResetStats();
  EXPECT_EQ(net.total().bytes, 0u);
  EXPECT_EQ(net.total().messages, 0u);
}

TEST(SimNetworkTest, PendingCount) {
  SimNetwork net;
  EXPECT_EQ(net.PendingCount(), 0u);
  ASSERT_TRUE(net.Send(0, 1, {1}).ok());
  ASSERT_TRUE(net.Send(2, 1, {1}).ok());
  EXPECT_EQ(net.PendingCount(), 2u);
  ASSERT_TRUE(net.Recv(0, 1).ok());
  EXPECT_EQ(net.PendingCount(), 1u);
}

TEST(SimNetworkTest, NodeNames) {
  EXPECT_EQ(NodeName(kAggregationServer), "agg-server");
  EXPECT_EQ(NodeName(kKeyServer), "key-server");
  EXPECT_EQ(NodeName(0), "leader");
  EXPECT_EQ(NodeName(3), "participant-3");
}

TEST(CostModelTest, NetworkSecondsLatencyPlusBandwidth) {
  CostModel cost;
  cost.latency_seconds = 1e-3;
  cost.bytes_per_second = 1e6;
  EXPECT_DOUBLE_EQ(cost.NetworkSeconds(0, 1), 1e-3);
  EXPECT_DOUBLE_EQ(cost.NetworkSeconds(1000000, 1), 1e-3 + 1.0);
  EXPECT_DOUBLE_EQ(cost.NetworkSeconds(500000, 2), 2e-3 + 0.5);
}

TEST(CostModelTest, CiphertextArithmetic) {
  CostModel cost;
  cost.slots_per_ciphertext = 100;
  EXPECT_EQ(cost.NumCiphertexts(0), 0u);
  EXPECT_EQ(cost.NumCiphertexts(1), 1u);
  EXPECT_EQ(cost.NumCiphertexts(100), 1u);
  EXPECT_EQ(cost.NumCiphertexts(101), 2u);
  EXPECT_EQ(cost.EncryptedWireBytes(150), 2u * cost.ciphertext_bytes);
  EXPECT_DOUBLE_EQ(cost.EncryptSecondsFor(150), 2.0 * cost.encrypt_seconds);
  EXPECT_DOUBLE_EQ(cost.DecryptSecondsFor(50), cost.decrypt_seconds);
  EXPECT_DOUBLE_EQ(cost.HeAddSecondsFor(250), 3.0 * cost.he_add_seconds);
}

TEST(CostModelTest, SortSecondsMonotoneInN) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.SortSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(cost.SortSeconds(1), 0.0);
  EXPECT_LT(cost.SortSeconds(1000), cost.SortSeconds(10000));
}

TEST(CostModelTest, HeSecondsFromOpStats) {
  CostModel cost;
  he::HeOpStats stats;
  stats.encrypt_ops = 10;
  stats.decrypt_ops = 5;
  stats.add_ops = 100;
  EXPECT_DOUBLE_EQ(cost.HeSeconds(stats),
                   10 * cost.encrypt_seconds + 5 * cost.decrypt_seconds +
                       100 * cost.he_add_seconds);
}

TEST(CostModelTest, ChargeHeSplitsByCategory) {
  CostModel cost;
  he::HeOpStats stats;
  stats.encrypt_ops = 2;
  stats.decrypt_ops = 3;
  stats.add_ops = 4;
  vfps::SimClock clock;
  cost.ChargeHe(stats, &clock);
  EXPECT_DOUBLE_EQ(clock.TotalFor(vfps::CostCategory::kEncrypt),
                   2 * cost.encrypt_seconds);
  EXPECT_DOUBLE_EQ(clock.TotalFor(vfps::CostCategory::kDecrypt),
                   3 * cost.decrypt_seconds);
  EXPECT_DOUBLE_EQ(clock.TotalFor(vfps::CostCategory::kHeEval),
                   4 * cost.he_add_seconds);
}

TEST(SimClockTest, AccumulatesAndMerges) {
  vfps::SimClock a, b;
  a.Advance(vfps::CostCategory::kCompute, 1.5);
  b.Advance(vfps::CostCategory::kNetwork, 2.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Total(), 3.5);
  EXPECT_DOUBLE_EQ(a.TotalFor(vfps::CostCategory::kNetwork), 2.0);
  a.Reset();
  EXPECT_DOUBLE_EQ(a.Total(), 0.0);
  EXPECT_FALSE(a.Breakdown().empty());
}

}  // namespace
}  // namespace vfps::net

#include "net/network.h"

#include <gtest/gtest.h>

#include "net/cost_model.h"
#include "net/fault.h"

namespace vfps::net {
namespace {

TEST(SimNetworkTest, SendRecvFifoPerLink) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(1, kAggregationServer, {1, 2, 3}).ok());
  ASSERT_TRUE(net.Send(1, kAggregationServer, {4}).ok());
  auto first = net.Recv(1, kAggregationServer);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, (std::vector<uint8_t>{1, 2, 3}));
  auto second = net.Recv(1, kAggregationServer);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, (std::vector<uint8_t>{4}));
}

TEST(SimNetworkTest, RecvOnEmptyLinkIsProtocolError) {
  SimNetwork net;
  EXPECT_TRUE(net.Recv(0, 1).status().IsProtocolError());
  ASSERT_TRUE(net.Send(0, 1, {9}).ok());
  // Wrong direction is still empty.
  EXPECT_TRUE(net.Recv(1, 0).status().IsProtocolError());
}

TEST(SimNetworkTest, EmptyLinkErrorNamesEndpointsAndCounters) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(0, 3, {1, 2}).ok());
  ASSERT_TRUE(net.Recv(0, 3).ok());
  ASSERT_TRUE(net.Send(2, kAggregationServer, {7}).ok());  // stays pending
  const std::string message = net.Recv(0, 3).status().ToString();
  // Both endpoints by name, delivery history of the link, and the
  // network-wide backlog — enough to debug a protocol mismatch from the log.
  EXPECT_NE(message.find("leader"), std::string::npos) << message;
  EXPECT_NE(message.find("participant-3"), std::string::npos) << message;
  EXPECT_NE(message.find("1 messages ever sent"), std::string::npos) << message;
  EXPECT_NE(message.find("1 pending network-wide"), std::string::npos) << message;
}

TEST(SimNetworkTest, SelfSendRejected) {
  SimNetwork net;
  EXPECT_FALSE(net.Send(2, 2, {1}).ok());
}

TEST(SimNetworkTest, MetersBytesAndMessages) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(0, 1, std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(net.Send(0, 1, std::vector<uint8_t>(50)).ok());
  ASSERT_TRUE(net.Send(1, 0, std::vector<uint8_t>(7)).ok());
  EXPECT_EQ(net.total().messages, 3u);
  EXPECT_EQ(net.total().bytes, 157u);
  EXPECT_EQ(net.SentBy(0).bytes, 150u);
  EXPECT_EQ(net.ReceivedBy(0).bytes, 7u);
  EXPECT_EQ(net.LinkStats(0, 1).messages, 2u);
  EXPECT_EQ(net.LinkStats(1, 0).bytes, 7u);
  EXPECT_EQ(net.LinkStats(1, 2).messages, 0u);
}

TEST(SimNetworkTest, StatsSurviveRecvAndReset) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(0, 1, {1, 2}).ok());
  ASSERT_TRUE(net.Recv(0, 1).ok());
  EXPECT_EQ(net.total().bytes, 2u);  // receiving does not undo metering
  net.ResetStats();
  EXPECT_EQ(net.total().bytes, 0u);
  EXPECT_EQ(net.total().messages, 0u);
}

TEST(SimNetworkTest, PendingCount) {
  SimNetwork net;
  EXPECT_EQ(net.PendingCount(), 0u);
  ASSERT_TRUE(net.Send(0, 1, {1}).ok());
  ASSERT_TRUE(net.Send(2, 1, {1}).ok());
  EXPECT_EQ(net.PendingCount(), 2u);
  ASSERT_TRUE(net.Recv(0, 1).ok());
  EXPECT_EQ(net.PendingCount(), 1u);
}

TEST(SimNetworkTest, SentByReceivedByUnseenNodesAreZero) {
  SimNetwork net;
  ASSERT_TRUE(net.Send(1, 2, std::vector<uint8_t>(10)).ok());
  const TrafficStats unseen_sent = net.SentBy(9);
  const TrafficStats unseen_received = net.ReceivedBy(kKeyServer);
  EXPECT_EQ(unseen_sent.messages, 0u);
  EXPECT_EQ(unseen_sent.bytes, 0u);
  EXPECT_EQ(unseen_received.messages, 0u);
  EXPECT_EQ(unseen_received.bytes, 0u);
  // A node is "seen" per direction: 2 has received but never sent.
  EXPECT_EQ(net.SentBy(2).messages, 0u);
  EXPECT_EQ(net.ReceivedBy(2).messages, 1u);
}

TEST(SimNetworkTest, MergeStatsFromFoldsMultiLinkTraffic) {
  // The parallel per-query fan-out merges task-local networks into the main
  // one; per-link counters, totals, and fault counters must all fold.
  SimNetwork main_net, task_a, task_b;
  ASSERT_TRUE(main_net.Send(0, 1, std::vector<uint8_t>(5)).ok());
  ASSERT_TRUE(task_a.Send(0, 1, std::vector<uint8_t>(10)).ok());
  ASSERT_TRUE(task_a.Send(1, kAggregationServer, std::vector<uint8_t>(20)).ok());
  ASSERT_TRUE(task_b.Send(0, 1, std::vector<uint8_t>(40)).ok());
  ASSERT_TRUE(task_b.Send(2, kAggregationServer, std::vector<uint8_t>(80)).ok());

  main_net.MergeStatsFrom(task_a);
  main_net.MergeStatsFrom(task_b);
  EXPECT_EQ(main_net.total().messages, 5u);
  EXPECT_EQ(main_net.total().bytes, 155u);
  EXPECT_EQ(main_net.LinkStats(0, 1).messages, 3u);       // 5 + 10 + 40
  EXPECT_EQ(main_net.LinkStats(0, 1).bytes, 55u);
  EXPECT_EQ(main_net.LinkStats(1, kAggregationServer).bytes, 20u);
  EXPECT_EQ(main_net.LinkStats(2, kAggregationServer).bytes, 80u);
  EXPECT_EQ(main_net.SentBy(0).bytes, 55u);
  EXPECT_EQ(main_net.ReceivedBy(kAggregationServer).bytes, 100u);
  // Queued payloads are NOT transferred — only the metering is.
  EXPECT_EQ(main_net.PendingCount(), 1u);
  EXPECT_TRUE(main_net.Recv(1, kAggregationServer).status().IsProtocolError());
}

TEST(SimNetworkTest, MergeAfterResetStartsFromZero) {
  SimNetwork main_net, task;
  ASSERT_TRUE(main_net.Send(0, 1, std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(task.Send(0, 1, std::vector<uint8_t>(30)).ok());
  main_net.ResetStats();
  main_net.MergeStatsFrom(task);
  EXPECT_EQ(main_net.total().bytes, 30u);
  EXPECT_EQ(main_net.LinkStats(0, 1).messages, 1u);
  EXPECT_EQ(main_net.SentBy(0).bytes, 30u);
}

TEST(SimNetworkTest, MergeStatsFromFoldsFaultCounters) {
  FaultSpec drop_all;
  drop_all.drop_prob = 1.0;
  SimClock clock;
  SimNetwork main_net, task;
  task.EnableFaults(drop_all, 3, &clock);
  ASSERT_TRUE(task.Send(0, 1, {1, 2}).ok());
  ASSERT_TRUE(task.Send(0, 1, {3}).ok());
  EXPECT_EQ(task.fault_stats().dropped, 2u);
  main_net.MergeStatsFrom(task);
  EXPECT_EQ(main_net.fault_stats().dropped, 2u);
  EXPECT_TRUE(main_net.fault_stats().any());
  main_net.ResetStats();
  EXPECT_FALSE(main_net.fault_stats().any());
}

TEST(SimNetworkTest, NodeNames) {
  EXPECT_EQ(NodeName(kAggregationServer), "agg-server");
  EXPECT_EQ(NodeName(kKeyServer), "key-server");
  EXPECT_EQ(NodeName(0), "leader");
  EXPECT_EQ(NodeName(3), "participant-3");
}

TEST(CostModelTest, NetworkSecondsLatencyPlusBandwidth) {
  CostModel cost;
  cost.latency_seconds = 1e-3;
  cost.bytes_per_second = 1e6;
  EXPECT_DOUBLE_EQ(cost.NetworkSeconds(0, 1), 1e-3);
  EXPECT_DOUBLE_EQ(cost.NetworkSeconds(1000000, 1), 1e-3 + 1.0);
  EXPECT_DOUBLE_EQ(cost.NetworkSeconds(500000, 2), 2e-3 + 0.5);
}

TEST(CostModelTest, CiphertextArithmetic) {
  CostModel cost;
  cost.slots_per_ciphertext = 100;
  EXPECT_EQ(cost.NumCiphertexts(0), 0u);
  EXPECT_EQ(cost.NumCiphertexts(1), 1u);
  EXPECT_EQ(cost.NumCiphertexts(100), 1u);
  EXPECT_EQ(cost.NumCiphertexts(101), 2u);
  EXPECT_EQ(cost.EncryptedWireBytes(150), 2u * cost.ciphertext_bytes);
  EXPECT_DOUBLE_EQ(cost.EncryptSecondsFor(150), 2.0 * cost.encrypt_seconds);
  EXPECT_DOUBLE_EQ(cost.DecryptSecondsFor(50), cost.decrypt_seconds);
  EXPECT_DOUBLE_EQ(cost.HeAddSecondsFor(250), 3.0 * cost.he_add_seconds);
}

TEST(CostModelTest, SortSecondsMonotoneInN) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.SortSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(cost.SortSeconds(1), 0.0);
  EXPECT_LT(cost.SortSeconds(1000), cost.SortSeconds(10000));
}

TEST(CostModelTest, HeSecondsFromOpStats) {
  CostModel cost;
  he::HeOpStats stats;
  stats.encrypt_ops = 10;
  stats.decrypt_ops = 5;
  stats.add_ops = 100;
  EXPECT_DOUBLE_EQ(cost.HeSeconds(stats),
                   10 * cost.encrypt_seconds + 5 * cost.decrypt_seconds +
                       100 * cost.he_add_seconds);
}

TEST(CostModelTest, ChargeHeSplitsByCategory) {
  CostModel cost;
  he::HeOpStats stats;
  stats.encrypt_ops = 2;
  stats.decrypt_ops = 3;
  stats.add_ops = 4;
  vfps::SimClock clock;
  cost.ChargeHe(stats, &clock);
  EXPECT_DOUBLE_EQ(clock.TotalFor(vfps::CostCategory::kEncrypt),
                   2 * cost.encrypt_seconds);
  EXPECT_DOUBLE_EQ(clock.TotalFor(vfps::CostCategory::kDecrypt),
                   3 * cost.decrypt_seconds);
  EXPECT_DOUBLE_EQ(clock.TotalFor(vfps::CostCategory::kHeEval),
                   4 * cost.he_add_seconds);
}

TEST(SimClockTest, AccumulatesAndMerges) {
  vfps::SimClock a, b;
  a.Advance(vfps::CostCategory::kCompute, 1.5);
  b.Advance(vfps::CostCategory::kNetwork, 2.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Total(), 3.5);
  EXPECT_DOUBLE_EQ(a.TotalFor(vfps::CostCategory::kNetwork), 2.0);
  a.Reset();
  EXPECT_DOUBLE_EQ(a.Total(), 0.0);
  EXPECT_FALSE(a.Breakdown().empty());
}

}  // namespace
}  // namespace vfps::net

#include "core/selector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/shapley.h"
#include "core/vfmine.h"
#include "core/vfps_sm.h"
#include "data/scaler.h"
#include "data/synthetic.h"

namespace vfps::core {
namespace {

struct Fixture {
  data::DataSplit split;
  data::VerticalPartition partition;
  std::unique_ptr<he::HeBackend> backend;
  net::SimNetwork network;
  net::CostModel cost;
  SimClock clock;

  static Fixture Make(size_t parties, size_t duplicates_of_zero = 0) {
    Fixture f;
    data::SyntheticConfig config;
    config.num_samples = 600;
    config.num_features = 16;
    config.num_informative = 8;
    config.num_redundant = 4;
    config.centroid_distance = 1.6;
    config.seed = 17;
    auto generated = data::GenerateClassification(config);
    f.split = data::SplitDataset(generated->data, 0.7, 0.15, 5).MoveValueUnsafe();
    data::StandardizeSplit(&f.split).Abort("standardize");
    f.partition =
        data::QualityStratifiedPartition(generated->kinds, parties, 3)
            .MoveValueUnsafe();
    if (duplicates_of_zero > 0) {
      f.partition =
          data::WithDuplicates(f.partition, 0, duplicates_of_zero)
              .MoveValueUnsafe();
    }
    f.backend = he::CreatePlainBackend();
    return f;
  }

  SelectionContext Context() {
    SelectionContext ctx;
    ctx.split = &split;
    ctx.partition = &partition;
    ctx.backend = backend.get();
    ctx.network = &network;
    ctx.cost = &cost;
    ctx.clock = &clock;
    ctx.knn.k = 5;
    ctx.knn.num_queries = 16;
    ctx.utility_queries = 16;
    ctx.seed = 11;
    return ctx;
  }
};

TEST(SelectorTest, MethodNamesRoundTrip) {
  for (SelectionMethod m :
       {SelectionMethod::kAll, SelectionMethod::kRandom, SelectionMethod::kShapley,
        SelectionMethod::kVfMine, SelectionMethod::kVfpsSm,
        SelectionMethod::kVfpsSmBase}) {
    auto parsed = ParseSelectionMethod(SelectionMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseSelectionMethod("bogus").ok());
}

TEST(SelectorTest, FactoryCreatesEverythingButAll) {
  EXPECT_FALSE(CreateSelector(SelectionMethod::kAll).ok());
  for (SelectionMethod m :
       {SelectionMethod::kRandom, SelectionMethod::kShapley,
        SelectionMethod::kVfMine, SelectionMethod::kVfpsSm,
        SelectionMethod::kVfpsSmBase}) {
    auto selector = CreateSelector(m);
    ASSERT_TRUE(selector.ok());
    EXPECT_EQ((*selector)->name(), SelectionMethodName(m));
  }
}

TEST(SelectorTest, AllSelectorsReturnRequestedCount) {
  for (SelectionMethod m :
       {SelectionMethod::kRandom, SelectionMethod::kShapley,
        SelectionMethod::kVfMine, SelectionMethod::kVfpsSm,
        SelectionMethod::kVfpsSmBase}) {
    Fixture f = Fixture::Make(4);
    auto selector = CreateSelector(m).MoveValueUnsafe();
    auto ctx = f.Context();
    auto outcome = selector->Select(ctx, 2);
    ASSERT_TRUE(outcome.ok()) << selector->name() << ": "
                              << outcome.status().ToString();
    EXPECT_EQ(outcome->selected.size(), 2u) << selector->name();
    // Distinct, sorted, in range.
    EXPECT_TRUE(std::is_sorted(outcome->selected.begin(), outcome->selected.end()));
    EXPECT_LT(outcome->selected.back(), 4u);
    EXPECT_NE(outcome->selected[0], outcome->selected[1]);
  }
}

TEST(SelectorTest, SelectionIsDeterministicForSeed) {
  for (SelectionMethod m : {SelectionMethod::kShapley, SelectionMethod::kVfMine,
                            SelectionMethod::kVfpsSm}) {
    Fixture f1 = Fixture::Make(4);
    Fixture f2 = Fixture::Make(4);
    auto s1 = CreateSelector(m).MoveValueUnsafe();
    auto s2 = CreateSelector(m).MoveValueUnsafe();
    auto ctx1 = f1.Context();
    auto ctx2 = f2.Context();
    auto o1 = s1->Select(ctx1, 2);
    auto o2 = s2->Select(ctx2, 2);
    ASSERT_TRUE(o1.ok() && o2.ok());
    EXPECT_EQ(o1->selected, o2->selected) << SelectionMethodName(m);
  }
}

TEST(SelectorTest, VfpsSmChargesSelectionTime) {
  Fixture f = Fixture::Make(4);
  VfpsSmSelector selector(vfl::KnnOracleMode::kFagin);
  auto ctx = f.Context();
  auto outcome = selector.Select(ctx, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->sim_seconds, 0.0);
  EXPECT_GT(outcome->knn_stats.queries, 0u);
  EXPECT_GT(outcome->knn_stats.candidates_encrypted, 0u);
}

TEST(SelectorTest, VfpsSmAvoidsDuplicateParticipants) {
  // Clone participant 0 twice. VFPS-SM must never pick two copies of the
  // same content; additive scorers (SHAPLEY / VF-MINE) are expected to fall
  // into exactly that trap — which is the paper's Fig. 6 story.
  Fixture f = Fixture::Make(4, /*duplicates_of_zero=*/2);  // parties 4 and 5 clone 0
  VfpsSmSelector selector(vfl::KnnOracleMode::kFagin);
  auto ctx = f.Context();
  auto outcome = selector.Select(ctx, 3);
  ASSERT_TRUE(outcome.ok());
  int clones_selected = 0;
  for (size_t p : outcome->selected) {
    clones_selected += (p == 0 || p == 4 || p == 5);
  }
  EXPECT_LE(clones_selected, 1) << "picked multiple clones of participant 0";
}

TEST(SelectorTest, VfpsSmBaseAndFaginPickSameSubset) {
  Fixture f1 = Fixture::Make(4);
  Fixture f2 = Fixture::Make(4);
  VfpsSmSelector fagin(vfl::KnnOracleMode::kFagin);
  VfpsSmSelector base(vfl::KnnOracleMode::kBase);
  auto ctx1 = f1.Context();
  auto ctx2 = f2.Context();
  auto of = fagin.Select(ctx1, 2);
  auto ob = base.Select(ctx2, 2);
  ASSERT_TRUE(of.ok() && ob.ok());
  EXPECT_EQ(of->selected, ob->selected);
  // ... but the Fagin variant encrypts far fewer candidates.
  EXPECT_LT(of->knn_stats.candidates_encrypted,
            ob->knn_stats.candidates_encrypted);
}

TEST(SelectorTest, ShapleyValuesStoredPerParticipant) {
  Fixture f = Fixture::Make(4);
  ShapleySelector selector;
  auto ctx = f.Context();
  auto outcome = selector.Select(ctx, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(selector.last_values().size(), 4u);
  EXPECT_EQ(outcome->scores.size(), 4u);
  // Efficiency-ish sanity: the sum of Shapley values equals U(P) - U(empty),
  // which for a useful consortium is positive.
  double sum = 0.0;
  for (double v : selector.last_values()) sum += v;
  EXPECT_GT(sum, -1.0);
}

TEST(SelectorTest, ShapleyMonteCarloPathRuns) {
  Fixture f = Fixture::Make(6);
  ShapleySelector selector;
  auto ctx = f.Context();
  ctx.shapley_exact_limit = 4;  // force the MC + extrapolation path
  ctx.shapley_mc_permutations = 4;
  auto outcome = selector.Select(ctx, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->selected.size(), 2u);
  EXPECT_GT(outcome->sim_seconds, 0.0);
}

TEST(SelectorTest, ShapleyExtrapolatedCostGrowsWithP) {
  // The extrapolated exact-SHAPLEY cost must grow ~2^P.
  double previous = 0.0;
  for (size_t p : {6u, 8u}) {
    Fixture f = Fixture::Make(p);
    ShapleySelector selector;
    auto ctx = f.Context();
    ctx.shapley_exact_limit = 4;
    ctx.shapley_mc_permutations = 2;
    auto outcome = selector.Select(ctx, 2);
    ASSERT_TRUE(outcome.ok());
    EXPECT_GT(outcome->sim_seconds, previous);
    previous = outcome->sim_seconds;
  }
}

TEST(SelectorTest, VfMineScoresAllParticipants) {
  Fixture f = Fixture::Make(4);
  VfMineSelector selector;
  auto ctx = f.Context();
  auto outcome = selector.Select(ctx, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(selector.last_scores().size(), 4u);
  for (double s : selector.last_scores()) EXPECT_GE(s, 0.0);
}

TEST(SelectorTest, VfMineDuplicateInheritsTwinScore) {
  // The diversity blindness VF-MINE is criticized for: a clone's MI score
  // tracks its twin's, so both rank high together.
  Fixture f = Fixture::Make(4, /*duplicates_of_zero=*/1);  // party 4 clones 0
  VfMineSelector selector;
  auto ctx = f.Context();
  auto outcome = selector.Select(ctx, 2);
  ASSERT_TRUE(outcome.ok());
  const auto& scores = selector.last_scores();
  ASSERT_EQ(scores.size(), 5u);
  EXPECT_NEAR(scores[0], scores[4], 0.25 * std::max(scores[0], 1e-6) + 0.05);
}

TEST(SelectorTest, MutualInformationEstimator) {
  // Identical sequences: MI = H(X); independent-ish: MI ~ 0.
  std::vector<int> x = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(MutualInformation(x, x, 2), std::log(2.0), 1e-9);
  std::vector<int> y = {0, 0, 1, 1, 0, 0, 1, 1};
  EXPECT_NEAR(MutualInformation(x, y, 2), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(MutualInformation({}, {}, 2), 0.0);
  EXPECT_DOUBLE_EQ(MutualInformation({0}, {0, 1}, 2), 0.0);  // size mismatch
}

TEST(SelectorTest, ValidateContextCatchesMissingPieces) {
  Fixture f = Fixture::Make(4);
  auto ctx = f.Context();
  EXPECT_TRUE(ValidateContext(ctx, 2).ok());
  EXPECT_FALSE(ValidateContext(ctx, 0).ok());
  EXPECT_FALSE(ValidateContext(ctx, 5).ok());
  SelectionContext broken = ctx;
  broken.backend = nullptr;
  EXPECT_FALSE(ValidateContext(broken, 2).ok());
  broken = ctx;
  broken.split = nullptr;
  EXPECT_FALSE(ValidateContext(broken, 2).ok());
}

}  // namespace
}  // namespace vfps::core

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace vfps {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalHasApproximatelyUnitVariance) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(5);
  auto perm = rng.Permutation(257);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(4, 10);
  EXPECT_EQ(sample.size(), 4u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The child should not replay the parent's stream.
  Rng b(42);
  b.Next();  // advance like the fork did
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 2, 3, 4, 5, 5, 5};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace vfps

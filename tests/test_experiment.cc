// Integration tests: the full pipeline (preset -> partition -> selection ->
// downstream training) across methods, models, and backends.

#include "core/experiment.h"

#include <gtest/gtest.h>

#include "vfl/split_train.h"

namespace vfps::core {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.dataset = "Bank";
  config.scale = 0.25;  // 1000 rows
  config.participants = 4;
  config.select = 2;
  config.method = SelectionMethod::kVfpsSm;
  config.model = ml::ModelKind::kLogReg;
  config.backend = HeBackendKind::kPlain;
  config.knn.num_queries = 16;
  config.utility_queries = 16;
  config.seed = 42;
  return config;
}

TEST(ExperimentTest, VfpsSmEndToEnd) {
  auto result = RunExperiment(SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->selection.selected.size(), 2u);
  EXPECT_GT(result->training.test_accuracy, 0.6);
  EXPECT_GT(result->selection_sim_seconds, 0.0);
  EXPECT_GT(result->training_sim_seconds, 0.0);
  EXPECT_NEAR(result->total_sim_seconds,
              result->selection_sim_seconds + result->training_sim_seconds,
              1e-9);
  EXPECT_EQ(result->consortium_size, 4u);
}

TEST(ExperimentTest, AllMethodTrainsWithEveryParticipant) {
  ExperimentConfig config = SmallConfig();
  config.method = SelectionMethod::kAll;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selection.selected.size(), 4u);
  EXPECT_DOUBLE_EQ(result->selection_sim_seconds, 0.0);
}

TEST(ExperimentTest, EveryMethodEveryModelRuns) {
  for (SelectionMethod method :
       {SelectionMethod::kAll, SelectionMethod::kRandom,
        SelectionMethod::kShapley, SelectionMethod::kVfMine,
        SelectionMethod::kVfpsSm, SelectionMethod::kVfpsSmBase}) {
    for (ml::ModelKind model :
         {ml::ModelKind::kKnn, ml::ModelKind::kLogReg, ml::ModelKind::kMlp}) {
      ExperimentConfig config = SmallConfig();
      config.method = method;
      config.model = model;
      config.classifier.train.max_epochs = 10;  // keep the grid fast
      auto result = RunExperiment(config);
      ASSERT_TRUE(result.ok())
          << SelectionMethodName(method) << "/" << ml::ModelKindName(model)
          << ": " << result.status().ToString();
      EXPECT_GT(result->training.test_accuracy, 0.5)
          << SelectionMethodName(method) << "/" << ml::ModelKindName(model);
    }
  }
}

TEST(ExperimentTest, DeterministicForSeed) {
  auto a = RunExperiment(SmallConfig());
  auto b = RunExperiment(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selection.selected, b->selection.selected);
  EXPECT_DOUBLE_EQ(a->training.test_accuracy, b->training.test_accuracy);
  EXPECT_DOUBLE_EQ(a->total_sim_seconds, b->total_sim_seconds);
}

TEST(ExperimentTest, SimulatedTimeIndependentOfBackend) {
  // The analytic cost model must produce identical simulated seconds whether
  // the run used real CKKS or the plain backend.
  ExperimentConfig plain = SmallConfig();
  plain.knn.num_queries = 8;
  ExperimentConfig ckks = plain;
  ckks.backend = HeBackendKind::kCkks;
  auto a = RunExperiment(plain);
  auto b = RunExperiment(ckks);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selection.selected, b->selection.selected);
  EXPECT_NEAR(a->selection_sim_seconds, b->selection_sim_seconds,
              1e-6 * std::max(1.0, a->selection_sim_seconds));
}

TEST(ExperimentTest, DuplicateInjectionGrowsConsortium) {
  ExperimentConfig config = SmallConfig();
  config.duplicates = 3;
  config.duplicate_source = 1;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->consortium_size, 7u);
}

TEST(ExperimentTest, FaginSelectionCheaperThanBaseOnLargerData) {
  ExperimentConfig base = SmallConfig();
  base.dataset = "IJCNN";  // 16k rows at scale 1
  base.scale = 0.5;
  base.knn.num_queries = 8;
  base.method = SelectionMethod::kVfpsSmBase;
  ExperimentConfig fagin = base;
  fagin.method = SelectionMethod::kVfpsSm;
  auto rb = RunExperiment(base);
  auto rf = RunExperiment(fagin);
  ASSERT_TRUE(rb.ok() && rf.ok());
  EXPECT_LT(rf->selection_sim_seconds, rb->selection_sim_seconds);
  EXPECT_LT(rf->selection.knn_stats.candidates_encrypted,
            rb->selection.knn_stats.candidates_encrypted);
}

TEST(ExperimentTest, SelectionBeatsAllOnTotalTimeForBigData) {
  ExperimentConfig all = SmallConfig();
  all.dataset = "SUSY";
  all.scale = 0.1;
  all.method = SelectionMethod::kAll;
  all.model = ml::ModelKind::kKnn;
  ExperimentConfig vfps = all;
  vfps.method = SelectionMethod::kVfpsSm;
  vfps.knn.num_queries = 8;
  auto ra = RunExperiment(all);
  auto rv = RunExperiment(vfps);
  ASSERT_TRUE(ra.ok() && rv.ok());
  EXPECT_LT(rv->total_sim_seconds, ra->total_sim_seconds);
}

TEST(ExperimentTest, UnknownDatasetFails) {
  ExperimentConfig config = SmallConfig();
  config.dataset = "CIFAR10";
  EXPECT_FALSE(RunExperiment(config).ok());
}

TEST(SplitTrainTest, EpochCostGrowsWithParties) {
  data::VerticalPartition partition = {{0, 1, 2}, {3, 4, 5}, {6, 7}, {8, 9}};
  net::CostModel cost;
  const double two = vfl::SplitEpochSimSeconds(partition, {0, 1},
                                               ml::ModelKind::kMlp, 1000, 100,
                                               2, cost);
  const double four = vfl::SplitEpochSimSeconds(partition, {0, 1, 2, 3},
                                                ml::ModelKind::kMlp, 1000, 100,
                                                2, cost);
  EXPECT_GT(four, two);
}

TEST(SplitTrainTest, KnnInferenceCostGrowsWithTrainSize) {
  data::VerticalPartition partition = {{0, 1}, {2, 3}};
  net::CostModel cost;
  const double small = vfl::KnnInferenceSimSeconds(partition, {0, 1}, 1000, 100, cost);
  const double large = vfl::KnnInferenceSimSeconds(partition, {0, 1}, 10000, 100, cost);
  // Grows with N (sublinearly of 10x because per-query latency is fixed).
  EXPECT_GT(large, 4.0 * small);
}

}  // namespace
}  // namespace vfps::core

#include "he/bignum.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace vfps::he {
namespace {

TEST(BigIntTest, ConstructionAndU64RoundTrip) {
  EXPECT_TRUE(BigInt().IsZero());
  EXPECT_EQ(BigInt(0).ToU64(), 0u);
  EXPECT_EQ(BigInt(1).ToU64(), 1u);
  EXPECT_EQ(BigInt(0xFFFFFFFFFFFFFFFFULL).ToU64(), 0xFFFFFFFFFFFFFFFFULL);
}

TEST(BigIntTest, CompareOrdering) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt(1) << 100, BigInt(0xFFFFFFFFFFFFFFFFULL));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_LE(BigInt(7), BigInt(7));
}

TEST(BigIntTest, AddSubSmall) {
  EXPECT_EQ((BigInt(100) + BigInt(23)).ToU64(), 123u);
  EXPECT_EQ((BigInt(100) - BigInt(23)).ToU64(), 77u);
  EXPECT_TRUE((BigInt(5) - BigInt(5)).IsZero());
}

TEST(BigIntTest, AddCarriesAcrossLimbs) {
  BigInt a(0xFFFFFFFFULL);
  BigInt sum = a + BigInt(1);
  EXPECT_EQ(sum.ToU64(), 0x100000000ULL);
  BigInt b = (BigInt(1) << 128) - BigInt(1);
  BigInt c = b + BigInt(1);
  EXPECT_EQ(c.BitLength(), 129u);
}

TEST(BigIntTest, MulAgainstU64) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextBounded(1ULL << 32);
    uint64_t b = rng.NextBounded(1ULL << 32);
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToU64(), a * b);
  }
}

TEST(BigIntTest, ShiftRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomWithBits(100, &rng);
    for (size_t s : {1u, 31u, 32u, 33u, 64u, 77u}) {
      EXPECT_EQ((a << s) >> s, a);
    }
  }
}

TEST(BigIntTest, DivModIdentity) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::RandomWithBits(200, &rng);
    BigInt b = BigInt::RandomWithBits(60 + (i % 100), &rng);
    auto qr = BigInt::DivMod(a, b);
    ASSERT_TRUE(qr.ok());
    const auto& [q, r] = *qr;
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigIntTest, DivModSmallerDividend) {
  auto qr = BigInt::DivMod(BigInt(5), BigInt(100));
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(qr->first.IsZero());
  EXPECT_EQ(qr->second, BigInt(5));
}

TEST(BigIntTest, DivByZeroFails) {
  EXPECT_FALSE(BigInt::DivMod(BigInt(5), BigInt()).ok());
}

TEST(BigIntTest, PowModMatches64BitReference) {
  const uint64_t q = 1000003;
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    uint64_t base = rng.NextBounded(q);
    uint64_t exp = rng.NextBounded(1000);
    uint64_t expected = 1;
    for (uint64_t e = 0; e < exp; ++e) expected = (expected * base) % q;
    auto got = BigInt::PowMod(BigInt(base), BigInt(exp), BigInt(q));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->ToU64(), expected);
  }
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(9)), BigInt(9));
}

TEST(BigIntTest, ModInverseCorrect) {
  Rng rng(7);
  const BigInt m = BigInt::GeneratePrime(128, &rng).ValueOrDie();
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(m, &rng);
    if (a.IsZero()) continue;
    auto inv = BigInt::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(BigInt::MulMod(a, *inv, m).ValueOrDie(), BigInt(1));
  }
}

TEST(BigIntTest, ModInverseFailsWhenNotCoprime) {
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());
}

TEST(BigIntTest, BytesRoundTrip) {
  Rng rng(8);
  for (size_t bits : {8u, 33u, 64u, 100u, 256u}) {
    BigInt a = BigInt::RandomWithBits(bits, &rng);
    EXPECT_EQ(BigInt::FromBytes(a.ToBytes()), a);
  }
  EXPECT_TRUE(BigInt::FromBytes({}).IsZero());
}

TEST(BigIntTest, HexRoundTrip) {
  EXPECT_EQ(BigInt::FromHexString("deadbeef").ValueOrDie().ToU64(), 0xdeadbeefULL);
  EXPECT_EQ(BigInt(0xabcdef).ToHexString(), "abcdef");
  Rng rng(9);
  BigInt a = BigInt::RandomWithBits(200, &rng);
  EXPECT_EQ(BigInt::FromHexString(a.ToHexString()).ValueOrDie(), a);
  EXPECT_FALSE(BigInt::FromHexString("xyz").ok());
  EXPECT_FALSE(BigInt::FromHexString("").ok());
}

TEST(BigIntTest, RandomWithBitsExactBitLength) {
  Rng rng(10);
  for (size_t bits : {8u, 31u, 32u, 33u, 512u}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::RandomWithBits(bits, &rng).BitLength(), bits);
    }
  }
}

TEST(BigIntTest, RandomBelowInRange) {
  Rng rng(11);
  const BigInt bound = BigInt::RandomWithBits(100, &rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::RandomBelow(bound, &rng), bound);
  }
}

TEST(BigIntTest, ProbablyPrimeKnownValues) {
  Rng rng(12);
  EXPECT_TRUE(BigInt::ProbablyPrime(BigInt(2), 10, &rng));
  EXPECT_TRUE(BigInt::ProbablyPrime(BigInt(997), 10, &rng));
  EXPECT_FALSE(BigInt::ProbablyPrime(BigInt(561), 10, &rng));  // Carmichael
  EXPECT_FALSE(BigInt::ProbablyPrime(BigInt(1), 10, &rng));
  // 2^127 - 1 is a Mersenne prime.
  const BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(BigInt::ProbablyPrime(m127, 10, &rng));
  EXPECT_FALSE(BigInt::ProbablyPrime(m127 + BigInt(2), 10, &rng));
}

TEST(BigIntTest, GeneratePrimeHasRequestedSize) {
  Rng rng(13);
  auto p = BigInt::GeneratePrime(96, &rng);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->BitLength(), 96u);
  EXPECT_TRUE(BigInt::ProbablyPrime(*p, 20, &rng));
}

TEST(BigIntTest, GetBitMatchesShift) {
  BigInt v = BigInt(0b1011010);
  EXPECT_FALSE(v.GetBit(0));
  EXPECT_TRUE(v.GetBit(1));
  EXPECT_FALSE(v.GetBit(2));
  EXPECT_TRUE(v.GetBit(3));
  EXPECT_TRUE(v.GetBit(4));
  EXPECT_FALSE(v.GetBit(5));
  EXPECT_TRUE(v.GetBit(6));
  EXPECT_FALSE(v.GetBit(1000));
}

}  // namespace
}  // namespace vfps::he

#include "common/buffer.h"

#include <gtest/gtest.h>

namespace vfps {
namespace {

TEST(BufferTest, RoundTripScalars) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(123456u);
  w.WriteU64(0xDEADBEEFCAFEBABEULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadU8().ValueOrDie(), 7);
  EXPECT_EQ(r.ReadU32().ValueOrDie(), 123456u);
  EXPECT_EQ(r.ReadU64().ValueOrDie(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(r.ReadI64().ValueOrDie(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble().ValueOrDie(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, RoundTripStringsAndVectors) {
  BinaryWriter w;
  w.WriteString("hello vfps");
  w.WriteBytes({1, 2, 3});
  w.WriteDoubleVec({1.5, -2.5, 0.0});
  w.WriteU64Vec({10, 20});
  w.WriteU32Vec({});
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadString().ValueOrDie(), "hello vfps");
  EXPECT_EQ(r.ReadBytes().ValueOrDie(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadDoubleVec().ValueOrDie(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.ReadU64Vec().ValueOrDie(), (std::vector<uint64_t>{10, 20}));
  EXPECT_TRUE(r.ReadU32Vec().ValueOrDie().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, TruncatedReadFails) {
  BinaryWriter w;
  w.WriteU32(5);
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.ReadU64().status().IsOutOfRange());
}

TEST(BufferTest, TruncatedVectorFails) {
  BinaryWriter w;
  w.WriteU32(100);  // claims 100 doubles but provides none
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.ReadDoubleVec().status().IsOutOfRange());
}

TEST(BufferTest, EmptyStringRoundTrip) {
  BinaryWriter w;
  w.WriteString("");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadString().ValueOrDie(), "");
}

TEST(BufferTest, SizeTracksWrites) {
  BinaryWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.WriteU64(1);
  EXPECT_EQ(w.size(), 8u);
  w.WriteDoubleVec({1.0, 2.0});
  EXPECT_EQ(w.size(), 8u + 4u + 16u);
}

}  // namespace
}  // namespace vfps

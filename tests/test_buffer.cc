#include "common/buffer.h"

#include <gtest/gtest.h>

namespace vfps {
namespace {

TEST(BufferTest, RoundTripScalars) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(123456u);
  w.WriteU64(0xDEADBEEFCAFEBABEULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadU8().ValueOrDie(), 7);
  EXPECT_EQ(r.ReadU32().ValueOrDie(), 123456u);
  EXPECT_EQ(r.ReadU64().ValueOrDie(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(r.ReadI64().ValueOrDie(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble().ValueOrDie(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, RoundTripStringsAndVectors) {
  BinaryWriter w;
  w.WriteString("hello vfps");
  w.WriteBytes({1, 2, 3});
  w.WriteDoubleVec({1.5, -2.5, 0.0});
  w.WriteU64Vec({10, 20});
  w.WriteU32Vec({});
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadString().ValueOrDie(), "hello vfps");
  EXPECT_EQ(r.ReadBytes().ValueOrDie(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadDoubleVec().ValueOrDie(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.ReadU64Vec().ValueOrDie(), (std::vector<uint64_t>{10, 20}));
  EXPECT_TRUE(r.ReadU32Vec().ValueOrDie().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, TruncatedReadFails) {
  BinaryWriter w;
  w.WriteU32(5);
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.ReadU64().status().IsOutOfRange());
}

TEST(BufferTest, TruncatedVectorFails) {
  BinaryWriter w;
  w.WriteU32(100);  // claims 100 doubles but provides none
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.ReadDoubleVec().status().IsOutOfRange());
}

TEST(BufferTest, EmptyStringRoundTrip) {
  BinaryWriter w;
  w.WriteString("");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadString().ValueOrDie(), "");
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value (zlib, IEEE 802.3).
  const std::vector<uint8_t> check = {'1', '2', '3', '4', '5',
                                      '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(check), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SensitiveToEveryBit) {
  std::vector<uint8_t> payload(64, 0xA5);
  const uint32_t reference = Crc32(payload);
  for (size_t bit : {size_t{0}, size_t{7}, size_t{200}, payload.size() * 8 - 1}) {
    std::vector<uint8_t> flipped = payload;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(flipped), reference) << "bit " << bit;
  }
}

TEST(BufferTest, CrcFramedRoundTrip) {
  const std::vector<uint8_t> payload = {9, 8, 7, 6, 5};
  BinaryWriter w;
  w.WriteCrcFramed(payload);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.ReadCrcFramed().ValueOrDie(), payload);
  EXPECT_TRUE(r.AtEnd());

  BinaryWriter empty;
  empty.WriteCrcFramed({});
  BinaryReader re(empty.bytes());
  EXPECT_TRUE(re.ReadCrcFramed().ValueOrDie().empty());
}

TEST(BufferTest, CrcFramedDetectsCorruption) {
  BinaryWriter w;
  w.WriteCrcFramed({1, 2, 3, 4});
  // Flip one payload bit (the payload starts after crc u32 + len u32).
  std::vector<uint8_t> wire = w.bytes();
  wire[8] ^= 0x10;
  BinaryReader r(wire);
  EXPECT_TRUE(r.ReadCrcFramed().status().IsCorrupt());
  // A corrupted length field must fail bounds-checked, not crash.
  std::vector<uint8_t> truncated = w.bytes();
  truncated[4] = 0xFF;  // length now claims far more bytes than exist
  BinaryReader rt(truncated);
  EXPECT_TRUE(rt.ReadCrcFramed().status().IsOutOfRange());
}

TEST(BufferTest, SizeTracksWrites) {
  BinaryWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.WriteU64(1);
  EXPECT_EQ(w.size(), 8u);
  w.WriteDoubleVec({1.0, 2.0});
  EXPECT_EQ(w.size(), 8u + 4u + 16u);
}

}  // namespace
}  // namespace vfps

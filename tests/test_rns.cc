#include "he/rns.h"

#include <gtest/gtest.h>

#include "he/modarith.h"

namespace vfps::he {
namespace {

std::shared_ptr<const RnsContext> MakeContext(size_t n = 64,
                                              std::vector<int> bits = {54, 54}) {
  auto ctx = RnsContext::Create(n, bits);
  return ctx.ValueOrDie();
}

TEST(RnsContextTest, CreatesDistinctNttFriendlyPrimes) {
  auto ctx = MakeContext();
  ASSERT_EQ(ctx->num_primes(), 2u);
  EXPECT_NE(ctx->prime(0), ctx->prime(1));
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(IsPrime(ctx->prime(i)));
    EXPECT_EQ((ctx->prime(i) - 1) % (2 * ctx->n()), 0u);
  }
  EXPECT_GT(ctx->modulus_approx(), 0.0L);
}

TEST(RnsContextTest, RejectsTooManyPrimes) {
  EXPECT_FALSE(RnsContext::Create(64, {50, 50, 50}).ok());
  EXPECT_FALSE(RnsContext::Create(64, {}).ok());
}

TEST(RnsPolyTest, SetAndComposeRoundTripSigned) {
  auto ctx = MakeContext();
  RnsPoly poly = ZeroPoly(*ctx);
  const __int128 values[] = {0, 1, -1, 123456789, -987654321,
                             (static_cast<__int128>(1) << 100),
                             -(static_cast<__int128>(1) << 100)};
  for (size_t i = 0; i < std::size(values); ++i) {
    SetCoeffFromInt128(*ctx, &poly, i, values[i]);
  }
  for (size_t i = 0; i < std::size(values); ++i) {
    const double got = ComposeCoeffToDouble(*ctx, poly, i);
    const double expected = static_cast<double>(values[i]);
    EXPECT_NEAR(got, expected, std::abs(expected) * 1e-12 + 1e-9) << "idx " << i;
  }
}

TEST(RnsPolyTest, ComposeU128MatchesCrt) {
  auto ctx = MakeContext();
  Rng rng(3);
  RnsPoly poly = ZeroPoly(*ctx);
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t hi = rng.Next() >> 30;
    const unsigned __int128 v =
        (static_cast<unsigned __int128>(hi) << 50) | (rng.Next() >> 20);
    poly.residues[0][0] = static_cast<uint64_t>(v % ctx->prime(0));
    poly.residues[1][0] = static_cast<uint64_t>(v % ctx->prime(1));
    EXPECT_TRUE(ComposeCoeffU128(*ctx, poly, 0) == v);
  }
}

TEST(RnsPolyTest, AddSubNegateConsistent) {
  auto ctx = MakeContext();
  Rng rng(5);
  RnsPoly a = SampleUniform(*ctx, &rng);
  RnsPoly b = SampleUniform(*ctx, &rng);
  RnsPoly sum = a;
  AddInPlace(*ctx, &sum, b);
  RnsPoly back = sum;
  SubInPlace(*ctx, &back, b);
  EXPECT_EQ(back.residues, a.residues);
  RnsPoly neg = a;
  NegateInPlace(*ctx, &neg);
  AddInPlace(*ctx, &neg, a);
  for (const auto& res : neg.residues) {
    for (uint64_t v : res) EXPECT_EQ(v, 0u);
  }
}

TEST(RnsPolyTest, NttRoundTrip) {
  auto ctx = MakeContext();
  Rng rng(7);
  RnsPoly a = SampleGaussian(*ctx, &rng);
  const auto original = a.residues;
  ToNtt(*ctx, &a);
  EXPECT_TRUE(a.ntt_form);
  EXPECT_NE(a.residues, original);
  FromNtt(*ctx, &a);
  EXPECT_FALSE(a.ntt_form);
  EXPECT_EQ(a.residues, original);
  // Idempotence of the no-op direction.
  FromNtt(*ctx, &a);
  EXPECT_EQ(a.residues, original);
}

TEST(RnsPolyTest, LevelAwareOpsUseMinimumPrimes) {
  auto ctx = MakeContext();
  Rng rng(9);
  RnsPoly full = SampleUniform(*ctx, &rng);
  RnsPoly low = full;
  low.residues.pop_back();  // level-1 polynomial
  RnsPoly sum = low;
  AddInPlace(*ctx, &sum, full);  // must not touch the missing prime
  EXPECT_EQ(sum.num_primes(), 1u);
  for (size_t c = 0; c < ctx->n(); ++c) {
    EXPECT_EQ(sum.residues[0][c],
              AddMod(low.residues[0][c], full.residues[0][c], ctx->prime(0)));
  }
}

TEST(RnsPolyTest, TernaryAndGaussianAreSmall) {
  auto ctx = MakeContext(256);
  Rng rng(11);
  RnsPoly t = SampleTernary(*ctx, &rng);
  for (size_t c = 0; c < ctx->n(); ++c) {
    const double v = ComposeCoeffToDouble(*ctx, t, c);
    EXPECT_TRUE(v == 0.0 || v == 1.0 || v == -1.0) << v;
  }
  RnsPoly g = SampleGaussian(*ctx, &rng, 3.2);
  for (size_t c = 0; c < ctx->n(); ++c) {
    EXPECT_LT(std::abs(ComposeCoeffToDouble(*ctx, g, c)), 40.0);
  }
}

TEST(RnsPolyTest, MulScalarMatchesRepeatedAdd) {
  auto ctx = MakeContext();
  Rng rng(13);
  RnsPoly a = SampleUniform(*ctx, &rng);
  RnsPoly triple = a;
  MulScalarInPlace(*ctx, &triple, 3);
  RnsPoly sum = a;
  AddInPlace(*ctx, &sum, a);
  AddInPlace(*ctx, &sum, a);
  EXPECT_EQ(triple.residues, sum.residues);
}

}  // namespace
}  // namespace vfps::he

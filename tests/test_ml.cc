#include <gtest/gtest.h>

#include <cmath>

#include "data/scaler.h"
#include "data/synthetic.h"
#include "ml/classifier.h"
#include "ml/knn.h"
#include "ml/logreg.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/optimizer.h"

namespace vfps::ml {
namespace {

// Shared easy dataset: two well-separated classes.
data::DataSplit EasySplit() {
  data::SyntheticConfig config;
  config.num_samples = 600;
  config.num_features = 6;
  config.num_informative = 4;
  config.num_redundant = 1;
  config.centroid_distance = 4.0;
  config.label_noise = 0.0;
  config.seed = 3;
  auto generated = data::GenerateClassification(config);
  auto split = data::SplitDataset(generated->data, 0.7, 0.15, 3);
  data::StandardizeSplit(&*split).Abort("standardize");
  return split.MoveValueUnsafe();
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3), b(3, 2), out;
  double va = 1;
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 3; ++j) a.At(i, j) = va++;
  double vb = 1;
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 2; ++j) b.At(i, j) = vb++;
  MatMul(a, b, &out);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_DOUBLE_EQ(out.At(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(out.At(1, 1), 64.0);
}

TEST(MatrixTest, TransposedVariantsConsistent) {
  Rng rng(4);
  Matrix a(3, 4), b(3, 5);
  for (double& v : a.data()) v = rng.Normal();
  for (double& v : b.data()) v = rng.Normal();
  // a^T * b via MatTMul must equal manually transposing then MatMul.
  Matrix at(4, 3);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 4; ++j) at.At(j, i) = a.At(i, j);
  Matrix expected, got;
  MatMul(at, b, &expected);
  MatTMul(a, b, &got);
  for (size_t i = 0; i < expected.data().size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
  // a * b^T via MatMulT: a (3x4), c (5x4) -> 3x5.
  Matrix c(5, 4);
  for (double& v : c.data()) v = rng.Normal();
  Matrix ct(4, 5);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 4; ++j) ct.At(j, i) = c.At(i, j);
  MatMul(a, ct, &expected);
  MatMulT(a, c, &got);
  for (size_t i = 0; i < expected.data().size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(MatrixTest, AddRowVectorAndColumnSums) {
  Matrix m(2, 3, 1.0);
  AddRowVector(&m, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 4.0);
  auto sums = ColumnSums(m);
  EXPECT_DOUBLE_EQ(sums[0], 4.0);
  EXPECT_DOUBLE_EQ(sums[2], 8.0);
}

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({1}, {1, 2}), 0.0);  // size mismatch
}

TEST(MetricsTest, SoftmaxSumsToOneAndOrders) {
  double v[3] = {1.0, 3.0, 2.0};
  SoftmaxInPlace(v, 3);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_GT(v[1], v[2]);
  EXPECT_GT(v[2], v[0]);
}

TEST(MetricsTest, SoftmaxStableForLargeLogits) {
  double v[2] = {1000.0, 999.0};
  SoftmaxInPlace(v, 2);
  EXPECT_TRUE(std::isfinite(v[0]));
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-12);
}

TEST(MetricsTest, CrossEntropyPerfectAndWrong) {
  // Perfect prediction -> ~0 loss; confident wrong -> large loss.
  std::vector<double> good = {1.0, 0.0};
  EXPECT_NEAR(CrossEntropy(good, 2, {0}), 0.0, 1e-9);
  std::vector<double> bad = {1e-12, 1.0};
  EXPECT_GT(CrossEntropy(bad, 2, {0}), 20.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // minimize (x-3)^2 + (y+1)^2
  std::vector<double> params = {0.0, 0.0};
  Adam adam(0.1);
  for (int step = 0; step < 500; ++step) {
    std::vector<double> grads = {2.0 * (params[0] - 3.0), 2.0 * (params[1] + 1.0)};
    adam.Step(&params, grads);
  }
  EXPECT_NEAR(params[0], 3.0, 1e-2);
  EXPECT_NEAR(params[1], -1.0, 1e-2);
}

TEST(SgdTest, DescendsGradient) {
  std::vector<double> params = {10.0};
  Sgd sgd(0.1);
  for (int step = 0; step < 100; ++step) {
    std::vector<double> grads = {2.0 * params[0]};
    sgd.Step(&params, grads);
  }
  EXPECT_NEAR(params[0], 0.0, 1e-3);
}

TEST(EarlyStopperTest, StopsAfterPatience) {
  EarlyStopper stopper(3);
  EXPECT_FALSE(stopper.ShouldStop(1.0));
  EXPECT_FALSE(stopper.ShouldStop(0.5));  // improving
  EXPECT_FALSE(stopper.ShouldStop(0.6));  // stale 1
  EXPECT_FALSE(stopper.ShouldStop(0.6));  // stale 2
  EXPECT_TRUE(stopper.ShouldStop(0.7));   // stale 3 -> stop
  EXPECT_DOUBLE_EQ(stopper.best_loss(), 0.5);
}

TEST(MakeBatchesTest, CoversAllIndices) {
  std::vector<size_t> order = {4, 2, 0, 1, 3};
  auto batches = MakeBatches(5, 2, order);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::vector<size_t>{4, 2}));
  EXPECT_EQ(batches[2], (std::vector<size_t>{3}));
}

TEST(KnnTest, PerfectOnMemorizedPoints) {
  data::Dataset train(4, 2, 2);
  train.Set(0, 0, 0.0);
  train.Set(1, 0, 0.1);
  train.Set(2, 0, 10.0);
  train.Set(3, 0, 10.1);
  train.SetLabel(0, 0);
  train.SetLabel(1, 0);
  train.SetLabel(2, 1);
  train.SetLabel(3, 1);
  KnnClassifier knn(1);
  ASSERT_TRUE(knn.Fit(train, {}).ok());
  auto preds = knn.Predict(train);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ(*preds, (std::vector<int>{0, 0, 1, 1}));
}

TEST(KnnTest, MajorityVoteAndTies) {
  EXPECT_EQ(MajorityVote({0, 0, 1}, 2), 0);
  EXPECT_EQ(MajorityVote({1, 1, 0}, 2), 1);
  EXPECT_EQ(MajorityVote({0, 1}, 2), 0);  // tie -> smallest class id
  EXPECT_EQ(MajorityVote({}, 2), 0);
}

TEST(KnnTest, NeighborsSortedByDistance) {
  data::Dataset train(5, 1, 2);
  for (size_t i = 0; i < 5; ++i) train.Set(i, 0, static_cast<double>(i));
  KnnClassifier knn(3);
  ASSERT_TRUE(knn.Fit(train, {}).ok());
  const double query = 1.9;
  auto neighbors = knn.Neighbors(&query);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0], 2u);
  EXPECT_EQ(neighbors[1], 1u);
  EXPECT_EQ(neighbors[2], 3u);
}

TEST(KnnTest, HighAccuracyOnEasyData) {
  auto split = EasySplit();
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(split.train, split.valid).ok());
  auto acc = knn.Score(split.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.9);
}

TEST(LogRegTest, HighAccuracyOnEasyData) {
  auto split = EasySplit();
  TrainConfig config;
  config.learning_rate = 0.05;
  LogisticRegression lr(config);
  ASSERT_TRUE(lr.Fit(split.train, split.valid).ok());
  EXPECT_GT(lr.epochs_trained(), 0u);
  auto acc = lr.Score(split.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.9);
}

TEST(LogRegTest, LossDecreasesWithTraining) {
  auto split = EasySplit();
  TrainConfig config;
  config.max_epochs = 1;
  LogisticRegression one_epoch(config);
  ASSERT_TRUE(one_epoch.Fit(split.train, split.valid).ok());
  const double early = one_epoch.Loss(split.train);
  config.max_epochs = 40;
  LogisticRegression many_epochs(config);
  ASSERT_TRUE(many_epochs.Fit(split.train, split.valid).ok());
  EXPECT_LT(many_epochs.Loss(split.train), early);
}

TEST(LogRegTest, PredictBeforeFitFails) {
  LogisticRegression lr(TrainConfig{});
  data::Dataset test(1, 2, 2);
  EXPECT_FALSE(lr.Predict(test).ok());
}

TEST(LogRegTest, FeatureWidthMismatchRejected) {
  auto split = EasySplit();
  LogisticRegression lr(TrainConfig{});
  ASSERT_TRUE(lr.Fit(split.train, split.valid).ok());
  data::Dataset wrong(2, split.train.num_features() + 1, 2);
  EXPECT_FALSE(lr.Predict(wrong).ok());
}

TEST(MlpTest, HighAccuracyOnEasyData) {
  auto split = EasySplit();
  TrainConfig config;
  config.learning_rate = 0.01;
  MlpClassifier mlp(config, /*hidden_dim=*/16);
  ASSERT_TRUE(mlp.Fit(split.train, split.valid).ok());
  auto acc = mlp.Score(split.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.9);
  EXPECT_EQ(mlp.hidden_dim(), 16u);
}

TEST(MlpTest, DefaultHiddenDimCapped) {
  auto split = EasySplit();
  TrainConfig config;
  config.max_epochs = 2;
  MlpClassifier mlp(config, 0);
  ASSERT_TRUE(mlp.Fit(split.train, split.valid).ok());
  EXPECT_EQ(mlp.hidden_dim(), split.train.num_features());  // min(F, 32)
}

TEST(MlpTest, LearnsXorThatLrCannot) {
  // XOR pattern: linearly inseparable.
  data::Dataset train(400, 2, 2);
  Rng rng(8);
  for (size_t i = 0; i < 400; ++i) {
    const double x = rng.Uniform(-1.0, 1.0);
    const double y = rng.Uniform(-1.0, 1.0);
    train.Set(i, 0, x);
    train.Set(i, 1, y);
    train.SetLabel(i, (x > 0) != (y > 0) ? 1 : 0);
  }
  TrainConfig config;
  config.learning_rate = 0.02;
  config.max_epochs = 150;
  config.patience = 30;
  MlpClassifier mlp(config, 16);
  ASSERT_TRUE(mlp.Fit(train, {}).ok());
  auto mlp_acc = mlp.Score(train);
  ASSERT_TRUE(mlp_acc.ok());
  EXPECT_GT(*mlp_acc, 0.9);

  LogisticRegression lr(config);
  ASSERT_TRUE(lr.Fit(train, {}).ok());
  auto lr_acc = lr.Score(train);
  ASSERT_TRUE(lr_acc.ok());
  EXPECT_LT(*lr_acc, 0.7);
}

TEST(ClassifierFactoryTest, CreatesAllKinds) {
  ClassifierOptions options;
  for (ModelKind kind : {ModelKind::kKnn, ModelKind::kLogReg, ModelKind::kMlp}) {
    auto model = CreateClassifier(kind, options);
    ASSERT_TRUE(model.ok());
    EXPECT_EQ((*model)->name(), ModelKindName(kind));
  }
}

TEST(ClassifierFactoryTest, ParseModelKind) {
  EXPECT_TRUE(ParseModelKind("knn").ok());
  EXPECT_TRUE(ParseModelKind("lr").ok());
  EXPECT_TRUE(ParseModelKind("mlp").ok());
  EXPECT_FALSE(ParseModelKind("transformer").ok());
}

}  // namespace
}  // namespace vfps::ml

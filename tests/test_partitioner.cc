#include "data/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/synthetic.h"

namespace vfps::data {
namespace {

// Every feature appears exactly once across the partition.
void ExpectExactCover(const VerticalPartition& partition, size_t num_features) {
  std::vector<int> seen(num_features, 0);
  for (const auto& cols : partition) {
    for (size_t c : cols) {
      ASSERT_LT(c, num_features);
      seen[c]++;
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(RandomPartitionTest, CoversAllFeaturesOnce) {
  auto partition = RandomVerticalPartition(23, 4, 7);
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->size(), 4u);
  ExpectExactCover(*partition, 23);
  for (const auto& cols : *partition) EXPECT_FALSE(cols.empty());
}

TEST(RandomPartitionTest, NearEqualSizes) {
  auto partition = RandomVerticalPartition(22, 4, 1);
  ASSERT_TRUE(partition.ok());
  for (const auto& cols : *partition) {
    EXPECT_GE(cols.size(), 5u);
    EXPECT_LE(cols.size(), 6u);
  }
}

TEST(RandomPartitionTest, RejectsTooManyParticipants) {
  EXPECT_FALSE(RandomVerticalPartition(3, 4, 1).ok());
  EXPECT_FALSE(RandomVerticalPartition(10, 0, 1).ok());
}

TEST(QualityStratifiedTest, CoversAllFeaturesOnce) {
  std::vector<FeatureKind> kinds;
  for (int i = 0; i < 10; ++i) kinds.push_back(FeatureKind::kInformative);
  for (int i = 0; i < 6; ++i) kinds.push_back(FeatureKind::kRedundant);
  for (int i = 0; i < 6; ++i) kinds.push_back(FeatureKind::kNoise);
  auto partition = QualityStratifiedPartition(kinds, 4, 3);
  ASSERT_TRUE(partition.ok());
  ExpectExactCover(*partition, kinds.size());
  for (const auto& cols : *partition) EXPECT_FALSE(cols.empty());
}

TEST(QualityStratifiedTest, EarlyParticipantsGetMoreInformative) {
  std::vector<FeatureKind> kinds;
  for (int i = 0; i < 40; ++i) kinds.push_back(FeatureKind::kInformative);
  for (int i = 0; i < 20; ++i) kinds.push_back(FeatureKind::kRedundant);
  for (int i = 0; i < 20; ++i) kinds.push_back(FeatureKind::kNoise);
  auto partition = QualityStratifiedPartition(kinds, 4, 5);
  ASSERT_TRUE(partition.ok());
  auto informative_count = [&](size_t p) {
    size_t count = 0;
    for (size_t c : (*partition)[p]) {
      count += kinds[c] == FeatureKind::kInformative;
    }
    return count;
  };
  EXPECT_GT(informative_count(0), informative_count(2));
  EXPECT_GT(informative_count(0), informative_count(3));
}

TEST(QualityStratifiedTest, WorksWithManyParticipants) {
  std::vector<FeatureKind> kinds(68, FeatureKind::kNoise);
  for (int i = 0; i < 24; ++i) kinds[i] = FeatureKind::kInformative;
  for (size_t p : {8u, 12u, 16u, 20u}) {
    auto partition = QualityStratifiedPartition(kinds, p, 1);
    ASSERT_TRUE(partition.ok()) << "P=" << p;
    ASSERT_EQ(partition->size(), p);
    ExpectExactCover(*partition, kinds.size());
    for (const auto& cols : *partition) EXPECT_FALSE(cols.empty());
  }
}

TEST(WithDuplicatesTest, AppendsExactCopies) {
  auto base = RandomVerticalPartition(12, 4, 2);
  ASSERT_TRUE(base.ok());
  auto dup = WithDuplicates(*base, 1, 3);
  ASSERT_TRUE(dup.ok());
  ASSERT_EQ(dup->size(), 7u);
  for (size_t i = 4; i < 7; ++i) EXPECT_EQ((*dup)[i], (*base)[1]);
  EXPECT_FALSE(WithDuplicates(*base, 9, 1).ok());
}

TEST(MaterializeViewsTest, SlicesColumns) {
  Dataset joint(3, 4, 2);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) joint.Set(i, j, 10.0 * i + j);
  }
  VerticalPartition partition = {{0, 2}, {1, 3}};
  auto views = MaterializeViews(joint, partition);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].num_features(), 2u);
  EXPECT_DOUBLE_EQ(views[0].At(1, 1), 12.0);
  EXPECT_DOUBLE_EQ(views[1].At(2, 0), 21.0);
}

TEST(ConcatViewsTest, ConcatenatesSelected) {
  Dataset joint(2, 5, 2);
  for (size_t j = 0; j < 5; ++j) joint.Set(0, j, static_cast<double>(j));
  VerticalPartition partition = {{0, 1}, {2}, {3, 4}};
  auto concat = ConcatViews(joint, partition, {0, 2});
  ASSERT_TRUE(concat.ok());
  EXPECT_EQ(concat->num_features(), 4u);
  EXPECT_DOUBLE_EQ(concat->At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(concat->At(0, 2), 3.0);
}

TEST(ConcatViewsTest, RejectsDuplicatesAndOutOfRange) {
  Dataset joint(2, 5, 2);
  VerticalPartition partition = {{0, 1}, {2}, {3, 4}};
  EXPECT_FALSE(ConcatViews(joint, partition, {1, 1}).ok());
  EXPECT_FALSE(ConcatViews(joint, partition, {5}).ok());
  EXPECT_FALSE(ConcatViews(joint, partition, {}).ok());
}

TEST(SelectedFeatureCountTest, SumsWidths) {
  VerticalPartition partition = {{0, 1}, {2}, {3, 4, 5}};
  EXPECT_EQ(SelectedFeatureCount(partition, {0, 2}), 5u);
  EXPECT_EQ(SelectedFeatureCount(partition, {1}), 1u);
  EXPECT_EQ(SelectedFeatureCount(partition, {}), 0u);
}

}  // namespace
}  // namespace vfps::data
